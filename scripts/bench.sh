#!/usr/bin/env bash
# Perf-trajectory measurement: the criterion micro-benches plus the pinned
# reduced-scale wall-clock sweep, emitted as schema'd JSON (`cool-bench-v1`).
#
#   scripts/bench.sh                # full run: benches + 3-repeat sweep -> BENCH_8.json
#   scripts/bench.sh --out FILE     # write the trajectory point elsewhere
#   scripts/bench.sh --smoke        # CI gate: 1-repeat sweep, schema-validated and
#                                   # compared against the committed BENCH_8.json
#                                   # (exact refs/cycles, wall-clock within 25%)
#
# The full run overwrites the baseline file: commit the result as the next
# point of the trajectory. The smoke run never writes the baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="BENCH_8.json"
SMOKE=0
while [[ $# -gt 0 ]]; do
    case "$1" in
        --smoke) SMOKE=1 ;;
        --out)
            OUT="${2:?--out takes a value}"
            shift
            ;;
        *)
            echo "usage: scripts/bench.sh [--smoke] [--out FILE]" >&2
            exit 2
            ;;
    esac
    shift
done

cargo build --release --offline -q -p bench

if [[ "$SMOKE" -eq 1 ]]; then
    # Quick single-repeat measurement checked against the committed
    # baseline; perfbench validates both documents against the schema,
    # demands exact simulated refs/cycles (behaviour drift) and fails on a
    # >25% wall-clock regression.
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    cargo run --release --offline -q -p bench --bin perfbench -- \
        --smoke --out "$tmp" --baseline "$OUT"
else
    # Criterion micro-benches for the record (relative numbers; the shim
    # prints means, not statistics), then the 3-repeat sweep as the
    # trajectory point.
    cargo bench --offline -p bench --bench dash_hotpath
    cargo bench --offline -p bench --bench runtime_micro
    cargo run --release --offline -q -p bench --bin perfbench -- --out "$OUT"
fi

echo "bench OK"
