#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint — all offline, all under a global
# timeout so a deadlocked test turns into a failure instead of a hung job.
#
#   scripts/ci.sh [timeout-seconds]
#
# Exits non-zero if any step fails.
set -euo pipefail

cd "$(dirname "$0")/.."

LIMIT="${1:-1200}"

run() {
    echo "==> $*"
    timeout --signal=KILL "$LIMIT" "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
