#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint — all offline, all under a global
# timeout so a deadlocked test turns into a failure instead of a hung job.
#
#   scripts/ci.sh [timeout-seconds]
#
# Exits non-zero if any step fails.
set -euo pipefail

cd "$(dirname "$0")/.."

LIMIT="${1:-1200}"

run() {
    echo "==> $*"
    timeout --signal=KILL "$LIMIT" "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Analyze gate: run the happens-before / lock-order / lint passes over all
# six apps (default + fault-injected schedules). The binary exits non-zero
# on any race or lock cycle; the diff check makes lint findings (and any
# change in the analysis surface) reviewable instead of silent.
run cargo run --release --offline -q -p cool-analyze -- analyze_findings.json
run git diff --exit-code -- analyze_findings.json

# cool-check gate: bounded schedule exploration of the serve and queue
# virtual machines (naive + sleep-set DPOR, zero violations, reduction
# required), exhaustive small-config protocol reachability, and the pinned
# app sweep in coherence-checked mode. The byte-stable report is diffed so
# any change in the explored state space is reviewable; the seeded-defect
# suite proves each protocol invariant actually fires when its rule is
# broken.
run cargo run --release --offline -q -p cool-analyze --bin cool-check -- cool_check.json
run git diff --exit-code -- cool_check.json
run cargo test -q --offline -p cool-analyze --test check_seeded

# Observability gate: a fixed-seed traced run of one app must emit a
# Perfetto-loadable Chrome trace and the schema'd cool-metrics-v1 summary
# (the producer validates the schema and that per-set rows sum exactly to
# the totals before writing). The metrics document is byte-diffed against
# the committed golden so any drift in scheduling or locality attribution
# is reviewable instead of silent.
mkdir -p target
run cargo run --release --offline -q -p bench --bin figures -- --trace-out target/obs_gate
run grep -q '"schema": "cool-metrics-v1"' target/obs_gate.metrics.json
run grep -q '"traceEvents"' target/obs_gate.trace.json
run cmp tests/gauss_metrics_golden.json target/obs_gate.metrics.json

# Service gate: a fixed-seed chaos replay through the cool-serve work
# server (tight queues, slowed domain, injected request failures and an
# intake stall) must shed and retry — and still lose nothing and double-run
# nothing. The binary exits non-zero if any --require-* fact is missing or
# the accounting invariants break; the --check pass re-validates the
# written cool-serve-v1 document (schema, balanced books, canonical byte
# form) exactly as a consumer would.
run cargo run --release --offline -q -p bench --bin cool-serve -- \
    --smoke --faults --seed 42 --out target/serve_smoke.json \
    --require-zero-lost --require-shed --require-retries
run cargo run --release --offline -q -p bench --bin cool-serve -- \
    --check target/serve_smoke.json

# Behaviour gate: the golden-run sweep must match the committed TSV
# byte-for-byte (the workspace test run above already includes it; running
# it by name makes a golden failure unmistakable in the log).
run cargo test -q --offline --test golden_figures

# Contention gate: the discrete-event engine's statistics must satisfy the
# M/D/1 closed form (mean queueing delay, utilization, monotonicity in
# offered load) and stay deterministic; the committed full-scale records
# must carry the epoch-2 contention signature (monotone panel waits, the
# contended-vs-zero A/B degradation, Distr beating Base on queueing);
# and the engine + zero-contention-equivalence unit suites run by name so
# a failure is unmistakable in the log.
run cargo test -q --release --offline --test contention_laws
run cargo test -q --release --offline --test contention_repro
run cargo test -q --offline -p dash-sim --lib engine
run cargo test -q --offline -p dash-sim --lib equiv
run cargo test -q --release --offline -p dash-sim --test contention_props

# Perf gate: single-repeat sweep validated against the committed
# BENCH_8.json — schema check, exact simulated refs/cycles, a hard
# failure on a >25% wall-clock regression at the pinned scale, and a ≤5%
# refs/sec budget on the zero-contention machine_micro fast path.
run scripts/bench.sh --smoke

# Docs gate: rustdoc for the whole workspace must build warning-free —
# this catches broken intra-doc links and (via cool-core's
# #![warn(missing_docs)]) undocumented public API.
RUSTDOCFLAGS="-D warnings" run cargo doc --offline --workspace --no-deps -q

# Reproduction gate: sweep the pinned smoke matrix (2 apps × 2 versions ×
# {1,4} procs) through the parallel pool with a fresh memo cache, race it
# against the serial reference (records must be byte-identical; wall-clock
# logged), and drift-check the records against the committed golden within
# a 2% band. The rendered tables must match the committed ones exactly.
rm -rf target/repro-smoke target/repro-cache-ci
run cargo run --release --offline -q -p bench --bin repro -- \
    --smoke --race-serial --out target/repro-smoke \
    --check results/smoke/records.json --tolerance 0.02
run cmp results/smoke/tables.md target/repro-smoke/tables.md
run cmp results/smoke/tables.tsv target/repro-smoke/tables.tsv

# Topology gate: the N-level tree laws (steal order is a permutation,
# nearest-domain-first, 2-level trees byte-match the original scan), the
# partial-last-cluster and pinned-fingerprint regressions, the forged-deep
# memo-miss case, and the committed deep-topology sweep (3 apps × 5 steal
# disciplines × {1,8,32,64} processors on the 3-level 64-processor machine)
# re-swept uncached and drift-checked against results/deep within the same
# 2% band; rendered tables must match byte-for-byte.
run cargo test -q --offline -p cool-core --test topology_props
run cargo test -q --offline --test topology_tree
run cargo test -q --offline --test repro_determinism
rm -rf target/repro-deep
run cargo run --release --offline -q -p bench --bin repro -- \
    --deep --no-cache --out target/repro-deep \
    --check results/deep/records.json --tolerance 0.02
run cmp results/deep/tables.md target/repro-deep/tables.md
run cmp results/deep/tables.tsv target/repro-deep/tables.tsv

# Adaptive gate: the feedback-policy behavioural tests (rebalancer recovers
# a bad placement, inert adaptation is cycle-identical to the static
# parents, adapt=/rebal= fingerprint segments key their own memo slots, the
# committed table really contains the claimed dominance), then the adaptive
# ladder (3 apps × 5 versions × {1,8,32,64} on the deep machine) re-swept
# uncached and drift-checked against results/adaptive within the same 2%
# band; rendered tables must match byte-for-byte.
run cargo test -q --offline --test adaptive_policies
rm -rf target/repro-adaptive
run cargo run --release --offline -q -p bench --bin repro -- \
    --adaptive --no-cache --out target/repro-adaptive \
    --check results/adaptive/records.json --tolerance 0.02
run cmp results/adaptive/tables.md target/repro-adaptive/tables.md
run cmp results/adaptive/tables.tsv target/repro-adaptive/tables.tsv

echo "CI OK"
