//! The LocusRoute case study (Section 6.2 / Figures 8-11): route a synthetic
//! dense-wire circuit under the three scheduling versions the paper compares
//! and print the speedup and cache-miss comparison.
//!
//! ```text
//! cargo run --release --example locusroute [procs] [wires_per_region]
//! ```

use cool_repro::apps::{locusroute, Version};
use cool_repro::cool_sim::{MachineConfig, SimConfig};
use cool_repro::workloads::circuit::{Circuit, CircuitParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let procs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let wires: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);

    let circuit = Circuit::generate(CircuitParams {
        width: 256,
        height: 64,
        regions: 16,
        wires_per_region: wires,
        crossing_fraction: 0.1,
        multi_pin_fraction: 0.15,
        seed: 11,
    });
    println!(
        "circuit: {}x{} cells, {} regions, {} wires",
        circuit.width,
        circuit.height,
        circuit.regions,
        circuit.wires.len()
    );
    let params = locusroute::LocusParams {
        circuit,
        iterations: 3,
    };

    let serial = locusroute::run(
        SimConfig::new(MachineConfig::dash(1)),
        &params,
        Version::Base,
    )
    .run
    .elapsed;
    println!("serial baseline: {serial} cycles\n");

    println!("version\tspeedup({procs}p)\tmisses\tlocal%\tadherence%");
    for v in [Version::Base, Version::Affinity, Version::AffinityDistr] {
        let cfg = SimConfig::new(MachineConfig::dash(procs)).with_policy(v.policy());
        let rep = locusroute::run(cfg, &params, v);
        assert_eq!(rep.max_error, 0.0, "illegal routes produced");
        println!(
            "{}\t{:.2}\t{}\t{:.1}\t{:.1}",
            v.label(),
            rep.speedup(serial),
            rep.run.mem.misses(),
            rep.run.mem.local_fraction() * 100.0,
            rep.run.stats.adherence() * 100.0
        );
    }
    println!(
        "\nThe paper reports: affinity scheduling nearly halves the misses, \
         over 80% of wires route on their region's processor, and \
         distributing the CostArray converts remote misses to local ones."
    );
}
