//! The Panel Cholesky case study end to end (Section 6.3 / Figures 12-14):
//! analyse a sparse SPD matrix into panels, factor it under each scheduling
//! version on a simulated 16-processor DASH, verify the numerics, and print
//! the comparison the paper plots.
//!
//! ```text
//! cargo run --release --example panel_cholesky [grid_k] [panel_width]
//! ```

use cool_repro::apps::panel_cholesky::{PanelParams, PanelProblem};
use cool_repro::apps::{panel_cholesky, Version};
use cool_repro::cool_sim::{MachineConfig, SimConfig};
use cool_repro::workloads::matrices::grid_laplacian;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let width: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("matrix: {0}x{0} grid Laplacian (n = {1})", k, k * k);
    let prob = PanelProblem::analyse(&PanelParams {
        matrix: grid_laplacian(k),
        max_panel_width: width,
    });
    println!(
        "L: {} nonzeros ({} fill-in), {} panels, {} panel updates, {} initially ready",
        prob.sym.nnz(),
        prob.sym.fill_in(&prob.a),
        prob.panels.len(),
        prob.deps.total_updates(),
        prob.deps.initially_ready().len(),
    );

    let serial = panel_cholesky::run(
        SimConfig::new(MachineConfig::dash(1)),
        &prob,
        Version::Base,
    )
    .run
    .elapsed;
    println!("serial baseline: {serial} cycles\n");

    println!("version\tspeedup(16p)\tmisses\tlocal%\tadherence%\tmax_err");
    for v in Version::ALL {
        let cfg = SimConfig::new(MachineConfig::dash(16)).with_policy(v.policy());
        let rep = panel_cholesky::run(cfg, &prob, v);
        println!(
            "{}\t{:.2}\t{}\t{:.1}\t{:.1}\t{:.2e}",
            v.label(),
            rep.speedup(serial),
            rep.run.mem.misses(),
            rep.run.mem.local_fraction() * 100.0,
            rep.run.stats.adherence() * 100.0,
            rep.max_error
        );
        assert!(rep.max_error < 1e-8, "factorization diverged");
    }
    println!("\n(all versions verified against the sequential left-looking factorization)");
}
