//! Quickstart: the COOL programming model in one file.
//!
//! Builds a small simulated DASH machine, distributes an array of objects
//! across processor memories, and runs tasks with each kind of affinity
//! hint from Table 1 of the paper, printing where everything ran and what
//! the memory system saw.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use cool_repro::cool_core::{AffinitySpec, StealPolicy};
use cool_repro::cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};

fn main() {
    // An 8-processor DASH: two clusters of four, 64 KB / 256 KB caches.
    // Stealing is disabled here so the placement each hint produces is
    // plainly visible; in real runs idle processors steal for load balance
    // (see the case-study examples).
    let mut rt = SimRuntime::new(
        SimConfig::new(MachineConfig::dash(8)).with_policy(StealPolicy::disabled()),
    );

    // -- Object distribution (Section 4.1) --------------------------------
    // `new (p) T`: allocate each object in the local memory of processor p.
    let objects: Vec<_> = (0..8)
        .map(|p| rt.machine_mut().alloc_on_proc(p, 4096))
        .collect();
    for (i, &obj) in objects.iter().enumerate() {
        println!("object {i} homed on {}", rt.home_proc(obj));
    }

    // -- Affinity hints ----------------------------------------------------
    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let log2 = log.clone();
    let objs = objects.clone();
    rt.run_phase(move |ctx| {
        // Default / simple affinity: run where the object lives, back to
        // back with other tasks on the same object.
        for (i, &obj) in objs.iter().enumerate() {
            let log = log2.clone();
            ctx.spawn(
                Task::new(move |c| {
                    c.read(obj, 4096); // touch the whole object
                    c.compute(1000);
                    log.borrow_mut()
                        .push(format!("simple-affinity task {i} ran on {}", c.proc()));
                })
                .with_affinity(AffinitySpec::simple(obj)),
            );
        }
        // TASK affinity: these four tasks form one task-affinity set — the
        // runtime executes them back to back on one server for cache reuse.
        let token = objs[0];
        for i in 0..4 {
            let log = log2.clone();
            ctx.spawn(
                Task::new(move |c| {
                    c.compute(500);
                    log.borrow_mut()
                        .push(format!("task-affinity-set member {i} ran on {}", c.proc()));
                })
                .with_affinity(AffinitySpec::task(token)),
            );
        }
        // PROCESSOR affinity: explicit placement.
        for p in [2usize, 5] {
            let log = log2.clone();
            ctx.spawn(
                Task::new(move |c| {
                    c.compute(500);
                    log.borrow_mut()
                        .push(format!("processor-affinity task ran on {}", c.proc()));
                })
                .with_affinity(AffinitySpec::processor(p)),
            );
        }
    });

    for line in log.borrow().iter() {
        println!("{line}");
    }

    // -- What the machine saw ----------------------------------------------
    let rep = rt.report();
    println!("\nelapsed: {} cycles over {} processors", rep.elapsed, rep.nprocs);
    println!(
        "refs: {} (L1 {} / L2 {} / local {} / remote {})",
        rep.mem.refs, rep.mem.l1_hits, rep.mem.l2_hits, rep.mem.local_misses, rep.mem.remote_misses
    );
    println!(
        "adherence: {:.0}% of hinted tasks ran on their hinted server",
        rep.stats.adherence() * 100.0
    );
    assert!(rep.max_err_is_nan_free());
}

/// Tiny extension trait so the example ends with a visible check.
trait Check {
    fn max_err_is_nan_free(&self) -> bool;
}
impl Check for cool_repro::cool_sim::RunReport {
    fn max_err_is_nan_free(&self) -> bool {
        self.elapsed > 0 && self.stats.executed == self.stats.spawned
    }
}
