//! Visualise the scheduler through the observability layer: trace the
//! Gaussian-elimination-style schedule, print a small gantt chart showing
//! back-to-back task-affinity service, and summarise steal behaviour from
//! the same event stream the Perfetto exporter consumes.
//!
//! ```text
//! cargo run --release --example schedule_trace
//! cargo run --release --example schedule_trace -- /tmp/schedule
//! ```
//!
//! With a path argument the example also writes `<path>.trace.json` (open
//! it in Perfetto or `chrome://tracing`) and `<path>.metrics.json` (the
//! `cool-metrics-v1` summary).

use std::collections::HashMap;

use cool_repro::cool_core::obs::ObsEvent;
use cool_repro::cool_core::{AffinitySpec, TaskUid};
use cool_repro::cool_obs::{chrome_trace_json, MetricsSummary};
use cool_repro::cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};

fn main() {
    let nprocs = 4;
    let mut rt = SimRuntime::new(SimConfig::new(MachineConfig::dash(nprocs)).with_trace());

    // Eight task-affinity sets of four tasks each, spawned interleaved; the
    // affinity queues reassemble them into back-to-back bursts.
    let objs: Vec<_> = (0..8)
        .map(|i| rt.machine_mut().alloc_on_proc(i % nprocs, 8 * 1024))
        .collect();
    static LABELS: [&str; 8] = ["A", "B", "C", "D", "E", "F", "G", "H"];
    rt.run_phase(move |ctx| {
        for _round in 0..4 {
            for (i, &obj) in objs.iter().enumerate() {
                ctx.spawn(
                    Task::new(move |c| {
                        c.read(obj, 8 * 1024);
                        c.compute(2000);
                    })
                    .with_label(LABELS[i])
                    .with_affinity(AffinitySpec::task(obj).and_object(obj)),
                );
            }
        }
    });

    let trace = rt.take_obs();

    // Pair TaskBegin/TaskEnd into slices for the gantt chart.
    struct Slice {
        proc: usize,
        start: u64,
        end: u64,
        label: &'static str,
        on_target: bool,
    }
    let mut open: HashMap<TaskUid, (usize, u64, &'static str, bool)> = HashMap::new();
    let mut slices: Vec<Slice> = Vec::new();
    for ev in &trace.events {
        match ev {
            ObsEvent::TaskBegin {
                task,
                label,
                proc,
                on_target,
                time,
                ..
            } => {
                open.insert(*task, (proc.index(), *time, label.unwrap_or("?"), *on_target));
            }
            ObsEvent::TaskEnd { task, time, .. } => {
                if let Some((proc, start, label, on_target)) = open.remove(task) {
                    slices.push(Slice {
                        proc,
                        start,
                        end: *time,
                        label,
                        on_target,
                    });
                }
            }
            _ => {}
        }
    }

    let horizon = rt.elapsed();
    println!("schedule over {horizon} cycles on {nprocs} processors");
    println!("(letters are task-affinity sets; lowercase = ran off its hinted server)\n");
    const WIDTH: usize = 100;
    for p in 0..nprocs {
        let mut lane = vec!['.'; WIDTH];
        for e in slices.iter().filter(|e| e.proc == p) {
            let s = (e.start as usize * WIDTH / horizon as usize).min(WIDTH - 1);
            let t = (e.end as usize * WIDTH / horizon as usize).clamp(s + 1, WIDTH);
            let ch = e.label.chars().next().unwrap_or('?');
            let ch = if e.on_target {
                ch
            } else {
                ch.to_ascii_lowercase()
            };
            for c in lane.iter_mut().take(t).skip(s) {
                *c = ch;
            }
        }
        println!("P{p} |{}|", lane.iter().collect::<String>());
    }
    println!();

    let metrics = MetricsSummary::from_trace(&trace);
    println!(
        "tasks: {} executed, {} stolen ({} whole sets); affinity hit rate {:.0}%",
        metrics.tasks,
        metrics.tasks_stolen,
        metrics.sets_stolen,
        metrics.affinity_hit_rate() * 100.0
    );
    let total = metrics.total_mem();
    let misses = total.local_misses + total.remote_misses;
    println!(
        "memory: {} refs, {:.1}% miss rate ({} of {} task-affinity sets traced)",
        total.refs,
        if total.refs == 0 {
            0.0
        } else {
            misses as f64 / total.refs as f64 * 100.0
        },
        metrics.sets.keys().filter(|k| k.is_some()).count(),
        LABELS.len(),
    );

    if let Some(base) = std::env::args().nth(1) {
        let trace_path = format!("{base}.trace.json");
        let metrics_path = format!("{base}.metrics.json");
        std::fs::write(&trace_path, chrome_trace_json(&trace.events)).expect("write trace");
        std::fs::write(&metrics_path, metrics.to_json()).expect("write metrics");
        println!("\nwrote {trace_path} (Perfetto/chrome://tracing) and {metrics_path}");
    }
}
