//! Visualise the scheduler: trace the Gaussian-elimination schedule and
//! print a small gantt chart showing back-to-back task-affinity service and
//! where tasks migrated by stealing.
//!
//! ```text
//! cargo run --release --example schedule_trace
//! ```

use cool_repro::cool_core::AffinitySpec;
use cool_repro::cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};

fn main() {
    let nprocs = 4;
    let mut rt = SimRuntime::new(SimConfig::new(MachineConfig::dash(nprocs)));
    rt.enable_trace();

    // Eight task-affinity sets of four tasks each, spawned interleaved; the
    // affinity queues reassemble them into back-to-back bursts.
    let objs: Vec<_> = (0..8)
        .map(|i| rt.machine_mut().alloc_on_proc(i % nprocs, 8 * 1024))
        .collect();
    static LABELS: [&str; 8] = ["A", "B", "C", "D", "E", "F", "G", "H"];
    rt.run_phase(move |ctx| {
        for round in 0..4 {
            for (i, &obj) in objs.iter().enumerate() {
                let _ = round;
                ctx.spawn(
                    Task::new(move |c| {
                        c.read(obj, 8 * 1024);
                        c.compute(2000);
                    })
                    .with_label(LABELS[i])
                    .with_affinity(AffinitySpec::task(obj).and_object(obj)),
                );
            }
        }
    });

    let trace = rt.trace().to_vec();
    let horizon = rt.elapsed();
    println!("schedule over {horizon} cycles on {nprocs} processors");
    println!("(letters are task-affinity sets; lowercase = ran off its hinted server)\n");
    const WIDTH: usize = 100;
    for p in 0..nprocs {
        let mut lane = vec!['.'; WIDTH];
        for e in trace.iter().filter(|e| e.proc.index() == p) {
            let s = (e.start as usize * WIDTH / horizon as usize).min(WIDTH - 1);
            let t = (e.end as usize * WIDTH / horizon as usize).clamp(s + 1, WIDTH);
            let ch = e.label.chars().next().unwrap_or('?');
            let ch = if e.on_target {
                ch
            } else {
                ch.to_ascii_lowercase()
            };
            for c in lane.iter_mut().take(t).skip(s) {
                *c = ch;
            }
        }
        println!("P{p} |{}|", lane.iter().collect::<String>());
    }
    println!();
    let stats = rt.stats();
    println!(
        "tasks: {} executed, {} stolen ({} whole sets); adherence {:.0}%",
        stats.executed,
        stats.tasks_stolen,
        stats.sets_stolen,
        stats.adherence() * 100.0
    );
    let rep = rt.report();
    println!(
        "memory: {} refs, {:.1}% miss rate, {:.0}% of misses local",
        rep.mem.refs,
        rep.mem.miss_rate() * 100.0,
        rep.mem.local_fraction() * 100.0
    );
}
