//! The Ocean case study (Section 6.1 / Figures 5-7) plus the placement
//! ablation: run the PDE solver under the paper's explicit `distribute()`
//! and under the automatic placement policies its related-work section
//! discusses (first-touch, interleaving), and print the comparison.
//!
//! ```text
//! cargo run --release --example ocean [procs]
//! ```

use cool_repro::apps::ocean::{self, PlacementPolicy};
use cool_repro::apps::Version;
use cool_repro::cool_sim::{MachineConfig, SimConfig};
use cool_repro::workloads::ocean::OceanParams;

fn main() {
    let procs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let params = OceanParams {
        n: 128,
        num_grids: 12,
        regions: 32,
        sweeps: 3,
        seed: 3,
    };
    println!(
        "Ocean: {} grids of {}x{} doubles, {} regions, {} sweeps, {procs} processors\n",
        params.num_grids, params.n, params.n, params.regions, params.sweeps
    );

    let serial = ocean::run(
        SimConfig::new(MachineConfig::dash(1)),
        &params,
        Version::Base,
    )
    .run
    .elapsed;
    println!("serial baseline: {serial} cycles\n");
    println!("placement\tspeedup\tmisses\tlocal%");
    for (label, policy, version) in [
        ("central (none)", PlacementPolicy::Central, Version::Affinity),
        (
            "explicit distribute()",
            PlacementPolicy::Explicit,
            Version::AffinityDistr,
        ),
        ("first-touch", PlacementPolicy::FirstTouch, Version::Affinity),
        ("interleaved", PlacementPolicy::Interleaved, Version::Affinity),
    ] {
        let cfg = SimConfig::new(MachineConfig::dash(procs)).with_policy(version.policy());
        let rep = ocean::run_with_placement(cfg, &params, version, policy);
        assert!(rep.max_error < 1e-9, "results changed under {label}");
        println!(
            "{label}\t{:.2}\t{}\t{:.1}",
            rep.speedup(serial),
            rep.run.mem.misses(),
            rep.run.mem.local_fraction() * 100.0
        );
    }
    println!(
        "\nThe paper's Figure 5 distributes regions explicitly; the ablation shows\n\
         how far the automatic policies of its related-work section get without\n\
         programmer knowledge of the region-to-task mapping."
    );
}
