//! The Figure 3 Gaussian-elimination schedule on the *real threaded* runtime
//! (`cool-rt`): actual worker threads, the same affinity machinery, real
//! wall-clock time.
//!
//! Column-oriented unpivoted LU with per-column update chains:
//! `update(dest, src)` carries `[affinity(src, TASK); affinity(dest,
//! OBJECT)]`, columns are distributed round-robin, and the result is checked
//! against the sequential factorization.
//!
//! ```text
//! cargo run --release --example threaded_gauss [n] [threads]
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cool_repro::cool_rt::{AffinitySpec, ObjRef, ProcId, RtConfig, RtCtx, RtTask, Runtime};
use cool_repro::sparse::dense::{ge_column_complete, ge_factor};
use cool_repro::workloads::matrices::dense_dd;

use std::sync::Mutex;

struct GaussState {
    m: Mutex<cool_repro::sparse::DenseMatrix>,
    next_src: Vec<AtomicUsize>,
    completed: Vec<std::sync::atomic::AtomicBool>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(
        std::thread::available_parallelism().map(|v| v.get()).unwrap_or(4),
    );
    println!("factoring a {n}x{n} matrix on {threads} worker threads");

    let rt = Runtime::new(RtConfig::new(threads));
    // One logical object per column, distributed round-robin.
    let cols: Arc<Vec<ObjRef>> = Arc::new(
        (0..n)
            .map(|j| rt.placement().alloc_on(ProcId(j % threads)))
            .collect(),
    );
    let state = Arc::new(GaussState {
        m: Mutex::new(dense_dd(n, 1)),
        next_src: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        completed: (0..n)
            .map(|_| std::sync::atomic::AtomicBool::new(false))
            .collect(),
    });

    let t0 = std::time::Instant::now();
    {
        let state = state.clone();
        let cols = cols.clone();
        rt.scope(move |s| {
            complete_column(s, 0, &state, &cols, n);
        })
        .expect("a factorization task panicked");
    }
    let wall = t0.elapsed();

    // Verify.
    let mut reference = dense_dd(n, 1);
    ge_factor(&mut reference);
    let err = state.m.lock().unwrap().max_diff(&reference);
    let stats = rt.stats();
    println!(
        "done in {wall:?}; max |LU - reference| = {err:.2e}; \
         {} tasks executed, {} stolen, adherence {:.0}%",
        stats.executed,
        stats.tasks_stolen,
        stats.adherence() * 100.0
    );
    assert!(err < 1e-9, "factorization diverged");
}

/// Normalise column k, then release every column whose chain waits on k.
fn complete_column(
    ctx: &RtCtx<'_>,
    k: usize,
    state: &Arc<GaussState>,
    cols: &Arc<Vec<ObjRef>>,
    n: usize,
) {
    {
        let mut m = state.m.lock().unwrap();
        ge_column_complete(m.col_mut(k), k);
    }
    // SeqCst on the completed/next_src pair: the completer's scan and an
    // update chain's self-retrigger race on these two locations (store one,
    // load the other); Release/Acquire alone would allow both to miss each
    // other and stall the chain.
    state.completed[k].store(true, Ordering::SeqCst);
    for j in k + 1..n {
        try_spawn_update(ctx, j, state, cols, n);
    }
}

/// Updates to a column apply in source order (GE updates do not commute);
/// each destination has at most one update task in flight — the CAS on
/// `next_src` arbitrates between the completer and the previous update.
fn try_spawn_update(
    ctx: &RtCtx<'_>,
    j: usize,
    state: &Arc<GaussState>,
    cols: &Arc<Vec<ObjRef>>,
    n: usize,
) {
    let k = state.next_src[j].load(Ordering::SeqCst);
    if k >= j || !state.completed[k].load(Ordering::SeqCst) {
        return;
    }
    // Claim the in-flight slot: move next_src from k to a sentinel (k with
    // the high bit) so only one spawner wins.
    const CLAIM: usize = 1 << 63;
    if state.next_src[j]
        .compare_exchange(k, k | CLAIM, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return; // someone else claimed or advanced it
    }
    let state = state.clone();
    let cols2 = cols.clone();
    let src_obj = cols[k];
    let dst_obj = cols[j];
    ctx.spawn(
        RtTask::new(move |c| {
            {
                let mut m = state.m.lock().unwrap();
                let (dest, src) = m.col_pair_mut(j, k);
                let mult = dest[k];
                for i in k + 1..n {
                    dest[i] -= mult * src[i];
                }
            }
            state.next_src[j].store(k + 1, Ordering::SeqCst);
            if k + 1 == j {
                complete_column(c, j, &state, &cols2, n);
            } else {
                try_spawn_update(c, j, &state, &cols2, n);
            }
        })
        .with_affinity(AffinitySpec::task(src_obj).and_object(dst_obj)),
    );
}
