//! Panel Cholesky on the real threaded runtime: Figure 13's task structure
//! (`CompletePanel` / `UpdatePanel` with mutex + object affinity) executing
//! on actual worker threads, with per-panel reader-writer locks.
//!
//! ```text
//! cargo run --release --example threaded_cholesky [grid_k] [threads]
//! ```

use cool_repro::apps::threaded::panel_cholesky_rt;
use cool_repro::sparse::ordering::minimum_degree;
use cool_repro::workloads::matrices::grid_laplacian;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(
        std::thread::available_parallelism().map(|v| v.get()).unwrap_or(4),
    );

    let a = grid_laplacian(k);
    println!(
        "factoring the {0}x{0} grid Laplacian (n = {1}) on {2} worker threads",
        k,
        a.n(),
        threads
    );

    // Fill-reducing preprocessing, as any real sparse pipeline would do.
    let perm = minimum_degree(&a);
    let pa = a.permute_sym(&perm);

    for (label, threads) in [("1 thread ", 1usize), ("N threads", threads)] {
        let res = panel_cholesky_rt(&pa, 8, threads);
        println!(
            "{label}: {:>10.3?}  (max error {:.2e}; {} tasks, {} stolen, {} mutex blocks)",
            res.wall,
            res.max_error,
            res.stats.executed,
            res.stats.tasks_stolen,
            res.stats.mutex_blocks,
        );
        assert!(res.max_error < 1e-9, "factorization diverged");
    }
    println!("\nBoth runs verified against the sequential left-looking factorization.");
}
