//! Property-based tests for the workload generators: every generated input
//! is structurally valid for any parameter combination the apps might use.

use proptest::prelude::*;
use workloads::circuit::{Circuit, CircuitParams};
use workloads::matrices::{banded_spd, grid_laplacian, random_spd};
use workloads::nbody::plummer;
use workloads::ocean::{initial_grids, region_rows, OceanParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Circuits are in-bounds, complete, deterministic, and their nets are
    /// sorted pin chains covering every wire.
    #[test]
    fn circuits_are_well_formed(
        regions in 1usize..12,
        wpr in 1usize..40,
        crossing in 0.0f64..1.0,
        multi in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let params = CircuitParams {
            width: regions * 16,
            height: 16,
            regions,
            wires_per_region: wpr,
            crossing_fraction: crossing,
            multi_pin_fraction: multi,
            seed,
        };
        let c = Circuit::generate(params);
        prop_assert_eq!(c.wires.len(), regions * wpr);
        prop_assert_eq!(c.nets.len(), c.wires.len());
        for w in &c.wires {
            prop_assert!(w.from.0 < c.width && w.from.1 < c.height);
            prop_assert!(w.to.0 < c.width && w.to.1 < c.height);
            prop_assert!(c.region_of(w) < c.regions);
        }
        for n in &c.nets {
            prop_assert!(n.pins.len() >= 2);
            prop_assert!(n.pins.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(c.region_of_net(n) < c.regions);
            for &(x, y) in &n.pins {
                prop_assert!(x < c.width && y < c.height);
            }
        }
        let again = Circuit::generate(params);
        prop_assert_eq!(c.wires, again.wires);
    }

    /// SPD generators produce matrices that pass the structural check and
    /// have strictly positive diagonals dominating their columns.
    #[test]
    fn spd_generators_are_diagonally_dominant(
        n in 2usize..40,
        k in 1usize..6,
        seed in 0u64..500,
    ) {
        for a in [banded_spd(n, k, seed), random_spd(n, k, seed)] {
            a.check().unwrap();
            for j in 0..a.n() {
                let diag = a.get(j, j);
                prop_assert!(diag > 0.0);
                let off: f64 = (0..a.n())
                    .filter(|&i| i != j)
                    .map(|i| a.get(i, j).abs())
                    .sum();
                prop_assert!(diag > off, "column {j} not dominant: {diag} vs {off}");
            }
        }
    }

    /// Grid Laplacians have the exact 5-point stencil count.
    #[test]
    fn grid_laplacian_nnz(k in 1usize..12) {
        let a = grid_laplacian(k);
        // n diagonal + 2·k·(k-1) off-diagonal (lower triangle).
        prop_assert_eq!(a.nnz(), k * k + 2 * k * (k - 1));
    }

    /// Plummer: unit mass, centred, and deterministic per seed.
    #[test]
    fn plummer_invariants(n in 1usize..300, seed in 0u64..100) {
        let b = plummer(n, seed);
        prop_assert_eq!(b.len(), n);
        let m: f64 = b.iter().map(|x| x.mass).sum();
        prop_assert!((m - 1.0).abs() < 1e-9);
        for d in 0..3 {
            let com: f64 = b.iter().map(|x| x.mass * x.pos[d]).sum();
            prop_assert!(com.abs() < 1e-8);
        }
    }

    /// Ocean regions partition the rows exactly for any (n, regions) with
    /// regions ≤ n, and the grids match the requested geometry.
    #[test]
    fn ocean_regions_partition(n in 1usize..100, regions in 1usize..32) {
        prop_assume!(regions <= n);
        let mut covered = vec![0u8; n];
        for r in 0..regions {
            for row in region_rows(n, regions, r) {
                covered[row] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
        let p = OceanParams {
            n,
            num_grids: 3,
            regions,
            sweeps: 1,
            seed: 1,
        };
        let g = initial_grids(&p);
        prop_assert_eq!(g.len(), 3);
        prop_assert!(g.iter().all(|grid| grid.len() == n * n));
        prop_assert!(g.iter().flatten().all(|v| v.is_finite()));
    }
}
