//! # workloads — deterministic SPLASH-style input generators
//!
//! The paper evaluates COOL on SPLASH applications with their standard
//! inputs (and, for LocusRoute, a synthetically constructed circuit: "we
//! demonstrate our technique using a synthetically constructed input
//! consisting of a dense network of wires within regions of the circuit").
//! The original inputs are not distributable, so this crate generates
//! equivalent synthetic inputs, all seeded for reproducibility:
//!
//! * [`matrices`] — sparse SPD model problems (2-D grid Laplacians, banded
//!   and random-pattern SPD matrices) for the Cholesky studies.
//! * [`circuit`] — synthetic standard-cell circuits for LocusRoute: a cost
//!   grid plus wires clustered in geographic regions, exactly the structure
//!   the paper's synthetic input had.
//! * [`ocean`] — grid-state initialisation for the Ocean PDE solver.
//! * [`nbody`] — Plummer-model particle distributions for Barnes-Hut (the
//!   standard SPLASH initialisation).

pub mod circuit;
pub mod matrices;
pub mod nbody;
pub mod ocean;

pub use circuit::{Circuit, Wire};
pub use nbody::Body;
