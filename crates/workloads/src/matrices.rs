//! Sparse SPD model problems for the Cholesky case studies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparse::CscMatrix;

/// The 5-point 2-D grid Laplacian on a `k × k` grid (natural ordering),
/// shifted to be strictly positive definite. This is the classic sparse
/// Cholesky model problem: it produces substantial fill and a deep
/// elimination tree, like the matrices used in the paper.
pub fn grid_laplacian(k: usize) -> CscMatrix {
    assert!(k >= 1);
    let n = k * k;
    let idx = |r: usize, c: usize| r * k + c;
    let mut t = Vec::with_capacity(3 * n);
    for r in 0..k {
        for c in 0..k {
            t.push((idx(r, c), idx(r, c), 4.0 + 0.5));
            if r + 1 < k {
                t.push((idx(r + 1, c), idx(r, c), -1.0));
            }
            if c + 1 < k {
                t.push((idx(r, c + 1), idx(r, c), -1.0));
            }
        }
    }
    CscMatrix::from_triplets(n, &t)
}

/// A banded SPD matrix with the given half-bandwidth — produces wide
/// supernodes/panels, the favourable case for panel-level parallelism.
pub fn banded_spd(n: usize, half_bandwidth: usize, seed: u64) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = Vec::new();
    let mut degree = vec![0.0f64; n];
    for j in 0..n {
        for i in j + 1..(j + 1 + half_bandwidth).min(n) {
            let v: f64 = -rng.gen_range(0.2..1.0);
            t.push((i, j, v));
            degree[i] += v.abs();
            degree[j] += v.abs();
        }
    }
    for (i, d) in degree.iter().enumerate() {
        t.push((i, i, d + 1.0));
    }
    CscMatrix::from_triplets(n, &t)
}

/// A random-pattern SPD matrix: `edges_per_node` random symmetric off-
/// diagonals per column plus a diagonally-dominant diagonal. Irregular
/// structure exercises the schedulers' load balancing.
pub fn random_spd(n: usize, edges_per_node: usize, seed: u64) -> CscMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut t = Vec::new();
    let mut degree = vec![0.0f64; n];
    for j in 0..n {
        for _ in 0..edges_per_node {
            let i = rng.gen_range(0..n);
            if i == j {
                continue;
            }
            let (a, b) = (i.max(j), i.min(j));
            if !seen.insert((a, b)) {
                continue;
            }
            let v: f64 = -rng.gen_range(0.2..1.0);
            t.push((a, b, v));
            degree[a] += v.abs();
            degree[b] += v.abs();
        }
    }
    for (i, d) in degree.iter().enumerate() {
        t.push((i, i, d + 1.0));
    }
    CscMatrix::from_triplets(n, &t)
}

/// A dense SPD matrix (as a dense column-major matrix) for the blocked
/// Cholesky and Gaussian-elimination studies: `Aᵢⱼ = n·[i=j] + 1/(1+|i−j|)`.
pub fn dense_spd(n: usize) -> sparse::DenseMatrix {
    sparse::DenseMatrix::from_fn(n, n, |i, j| {
        let base = 1.0 / (1.0 + (i as f64 - j as f64).abs());
        if i == j {
            base + n as f64
        } else {
            base
        }
    })
}

/// A random diagonally-dominant (hence nonsingular, no pivoting needed)
/// dense matrix for Gaussian elimination.
pub fn dense_dd(n: usize, seed: u64) -> sparse::DenseMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = sparse::DenseMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| m.get(i, j).abs()).sum();
        m.set(i, i, row_sum + 1.0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::dense::dense_cholesky;

    #[test]
    fn grid_laplacian_is_spd() {
        let a = grid_laplacian(5);
        a.check().unwrap();
        // SPD ⇔ dense Cholesky succeeds.
        let _ = dense_cholesky(&a.to_dense());
        assert_eq!(a.n(), 25);
    }

    #[test]
    fn banded_matrix_is_spd_and_banded() {
        let a = banded_spd(30, 3, 7);
        a.check().unwrap();
        let _ = dense_cholesky(&a.to_dense());
        for j in 0..a.n() {
            for &i in a.col_rows(j) {
                assert!(i - j <= 3, "entry ({i},{j}) outside band");
            }
        }
    }

    #[test]
    fn random_spd_is_spd_and_deterministic() {
        let a = random_spd(24, 3, 42);
        let b = random_spd(24, 3, 42);
        assert_eq!(a, b, "same seed, same matrix");
        let c = random_spd(24, 3, 43);
        assert_ne!(a, c, "different seed should change the matrix");
        let _ = dense_cholesky(&a.to_dense());
    }

    #[test]
    fn dense_generators_are_factorable() {
        let a = dense_spd(12);
        let _ = dense_cholesky(&a);
        let mut lu = dense_dd(12, 3);
        sparse::dense::ge_factor(&mut lu);
        for j in 0..12 {
            assert!(lu.get(j, j).abs() > 1e-9, "pivot {j} vanished");
        }
    }
}
