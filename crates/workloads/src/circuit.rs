//! Synthetic standard-cell circuits for the LocusRoute case study.
//!
//! The paper (Section 6.2): "Since we had only small input circuits
//! available to us, we demonstrate our technique using a synthetically
//! constructed input consisting of a dense network of wires within regions
//! of the circuit." We generate exactly that: a `width × height` grid of
//! routing cells, divided into `regions` vertical strips, and wires whose
//! pin pairs mostly fall inside a single strip (with a configurable fraction
//! of strip-crossing wires).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A two-pin wire to be routed between routing cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wire {
    /// First pin (x, y) in routing-cell coordinates.
    pub from: (usize, usize),
    /// Second pin.
    pub to: (usize, usize),
}

impl Wire {
    /// Geometric midpoint (used by the `Region()` affinity function of
    /// Figure 9).
    pub fn midpoint(&self) -> (usize, usize) {
        (
            (self.from.0 + self.to.0) / 2,
            (self.from.1 + self.to.1) / 2,
        )
    }

    /// Half-perimeter wirelength (lower bound on route length).
    pub fn hpwl(&self) -> usize {
        self.from.0.abs_diff(self.to.0) + self.from.1.abs_diff(self.to.1)
    }
}

/// A multi-pin net: the paper's wire object "contains the list of pin
/// locations to be joined". Routed as a chain of two-pin segments between
/// x-sorted consecutive pins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    /// Pin locations (2 or more), sorted by x at generation.
    pub pins: Vec<(usize, usize)>,
}

impl Net {
    /// A two-pin net.
    pub fn two_pin(from: (usize, usize), to: (usize, usize)) -> Self {
        let mut pins = vec![from, to];
        pins.sort_unstable();
        Net { pins }
    }

    /// Midpoint of the bounding box (the `Region()` anchor).
    pub fn midpoint(&self) -> (usize, usize) {
        let (mut x0, mut y0, mut x1, mut y1) = (usize::MAX, usize::MAX, 0, 0);
        for &(x, y) in &self.pins {
            x0 = x0.min(x);
            y0 = y0.min(y);
            x1 = x1.max(x);
            y1 = y1.max(y);
        }
        ((x0 + x1) / 2, (y0 + y1) / 2)
    }

    /// The two-pin segments a chain router joins.
    pub fn segments(&self) -> impl Iterator<Item = Wire> + '_ {
        self.pins.windows(2).map(|w| Wire {
            from: w[0],
            to: w[1],
        })
    }
}

/// A synthetic circuit: cost-array geometry plus the wire list.
#[derive(Clone, Debug)]
pub struct Circuit {
    /// Routing-cell grid width (x dimension).
    pub width: usize,
    /// Routing-cell grid height (y dimension).
    pub height: usize,
    /// Number of geographic regions (vertical strips of the cost array).
    pub regions: usize,
    /// Wires to route.
    pub wires: Vec<Wire>,
    /// Multi-pin nets (includes every wire as a 2-pin net, plus extra pins
    /// on a fraction of them).
    pub nets: Vec<Net>,
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct CircuitParams {
    pub width: usize,
    pub height: usize,
    pub regions: usize,
    /// Wires per region.
    pub wires_per_region: usize,
    /// Fraction (0..=1) of wires whose second pin lands in a neighbouring
    /// region, producing cross-region communication.
    pub crossing_fraction: f64,
    /// Fraction (0..=1) of nets that get a third pin (multi-pin nets, as in
    /// real standard-cell netlists).
    pub multi_pin_fraction: f64,
    pub seed: u64,
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams {
            width: 256,
            height: 64,
            regions: 8,
            wires_per_region: 64,
            crossing_fraction: 0.1,
            multi_pin_fraction: 0.15,
            seed: 1,
        }
    }
}

impl Circuit {
    /// Generate a synthetic circuit.
    pub fn generate(p: CircuitParams) -> Self {
        assert!(p.regions >= 1 && p.width >= p.regions && p.height >= 2);
        assert!((0.0..=1.0).contains(&p.crossing_fraction));
        let mut rng = SmallRng::seed_from_u64(p.seed);
        let strip = p.width / p.regions;
        let mut wires = Vec::with_capacity(p.regions * p.wires_per_region);
        let mut nets = Vec::with_capacity(p.regions * p.wires_per_region);
        for r in 0..p.regions {
            let x0 = r * strip;
            let x1 = if r + 1 == p.regions {
                p.width
            } else {
                (r + 1) * strip
            };
            for _ in 0..p.wires_per_region {
                let from = (rng.gen_range(x0..x1), rng.gen_range(0..p.height));
                let crossing = rng.gen_bool(p.crossing_fraction) && p.regions > 1;
                let to = if crossing {
                    // Pin in a neighbouring strip.
                    let rn = if r + 1 < p.regions { r + 1 } else { r - 1 };
                    let nx0 = rn * strip;
                    let nx1 = if rn + 1 == p.regions {
                        p.width
                    } else {
                        (rn + 1) * strip
                    };
                    (rng.gen_range(nx0..nx1), rng.gen_range(0..p.height))
                } else {
                    (rng.gen_range(x0..x1), rng.gen_range(0..p.height))
                };
                wires.push(Wire { from, to });
                let mut net = Net::two_pin(from, to);
                if rng.gen_bool(p.multi_pin_fraction) {
                    // Third pin within the same strip: short nets, as in the
                    // paper's synthetic circuit.
                    net.pins
                        .push((rng.gen_range(x0..x1), rng.gen_range(0..p.height)));
                    net.pins.sort_unstable();
                }
                nets.push(net);
            }
        }
        Circuit {
            width: p.width,
            height: p.height,
            regions: p.regions,
            wires,
            nets,
        }
    }

    /// The `Region(wire)` function of Figure 9: which vertical strip of the
    /// cost array the wire's midpoint falls in.
    pub fn region_of(&self, w: &Wire) -> usize {
        let strip = self.width / self.regions;
        (w.midpoint().0 / strip).min(self.regions - 1)
    }

    /// `Region()` for a multi-pin net (bounding-box midpoint).
    pub fn region_of_net(&self, n: &Net) -> usize {
        let strip = self.width / self.regions;
        (n.midpoint().0 / strip).min(self.regions - 1)
    }

    /// Number of routing cells.
    pub fn cells(&self) -> usize {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = CircuitParams::default();
        let a = Circuit::generate(p);
        let b = Circuit::generate(p);
        assert_eq!(a.wires, b.wires);
    }

    #[test]
    fn wires_stay_in_bounds() {
        let c = Circuit::generate(CircuitParams {
            width: 64,
            height: 16,
            regions: 4,
            wires_per_region: 32,
            crossing_fraction: 0.3,
            multi_pin_fraction: 0.2,
            seed: 9,
        });
        for w in &c.wires {
            assert!(w.from.0 < c.width && w.from.1 < c.height);
            assert!(w.to.0 < c.width && w.to.1 < c.height);
        }
        assert_eq!(c.wires.len(), 4 * 32);
    }

    #[test]
    fn most_wires_are_local_to_their_region() {
        let c = Circuit::generate(CircuitParams {
            crossing_fraction: 0.1,
            ..Default::default()
        });
        let strip = c.width / c.regions;
        let local = c
            .wires
            .iter()
            .filter(|w| w.from.0 / strip == w.to.0 / strip)
            .count();
        assert!(
            local as f64 / c.wires.len() as f64 > 0.8,
            "only {local}/{} wires local",
            c.wires.len()
        );
    }

    #[test]
    fn region_of_matches_midpoint_strip() {
        let c = Circuit::generate(CircuitParams::default());
        let strip = c.width / c.regions;
        for w in &c.wires {
            let r = c.region_of(w);
            assert!(r < c.regions);
            assert_eq!(r, (w.midpoint().0 / strip).min(c.regions - 1));
        }
    }

    #[test]
    fn nets_cover_wires_and_multi_pin_fraction() {
        let c = Circuit::generate(CircuitParams {
            multi_pin_fraction: 0.5,
            ..Default::default()
        });
        assert_eq!(c.nets.len(), c.wires.len());
        let multi = c.nets.iter().filter(|n| n.pins.len() > 2).count();
        let frac = multi as f64 / c.nets.len() as f64;
        assert!((0.3..0.7).contains(&frac), "multi-pin fraction {frac}");
        for n in &c.nets {
            assert!(n.pins.len() >= 2);
            assert!(n.pins.windows(2).all(|w| w[0] <= w[1]), "pins sorted");
            assert_eq!(n.segments().count(), n.pins.len() - 1);
        }
    }

    #[test]
    fn net_midpoint_is_bounding_box_centre() {
        let n = Net {
            pins: vec![(0, 0), (4, 8), (10, 2)],
        };
        assert_eq!(n.midpoint(), (5, 4));
    }

    #[test]
    fn hpwl_and_midpoint() {
        let w = Wire {
            from: (2, 3),
            to: (6, 1),
        };
        assert_eq!(w.hpwl(), 4 + 2);
        assert_eq!(w.midpoint(), (4, 2));
    }
}
