//! Plummer-model particle generation for the Barnes-Hut case study — the
//! standard initialisation used by SPLASH's Barnes-Hut code.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A point mass in 3-D.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Body {
    pub pos: [f64; 3],
    pub vel: [f64; 3],
    pub mass: f64,
}

/// Generate `n` bodies from the Plummer density profile (Aarseth, Hénon &
/// Wielen's rejection-free sampling, as in SPLASH), seeded for determinism.
/// Velocities use the standard isotropic rejection sampling.
pub fn plummer(n: usize, seed: u64) -> Vec<Body> {
    assert!(n > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mass = 1.0 / n as f64;
    let mut bodies = Vec::with_capacity(n);
    for _ in 0..n {
        // Radius from the inverse CDF of the Plummer profile, with the
        // customary cutoff at r = 22.8 * scale to avoid outliers.
        let r = loop {
            let x: f64 = rng.gen_range(1e-10..1.0);
            let r = (x.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
            if r < 22.8 {
                break r;
            }
        };
        let pos = sphere_point(&mut rng, r);
        // Speed via von Neumann rejection on q²(1-q²)^3.5.
        let q = loop {
            let q: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..0.1);
            if y < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        let speed = q * std::f64::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
        let vel = sphere_point(&mut rng, speed);
        bodies.push(Body { pos, vel, mass });
    }
    center_of_mass_frame(&mut bodies);
    bodies
}

/// A uniformly-random point on the sphere of radius `r`.
fn sphere_point(rng: &mut SmallRng, r: f64) -> [f64; 3] {
    loop {
        let v = [
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        ];
        let s: f64 = v.iter().map(|x| x * x).sum();
        if s > 1e-12 && s <= 1.0 {
            let k = r / s.sqrt();
            return [v[0] * k, v[1] * k, v[2] * k];
        }
    }
}

/// Shift to the centre-of-mass frame (zero net momentum and centroid).
fn center_of_mass_frame(bodies: &mut [Body]) {
    let total: f64 = bodies.iter().map(|b| b.mass).sum();
    let mut cp = [0.0; 3];
    let mut cv = [0.0; 3];
    for b in bodies.iter() {
        for d in 0..3 {
            cp[d] += b.mass * b.pos[d];
            cv[d] += b.mass * b.vel[d];
        }
    }
    for d in 0..3 {
        cp[d] /= total;
        cv[d] /= total;
    }
    for b in bodies.iter_mut() {
        for d in 0..3 {
            b.pos[d] -= cp[d];
            b.vel[d] -= cv[d];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        assert_eq!(plummer(100, 5), plummer(100, 5));
        assert_ne!(plummer(100, 5), plummer(100, 6));
    }

    #[test]
    fn total_mass_is_one_and_com_centred() {
        let bodies = plummer(500, 1);
        let m: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((m - 1.0).abs() < 1e-12);
        for d in 0..3 {
            let com: f64 = bodies.iter().map(|b| b.mass * b.pos[d]).sum();
            let mom: f64 = bodies.iter().map(|b| b.mass * b.vel[d]).sum();
            assert!(com.abs() < 1e-9, "COM[{d}] = {com}");
            assert!(mom.abs() < 1e-9, "momentum[{d}] = {mom}");
        }
    }

    #[test]
    fn radii_respect_cutoff() {
        let bodies = plummer(300, 2);
        for b in &bodies {
            let r: f64 = b.pos.iter().map(|x| x * x).sum::<f64>().sqrt();
            // Cutoff 22.8 plus a little slack for the COM shift.
            assert!(r < 25.0, "body at radius {r}");
        }
    }

    #[test]
    fn distribution_is_centrally_concentrated() {
        // Plummer: half-mass radius ≈ 1.3 scale radii; most bodies well
        // inside the cutoff.
        let bodies = plummer(1000, 3);
        let inner = bodies
            .iter()
            .filter(|b| b.pos.iter().map(|x| x * x).sum::<f64>().sqrt() < 2.0)
            .count();
        assert!(inner > 500, "only {inner}/1000 bodies within r=2");
    }
}
