//! Grid-state initialisation for the Ocean case study.
//!
//! Ocean's main data structures are "twenty-five double precision floating
//! point grids", each a 2-D array of a state variable. We initialise the
//! grids with smooth, seeded pseudo-random fields so the stencil updates do
//! real arithmetic with verifiable results.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ocean problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct OceanParams {
    /// Grid edge length (grids are `n × n`).
    pub n: usize,
    /// Number of state grids (25 in SPLASH Ocean).
    pub num_grids: usize,
    /// Number of regions each grid is partitioned into (the paper
    /// partitions each grid into a single array of regions — contiguous
    /// row blocks).
    pub regions: usize,
    /// Relaxation sweeps per phase.
    pub sweeps: usize,
    pub seed: u64,
}

impl Default for OceanParams {
    fn default() -> Self {
        OceanParams {
            n: 64,
            num_grids: 25,
            regions: 16,
            sweeps: 4,
            seed: 1,
        }
    }
}

/// Initial grid values: `num_grids` grids of `n × n` values, row-major.
pub fn initial_grids(p: &OceanParams) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(p.seed);
    (0..p.num_grids)
        .map(|g| {
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let amp: f64 = rng.gen_range(0.5..2.0);
            (0..p.n * p.n)
                .map(|i| {
                    let (r, c) = (i / p.n, i % p.n);
                    amp * ((r as f64 * 0.3 + phase).sin() + (c as f64 * 0.2 + g as f64).cos())
                })
                .collect()
        })
        .collect()
}

/// Row range of region `r` when an `n × n` grid is split into `regions`
/// contiguous row blocks (the last block absorbs the remainder).
pub fn region_rows(n: usize, regions: usize, r: usize) -> std::ops::Range<usize> {
    assert!(r < regions);
    let per = n / regions;
    let start = r * per;
    let end = if r + 1 == regions { n } else { start + per };
    start..end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_deterministic_and_sized() {
        let p = OceanParams {
            n: 16,
            num_grids: 5,
            ..Default::default()
        };
        let a = initial_grids(&p);
        let b = initial_grids(&p);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|g| g.len() == 256));
    }

    #[test]
    fn regions_partition_all_rows() {
        let (n, regions) = (19, 4);
        let mut covered = vec![false; n];
        for r in 0..regions {
            for row in region_rows(n, regions, r) {
                assert!(!covered[row], "row {row} covered twice");
                covered[row] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn last_region_absorbs_remainder() {
        assert_eq!(region_rows(10, 4, 3), 6..10);
        assert_eq!(region_rows(10, 4, 0), 0..2);
    }
}
