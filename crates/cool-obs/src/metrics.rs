//! The `cool-metrics-v1` summary: a deterministic, byte-stable digest of an
//! observability stream.
//!
//! The summary condenses a trace into the quantities the paper's analysis
//! turns on: how often steals succeed and how much they move (batch-size
//! distribution), how well affinity hints are honoured (hit rate), how deep
//! queues run (power-of-two histogram of dispatch-time samples), and —
//! centrally — the per-task-affinity-set cache / local / remote breakdown.
//! Set attribution pairs each `TaskBegin`'s queue token with its `TaskEnd`'s
//! [`MemDelta`]; because the simulator only moves those counters inside task
//! bodies, the per-set rows sum *exactly* to the end-of-run PerfMonitor
//! aggregates (asserted by `validate_metrics_json` and the CI golden gate).
//!
//! Rendering is hand-rolled with a fixed key order (no JSON dependency, no
//! floats beyond fixed-precision rates), so equal traces produce equal
//! bytes — good enough to diff against a committed golden file.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use cool_core::events::TaskUid;
use cool_core::obs::{MemDelta, ObsEvent, ObsTrace};
use cool_core::ObjRef;

/// Schema tag carried by every summary document.
pub const METRICS_SCHEMA: &str = "cool-metrics-v1";

/// Per-task-affinity-set aggregation row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SetRow {
    /// Tasks attributed to the set.
    pub tasks: u64,
    /// Summed PerfMonitor deltas of those tasks.
    pub mem: MemDelta,
}

/// One memory-system contention row: the aggregate occupancy statistics of
/// a resource class (cluster buses, interconnect links, directory
/// controllers or memory modules) from the simulator's discrete-event
/// engine. Contention does not flow through the event trace — the producer
/// (the apps driver) fills these rows from the run report; they are all
/// zeros (or absent) for zero-contention and threaded runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentionRow {
    /// Resource-class name (`bus`, `net`, `dir`, `mem`).
    pub resource: &'static str,
    /// Transactions serviced.
    pub requests: u64,
    /// Total cycles transactions spent queued.
    pub wait_cycles: u64,
    /// Total cycles the resources spent servicing transactions.
    pub busy_cycles: u64,
    /// Largest simultaneous queue-plus-service occupancy observed.
    pub peak_occupancy: u64,
}

/// Machine-topology block: present only for runs on deeper-than-2-level
/// machine trees, where "which level did each steal cross?" becomes the
/// interesting question. Absent (and therefore byte-invisible — the classic
/// goldens do not change) for flat and single-cluster-level machines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopologyBlock {
    /// Processors spanned by a domain of each tree level, innermost first.
    pub levels: Vec<usize>,
    /// Index of the level whose domains own a memory module.
    pub mem_level: usize,
    /// Successful steals bucketed by the thief↔victim common-ancestor
    /// level: index 0 = innermost domain, last index = whole machine.
    pub steals_by_level: Vec<u64>,
}

/// Adaptive-policy block: present only for runs with the feedback layer or
/// the phase-boundary rebalancer switched on. Absent (and therefore
/// byte-invisible — static goldens do not change) for every static
/// configuration. The counter fields are producer-filled from the run
/// report's scheduling statistics; `rebalances` is digested from the trace's
/// `Rebalance` events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveBlock {
    /// Feedback windows that widened a server's steal ceiling.
    pub widenings: u64,
    /// `migrate` requests suppressed by the migration throttle.
    pub throttled_migrations: u64,
    /// Pages re-homed by the phase-boundary rebalancer.
    pub rebalanced_pages: u64,
    /// `Rebalance` trace events (one per page move with tracing on).
    pub rebalances: u64,
}

/// The digested metrics of one run.
#[derive(Clone, Debug, Default)]
pub struct MetricsSummary {
    /// Completed tasks (`TaskEnd` events).
    pub tasks: u64,
    /// Tasks that carried an affinity hint.
    pub hinted: u64,
    /// Hinted tasks that ran on the server their hint resolved to.
    pub on_target: u64,
    /// Successful steals.
    pub steal_successes: u64,
    /// Failed steal scans.
    pub steal_failures: u64,
    /// Successful steals that moved a whole task-affinity set.
    pub sets_stolen: u64,
    /// Total tasks moved by steals.
    pub tasks_stolen: u64,
    /// Steal batch-size distribution.
    pub batch_sizes: BTreeMap<usize, u64>,
    /// Queue-depth histogram: bucket upper bound (0, 1, 2, 4, 8, …) →
    /// sample count.
    pub queue_depth: BTreeMap<u64, u64>,
    /// Tasks set aside on a held mutex.
    pub mutex_waits: u64,
    /// Object migrations.
    pub migrations: u64,
    /// Affinity slots that became linked.
    pub slot_links: u64,
    /// Affinity slots drained by local service.
    pub slot_drains: u64,
    /// Per-set attribution; the `None` row collects unhinted tasks.
    pub sets: BTreeMap<Option<ObjRef>, SetRow>,
    /// Service layer: requests admitted into an intake queue.
    pub req_admitted: u64,
    /// Service layer: requests shed by admission control.
    pub req_shed: u64,
    /// Service layer: retry attempts scheduled after failed attempts.
    pub req_retries: u64,
    /// Service layer: requests that reached a successful terminal state.
    pub req_completed: u64,
    /// Service layer: requests that failed permanently or timed out.
    pub req_failed: u64,
    /// Memory-system contention rows (one per resource class), filled by
    /// the producer from the simulator's run report.
    pub contention: Vec<ContentionRow>,
    /// Topology block for deep-tree runs (producer-filled; `None` keeps the
    /// document byte-identical to the pre-topology schema).
    pub topology: Option<TopologyBlock>,
    /// `Rebalance` events observed in the trace (folded into the adaptive
    /// block when the producer fills one).
    pub rebalances: u64,
    /// Adaptive-policy block for feedback/rebalancer runs (producer-filled;
    /// `None` keeps the document byte-identical to the static schema).
    pub adaptive: Option<AdaptiveBlock>,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

/// Power-of-two bucket upper bound for a queue-depth sample.
fn depth_bucket(depth: usize) -> u64 {
    let d = depth as u64;
    if d <= 2 {
        d
    } else {
        d.next_power_of_two()
    }
}

impl MetricsSummary {
    /// Digest a drained trace.
    pub fn from_trace(trace: &ObsTrace) -> Self {
        let mut m = MetricsSummary {
            dropped: trace.dropped,
            ..MetricsSummary::default()
        };
        // Queue token each live task was begun under, for end-time pairing.
        let mut begun: HashMap<TaskUid, Option<ObjRef>> = HashMap::new();
        for ev in &trace.events {
            match ev {
                ObsEvent::TaskBegin {
                    task, set, hinted, on_target, ..
                } => {
                    if *hinted {
                        m.hinted += 1;
                        if *on_target {
                            m.on_target += 1;
                        }
                    }
                    begun.insert(*task, *set);
                }
                ObsEvent::TaskEnd { task, mem, .. } => {
                    m.tasks += 1;
                    let set = begun.remove(task).flatten();
                    let row = m.sets.entry(set).or_default();
                    row.tasks += 1;
                    if let Some(delta) = mem {
                        row.mem.accumulate(delta);
                    }
                }
                ObsEvent::StealSuccess { token, ntasks, .. } => {
                    m.steal_successes += 1;
                    if token.is_some() {
                        m.sets_stolen += 1;
                    }
                    m.tasks_stolen += *ntasks as u64;
                    *m.batch_sizes.entry(*ntasks).or_default() += 1;
                }
                ObsEvent::StealFail { .. } => m.steal_failures += 1,
                ObsEvent::SlotLink { .. } => m.slot_links += 1,
                ObsEvent::SlotDrain { .. } => m.slot_drains += 1,
                ObsEvent::MutexWait { .. } => m.mutex_waits += 1,
                ObsEvent::Migrate { .. } => m.migrations += 1,
                ObsEvent::Rebalance { .. } => m.rebalances += 1,
                ObsEvent::QueueDepth { depth, .. } => {
                    *m.queue_depth.entry(depth_bucket(*depth)).or_default() += 1;
                }
                ObsEvent::RequestAdmit { .. } => m.req_admitted += 1,
                ObsEvent::RequestShed { .. } => m.req_shed += 1,
                ObsEvent::RequestRetry { .. } => m.req_retries += 1,
                ObsEvent::RequestDone { ok, .. } => {
                    if *ok {
                        m.req_completed += 1;
                    } else {
                        m.req_failed += 1;
                    }
                }
            }
        }
        m
    }

    /// Sum of all per-set memory rows (equals the PerfMonitor aggregates on
    /// the simulator backend).
    pub fn total_mem(&self) -> MemDelta {
        let mut total = MemDelta::default();
        for row in self.sets.values() {
            total.accumulate(&row.mem);
        }
        total
    }

    /// Fraction of hinted tasks that ran on their hint's server.
    pub fn affinity_hit_rate(&self) -> f64 {
        if self.hinted == 0 {
            0.0
        } else {
            self.on_target as f64 / self.hinted as f64
        }
    }

    /// Fraction of steal scans that found work.
    pub fn steal_success_rate(&self) -> f64 {
        let attempts = self.steal_successes + self.steal_failures;
        if attempts == 0 {
            0.0
        } else {
            self.steal_successes as f64 / attempts as f64
        }
    }

    /// Render the byte-stable `cool-metrics-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{METRICS_SCHEMA}\",");
        let _ = writeln!(s, "  \"tasks\": {},", self.tasks);
        let _ = writeln!(
            s,
            "  \"affinity\": {{\"hinted\": {}, \"on_target\": {}, \"hit_rate\": {:.4}}},",
            self.hinted,
            self.on_target,
            self.affinity_hit_rate()
        );
        let _ = writeln!(
            s,
            "  \"steals\": {{\"attempts\": {}, \"successes\": {}, \"failures\": {}, \
             \"success_rate\": {:.4}, \"sets_stolen\": {}, \"tasks_stolen\": {}}},",
            self.steal_successes + self.steal_failures,
            self.steal_successes,
            self.steal_failures,
            self.steal_success_rate(),
            self.sets_stolen,
            self.tasks_stolen
        );
        let batches: Vec<String> = self
            .batch_sizes
            .iter()
            .map(|(size, count)| format!("{{\"size\": {size}, \"count\": {count}}}"))
            .collect();
        let _ = writeln!(s, "  \"batch_sizes\": [{}],", batches.join(", "));
        let depths: Vec<String> = self
            .queue_depth
            .iter()
            .map(|(le, count)| format!("{{\"le\": {le}, \"count\": {count}}}"))
            .collect();
        let _ = writeln!(s, "  \"queue_depth\": [{}],", depths.join(", "));
        let _ = writeln!(s, "  \"mutex_waits\": {},", self.mutex_waits);
        let _ = writeln!(s, "  \"migrations\": {},", self.migrations);
        let _ = writeln!(s, "  \"slot_links\": {},", self.slot_links);
        let _ = writeln!(s, "  \"slot_drains\": {},", self.slot_drains);
        let _ = writeln!(
            s,
            "  \"service\": {{\"admitted\": {}, \"shed\": {}, \"retries\": {}, \
             \"completed\": {}, \"failed\": {}}},",
            self.req_admitted, self.req_shed, self.req_retries, self.req_completed, self.req_failed
        );
        let ctn: Vec<String> = self
            .contention
            .iter()
            .map(|r| {
                format!(
                    "{{\"resource\": \"{}\", \"requests\": {}, \"wait_cycles\": {}, \
                     \"busy_cycles\": {}, \"peak_occupancy\": {}}}",
                    r.resource, r.requests, r.wait_cycles, r.busy_cycles, r.peak_occupancy
                )
            })
            .collect();
        let _ = writeln!(s, "  \"contention\": [{}],", ctn.join(", "));
        if let Some(t) = &self.topology {
            let levels: Vec<String> = t.levels.iter().map(|l| l.to_string()).collect();
            let steals: Vec<String> =
                t.steals_by_level.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(
                s,
                "  \"topology\": {{\"levels\": [{}], \"mem_level\": {}, \
                 \"steals_by_level\": [{}]}},",
                levels.join(", "),
                t.mem_level,
                steals.join(", ")
            );
        }
        if let Some(a) = &self.adaptive {
            let _ = writeln!(
                s,
                "  \"adaptive\": {{\"widenings\": {}, \"throttled_migrations\": {}, \
                 \"rebalanced_pages\": {}, \"rebalances\": {}}},",
                a.widenings, a.throttled_migrations, a.rebalanced_pages, a.rebalances
            );
        }
        let _ = writeln!(s, "  \"dropped\": {},", self.dropped);
        s.push_str("  \"sets\": [\n");
        let rows: Vec<String> = self
            .sets
            .iter()
            .map(|(set, row)| {
                let name = match set {
                    Some(o) => format!("{o}"),
                    None => "none".into(),
                };
                format!(
                    "    {{\"set\": \"{name}\", \"tasks\": {}, \"refs\": {}, \
                     \"l1_hits\": {}, \"l2_hits\": {}, \"local_misses\": {}, \
                     \"remote_misses\": {}}}",
                    row.tasks,
                    row.mem.refs,
                    row.mem.l1_hits,
                    row.mem.l2_hits,
                    row.mem.local_misses,
                    row.mem.remote_misses
                )
            })
            .collect();
        s.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n");
        let total = self.total_mem();
        let _ = writeln!(
            s,
            "  \"total\": {{\"refs\": {}, \"l1_hits\": {}, \"l2_hits\": {}, \
             \"local_misses\": {}, \"remote_misses\": {}}}",
            total.refs, total.l1_hits, total.l2_hits, total.local_misses, total.remote_misses
        );
        s.push_str("}\n");
        s
    }
}

/// Pull the first `"key": <number>` after byte position `from` (the emitted
/// JSON is flat with fixed key order, so scanning suffices offline).
fn extract_number(json: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = json[from..].find(&needle)? + from + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().map(|v| (v, at))
}

/// Validate a `cool-metrics-v1` document: required keys present, the schema
/// tag correct, and the per-set rows summing exactly to the `total` block.
pub fn validate_metrics_json(json: &str) -> Result<(), String> {
    for key in [
        "\"schema\"",
        "\"tasks\"",
        "\"affinity\"",
        "\"steals\"",
        "\"batch_sizes\"",
        "\"queue_depth\"",
        "\"service\"",
        "\"contention\"",
        "\"dropped\"",
        "\"sets\"",
        "\"total\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    if !json.contains(&format!("\"schema\": \"{METRICS_SCHEMA}\"")) {
        return Err(format!("schema is not {METRICS_SCHEMA}"));
    }
    let sets_at = json.find("\"sets\"").expect("key presence just checked");
    let total_at = json.find("\"total\"").ok_or("total block not found")?;
    if total_at < sets_at {
        return Err("total block must follow the sets array".into());
    }
    // Sum each memory column over the rows between "sets" and "total" and
    // compare with the total block.
    for key in ["refs", "l1_hits", "l2_hits", "local_misses", "remote_misses"] {
        let mut sum = 0.0;
        let mut pos = sets_at;
        while let Some((v, at)) = extract_number(json, key, pos) {
            if at >= total_at {
                break;
            }
            sum += v;
            pos = at;
        }
        let (total, _) = extract_number(json, key, total_at)
            .ok_or_else(|| format!("total.{key} unparseable"))?;
        if sum != total {
            return Err(format!(
                "per-set {key} rows sum to {sum} but total.{key} is {total}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_core::ProcId;

    fn sample_trace() -> ObsTrace {
        let set_a = Some(ObjRef(0x100));
        let mem = |refs, l1, rem| MemDelta {
            refs,
            l1_hits: l1,
            l2_hits: 0,
            local_misses: refs - l1 - rem,
            remote_misses: rem,
        };
        ObsTrace {
            events: vec![
                ObsEvent::TaskBegin {
                    task: TaskUid(1),
                    label: Some("t"),
                    proc: ProcId(0),
                    set: set_a,
                    hinted: true,
                    on_target: true,
                    time: 0,
                },
                ObsEvent::QueueDepth {
                    proc: ProcId(0),
                    depth: 5,
                    time: 1,
                },
                ObsEvent::TaskEnd {
                    task: TaskUid(1),
                    proc: ProcId(0),
                    mem: Some(mem(10, 6, 2)),
                    time: 9,
                },
                ObsEvent::TaskBegin {
                    task: TaskUid(2),
                    label: None,
                    proc: ProcId(1),
                    set: None,
                    hinted: false,
                    on_target: false,
                    time: 10,
                },
                ObsEvent::StealSuccess {
                    thief: ProcId(1),
                    victim: ProcId(0),
                    token: set_a,
                    ntasks: 2,
                    time: 11,
                },
                ObsEvent::StealFail {
                    thief: ProcId(0),
                    probes: 1,
                    time: 12,
                },
                ObsEvent::TaskEnd {
                    task: TaskUid(2),
                    proc: ProcId(1),
                    mem: Some(mem(4, 1, 1)),
                    time: 20,
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn digest_counts_and_attribution() {
        let m = MetricsSummary::from_trace(&sample_trace());
        assert_eq!(m.tasks, 2);
        assert_eq!(m.hinted, 1);
        assert_eq!(m.on_target, 1);
        assert_eq!(m.steal_successes, 1);
        assert_eq!(m.steal_failures, 1);
        assert_eq!(m.sets_stolen, 1);
        assert_eq!(m.tasks_stolen, 2);
        assert_eq!(m.batch_sizes.get(&2), Some(&1));
        assert_eq!(m.queue_depth.get(&8), Some(&1), "depth 5 → le-8 bucket");
        assert_eq!(m.sets.len(), 2);
        let total = m.total_mem();
        assert_eq!(total.refs, 14);
        assert_eq!(total.l1_hits, 7);
        assert_eq!(total.remote_misses, 3);
    }

    #[test]
    fn json_is_byte_stable_and_validates() {
        let m = MetricsSummary::from_trace(&sample_trace());
        let json = m.to_json();
        assert_eq!(json, MetricsSummary::from_trace(&sample_trace()).to_json());
        validate_metrics_json(&json).unwrap();
    }

    #[test]
    fn validator_rejects_mismatched_totals() {
        let m = MetricsSummary::from_trace(&sample_trace());
        let json = m.to_json();
        let tampered = json.replace("\"total\": {\"refs\": 14", "\"total\": {\"refs\": 15");
        assert_ne!(json, tampered, "tamper point must exist");
        assert!(validate_metrics_json(&tampered).is_err());
        assert!(validate_metrics_json("{}").is_err());
    }

    #[test]
    fn contention_rows_render_deterministically() {
        let mut m = MetricsSummary::from_trace(&sample_trace());
        assert!(m.to_json().contains("\"contention\": [],"));
        m.contention = vec![
            ContentionRow {
                resource: "bus",
                requests: 10,
                wait_cycles: 4,
                busy_cycles: 20,
                peak_occupancy: 2,
            },
            ContentionRow {
                resource: "mem",
                requests: 10,
                wait_cycles: 90,
                busy_cycles: 120,
                peak_occupancy: 5,
            },
        ];
        let json = m.to_json();
        assert!(json.contains(
            "\"contention\": [{\"resource\": \"bus\", \"requests\": 10, \
             \"wait_cycles\": 4, \"busy_cycles\": 20, \"peak_occupancy\": 2}, \
             {\"resource\": \"mem\", \"requests\": 10, \"wait_cycles\": 90, \
             \"busy_cycles\": 120, \"peak_occupancy\": 5}],"
        ));
        assert_eq!(json, m.to_json());
        validate_metrics_json(&json).unwrap();
    }

    #[test]
    fn topology_block_is_absent_unless_filled() {
        let mut m = MetricsSummary::from_trace(&sample_trace());
        let before = m.to_json();
        assert!(!before.contains("\"topology\""), "no block by default");
        m.topology = Some(TopologyBlock {
            levels: vec![2, 8, 32],
            mem_level: 1,
            steals_by_level: vec![3, 1, 4, 0],
        });
        let json = m.to_json();
        assert!(json.contains(
            "\"topology\": {\"levels\": [2, 8, 32], \"mem_level\": 1, \
             \"steals_by_level\": [3, 1, 4, 0]},"
        ));
        // The block slots between contention and dropped without disturbing
        // any other line.
        assert_eq!(
            json.replace(
                "  \"topology\": {\"levels\": [2, 8, 32], \"mem_level\": 1, \
                 \"steals_by_level\": [3, 1, 4, 0]},\n",
                ""
            ),
            before
        );
        validate_metrics_json(&json).unwrap();
    }

    #[test]
    fn adaptive_block_is_absent_unless_filled() {
        let mut m = MetricsSummary::from_trace(&sample_trace());
        let before = m.to_json();
        assert!(!before.contains("\"adaptive\""), "no block by default");
        m.adaptive = Some(AdaptiveBlock {
            widenings: 2,
            throttled_migrations: 1,
            rebalanced_pages: 4,
            rebalances: 4,
        });
        let json = m.to_json();
        assert!(json.contains(
            "\"adaptive\": {\"widenings\": 2, \"throttled_migrations\": 1, \
             \"rebalanced_pages\": 4, \"rebalances\": 4},"
        ));
        // The block slots between topology and dropped without disturbing
        // any other line.
        assert_eq!(
            json.replace(
                "  \"adaptive\": {\"widenings\": 2, \"throttled_migrations\": 1, \
                 \"rebalanced_pages\": 4, \"rebalances\": 4},\n",
                ""
            ),
            before
        );
        validate_metrics_json(&json).unwrap();
    }

    #[test]
    fn rebalance_events_are_digested() {
        let mut trace = sample_trace();
        trace.events.push(ObsEvent::Rebalance {
            obj: ObjRef(0x2000),
            to: ProcId(4),
            misses: 12,
            time: 30,
        });
        let m = MetricsSummary::from_trace(&trace);
        assert_eq!(m.rebalances, 1);
    }

    #[test]
    fn depth_buckets_are_powers_of_two() {
        assert_eq!(depth_bucket(0), 0);
        assert_eq!(depth_bucket(1), 1);
        assert_eq!(depth_bucket(2), 2);
        assert_eq!(depth_bucket(3), 4);
        assert_eq!(depth_bucket(4), 4);
        assert_eq!(depth_bucket(5), 8);
        assert_eq!(depth_bucket(9), 16);
    }
}
