//! Exporters for the scheduler observability stream.
//!
//! `cool-core::obs` defines the event vocabulary and the per-worker ring
//! recorder; this crate turns a drained [`ObsTrace`](cool_core::ObsTrace)
//! into artifacts a human can open:
//!
//! * [`chrome`] — a Chrome-trace (Perfetto-loadable) JSON document: one
//!   duration slice per task, instants for steals / slot transitions /
//!   mutex waits / migrations, and a queue-depth counter track per server.
//! * [`metrics`] — a deterministic, byte-stable `cool-metrics-v1` summary:
//!   steal success rates and batch-size distribution, affinity hit rate,
//!   queue-depth histogram, and the per-task-affinity-set cache / local /
//!   remote breakdown attributed from PerfMonitor deltas at task
//!   boundaries (so the per-set totals sum to the end-of-run aggregates).
//!
//! * [`progress`] — a progress/ETA meter folded incrementally over the same
//!   event stream, used by the `cool-repro` sweep engine's host-parallel
//!   job pool.
//!
//! Everything is hand-rolled string formatting over a fixed key order — no
//! JSON dependency, matching the offline build constraints and the
//! `cool-bench-v1` precedent in the bench crate.

#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod progress;

pub use chrome::chrome_trace_json;
pub use metrics::{
    validate_metrics_json, AdaptiveBlock, ContentionRow, MetricsSummary, TopologyBlock,
    METRICS_SCHEMA,
};
pub use progress::ProgressMeter;
