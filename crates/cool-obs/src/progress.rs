//! A progress/ETA meter over the [`ObsEvent`] stream.
//!
//! The `cool-repro` sweep engine models each matrix point as a task on the
//! observability stream (a [`ObsEvent::TaskBegin`] / [`ObsEvent::TaskEnd`]
//! pair stamped with host milliseconds), which buys two things at once: the
//! sweep itself can be exported as a Perfetto trace through
//! [`chrome_trace_json`](crate::chrome_trace_json), and this meter can fold
//! the same events into human progress lines with an ETA. The meter is
//! plain incremental state over event values — no clocks of its own — so it
//! is deterministic and unit-testable with synthetic timestamps.

use cool_core::obs::ObsEvent;

/// Incremental progress state fed one [`ObsEvent`] at a time.
///
/// Only [`ObsEvent::TaskEnd`] advances completion; every other event is
/// ignored, so the meter can share a stream with richer instrumentation.
/// Lines are rate-limited to one per `min_interval_ms` except the final
/// completion line, which always prints.
#[derive(Clone, Debug)]
pub struct ProgressMeter {
    total: usize,
    done: usize,
    start_ms: u64,
    last_line_ms: Option<u64>,
    min_interval_ms: u64,
}

impl ProgressMeter {
    /// A meter expecting `total` task completions, with `start_ms` as the
    /// epoch the event timestamps are relative to.
    pub fn new(total: usize, start_ms: u64, min_interval_ms: u64) -> Self {
        ProgressMeter {
            total,
            done: 0,
            start_ms,
            last_line_ms: None,
            min_interval_ms,
        }
    }

    /// Completions observed so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Expected completions.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fold one event; returns a progress line when one is due (a task
    /// completed and the rate limit allows it, or the stream just finished).
    pub fn on_event(&mut self, event: &ObsEvent) -> Option<String> {
        let ObsEvent::TaskEnd { time, .. } = event else {
            return None;
        };
        self.done += 1;
        let now = *time;
        let finished = self.done >= self.total;
        let due = match self.last_line_ms {
            None => true,
            Some(last) => now.saturating_sub(last) >= self.min_interval_ms,
        };
        if !finished && !due {
            return None;
        }
        self.last_line_ms = Some(now);
        Some(self.line(now))
    }

    /// The progress line at timestamp `now_ms`: completion count, percent,
    /// elapsed, and an ETA extrapolated from the mean rate so far.
    pub fn line(&self, now_ms: u64) -> String {
        let elapsed_ms = now_ms.saturating_sub(self.start_ms);
        let pct = if self.total == 0 {
            100.0
        } else {
            self.done as f64 * 100.0 / self.total as f64
        };
        let eta = if self.done == 0 || self.done >= self.total {
            String::from("done")
        } else {
            let per_point = elapsed_ms as f64 / self.done as f64;
            let remaining = (self.total - self.done) as f64 * per_point;
            format!("eta {:.1}s", remaining / 1000.0)
        };
        format!(
            "{}/{} points · {:.0}% · elapsed {:.1}s · {}",
            self.done,
            self.total,
            pct,
            elapsed_ms as f64 / 1000.0,
            eta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_core::{ProcId, TaskUid};

    fn end(t: u64) -> ObsEvent {
        ObsEvent::TaskEnd {
            task: TaskUid(1),
            proc: ProcId(0),
            mem: None,
            time: t,
        }
    }

    fn begin(t: u64) -> ObsEvent {
        ObsEvent::TaskBegin {
            task: TaskUid(1),
            label: Some("x"),
            proc: ProcId(0),
            set: None,
            hinted: false,
            on_target: false,
            time: t,
        }
    }

    #[test]
    fn only_task_end_advances() {
        let mut m = ProgressMeter::new(2, 0, 0);
        assert!(m.on_event(&begin(5)).is_none());
        assert_eq!(m.done(), 0);
        let line = m.on_event(&end(1000)).expect("line on first completion");
        assert!(line.starts_with("1/2 points"), "{line}");
        assert!(line.contains("eta 1.0s"), "{line}");
    }

    #[test]
    fn rate_limit_suppresses_intermediate_lines_but_not_the_last() {
        let mut m = ProgressMeter::new(3, 0, 10_000);
        assert!(m.on_event(&end(100)).is_some(), "first line always prints");
        assert!(m.on_event(&end(200)).is_none(), "inside the interval");
        let last = m.on_event(&end(300)).expect("final line always prints");
        assert!(last.starts_with("3/3"), "{last}");
        assert!(last.contains("done"), "{last}");
    }

    #[test]
    fn eta_extrapolates_mean_rate() {
        let mut m = ProgressMeter::new(4, 1000, 0);
        m.on_event(&end(2000));
        let line = m.on_event(&end(3000)).unwrap();
        // 2 done in 2s → 1s per point, 2 left → eta 2s.
        assert!(line.contains("eta 2.0s"), "{line}");
        assert!(line.contains("50%"), "{line}");
    }

    #[test]
    fn zero_total_reports_complete() {
        let m = ProgressMeter::new(0, 0, 0);
        assert!(m.line(5).contains("100%"));
    }
}
