//! Chrome-trace (Perfetto) JSON export of an observability stream.
//!
//! The emitted document uses the classic `traceEvents` array format that
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly:
//!
//! * each task is a complete duration event (`"ph": "X"`) on the track of
//!   the server that ran it, annotated with its task-affinity set, hint
//!   adherence, and (on the simulator) its cache/local/remote reference
//!   breakdown;
//! * steals, slot link/drain transitions, mutex waits, and migrations are
//!   thread-scoped instants (`"ph": "i"`);
//! * queue-depth samples become one counter track (`"ph": "C"`) per server.
//!
//! Timestamps pass through unscaled: virtual cycles from `cool-sim`,
//! nanoseconds from `cool-rt`. Perfetto displays them as microseconds —
//! the relative structure is what matters. Output is deterministic: events
//! render in stream order with a fixed key order.

use std::collections::HashMap;
use std::fmt::Write as _;

use cool_core::events::TaskUid;
use cool_core::obs::{MemDelta, ObsEvent};
use cool_core::ObjRef;

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

fn tok(t: Option<ObjRef>) -> String {
    match t {
        Some(o) => format!("\"{o}\""),
        None => "null".into(),
    }
}

struct Begin {
    label: Option<&'static str>,
    proc: usize,
    set: Option<ObjRef>,
    hinted: bool,
    on_target: bool,
    time: u64,
}

fn push_task_slice(out: &mut String, task: TaskUid, b: &Begin, end: u64, mem: Option<MemDelta>) {
    let name = b.label.map(esc).unwrap_or_else(|| "task".into());
    let dur = end.saturating_sub(b.time);
    let mut args = format!(
        "\"task\": \"{task}\", \"set\": {}, \"hinted\": {}, \"on_target\": {}",
        tok(b.set),
        b.hinted,
        b.on_target
    );
    if let Some(m) = mem {
        let _ = write!(
            args,
            ", \"refs\": {}, \"l1_hits\": {}, \"l2_hits\": {}, \
             \"local_misses\": {}, \"remote_misses\": {}",
            m.refs, m.l1_hits, m.l2_hits, m.local_misses, m.remote_misses
        );
    }
    let _ = write!(
        out,
        "{{\"name\": \"{name}\", \"cat\": \"task\", \"ph\": \"X\", \"ts\": {}, \
         \"dur\": {dur}, \"pid\": 0, \"tid\": {}, \"args\": {{{args}}}}}",
        b.time, b.proc
    );
}

fn push_instant(out: &mut String, name: &str, ts: u64, tid: usize, args: &str) {
    let _ = write!(
        out,
        "{{\"name\": \"{name}\", \"cat\": \"sched\", \"ph\": \"i\", \"s\": \"t\", \
         \"ts\": {ts}, \"pid\": 0, \"tid\": {tid}, \"args\": {{{args}}}}}"
    );
}

/// Render `events` as a Chrome-trace JSON document.
pub fn chrome_trace_json(events: &[ObsEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
    };
    // Name the server tracks up front so Perfetto sorts them by id.
    let nprocs = events
        .iter()
        .map(|e| e.proc().index() + 1)
        .max()
        .unwrap_or(0);
    for p in 0..nprocs {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {p}, \
             \"args\": {{\"name\": \"server P{p}\"}}}}"
        );
    }
    let mut open: HashMap<TaskUid, Begin> = HashMap::new();
    for ev in events {
        match ev {
            ObsEvent::TaskBegin {
                task,
                label,
                proc,
                set,
                hinted,
                on_target,
                time,
            } => {
                open.insert(
                    *task,
                    Begin {
                        label: *label,
                        proc: proc.index(),
                        set: *set,
                        hinted: *hinted,
                        on_target: *on_target,
                        time: *time,
                    },
                );
            }
            ObsEvent::TaskEnd {
                task, mem, time, ..
            } => {
                if let Some(b) = open.remove(task) {
                    sep(&mut out);
                    push_task_slice(&mut out, *task, &b, *time, *mem);
                }
            }
            ObsEvent::StealSuccess {
                thief,
                victim,
                token,
                ntasks,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "steal",
                    *time,
                    thief.index(),
                    &format!(
                        "\"victim\": {}, \"token\": {}, \"ntasks\": {ntasks}",
                        victim.index(),
                        tok(*token)
                    ),
                );
            }
            ObsEvent::StealFail {
                thief,
                probes,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "steal_fail",
                    *time,
                    thief.index(),
                    &format!("\"probes\": {probes}"),
                );
            }
            ObsEvent::SlotLink {
                proc,
                slot,
                token,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "slot_link",
                    *time,
                    proc.index(),
                    &format!("\"slot\": {slot}, \"token\": \"{token}\""),
                );
            }
            ObsEvent::SlotDrain { proc, slot, time } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "slot_drain",
                    *time,
                    proc.index(),
                    &format!("\"slot\": {slot}"),
                );
            }
            ObsEvent::MutexWait {
                task,
                lock,
                proc,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "mutex_wait",
                    *time,
                    proc.index(),
                    &format!("\"task\": \"{task}\", \"lock\": \"{lock}\""),
                );
            }
            ObsEvent::Migrate {
                task,
                obj,
                bytes,
                to,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "migrate",
                    *time,
                    to.index(),
                    &format!("\"task\": \"{task}\", \"obj\": \"{obj}\", \"bytes\": {bytes}"),
                );
            }
            ObsEvent::Rebalance {
                obj,
                to,
                misses,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "rebalance",
                    *time,
                    to.index(),
                    &format!("\"obj\": \"{obj}\", \"misses\": {misses}"),
                );
            }
            ObsEvent::QueueDepth { proc, depth, time } => {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\": \"queue depth P{p}\", \"ph\": \"C\", \"ts\": {time}, \
                     \"pid\": 0, \"tid\": {p}, \"args\": {{\"depth\": {depth}}}}}",
                    p = proc.index()
                );
            }
            ObsEvent::RequestAdmit {
                req,
                domain,
                depth,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "admit",
                    *time,
                    *domain,
                    &format!("\"req\": {req}, \"depth\": {depth}"),
                );
            }
            ObsEvent::RequestShed {
                req,
                domain,
                depth,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "shed",
                    *time,
                    *domain,
                    &format!("\"req\": {req}, \"depth\": {depth}"),
                );
            }
            ObsEvent::RequestRetry {
                req,
                attempt,
                backoff_ns,
                domain,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "retry",
                    *time,
                    *domain,
                    &format!("\"req\": {req}, \"attempt\": {attempt}, \"backoff_ns\": {backoff_ns}"),
                );
            }
            ObsEvent::RequestDone {
                req,
                attempts,
                ok,
                latency_ns,
                domain,
                time,
            } => {
                sep(&mut out);
                push_instant(
                    &mut out,
                    "done",
                    *time,
                    *domain,
                    &format!(
                        "\"req\": {req}, \"attempts\": {attempts}, \"ok\": {ok}, \
                         \"latency_ns\": {latency_ns}"
                    ),
                );
            }
        }
    }
    // Tasks still open at the end of the stream (clipped trace): close them
    // at their own begin time so they remain visible.
    let mut leftovers: Vec<(TaskUid, Begin)> = open.into_iter().collect();
    leftovers.sort_by_key(|(t, _)| *t);
    for (task, b) in leftovers {
        sep(&mut out);
        let end = b.time;
        push_task_slice(&mut out, task, &b, end, None);
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_core::ProcId;

    #[test]
    fn renders_slices_instants_and_counters() {
        let events = vec![
            ObsEvent::TaskBegin {
                task: TaskUid(1),
                label: Some("gauss"),
                proc: ProcId(0),
                set: Some(ObjRef(0x40)),
                hinted: true,
                on_target: true,
                time: 10,
            },
            ObsEvent::QueueDepth {
                proc: ProcId(0),
                depth: 2,
                time: 11,
            },
            ObsEvent::TaskEnd {
                task: TaskUid(1),
                proc: ProcId(0),
                mem: Some(MemDelta {
                    refs: 5,
                    l1_hits: 3,
                    l2_hits: 1,
                    local_misses: 1,
                    remote_misses: 0,
                }),
                time: 50,
            },
            ObsEvent::StealSuccess {
                thief: ProcId(1),
                victim: ProcId(0),
                token: Some(ObjRef(0x40)),
                ntasks: 2,
                time: 60,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"name\": \"gauss\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 40"));
        assert!(json.contains("\"refs\": 5"));
        assert!(json.contains("\"name\": \"steal\""));
        assert!(json.contains("\"queue depth P0\""));
        assert!(json.contains("\"thread_name\""));
        // Deterministic output.
        assert_eq!(json, chrome_trace_json(&events));
    }

    #[test]
    fn unended_tasks_still_render() {
        let events = vec![ObsEvent::TaskBegin {
            task: TaskUid(3),
            label: None,
            proc: ProcId(1),
            set: None,
            hinted: false,
            on_target: false,
            time: 7,
        }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"task\": \"T3\""));
        assert!(json.contains("\"dur\": 0"));
    }
}
