//! Affinity-hint lint passes.
//!
//! Races and lock cycles are correctness bugs; these lints flag *performance*
//! bugs in how a program uses the affinity machinery:
//!
//! * **stale-object-hint** — a task with an OBJECT-affinity placement was
//!   dispatched after its object migrated away from the server the hint
//!   selected: every access now pays remote latency the hint was supposed to
//!   avoid. (Fix: migrate before spawning, or re-hint.)
//! * **unused-prefetch** — a task prefetched a byte range it never touched:
//!   pure bus traffic. (The simulator issues prefetches at dispatch, so a
//!   *late* prefetch cannot be expressed; uselessness is the observable bug.)
//! * **migration-thrash** — an object was migrated back to a node it had
//!   already been migrated away from: the program is ping-ponging pages
//!   instead of settling on a home.

use std::collections::HashMap;

use cool_core::{ObjRef, ProcId, RtEvent, TaskUid};

/// Lint categories, used as stable machine-readable keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LintKind {
    /// OBJECT-affinity dispatch whose object migrated after spawn.
    StaleObjectHint,
    /// Prefetch of data the task never touched.
    UnusedPrefetch,
    /// Object migrated back to a node it recently left.
    MigrationThrash,
}

impl LintKind {
    /// Stable kebab-case key for reports.
    pub fn key(self) -> &'static str {
        match self {
            LintKind::StaleObjectHint => "stale-object-hint",
            LintKind::UnusedPrefetch => "unused-prefetch",
            LintKind::MigrationThrash => "migration-thrash",
        }
    }

    /// All kinds, in report order.
    pub const ALL: [LintKind; 3] = [
        LintKind::StaleObjectHint,
        LintKind::UnusedPrefetch,
        LintKind::MigrationThrash,
    ];
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lint {
    /// Category of the finding.
    pub kind: LintKind,
    /// Task involved (the dispatched task, the prefetching task, or the
    /// migrating task that closed the thrash loop).
    pub task: TaskUid,
    /// The task's spawn label, when present.
    pub label: Option<&'static str>,
    /// Object the finding is about.
    pub obj: ObjRef,
    /// Human-readable detail.
    pub detail: String,
}

impl Lint {
    /// Human-readable one-line description.
    pub fn describe(&self) -> String {
        format!(
            "{}: {} ({}): {}",
            self.kind.key(),
            self.label.unwrap_or("task"),
            self.task,
            self.detail
        )
    }
}

/// An outstanding prefetch of one task.
struct PendingPrefetch {
    obj: ObjRef,
    bytes: u64,
    touched: bool,
}

/// Run the lint passes over the event stream.
pub fn run_lints(events: &[RtEvent]) -> Vec<Lint> {
    let mut labels: HashMap<TaskUid, &'static str> = HashMap::new();
    let mut prefetches: HashMap<TaskUid, Vec<PendingPrefetch>> = HashMap::new();
    // Every destination an object has been migrated to, in order.
    let mut migrations: HashMap<ObjRef, Vec<ProcId>> = HashMap::new();
    let mut thrash_reported: HashMap<ObjRef, bool> = HashMap::new();
    let mut out = Vec::new();

    for ev in events {
        match ev {
            RtEvent::Spawn {
                child,
                label: Some(l),
                ..
            } => {
                labels.insert(*child, l);
            }
            RtEvent::TaskStart {
                task,
                target,
                object: Some(obj),
                object_home: Some(home),
                ..
            } if home != target => {
                out.push(Lint {
                    kind: LintKind::StaleObjectHint,
                    task: *task,
                    label: labels.get(task).copied(),
                    obj: *obj,
                    detail: format!(
                        "object-affinity hint placed the task on {target} but {obj} \
                         is homed on {home} at dispatch (migrated after spawn)"
                    ),
                });
            }
            RtEvent::Prefetch {
                task, obj, bytes, ..
            } => {
                prefetches.entry(*task).or_default().push(PendingPrefetch {
                    obj: *obj,
                    bytes: *bytes,
                    touched: false,
                });
            }
            RtEvent::Access { task, obj, len, .. } => {
                if let Some(list) = prefetches.get_mut(task) {
                    let (a0, a1) = (obj.addr(), obj.addr() + len);
                    for p in list.iter_mut() {
                        let (p0, p1) = (p.obj.addr(), p.obj.addr() + p.bytes);
                        if a0 < p1 && p0 < a1 {
                            p.touched = true;
                        }
                    }
                }
            }
            RtEvent::TaskEnd { task, .. } => {
                if let Some(list) = prefetches.remove(task) {
                    for p in list {
                        if !p.touched {
                            out.push(Lint {
                                kind: LintKind::UnusedPrefetch,
                                task: *task,
                                label: labels.get(task).copied(),
                                obj: p.obj,
                                detail: format!(
                                    "prefetched {} bytes at {} but never accessed them",
                                    p.bytes, p.obj
                                ),
                            });
                        }
                    }
                }
            }
            RtEvent::Migrate { task, obj, to, .. } => {
                let dests = migrations.entry(*obj).or_default();
                let revisits = dests.last() != Some(to) && dests.contains(to);
                if revisits && !*thrash_reported.entry(*obj).or_default() {
                    thrash_reported.insert(*obj, true);
                    let seq: Vec<String> = dests
                        .iter()
                        .chain(std::iter::once(to))
                        .map(|p| p.to_string())
                        .collect();
                    out.push(Lint {
                        kind: LintKind::MigrationThrash,
                        task: *task,
                        label: labels.get(task).copied(),
                        obj: *obj,
                        detail: format!(
                            "{} migrated back to a node it already left: {}",
                            obj,
                            seq.join(" -> ")
                        ),
                    });
                }
                dests.push(*to);
            }
            _ => {}
        }
    }
    out
}

/// Count findings per kind (stable order), for summaries.
pub fn counts(lints: &[Lint]) -> Vec<(&'static str, usize)> {
    LintKind::ALL
        .iter()
        .map(|&k| (k.key(), lints.iter().filter(|l| l.kind == k).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_hint_fires_on_home_target_mismatch() {
        let evs = vec![RtEvent::TaskStart {
            task: TaskUid(1),
            proc: ProcId(2),
            target: ProcId(2),
            object: Some(ObjRef(0x100)),
            object_home: Some(ProcId(5)),
            time: 0,
        }];
        let lints = run_lints(&evs);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::StaleObjectHint);
    }

    #[test]
    fn fresh_hint_is_clean() {
        let evs = vec![RtEvent::TaskStart {
            task: TaskUid(1),
            proc: ProcId(2),
            target: ProcId(5),
            object: Some(ObjRef(0x100)),
            object_home: Some(ProcId(5)),
            time: 0,
        }];
        assert!(run_lints(&evs).is_empty());
    }

    #[test]
    fn unused_prefetch_reported_at_task_end() {
        let evs = vec![
            RtEvent::Prefetch {
                task: TaskUid(1),
                obj: ObjRef(0x200),
                bytes: 64,
                cost: 10,
                time: 0,
            },
            RtEvent::TaskEnd {
                task: TaskUid(1),
                proc: ProcId(0),
                time: 5,
            },
        ];
        let lints = run_lints(&evs);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::UnusedPrefetch);
    }

    #[test]
    fn touched_prefetch_is_clean() {
        let evs = vec![
            RtEvent::Prefetch {
                task: TaskUid(1),
                obj: ObjRef(0x200),
                bytes: 64,
                cost: 10,
                time: 0,
            },
            RtEvent::Access {
                task: TaskUid(1),
                obj: ObjRef(0x220),
                len: 8,
                kind: cool_core::AccessKind::Read,
                proc: ProcId(0),
                time: 1,
            },
            RtEvent::TaskEnd {
                task: TaskUid(1),
                proc: ProcId(0),
                time: 5,
            },
        ];
        assert!(run_lints(&evs).is_empty());
    }

    #[test]
    fn migration_thrash_detects_revisit() {
        let mig = |to: usize| RtEvent::Migrate {
            task: TaskUid(1),
            obj: ObjRef(0x300),
            bytes: 4096,
            to: ProcId(to),
            time: 0,
        };
        // A -> B -> A: thrash.
        let lints = run_lints(&[mig(0), mig(1), mig(0)]);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].kind, LintKind::MigrationThrash);
        // A -> B -> C: no thrash. Repeated same-destination is idempotent,
        // not thrash.
        assert!(run_lints(&[mig(0), mig(1), mig(2)]).is_empty());
        assert!(run_lints(&[mig(0), mig(0)]).is_empty());
    }
}
