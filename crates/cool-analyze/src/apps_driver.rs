//! Run the six case-study applications with event recording and analyze
//! each run — the workspace's "analyze mode".
//!
//! Every app runs at its fast-test scale under every scheduling version on
//! the default schedule, plus one fault-injected schedule (stragglers,
//! stalls, transient task failures and delayed wakeups) to shake out
//! ordering bugs that only appear under perturbed interleavings. The
//! resulting [`RunFindings`] feed both the test suite (which asserts zero
//! races and lock cycles everywhere) and the committed
//! `analyze_findings.json` CI gate.

use apps::common::sim_config_small;
use apps::Version;
use cool_core::FaultPlan;
use cool_sim::SimConfig;

use crate::report::{Analysis, RunFindings};
use crate::{detect_races, analyze_locks, run_lints};

/// Analyze one recorded event stream with all three passes.
pub fn analyze_events(events: &[cool_core::RtEvent]) -> Analysis {
    Analysis {
        races: detect_races(events),
        locks: analyze_locks(events),
        lints: run_lints(events),
    }
}

/// Processor count used for the analyzer runs.
const NPROCS: usize = 8;

/// The fault plan used for the perturbed schedules: a straggler, a long
/// one-shot stall, a few transient task failures and delayed idle wakeups.
/// Deterministic, so the findings file is stable.
fn fault_plan() -> FaultPlan {
    FaultPlan::new(29)
        .slow_server(1, 200)
        .stall_server(0, 3, 5_000)
        .fail_random_tasks(3, 40)
        .delay_wakeups(2, 50)
}

fn cfg(version: Version) -> SimConfig {
    sim_config_small(NPROCS, version).with_events()
}

/// Short stable key for a version (used in the findings file).
pub fn version_key(v: Version) -> &'static str {
    match v {
        Version::Base => "base",
        Version::Distr => "distr",
        Version::Affinity => "affinity",
        Version::AffinityDistr => "affinity+distr",
        Version::AffinityDistrCluster => "affinity+distr+cluster",
    }
}

/// The version each app's fault-injected schedule runs under: the full
/// affinity + distribution configuration, where placement, stealing and
/// mutex retry paths are all active.
const FAULTED_VERSION: Version = Version::AffinityDistr;

fn gauss(version: Version, faults: Option<FaultPlan>) -> Vec<cool_core::RtEvent> {
    let params = apps::gauss::GaussParams { n: 32, seed: 7 };
    apps::gauss::run_with_faults(cfg(version), &params, version, faults).events
}

fn ocean(version: Version, faults: Option<FaultPlan>) -> Vec<cool_core::RtEvent> {
    let params = workloads::ocean::OceanParams {
        n: 24,
        num_grids: 4,
        regions: 8,
        sweeps: 2,
        seed: 3,
    };
    apps::ocean::run_with_faults(cfg(version), &params, version, faults).events
}

fn locusroute(version: Version, faults: Option<FaultPlan>) -> Vec<cool_core::RtEvent> {
    use workloads::circuit::{Circuit, CircuitParams};
    let params = apps::locusroute::LocusParams {
        circuit: Circuit::generate(CircuitParams {
            width: 64,
            height: 16,
            regions: 4,
            wires_per_region: 24,
            crossing_fraction: 0.1,
            multi_pin_fraction: 0.15,
            seed: 11,
        }),
        iterations: 2,
    };
    apps::locusroute::run_with_faults(cfg(version), &params, version, faults).events
}

fn panel_cholesky(version: Version, faults: Option<FaultPlan>) -> Vec<cool_core::RtEvent> {
    use apps::panel_cholesky::{PanelParams, PanelProblem};
    let prob = PanelProblem::analyse(&PanelParams {
        matrix: workloads::matrices::grid_laplacian(8),
        max_panel_width: 4,
    });
    apps::panel_cholesky::run_with_faults(cfg(version), &prob, version, faults).events
}

fn block_cholesky(version: Version, faults: Option<FaultPlan>) -> Vec<cool_core::RtEvent> {
    let params = apps::block_cholesky::BlockParams { n: 48, block: 8 };
    apps::block_cholesky::run_with_faults(cfg(version), &params, version, faults).events
}

fn barnes_hut(version: Version, faults: Option<FaultPlan>) -> Vec<cool_core::RtEvent> {
    let params = apps::barnes_hut::BhParams {
        nbodies: 128,
        groups: 16,
        timesteps: 2,
        theta: 0.6,
        dt: 0.01,
        seed: 4,
    };
    apps::barnes_hut::run_with_faults(cfg(version), &params, version, faults).events
}

type AppRunner = fn(Version, Option<FaultPlan>) -> Vec<cool_core::RtEvent>;

/// The six apps, in report order.
pub const APPS: [(&str, AppRunner); 6] = [
    ("barnes_hut", barnes_hut),
    ("block_cholesky", block_cholesky),
    ("gauss", gauss),
    ("locusroute", locusroute),
    ("ocean", ocean),
    ("panel_cholesky", panel_cholesky),
];

/// Analyze one app under one version and schedule.
pub fn analyze_app(app: &str, version: Version, faulted: bool) -> RunFindings {
    let runner = APPS
        .iter()
        .find(|(name, _)| *name == app)
        .unwrap_or_else(|| panic!("unknown app {app:?}"))
        .1;
    let faults = faulted.then(fault_plan);
    let events = runner(version, faults);
    RunFindings {
        app: app.to_string(),
        version: version_key(version).to_string(),
        schedule: if faulted { "faulted" } else { "default" }.to_string(),
        analysis: analyze_events(&events),
    }
}

/// Analyze every app: all five scheduling versions on the default schedule
/// plus one fault-injected run each. Output order is stable (apps
/// alphabetical, versions in `Version::ALL` order, faulted last).
pub fn analyze_all() -> Vec<RunFindings> {
    let mut out = Vec::new();
    for (app, _) in APPS {
        for v in Version::ALL {
            out.push(analyze_app(app, v, false));
        }
        out.push(analyze_app(app, FAULTED_VERSION, true));
    }
    out
}
