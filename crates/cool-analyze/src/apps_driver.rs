//! Run the six case-study applications with event recording and analyze
//! each run — the workspace's "analyze mode".
//!
//! Every app runs at its fast-test scale under every scheduling version on
//! the default schedule, plus one fault-injected schedule (stragglers,
//! stalls, transient task failures and delayed wakeups) to shake out
//! ordering bugs that only appear under perturbed interleavings. The
//! resulting [`RunFindings`] feed both the test suite (which asserts zero
//! races and lock cycles everywhere) and the committed
//! `analyze_findings.json` CI gate.

use apps::common::sim_config_small;
use apps::Version;
use cool_core::FaultPlan;
use cool_sim::SimConfig;

use crate::report::{Analysis, RunFindings};
use crate::{detect_races, analyze_locks, run_lints};

/// Analyze one recorded event stream with all three passes.
pub fn analyze_events(events: &[cool_core::RtEvent]) -> Analysis {
    Analysis {
        races: detect_races(events),
        locks: analyze_locks(events),
        lints: run_lints(events),
    }
}

/// Processor count used for the analyzer runs.
const NPROCS: usize = 8;

/// The fault plan used for the perturbed schedules: a straggler, a long
/// one-shot stall, a few transient task failures and delayed idle wakeups.
/// Deterministic, so the findings file is stable.
fn fault_plan() -> FaultPlan {
    FaultPlan::new(29)
        .slow_server(1, 200)
        .stall_server(0, 3, 5_000)
        .fail_random_tasks(3, 40)
        .delay_wakeups(2, 50)
}

fn cfg(version: Version) -> SimConfig {
    sim_config_small(NPROCS, version).with_events()
}

/// Short stable key for a version (used in the findings file).
pub fn version_key(v: Version) -> &'static str {
    match v {
        Version::Base => "base",
        Version::Distr => "distr",
        Version::Affinity => "affinity",
        Version::AffinityDistr => "affinity+distr",
        Version::AffinityDistrCluster => "affinity+distr+cluster",
        Version::AffinityDistrSocket => "affinity+distr+socket",
        Version::AffinityDistrWiden => "affinity+distr+widen",
        Version::AffinityDistrAdaptive => "affinity+distr+adaptive",
        Version::AffinityDistrRebalance => "affinity+distr+rebalance",
    }
}

/// The scheduling versions the analyzer sweeps: the static ladder. The
/// feedback-driven versions are deliberately excluded — they are gated by
/// their own sweep (`results/adaptive/`), and keeping this list pinned keeps
/// the committed `analyze_findings.json` stable.
pub const ANALYZED_VERSIONS: [Version; 7] = [
    Version::Base,
    Version::Distr,
    Version::Affinity,
    Version::AffinityDistr,
    Version::AffinityDistrCluster,
    Version::AffinityDistrSocket,
    Version::AffinityDistrWiden,
];

/// The version each app's fault-injected schedule runs under: the full
/// affinity + distribution configuration, where placement, stealing and
/// mutex retry paths are all active.
const FAULTED_VERSION: Version = Version::AffinityDistr;

/// The six apps, in report order (shared with the figure harness).
pub const APPS: [&str; 6] = apps::driver::APP_NAMES;

/// Run one app at the analyzer scale with event recording and return the
/// full report (events for the analysis passes, plus whatever the config
/// asked the scheduler to record).
pub fn run_app(app: &str, version: Version, faulted: bool) -> apps::AppReport {
    let faults = faulted.then(fault_plan);
    apps::driver::run_app(app, cfg(version), version, faults)
}

/// Analyze one app under one version and schedule.
pub fn analyze_app(app: &str, version: Version, faulted: bool) -> RunFindings {
    let report = run_app(app, version, faulted);
    RunFindings {
        app: app.to_string(),
        version: version_key(version).to_string(),
        schedule: if faulted { "faulted" } else { "default" }.to_string(),
        analysis: analyze_events(&report.events),
    }
}

/// Analyze every app: the static scheduling versions on the default schedule
/// plus one fault-injected run each, then the service matrix (the work
/// server's request-lifecycle streams — see [`crate::service`]). Output
/// order is stable (apps alphabetical, versions in [`ANALYZED_VERSIONS`]
/// order, faulted last, service rows at the end).
pub fn analyze_all() -> Vec<RunFindings> {
    let mut out = Vec::new();
    for app in APPS {
        for v in ANALYZED_VERSIONS {
            out.push(analyze_app(app, v, false));
        }
        out.push(analyze_app(app, FAULTED_VERSION, true));
    }
    out.extend(crate::service::analyze_service());
    out
}
