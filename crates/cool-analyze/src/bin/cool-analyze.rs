//! Analyze-mode driver: run every app with event recording, analyze the
//! streams, and write `analyze_findings.json`.
//!
//! Usage: `cool-analyze [OUTPUT_PATH] [--trace-out BASE [--trace-app APP]]`
//! (default output `analyze_findings.json`). Exit status 1 if any race or
//! lock-order cycle was found, so CI can gate on it; lint findings are
//! reported but only fail CI via the committed findings file diff.
//!
//! `--trace-out BASE` additionally re-runs one app (default `gauss`, pick
//! with `--trace-app`) with scheduler tracing enabled and writes
//! `BASE.trace.json` (Perfetto/Chrome trace) and `BASE.metrics.json`
//! (`cool-metrics-v1` summary).

use std::process::ExitCode;

use cool_analyze::{analyze_all, findings_to_json};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "analyze_findings.json".to_string();
    let mut trace_out = None;
    let mut trace_app = "gauss".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).expect("--trace-out takes a value").clone());
                i += 2;
            }
            "--trace-app" => {
                trace_app = args.get(i + 1).expect("--trace-app takes a value").clone();
                i += 2;
            }
            a => {
                out_path = a.to_string();
                i += 1;
            }
        }
    }

    let findings = analyze_all();
    let mut errors = 0usize;
    for f in &findings {
        let a = &f.analysis;
        let lint_count = a.lints.len();
        println!(
            "{:<16} {:<24} {:<8} tasks={:<6} accesses={:<7} races={} cycles={} lints={}",
            f.app,
            f.version,
            f.schedule,
            a.races.tasks,
            a.races.accesses,
            a.races.races.len(),
            a.locks.cycles.len(),
            lint_count,
        );
        for r in &a.races.races {
            println!("    RACE  {}", r.describe());
        }
        for c in &a.locks.cycles {
            println!("    CYCLE {}", c.describe());
        }
        for l in &a.lints {
            println!("    LINT  {}", l.describe());
        }
        errors += a.races.races.len() + a.locks.cycles.len();
    }

    let doc = findings_to_json(&findings);
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cool-analyze: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path} ({} runs)", findings.len());

    if let Some(base) = trace_out {
        let version = apps::Version::AffinityDistr;
        let cfg = apps::common::sim_config_small(8, version).with_trace();
        let report = apps::driver::run_app(&trace_app, cfg, version, None);
        let (trace, metrics) = apps::driver::trace_artifacts(&report);
        for (suffix, doc) in [("trace", &trace), ("metrics", &metrics)] {
            let path = format!("{base}.{suffix}.json");
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("cool-analyze: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
    }

    if errors > 0 {
        eprintln!("cool-analyze: {errors} correctness finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
