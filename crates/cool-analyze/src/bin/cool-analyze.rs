//! Analyze-mode driver: run every app with event recording, analyze the
//! streams, and write `analyze_findings.json`.
//!
//! Usage: `cool-analyze [OUTPUT_PATH]` (default `analyze_findings.json`).
//! Exit status 1 if any race or lock-order cycle was found, so CI can gate
//! on it; lint findings are reported but only fail CI via the committed
//! findings file diff.

use std::process::ExitCode;

use cool_analyze::{analyze_all, findings_to_json};

fn main() -> ExitCode {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "analyze_findings.json".to_string());

    let findings = analyze_all();
    let mut errors = 0usize;
    for f in &findings {
        let a = &f.analysis;
        let lint_count = a.lints.len();
        println!(
            "{:<16} {:<24} {:<8} tasks={:<6} accesses={:<7} races={} cycles={} lints={}",
            f.app,
            f.version,
            f.schedule,
            a.races.tasks,
            a.races.accesses,
            a.races.races.len(),
            a.locks.cycles.len(),
            lint_count,
        );
        for r in &a.races.races {
            println!("    RACE  {}", r.describe());
        }
        for c in &a.locks.cycles {
            println!("    CYCLE {}", c.describe());
        }
        for l in &a.lints {
            println!("    LINT  {}", l.describe());
        }
        errors += a.races.races.len() + a.locks.cycles.len();
    }

    let doc = findings_to_json(&findings);
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cool-analyze: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path} ({} runs)", findings.len());

    if errors > 0 {
        eprintln!("cool-analyze: {errors} correctness finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
