//! cool-check: schedule exploration + coherence-invariant gate.
//!
//! Three layers, one report:
//!
//! 1. **Virtual-scheduler exploration** — the serve admission/retry/drain
//!    machine and the affinity-queue/steal machine are explored over every
//!    interleaving, naive and with sleep-set DPOR pruning, checking the
//!    PR-6 properties at every transition. The gate requires zero
//!    violations *and* that the reduced pass executed strictly fewer
//!    schedules than the naive one (pruning actually happened).
//! 2. **Protocol reachability** — exhaustive small-config exploration of
//!    the directory/cache protocol (1 line, 2–4 caches) with the SWMR /
//!    agreement / conservation invariants checked at every state.
//! 3. **Checked-mode app sweep** — the pinned six apps run under every
//!    scheduling version with per-transition coherence checking enabled
//!    in the memory system; any violation fails the gate.
//!
//! Usage: `cool-check [OUTPUT_PATH]` (default `cool_check.json`). The
//! report is byte-stable, so CI commits it and diffs regenerated output.
//! Exit status 1 on any violation or missing reduction.

use apps::common::sim_config_small;
use apps::Version;
use cool_analyze::apps_driver::version_key;
use cool_analyze::{run_scenario, ScenarioResult};
use cool_core::{AffinityKind, ObjRef, PushSpec, QueueDefect, QueueMachine};
use cool_rt::{ServeDefect, ServeMachine, SubmitSpec};
use dash_sim::{explore_protocol, ProtoStats};

/// Processor count for the checked-mode app sweep (matches the analyzer).
const NPROCS: usize = 8;

fn push(id: u32, token: Option<u64>) -> PushSpec {
    PushSpec {
        id,
        token: token.map(ObjRef),
        kind: if token.is_some() {
            AffinityKind::Object
        } else {
            AffinityKind::None
        },
    }
}

fn spec(id: u64, shard: u64, cost: u64, failures: u32) -> SubmitSpec {
    SubmitSpec {
        id,
        shard,
        cost,
        failures,
    }
}

/// The clean scenarios the gate explores. Sized so the naive pass stays
/// in the tens of thousands of transitions while still containing
/// steals, retries, duplicate submissions and a racing drain.
fn scenarios() -> Vec<ScenarioResult> {
    vec![
        run_scenario(
            "queue-steal",
            &QueueMachine::new(
                4,
                vec![vec![push(0, None), push(1, None)], vec![push(2, None)]],
                QueueDefect::None,
            ),
        ),
        run_scenario(
            "queue-affinity-steal",
            &QueueMachine::new(
                4,
                vec![
                    vec![push(0, Some(7)), push(1, None)],
                    vec![push(2, None)],
                    vec![],
                ],
                QueueDefect::None,
            ),
        ),
        run_scenario(
            "serve-retry-dedup",
            &ServeMachine::new(
                2,
                4,
                64,
                2,
                vec![
                    vec![spec(1, 0, 1, 1), spec(1, 0, 1, 0)],
                    vec![spec(2, 1, 1, 0)],
                ],
                false,
                ServeDefect::None,
            ),
        ),
        run_scenario(
            "serve-drain-race",
            &ServeMachine::new(
                2,
                4,
                64,
                2,
                vec![vec![spec(1, 0, 1, 1)], vec![spec(2, 1, 1, 0)]],
                true,
                ServeDefect::None,
            ),
        ),
    ]
}

struct AppRow {
    app: &'static str,
    version: &'static str,
    transitions: u64,
    violations: u64,
}

/// Run the pinned app sweep in checked mode: every app under every
/// scheduling version, coherence invariants validated per transition.
fn checked_sweep() -> Vec<AppRow> {
    let mut rows = Vec::new();
    for app in apps::driver::APP_NAMES {
        for v in Version::ALL {
            let cfg = sim_config_small(NPROCS, v).with_checked();
            let report = apps::driver::run_app(app, cfg, v, None);
            rows.push(AppRow {
                app,
                version: version_key(v),
                transitions: report.run.coherence_transitions,
                violations: report.run.coherence_violations,
            });
        }
    }
    rows
}

fn scenario_json(s: &ScenarioResult) -> String {
    format!(
        "{{\"name\": \"{}\", \"naive_schedules\": {}, \"dpor_schedules\": {}, \
         \"pruned\": {}, \"naive_transitions\": {}, \"dpor_transitions\": {}, \
         \"states\": {}, \"invariant_checks\": {}, \"sleep_pruned\": {}, \
         \"violations\": {}}}",
        s.name,
        s.naive.schedules,
        s.dpor.schedules,
        s.pruned(),
        s.naive.transitions,
        s.dpor.transitions,
        s.dpor.states,
        s.naive.invariant_checks + s.dpor.invariant_checks,
        s.dpor.sleep_pruned,
        s.naive.violation_count + s.dpor.violation_count,
    )
}

fn proto_json(p: &ProtoStats) -> String {
    format!(
        "{{\"nprocs\": {}, \"states\": {}, \"transitions\": {}, \"checks\": {}, \
         \"violations\": {}}}",
        p.nprocs, p.states, p.transitions, p.checks, p.violations
    )
}

fn app_json(r: &AppRow) -> String {
    format!(
        "{{\"app\": \"{}\", \"version\": \"{}\", \"coherence_transitions\": {}, \
         \"coherence_violations\": {}}}",
        r.app, r.version, r.transitions, r.violations
    )
}

fn to_json(scenarios: &[ScenarioResult], protocol: &[ProtoStats], sweep: &[AppRow]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"tool\": \"cool-check\",\n");
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 < scenarios.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", scenario_json(s), sep));
    }
    out.push_str("  ],\n  \"protocol\": [\n");
    for (i, p) in protocol.iter().enumerate() {
        let sep = if i + 1 < protocol.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", proto_json(p), sep));
    }
    out.push_str("  ],\n  \"apps\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let sep = if i + 1 < sweep.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", app_json(r), sep));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cool_check.json".to_string());

    let mut failed = false;

    let scenarios = scenarios();
    for s in &scenarios {
        let violations = s.naive.violation_count + s.dpor.violation_count;
        let reduced = s.dpor.schedules < s.naive.schedules;
        println!(
            "scenario {:<22} schedules {:>6} -> {:>5} (pruned {:>6}) states {:>6} checks {:>7} violations {}",
            s.name,
            s.naive.schedules,
            s.dpor.schedules,
            s.pruned(),
            s.dpor.states,
            s.naive.invariant_checks + s.dpor.invariant_checks,
            violations,
        );
        if violations > 0 {
            eprintln!("FAIL: scenario {} found invariant violations:", s.name);
            for v in s.naive.violations.iter().chain(s.dpor.violations.iter()) {
                eprintln!("  {} via {:?}", v.message, v.trace);
            }
            failed = true;
        }
        if !reduced {
            eprintln!(
                "FAIL: scenario {}: DPOR executed {} schedules, naive {} — no reduction",
                s.name, s.dpor.schedules, s.naive.schedules
            );
            failed = true;
        }
    }

    let protocol: Vec<ProtoStats> = (2..=4).map(explore_protocol).collect();
    for p in &protocol {
        println!(
            "protocol nprocs {} states {:>4} transitions {:>6} checks {:>6} violations {}",
            p.nprocs, p.states, p.transitions, p.checks, p.violations
        );
        if p.violations > 0 {
            eprintln!("FAIL: protocol exploration at {} caches found violations", p.nprocs);
            failed = true;
        }
    }

    let sweep = checked_sweep();
    for r in &sweep {
        if r.violations > 0 {
            eprintln!(
                "FAIL: {} under {}: {} coherence violations over {} transitions",
                r.app, r.version, r.violations, r.transitions
            );
            failed = true;
        }
    }
    let total: u64 = sweep.iter().map(|r| r.transitions).sum();
    println!(
        "checked sweep: {} runs, {} coherence transitions validated, {} violations",
        sweep.len(),
        total,
        sweep.iter().map(|r| r.violations).sum::<u64>()
    );

    let json = to_json(&scenarios, &protocol, &sweep);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("FAIL: writing {out_path}: {e}");
        failed = true;
    } else {
        println!("wrote {out_path}");
    }

    if failed {
        std::process::exit(1);
    }
}
