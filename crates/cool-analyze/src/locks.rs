//! Lock-order graph construction and cycle detection.
//!
//! Every `with_mutex` chain declares an acquisition order; the runtime emits
//! one [`RtEvent::MutexAcquire`] per lock in that order. An edge `a -> b`
//! means some task acquired `b` while holding `a`. A cycle in this graph is
//! a deadlock hazard: the simulated runtime acquires a task's whole lock set
//! atomically and therefore cannot actually deadlock, but a real COOL
//! runtime (or `cool-rt`) acquiring incrementally could.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use cool_core::{ObjRef, RtEvent, TaskUid};

/// A `held -> acquired` edge with one witness task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held when the acquisition happened.
    pub from: ObjRef,
    /// Lock acquired while `from` was held.
    pub to: ObjRef,
    /// Label of one task that exhibited the order (or its uid string).
    pub witness: String,
}

/// A set of locks forming a cycle in the acquisition-order graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockCycle {
    /// The locks involved, sorted by address for stable output.
    pub locks: Vec<ObjRef>,
    /// Witness tasks contributing edges inside the cycle, sorted.
    pub witnesses: Vec<String>,
}

impl LockCycle {
    /// Human-readable one-line description.
    pub fn describe(&self) -> String {
        let locks: Vec<String> = self.locks.iter().map(|l| l.to_string()).collect();
        format!(
            "lock-order cycle between {} (witnesses: {})",
            locks.join(", "),
            self.witnesses.join(", ")
        )
    }
}

/// Result of the lock-order pass.
#[derive(Clone, Debug, Default)]
pub struct LockReport {
    /// All distinct acquisition-order edges observed.
    pub edges: Vec<LockEdge>,
    /// Cycles (strongly connected components with >= 2 locks, or a
    /// self-edge). Sorted for stable output.
    pub cycles: Vec<LockCycle>,
}

/// Build the lock-order graph from the event stream and find cycles.
pub fn analyze_locks(events: &[RtEvent]) -> LockReport {
    let mut labels: HashMap<TaskUid, &'static str> = HashMap::new();
    let mut held: HashMap<TaskUid, Vec<ObjRef>> = HashMap::new();
    // (from, to) -> witness; BTreeMap for deterministic edge order.
    let mut edges: BTreeMap<(ObjRef, ObjRef), String> = BTreeMap::new();

    let name = |labels: &HashMap<TaskUid, &'static str>, t: TaskUid| -> String {
        labels
            .get(&t)
            .map(|l| (*l).to_string())
            .unwrap_or_else(|| t.to_string())
    };

    for ev in events {
        match ev {
            RtEvent::Spawn {
                child,
                label: Some(l),
                ..
            } => {
                labels.insert(*child, l);
            }
            RtEvent::MutexAcquire { task, lock, .. } => {
                let stack = held.entry(*task).or_default();
                for &h in stack.iter() {
                    if h != *lock {
                        edges
                            .entry((h, *lock))
                            .or_insert_with(|| name(&labels, *task));
                    }
                }
                stack.push(*lock);
            }
            RtEvent::MutexRelease { task, lock, .. } => {
                if let Some(stack) = held.get_mut(task) {
                    if let Some(pos) = stack.iter().rposition(|l| l == lock) {
                        stack.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }

    let cycles = find_cycles(&edges);
    LockReport {
        edges: edges
            .into_iter()
            .map(|((from, to), witness)| LockEdge { from, to, witness })
            .collect(),
        cycles,
    }
}

/// Tarjan SCC over the edge set; SCCs with more than one lock (the runtime
/// never emits self-edges) are cycles.
fn find_cycles(edges: &BTreeMap<(ObjRef, ObjRef), String>) -> Vec<LockCycle> {
    let mut nodes: BTreeSet<ObjRef> = BTreeSet::new();
    let mut adj: BTreeMap<ObjRef, Vec<ObjRef>> = BTreeMap::new();
    for &(from, to) in edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
        adj.entry(from).or_default().push(to);
    }

    // Iterative Tarjan.
    #[derive(Default)]
    struct St {
        index: HashMap<ObjRef, u32>,
        low: HashMap<ObjRef, u32>,
        on_stack: BTreeSet<ObjRef>,
        stack: Vec<ObjRef>,
        next: u32,
        sccs: Vec<Vec<ObjRef>>,
    }
    let mut st = St::default();
    let empty: Vec<ObjRef> = Vec::new();

    for &start in &nodes {
        if st.index.contains_key(&start) {
            continue;
        }
        // (node, next child index) frames.
        let mut frames: Vec<(ObjRef, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                st.index.insert(v, st.next);
                st.low.insert(v, st.next);
                st.next += 1;
                st.stack.push(v);
                st.on_stack.insert(v);
            }
            let children = adj.get(&v).unwrap_or(&empty);
            if *ci < children.len() {
                let w = children[*ci];
                *ci += 1;
                if !st.index.contains_key(&w) {
                    frames.push((w, 0));
                } else if st.on_stack.contains(&w) {
                    let lw = st.index[&w];
                    let lv = st.low.get_mut(&v).unwrap();
                    *lv = (*lv).min(lw);
                }
            } else {
                if st.low[&v] == st.index[&v] {
                    let mut scc = Vec::new();
                    while let Some(w) = st.stack.pop() {
                        st.on_stack.remove(&w);
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if scc.len() > 1 {
                        st.sccs.push(scc);
                    }
                }
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let lv = st.low[&v];
                    let lp = st.low.get_mut(&parent).unwrap();
                    *lp = (*lp).min(lv);
                }
            }
        }
    }

    let mut cycles: Vec<LockCycle> = st
        .sccs
        .into_iter()
        .map(|mut scc| {
            scc.sort();
            let mut witnesses: BTreeSet<String> = BTreeSet::new();
            for (&(from, to), w) in edges {
                if scc.contains(&from) && scc.contains(&to) {
                    witnesses.insert(w.clone());
                }
            }
            LockCycle {
                locks: scc,
                witnesses: witnesses.into_iter().collect(),
            }
        })
        .collect();
    cycles.sort_by(|a, b| a.locks.cmp(&b.locks));
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acq(task: u64, lock: u64) -> RtEvent {
        RtEvent::MutexAcquire {
            task: TaskUid(task),
            lock: ObjRef(lock),
            time: 0,
        }
    }

    fn rel(task: u64, lock: u64) -> RtEvent {
        RtEvent::MutexRelease {
            task: TaskUid(task),
            lock: ObjRef(lock),
            time: 0,
        }
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let evs = vec![
            acq(1, 0xA),
            acq(1, 0xB),
            rel(1, 0xB),
            rel(1, 0xA),
            acq(2, 0xA),
            acq(2, 0xB),
            rel(2, 0xB),
            rel(2, 0xA),
        ];
        let rep = analyze_locks(&evs);
        assert_eq!(rep.edges.len(), 1);
        assert!(rep.cycles.is_empty());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let evs = vec![
            acq(1, 0xA),
            acq(1, 0xB),
            rel(1, 0xB),
            rel(1, 0xA),
            acq(2, 0xB),
            acq(2, 0xA),
            rel(2, 0xA),
            rel(2, 0xB),
        ];
        let rep = analyze_locks(&evs);
        assert_eq!(rep.cycles.len(), 1);
        assert_eq!(rep.cycles[0].locks, vec![ObjRef(0xA), ObjRef(0xB)]);
    }

    #[test]
    fn three_lock_rotation_is_one_cycle() {
        let evs = vec![
            acq(1, 0xA),
            acq(1, 0xB),
            rel(1, 0xB),
            rel(1, 0xA),
            acq(2, 0xB),
            acq(2, 0xC),
            rel(2, 0xC),
            rel(2, 0xB),
            acq(3, 0xC),
            acq(3, 0xA),
            rel(3, 0xA),
            rel(3, 0xC),
        ];
        let rep = analyze_locks(&evs);
        assert_eq!(rep.cycles.len(), 1);
        assert_eq!(
            rep.cycles[0].locks,
            vec![ObjRef(0xA), ObjRef(0xB), ObjRef(0xC)]
        );
    }

    #[test]
    fn single_lock_tasks_produce_no_edges() {
        let evs = vec![acq(1, 0xA), rel(1, 0xA), acq(2, 0xA), rel(2, 0xA)];
        let rep = analyze_locks(&evs);
        assert!(rep.edges.is_empty());
        assert!(rep.cycles.is_empty());
    }
}
