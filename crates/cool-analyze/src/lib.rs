//! # cool-analyze — dynamic analysis over the deterministic simulator
//!
//! The simulated COOL runtime (`cool-sim`) can record an [`RtEvent`] stream
//! of everything scheduling-visible a run did: spawns, phase barriers, mutex
//! acquisitions, sync points, mirrored memory accesses, prefetches and
//! migrations. Because the simulator is deterministic and runs task bodies
//! atomically, the stream is totally ordered consistently with the
//! happens-before relation it encodes — so each analysis is a single
//! forward pass, and a finding reproduces bit-identically on re-run.
//!
//! Three passes:
//!
//! * [`hb`] — a vector-clock **happens-before race detector**: plain memory
//!   accesses that overlap in bytes, conflict (at least one write, not both
//!   relaxed atomics), and are unordered by spawn/phase/mutex/sync edges are
//!   data races. Block-granular histories with byte-exact overlap checks
//!   keep false sharing from being misreported.
//! * [`locks`] — a **lock-order graph**: `with_mutex` chains declare
//!   acquisition orders; a cycle means a real runtime acquiring
//!   incrementally could deadlock (the simulator acquires lock sets
//!   atomically, so it can only *observe* the hazard, never hang on it).
//! * [`lints`] — **affinity-hint lints**: stale OBJECT-affinity placements
//!   (object migrated between spawn and dispatch), prefetches of data the
//!   task never touches, and objects ping-ponging between memory nodes.
//!
//! [`apps_driver`] runs all six case-study apps with recording on (default
//! and fault-injected schedules) and [`report`] serialises the findings to
//! the committed `analyze_findings.json` — the CI gate fails on any race,
//! lock cycle, or change in lint findings.
//!
//! [`RtEvent`]: cool_core::RtEvent

#![warn(missing_docs)]

pub mod apps_driver;
pub mod check;
pub mod hb;
pub mod lints;
pub mod locks;
pub mod report;
pub mod service;
pub mod vc;

pub use apps_driver::{analyze_all, analyze_app, analyze_events, run_app, APPS};
pub use check::{explore, run_scenario, ExploreStats, ScenarioResult, ScheduleViolation};
pub use service::analyze_service;
pub use hb::{detect_races, Race, RaceReport};
pub use lints::{run_lints, Lint, LintKind};
pub use locks::{analyze_locks, LockCycle, LockReport};
pub use report::{findings_to_json, Analysis, RunFindings};
pub use vc::VectorClock;
