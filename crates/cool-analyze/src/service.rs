//! The service matrix: run the `cool-rt` work server with [`RtEvent`]
//! recording and feed the request-lifecycle streams through the same three
//! analysis passes as the batch apps.
//!
//! Each scenario is **clean by construction under every interleaving** —
//! the properties that make it so are exactly the serve happens-before
//! edges the detector models:
//!
//! * `sharded` — single-worker domains: every request of a domain runs on
//!   one worker thread, so worker program order (released by each
//!   [`RtEvent::ReqOutcome`], acquired by the next
//!   [`RtEvent::ReqAttempt`]) serialises all per-shard state accesses,
//!   no matter how submissions interleave;
//! * `sharded` + faulted — same, plus fault-injected transient failures:
//!   a retried request re-runs on the same single worker, so the requeue
//!   channel edge and worker order both cover its accesses;
//! * `parallel` — multi-worker domains, but every request touches only
//!   its own private byte range, so concurrent attempts never conflict.
//!
//! Shedding is disabled (ample capacity) and faults are keyed by request
//! id, so admitted/attempt counts — and therefore the serialised findings
//! — are byte-stable across runs and hosts.
//!
//! [`RtEvent`]: cool_core::RtEvent
//! [`RtEvent::ReqAttempt`]: cool_core::RtEvent::ReqAttempt
//! [`RtEvent::ReqOutcome`]: cool_core::RtEvent::ReqOutcome

use cool_core::{AccessKind, FaultPlan};
use cool_rt::{Request, ServeConfig, WorkServer};

use crate::apps_driver::analyze_events;
use crate::report::RunFindings;

/// Requests per service scenario.
const REQUESTS: u64 = 48;

/// Shard keys per scenario (several shards fold onto each domain).
const SHARDS: u64 = 12;

/// Base address of the simulated per-shard state blocks.
const SHARD_STATE_BASE: u64 = 0x5E00_0000;

/// Bytes of per-shard (or per-request) simulated state.
const STATE_BYTES: u64 = 64;

/// Build one request whose declared accesses model a read-modify-write of
/// its shard's state block.
fn shard_request(id: u64) -> Request {
    let shard = id % SHARDS;
    let addr = SHARD_STATE_BASE + shard * STATE_BYTES;
    Request::new(id, shard, 1, |_| Ok(())).with_accesses(vec![
        (addr, STATE_BYTES, AccessKind::Read),
        (addr, STATE_BYTES, AccessKind::Write),
    ])
}

/// Build one request writing only its own private block.
fn private_request(id: u64) -> Request {
    let addr = SHARD_STATE_BASE + id * STATE_BYTES;
    Request::new(id, id % SHARDS, 1, |_| Ok(()))
        .with_accesses(vec![(addr, STATE_BYTES, AccessKind::Write)])
}

/// Run one serve scenario to completion and analyze its event stream.
fn run_scenario(
    version: &str,
    schedule: &str,
    cfg: ServeConfig,
    faults: Option<FaultPlan>,
    build: impl Fn(u64) -> Request,
) -> RunFindings {
    let srv = match faults {
        Some(plan) => WorkServer::with_faults(cfg, plan),
        None => WorkServer::new(cfg),
    };
    for id in 0..REQUESTS {
        srv.submit(build(id)).expect("service scenario must not shed");
    }
    srv.drain();
    let events = srv.take_events();
    RunFindings {
        app: "serve".to_string(),
        version: version.to_string(),
        schedule: schedule.to_string(),
        analysis: analyze_events(&events),
    }
}

/// Ample capacity so admission never sheds (counts stay deterministic).
fn base_cfg(domains: usize, workers_per_domain: usize) -> ServeConfig {
    ServeConfig::new(domains, workers_per_domain)
        .with_capacity(REQUESTS as usize + 1)
        .with_events()
}

/// The retry-exercising fault plan: transient failures on a fixed set of
/// request ids (id-keyed, so the same requests retry in every run).
fn service_faults() -> FaultPlan {
    FaultPlan::new(7)
        .fail_request(5)
        .fail_request(17)
        .fail_request(29)
        .fail_request(41)
}

/// Analyze the full service matrix (rows appended to the batch findings by
/// [`analyze_all`](crate::analyze_all)).
pub fn analyze_service() -> Vec<RunFindings> {
    vec![
        run_scenario("sharded", "default", base_cfg(4, 1), None, shard_request),
        run_scenario(
            "sharded",
            "faulted",
            base_cfg(4, 1),
            Some(service_faults()),
            shard_request,
        ),
        run_scenario("parallel", "default", base_cfg(2, 3), None, private_request),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_matrix_is_clean_and_sized() {
        let rows = analyze_service();
        assert_eq!(rows.len(), 3);
        for f in &rows {
            let who = format!("serve {} {}", f.version, f.schedule);
            assert!(f.analysis.races.races.is_empty(), "{who}: {:?}", f.analysis.races.races);
            assert!(f.analysis.locks.cycles.is_empty(), "{who}");
            assert!(f.analysis.lints.is_empty(), "{who}");
            assert_eq!(f.analysis.races.tasks, REQUESTS, "{who}: every request admitted");
            assert!(f.analysis.races.accesses >= REQUESTS, "{who}");
        }
    }

    #[test]
    fn service_counts_are_deterministic() {
        // Injected failures never run the body, so declared accesses are
        // emitted exactly once per request in every scenario.
        let rows = analyze_service();
        assert_eq!(rows[0].analysis.races.accesses, 2 * REQUESTS);
        assert_eq!(rows[1].analysis.races.accesses, 2 * REQUESTS);
        assert_eq!(rows[2].analysis.races.accesses, REQUESTS);
    }

    #[test]
    fn unsharded_parallel_writes_would_race() {
        // Sanity check that the detector has teeth on serve streams: two
        // requests writing the same block on a multi-worker pool, forced
        // onto *different* workers by a rendezvous (each body waits for the
        // other to start, so one worker cannot run them back to back).
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let srv = WorkServer::new(base_cfg(1, 3));
        let gate = Arc::new(AtomicU32::new(0));
        for id in 0..2u64 {
            let gate = gate.clone();
            srv.submit(
                Request::new(id, 0, 1, move |_| {
                    gate.fetch_add(1, Ordering::SeqCst);
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
                    while gate.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline
                    {
                        std::hint::spin_loop();
                    }
                    Ok(())
                })
                .with_accesses(vec![(SHARD_STATE_BASE, STATE_BYTES, AccessKind::Write)]),
            )
            .unwrap();
        }
        srv.drain();
        assert_eq!(gate.load(Ordering::SeqCst), 2, "rendezvous must complete");
        let report = crate::detect_races(&srv.take_events());
        assert!(
            !report.races.is_empty(),
            "concurrent same-block writes on distinct workers must race"
        );
    }
}
