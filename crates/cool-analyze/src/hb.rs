//! Happens-before race detection over an [`RtEvent`] stream.
//!
//! The simulator runs task bodies atomically and emits events in an order
//! consistent with the happens-before relation (see `cool_core::events`), so
//! one forward pass suffices: maintain a vector clock per task, join along
//! the synchronisation edges (spawn, phase barrier, mutex chain, sync token),
//! and check every plain memory access against a bounded per-block history of
//! earlier accesses.
//!
//! Conflicts require **actual byte overlap**, not merely a shared 64-byte
//! block: false sharing (e.g. Ocean's unaligned region columns) is a
//! performance problem, not a race, and must not be reported as one.
//!
//! Serve-layer request lifecycles (`ReqAdmit`/`ReqAttempt`/`ReqOutcome`/
//! `ReqDrain`) map onto the same machinery: the admit is a spawn-style edge
//! plus a release onto the domain's queue channel, each attempt acquires
//! that channel and the worker's program order, each outcome releases both
//! (the channel only on retry, modelling the requeue) and feeds the drain
//! barrier, and the drain joins everything back into the root.

use std::collections::{HashMap, HashSet};

use cool_core::{AccessKind, ObjRef, ProcId, RtEvent, TaskUid};

use crate::vc::VectorClock;

/// Cache-line granularity used to index access histories. Conflicts are
/// still checked at byte granularity; this only bounds how many records an
/// access is compared against.
const BLOCK: u64 = 64;

/// Cap on retained records per block after pruning. Overflow drops the
/// oldest record — that can only *miss* a race, never invent one.
const MAX_RECORDS_PER_BLOCK: usize = 128;

/// Cap on distinct reported races (deduplicated); analysis keeps counting
/// but stops storing details past this.
const MAX_RACES: usize = 64;

/// One side of a reported race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// Task that performed the access.
    pub task: TaskUid,
    /// Spawn label of the task, when it had one.
    pub label: Option<&'static str>,
    /// Read, write, or atomic flavour of the access.
    pub kind: AccessKind,
    /// Byte range `[addr, addr + len)` of the access.
    pub addr: u64,
    /// Length in bytes of the access.
    pub len: u64,
    /// Virtual time the access was issued at.
    pub time: u64,
}

/// Two overlapping, conflicting, happens-before-unordered accesses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// Base address of the 64-byte block the conflict was found in.
    pub block: u64,
    /// The earlier access in the recorded stream.
    pub first: AccessInfo,
    /// The later access.
    pub second: AccessInfo,
}

impl Race {
    fn side(a: &AccessInfo) -> String {
        format!(
            "{} {} of {} bytes at {:#x} (t={})",
            a.label.unwrap_or("task"),
            a.kind.label(),
            a.len,
            a.addr,
            a.time
        )
    }

    /// Human-readable one-line description.
    pub fn describe(&self) -> String {
        format!(
            "data race in block {:#x}: {} vs {}",
            self.block,
            Race::side(&self.first),
            Race::side(&self.second)
        )
    }
}

/// Result of the happens-before pass.
#[derive(Clone, Debug, Default)]
pub struct RaceReport {
    /// Deduplicated races (capped at `MAX_RACES` stored entries).
    pub races: Vec<Race>,
    /// Total conflicting pairs found before deduplication.
    pub raw_conflicts: u64,
    /// Number of tasks seen in the stream.
    pub tasks: u64,
    /// Number of memory access events checked.
    pub accesses: u64,
}

/// Per-task analysis state: a slot in the vector-clock space, the task's own
/// counter (incremented at every release point) and its clock.
struct TaskState {
    slot: u32,
    counter: u32,
    vc: VectorClock,
}

impl TaskState {
    fn new(slot: u32, mut vc: VectorClock) -> Self {
        vc.raise(slot, 1);
        TaskState { slot, counter: 1, vc }
    }

    /// A release point: start a new epoch for this task.
    fn bump(&mut self) {
        self.counter += 1;
        let (slot, counter) = (self.slot, self.counter);
        self.vc.raise(slot, counter);
    }
}

/// One remembered access in a block history.
struct Record {
    slot: u32,
    clock: u32,
    task: TaskUid,
    kind: AccessKind,
    addr: u64,
    len: u64,
    time: u64,
}

impl Record {
    fn end(&self) -> u64 {
        self.addr + self.len
    }
}

/// Do two access kinds conflict (given overlapping bytes)?
fn conflicts(a: AccessKind, b: AccessKind) -> bool {
    (a.is_write() || b.is_write()) && !(a.is_atomic() && b.is_atomic())
}

/// Is `a`'s conflict set a subset of `b`'s? (Then a record of kind `a` can be
/// pruned in favour of an ordered-later, byte-subsuming record of kind `b`.)
fn conflict_subset(a: AccessKind, b: AccessKind) -> bool {
    const ALL: [AccessKind; 4] = [
        AccessKind::Read,
        AccessKind::Write,
        AccessKind::AtomicRead,
        AccessKind::AtomicWrite,
    ];
    ALL.iter().all(|&k| !conflicts(a, k) || conflicts(b, k))
}

/// Run the happens-before race detection pass over `events`.
pub fn detect_races(events: &[RtEvent]) -> RaceReport {
    let mut states: HashMap<TaskUid, TaskState> = HashMap::new();
    states.insert(TaskUid::ROOT, TaskState::new(0, VectorClock::new()));
    let mut next_slot: u32 = 1;
    let mut labels: HashMap<TaskUid, &'static str> = HashMap::new();
    let mut lock_vcs: HashMap<ObjRef, VectorClock> = HashMap::new();
    let mut token_vcs: HashMap<ObjRef, VectorClock> = HashMap::new();
    // Join of every completed task's clock in the current (and earlier)
    // phases; folded into the root at each PhaseEnd barrier.
    let mut phase_join = VectorClock::new();
    // Per-worker program order for serve attempts: a worker thread runs its
    // attempts sequentially, so each outcome releases into the worker's
    // clock and the next attempt on that worker acquires it.
    let mut worker_vcs: HashMap<ProcId, VectorClock> = HashMap::new();
    // Join of every request outcome; folded into the root at ReqDrain.
    let mut drain_join = VectorClock::new();
    let mut histories: HashMap<u64, Vec<Record>> = HashMap::new();
    let mut reported: HashSet<(u64, String, &'static str, String, &'static str)> = HashSet::new();
    let mut out = RaceReport::default();

    for ev in events {
        match ev {
            RtEvent::PhaseBegin { .. } => {}
            RtEvent::PhaseEnd { .. } => {
                // The waitfor barrier: the root (and everything spawned
                // after) happens-after every task of the finished phase.
                if let Some(root) = states.get_mut(&TaskUid::ROOT) {
                    root.vc.join(&phase_join);
                    root.bump();
                }
            }
            RtEvent::Spawn {
                parent,
                child,
                label,
                ..
            } => {
                out.tasks += 1;
                if let Some(l) = label {
                    labels.insert(*child, l);
                }
                let parent_uid = parent.unwrap_or(TaskUid::ROOT);
                let inherited = match states.get_mut(&parent_uid) {
                    Some(p) => {
                        let vc = p.vc.clone();
                        p.bump();
                        vc
                    }
                    None => VectorClock::new(),
                };
                states.insert(*child, TaskState::new(next_slot, inherited));
                next_slot += 1;
            }
            RtEvent::TaskStart { .. } => {}
            RtEvent::TaskEnd { task, .. } => {
                if let Some(st) = states.get(task) {
                    phase_join.join(&st.vc);
                }
            }
            RtEvent::MutexAcquire { task, lock, .. } => {
                if let (Some(st), Some(lv)) = (states.get_mut(task), lock_vcs.get(lock)) {
                    st.vc.join(lv);
                }
            }
            RtEvent::MutexRelease { task, lock, .. } => {
                if let Some(st) = states.get_mut(task) {
                    lock_vcs.insert(*lock, st.vc.clone());
                    st.bump();
                }
            }
            RtEvent::Sync { task, token, .. } => {
                // Combined release-acquire on the token.
                if let Some(st) = states.get_mut(task) {
                    if let Some(tv) = token_vcs.get(token) {
                        st.vc.join(tv);
                    }
                    token_vcs.insert(*token, st.vc.clone());
                    st.bump();
                }
            }
            RtEvent::Access {
                task,
                obj,
                len,
                kind,
                time,
                ..
            } => {
                out.accesses += 1;
                let Some(st) = states.get(task) else { continue };
                let (addr, len) = (obj.addr(), *len);
                if len == 0 {
                    continue;
                }
                let end = addr + len;
                let first_block = addr / BLOCK;
                let last_block = (end - 1) / BLOCK;
                for b in first_block..=last_block {
                    let hist = histories.entry(b).or_default();
                    for r in hist.iter() {
                        let overlap = r.addr < end && addr < r.end();
                        if overlap
                            && conflicts(r.kind, *kind)
                            && r.task != *task
                            && st.vc.get(r.slot) < r.clock
                        {
                            out.raw_conflicts += 1;
                            report(
                                &mut out,
                                &mut reported,
                                &labels,
                                b * BLOCK,
                                r,
                                *task,
                                *kind,
                                addr,
                                len,
                                *time,
                            );
                        }
                    }
                    // FastTrack-style pruning: drop records the new access
                    // dominates — ordered before it, byte-subsumed, and with
                    // a conflict set the new kind covers.
                    let (slot, clock, vc) = (st.slot, st.counter, &st.vc);
                    hist.retain(|r| {
                        let ordered = r.slot == slot || vc.get(r.slot) >= r.clock;
                        !(ordered
                            && addr <= r.addr
                            && r.end() <= end
                            && conflict_subset(r.kind, *kind))
                    });
                    if hist.len() >= MAX_RECORDS_PER_BLOCK {
                        hist.remove(0);
                    }
                    hist.push(Record {
                        slot,
                        clock,
                        task: *task,
                        kind: *kind,
                        addr,
                        len,
                        time: *time,
                    });
                }
            }
            RtEvent::ReqAdmit { req, domain, .. } => {
                // Spawn-style: the submitting (root) context happens-before
                // the request; then release onto the domain queue channel so
                // the attempt that pops it acquires the admit.
                out.tasks += 1;
                let inherited = match states.get_mut(&TaskUid::ROOT) {
                    Some(p) => {
                        let vc = p.vc.clone();
                        p.bump();
                        vc
                    }
                    None => VectorClock::new(),
                };
                // The channel release carries the *submitter's* clock only —
                // joining the request's own clock would falsely order later
                // poppers after the request's first-epoch accesses.
                token_vcs.entry(*domain).or_default().join(&inherited);
                states.insert(*req, TaskState::new(next_slot, inherited));
                next_slot += 1;
            }
            RtEvent::ReqAttempt {
                req, domain, proc, ..
            } => {
                // Acquire the domain queue channel (joins the admit and any
                // retry requeues) and the worker's program order.
                if let Some(st) = states.get_mut(req) {
                    if let Some(tv) = token_vcs.get(domain) {
                        st.vc.join(tv);
                    }
                    if let Some(wv) = worker_vcs.get(proc) {
                        st.vc.join(wv);
                    }
                }
            }
            RtEvent::ReqOutcome {
                req,
                ok,
                domain,
                proc,
                ..
            } => {
                // Release the worker's program order and feed the drain
                // barrier; a retry also releases onto the domain channel
                // (the requeue happens-before the next attempt's pop).
                if let Some(st) = states.get_mut(req) {
                    worker_vcs.insert(*proc, st.vc.clone());
                    drain_join.join(&st.vc);
                    if !*ok {
                        token_vcs.entry(*domain).or_default().join(&st.vc);
                    }
                    st.bump();
                }
            }
            RtEvent::ReqDrain { .. } => {
                // Barrier: the drainer happens-after every outcome so far.
                if let Some(root) = states.get_mut(&TaskUid::ROOT) {
                    root.vc.join(&drain_join);
                    root.bump();
                }
            }
            RtEvent::Prefetch { .. } | RtEvent::Migrate { .. } => {}
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn report(
    out: &mut RaceReport,
    reported: &mut HashSet<(u64, String, &'static str, String, &'static str)>,
    labels: &HashMap<TaskUid, &'static str>,
    block: u64,
    r: &Record,
    task: TaskUid,
    kind: AccessKind,
    addr: u64,
    len: u64,
    time: u64,
) {
    let name = |t: TaskUid| -> String {
        labels
            .get(&t)
            .map(|l| (*l).to_string())
            .unwrap_or_else(|| t.to_string())
    };
    // Unordered pair: which side came first is schedule detail, not a
    // distinct race.
    let mut a = (name(r.task), r.kind.label());
    let mut b = (name(task), kind.label());
    if b < a {
        std::mem::swap(&mut a, &mut b);
    }
    let key = (block, a.0, a.1, b.0, b.1);
    if !reported.insert(key) || out.races.len() >= MAX_RACES {
        return;
    }
    out.races.push(Race {
        block,
        first: AccessInfo {
            task: r.task,
            label: labels.get(&r.task).copied(),
            kind: r.kind,
            addr: r.addr,
            len: r.len,
            time: r.time,
        },
        second: AccessInfo {
            task,
            label: labels.get(&task).copied(),
            kind,
            addr,
            len,
            time,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_core::ProcId;

    fn spawn(parent: Option<u64>, child: u64) -> RtEvent {
        RtEvent::Spawn {
            parent: parent.map(TaskUid),
            child: TaskUid(child),
            label: None,
            object: None,
            target: ProcId(0),
            time: 0,
        }
    }

    fn access(task: u64, addr: u64, len: u64, kind: AccessKind) -> RtEvent {
        RtEvent::Access {
            task: TaskUid(task),
            obj: ObjRef(addr),
            len,
            kind,
            proc: ProcId(0),
            time: 0,
        }
    }

    fn end(task: u64) -> RtEvent {
        RtEvent::TaskEnd {
            task: TaskUid(task),
            proc: ProcId(0),
            time: 0,
        }
    }

    #[test]
    fn sibling_writes_race() {
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            access(2, 0x100, 8, AccessKind::Write),
            access(3, 0x100, 8, AccessKind::Write),
        ];
        let rep = detect_races(&evs);
        assert_eq!(rep.races.len(), 1, "{rep:?}");
    }

    #[test]
    fn spawn_edge_orders_parent_before_child() {
        let evs = vec![
            spawn(None, 1),
            access(1, 0x100, 8, AccessKind::Write),
            spawn(Some(1), 2),
            access(2, 0x100, 8, AccessKind::Write),
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn parent_write_after_spawn_races_with_child() {
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            access(1, 0x100, 8, AccessKind::Write),
            access(2, 0x100, 8, AccessKind::Write),
        ];
        assert_eq!(detect_races(&evs).races.len(), 1);
    }

    #[test]
    fn phase_barrier_orders_phases() {
        let evs = vec![
            RtEvent::PhaseBegin { seq: 1 },
            spawn(None, 1),
            access(1, 0x100, 8, AccessKind::Write),
            end(1),
            RtEvent::PhaseEnd { seq: 1 },
            RtEvent::PhaseBegin { seq: 2 },
            spawn(None, 2),
            access(2, 0x100, 8, AccessKind::Write),
            end(2),
            RtEvent::PhaseEnd { seq: 2 },
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn mutex_chain_orders_critical_sections() {
        let lock = ObjRef(0x900);
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            RtEvent::MutexAcquire { task: TaskUid(2), lock, time: 0 },
            access(2, 0x100, 8, AccessKind::Write),
            RtEvent::MutexRelease { task: TaskUid(2), lock, time: 1 },
            RtEvent::MutexAcquire { task: TaskUid(3), lock, time: 2 },
            access(3, 0x100, 8, AccessKind::Write),
            RtEvent::MutexRelease { task: TaskUid(3), lock, time: 3 },
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn different_locks_do_not_order() {
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            RtEvent::MutexAcquire { task: TaskUid(2), lock: ObjRef(0x900), time: 0 },
            access(2, 0x100, 8, AccessKind::Write),
            RtEvent::MutexRelease { task: TaskUid(2), lock: ObjRef(0x900), time: 1 },
            RtEvent::MutexAcquire { task: TaskUid(3), lock: ObjRef(0x980), time: 2 },
            access(3, 0x100, 8, AccessKind::Write),
            RtEvent::MutexRelease { task: TaskUid(3), lock: ObjRef(0x980), time: 3 },
        ];
        assert_eq!(detect_races(&evs).races.len(), 1);
    }

    #[test]
    fn sync_token_orders_release_acquire() {
        let tok = ObjRef(0xA00);
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            access(2, 0x100, 8, AccessKind::Write),
            RtEvent::Sync { task: TaskUid(2), token: tok, time: 1 },
            RtEvent::Sync { task: TaskUid(3), token: tok, time: 2 },
            access(3, 0x100, 8, AccessKind::Write),
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn non_overlapping_bytes_in_one_block_do_not_race() {
        // False sharing: same 64-byte block, disjoint bytes.
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            access(2, 0x100, 8, AccessKind::Write),
            access(3, 0x108, 8, AccessKind::Write),
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn reads_do_not_race_with_reads() {
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            access(2, 0x100, 8, AccessKind::Read),
            access(3, 0x100, 8, AccessKind::Read),
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn atomics_do_not_race_with_atomics_but_do_with_plain() {
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            access(2, 0x100, 8, AccessKind::AtomicWrite),
            access(3, 0x100, 8, AccessKind::AtomicRead),
        ];
        assert!(detect_races(&evs).races.is_empty());
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            access(2, 0x100, 8, AccessKind::AtomicWrite),
            access(3, 0x100, 8, AccessKind::Read),
        ];
        assert_eq!(detect_races(&evs).races.len(), 1);
    }

    #[test]
    fn spanning_access_races_in_every_block_but_reports_once_per_block() {
        let evs = vec![
            spawn(None, 1),
            spawn(Some(1), 2),
            spawn(Some(1), 3),
            access(2, 0x100, 128, AccessKind::Write),
            access(3, 0x100, 128, AccessKind::Write),
        ];
        let rep = detect_races(&evs);
        assert_eq!(rep.races.len(), 2, "one per 64-byte block");
    }

    fn admit(req: u64, domain: u64) -> RtEvent {
        RtEvent::ReqAdmit {
            req: TaskUid(req),
            domain: ObjRef(domain),
            time: 0,
        }
    }

    fn attempt(req: u64, n: u32, domain: u64, proc: usize) -> RtEvent {
        RtEvent::ReqAttempt {
            req: TaskUid(req),
            attempt: n,
            domain: ObjRef(domain),
            proc: ProcId(proc),
            time: 0,
        }
    }

    fn outcome(req: u64, n: u32, ok: bool, domain: u64, proc: usize) -> RtEvent {
        RtEvent::ReqOutcome {
            req: TaskUid(req),
            attempt: n,
            ok,
            domain: ObjRef(domain),
            proc: ProcId(proc),
            time: 0,
        }
    }

    #[test]
    fn admit_orders_submitter_before_attempt() {
        let evs = vec![
            access(0, 0x100, 8, AccessKind::Write), // root prepares the request
            admit(10, 0xD0),
            attempt(10, 1, 0xD0, 0),
            access(10, 0x100, 8, AccessKind::Write),
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn concurrent_requests_on_distinct_workers_race() {
        let evs = vec![
            admit(10, 0xD0),
            admit(11, 0xD8),
            attempt(10, 1, 0xD0, 0),
            attempt(11, 1, 0xD8, 1),
            access(10, 0x100, 8, AccessKind::Write),
            access(11, 0x100, 8, AccessKind::Write),
        ];
        assert_eq!(detect_races(&evs).races.len(), 1);
    }

    #[test]
    fn retry_requeue_releases_onto_the_domain_channel() {
        // Request 10's attempt 1 (worker 0) fails; the requeue releases
        // onto the domain channel, so request 11's attempt — which pops the
        // same channel on another worker — is ordered after 10's access.
        let evs = vec![
            admit(10, 0xD0),
            admit(11, 0xD0),
            attempt(10, 1, 0xD0, 0),
            access(10, 0x100, 8, AccessKind::Write),
            outcome(10, 1, false, 0xD0, 0),
            attempt(11, 1, 0xD0, 1),
            access(11, 0x100, 8, AccessKind::Write),
            outcome(11, 1, true, 0xD0, 1),
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn successful_outcome_does_not_release_onto_the_channel() {
        // Same shape but attempt 1 *succeeds*: no requeue, so the channel
        // carries only the admits and the two accesses race.
        let evs = vec![
            admit(10, 0xD0),
            admit(11, 0xD0),
            attempt(10, 1, 0xD0, 0),
            access(10, 0x100, 8, AccessKind::Write),
            outcome(10, 1, true, 0xD0, 0),
            attempt(11, 1, 0xD0, 1),
            access(11, 0x100, 8, AccessKind::Write),
            outcome(11, 1, true, 0xD0, 1),
        ];
        assert_eq!(detect_races(&evs).races.len(), 1);
    }

    #[test]
    fn worker_program_order_serializes_its_requests() {
        // Two independent requests run back-to-back on one worker: the
        // second acquires the worker clock released by the first's outcome.
        let evs = vec![
            admit(10, 0xD0),
            admit(11, 0xD8),
            attempt(10, 1, 0xD0, 0),
            access(10, 0x100, 8, AccessKind::Write),
            outcome(10, 1, true, 0xD0, 0),
            attempt(11, 1, 0xD8, 0),
            access(11, 0x100, 8, AccessKind::Write),
            outcome(11, 1, true, 0xD8, 0),
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn drain_barrier_orders_outcomes_before_root() {
        let evs = vec![
            admit(10, 0xD0),
            attempt(10, 1, 0xD0, 0),
            access(10, 0x100, 8, AccessKind::Write),
            outcome(10, 1, true, 0xD0, 0),
            RtEvent::ReqDrain { time: 1 },
            access(0, 0x100, 8, AccessKind::Write), // root reads results
        ];
        assert!(detect_races(&evs).races.is_empty());
    }

    #[test]
    fn root_access_without_drain_races_with_request() {
        let evs = vec![
            admit(10, 0xD0),
            attempt(10, 1, 0xD0, 0),
            access(10, 0x100, 8, AccessKind::Write),
            outcome(10, 1, true, 0xD0, 0),
            access(0, 0x100, 8, AccessKind::Write), // no drain first
        ];
        assert_eq!(detect_races(&evs).races.len(), 1);
    }

    #[test]
    fn duplicate_pairs_are_deduplicated() {
        let mut evs = vec![spawn(None, 1), spawn(Some(1), 2), spawn(Some(1), 3)];
        for _ in 0..10 {
            evs.push(access(2, 0x100, 8, AccessKind::Write));
            evs.push(access(3, 0x100, 8, AccessKind::Write));
        }
        let rep = detect_races(&evs);
        assert_eq!(rep.races.len(), 1);
        assert!(rep.raw_conflicts >= 10);
    }
}
