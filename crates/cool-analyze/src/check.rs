//! cool-check: exhaustive schedule exploration with sleep-set (DPOR)
//! pruning over the runtime's virtual state machines.
//!
//! The runtime's concurrency-bearing state machines — the serve admission/
//! retry/drain pipeline ([`ServeMachine`](cool_rt::ServeMachine)) and the
//! affinity queue + steal protocol
//! ([`QueueMachine`](cool_core::QueueMachine)) — implement
//! [`VirtualProgram`]: explicit decision points
//! (`enabled`), deterministic transitions (`step`), and per-state
//! invariants (`check`). This module replays them over **every**
//! interleaving up to the scenario bound, in two modes:
//!
//! * **naive** — plain depth-first enumeration of all schedules; the
//!   denominator that proves pruning happened;
//! * **sleep-set DPOR** — classic sleep sets (Godefroid): when a node
//!   explores ops `o1, o2, …` in order, the subtree under `o2` need not
//!   re-explore `o1` first unless some op dependent with `o1` intervenes.
//!   Each child inherits `{s ∈ sleep ∪ explored-before : independent(s,
//!   op)}` and ops found sleeping are pruned. Independence comes from the
//!   machine's own `dependent` over-approximation, so pruned schedules are
//!   equivalent (Mazurkiewicz-trace) to an explored one and the invariant
//!   coverage is unchanged.
//!
//! Every reached state is checked; terminal states additionally pass
//! `check_terminal` (drain accounting, lost-work detection). A violation
//! records the full op trace that reached it, so seeded-defect tests can
//! assert not just *that* a defect fires but *where*.

use std::collections::HashSet;

use cool_core::VirtualProgram;

/// Exploration bounds: a hard cap on transitions so a mis-sized scenario
/// fails loudly instead of running away.
pub const MAX_TRANSITIONS: u64 = 20_000_000;

/// One invariant violation found on some schedule.
#[derive(Clone, Debug)]
pub struct ScheduleViolation {
    /// The invariant's error message.
    pub message: String,
    /// The op trace (debug-formatted) that reached the violating state.
    pub trace: Vec<String>,
    /// Whether the violation fired at a terminal state (`check_terminal`)
    /// rather than mid-schedule.
    pub terminal: bool,
}

/// Statistics of one exploration pass.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Complete schedules executed to a terminal state.
    pub schedules: u64,
    /// Transitions stepped.
    pub transitions: u64,
    /// Distinct state keys encountered (informational; states are *not*
    /// deduplicated — sleep sets alone stay sound without covering sets).
    pub states: u64,
    /// Invariant evaluations (one `check` per reached state plus one
    /// `check_terminal` per completed schedule).
    pub invariant_checks: u64,
    /// Ops skipped because they were in the sleep set (0 in naive mode).
    pub sleep_pruned: u64,
    /// Violations found (first [`MAX_VIOLATIONS`] stored).
    pub violations: Vec<ScheduleViolation>,
    /// Total violations including ones past the storage cap.
    pub violation_count: u64,
}

/// Cap on stored violation traces.
pub const MAX_VIOLATIONS: usize = 8;

impl ExploreStats {
    fn record(&mut self, message: String, trace: &[String], terminal: bool) {
        self.violation_count += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(ScheduleViolation {
                message,
                trace: trace.to_vec(),
                terminal,
            });
        }
    }
}

/// Explore every schedule of `program` from its initial state. With
/// `use_sleep` the sleep-set reduction prunes interleavings that are
/// Mazurkiewicz-equivalent to explored ones; without it the full tree is
/// enumerated (the "naive" denominator). Deterministic: `enabled` order
/// fixes the DFS order, so all counts are byte-stable.
pub fn explore<P: VirtualProgram + Clone>(program: &P, use_sleep: bool) -> ExploreStats {
    let mut stats = ExploreStats::default();
    let mut seen_keys: HashSet<u64> = HashSet::new();
    let mut trace: Vec<String> = Vec::new();
    dfs(
        program,
        &Vec::new(),
        use_sleep,
        &mut stats,
        &mut seen_keys,
        &mut trace,
    );
    stats.states = seen_keys.len() as u64;
    stats
}

fn dfs<P: VirtualProgram + Clone>(
    state: &P,
    sleep: &[P::Op],
    use_sleep: bool,
    stats: &mut ExploreStats,
    seen_keys: &mut HashSet<u64>,
    trace: &mut Vec<String>,
) {
    assert!(
        stats.transitions <= MAX_TRANSITIONS,
        "exploration exceeded {MAX_TRANSITIONS} transitions; shrink the scenario"
    );
    seen_keys.insert(state.state_key());
    stats.invariant_checks += 1;
    if let Err(msg) = state.check() {
        // A violated state: record and prune (its successors would only
        // re-report the same broken invariant).
        stats.record(msg, trace, false);
        return;
    }
    let ops = state.enabled();
    if ops.is_empty() {
        stats.schedules += 1;
        stats.invariant_checks += 1;
        if let Err(msg) = state.check_terminal() {
            stats.record(msg, trace, true);
        }
        return;
    }
    let mut explored: Vec<P::Op> = Vec::new();
    for op in ops {
        if use_sleep && sleep.contains(&op) {
            stats.sleep_pruned += 1;
            continue;
        }
        // Child sleep set: everything sleeping here or already explored at
        // this node stays asleep below `op` unless `op` depends on it.
        let child_sleep: Vec<P::Op> = if use_sleep {
            sleep
                .iter()
                .chain(explored.iter())
                .filter(|s| !state.dependent(**s, op))
                .copied()
                .collect()
        } else {
            Vec::new()
        };
        let mut next = state.clone();
        next.step(op);
        stats.transitions += 1;
        trace.push(format!("{op:?}"));
        dfs(&next, &child_sleep, use_sleep, stats, seen_keys, trace);
        trace.pop();
        explored.push(op);
    }
}

/// Run both modes over one scenario and package the comparison: the DPOR
/// pass must find the same violations while executing strictly fewer
/// schedules (on any scenario with at least one independent op pair).
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario label (stable; keys the report).
    pub name: String,
    /// Full-enumeration pass.
    pub naive: ExploreStats,
    /// Sleep-set pass.
    pub dpor: ExploreStats,
}

impl ScenarioResult {
    /// Schedules the reduction avoided executing.
    pub fn pruned(&self) -> u64 {
        self.naive.schedules.saturating_sub(self.dpor.schedules)
    }
}

/// Explore `program` both ways under `name`.
pub fn run_scenario<P: VirtualProgram + Clone>(name: &str, program: &P) -> ScenarioResult {
    ScenarioResult {
        name: name.to_string(),
        naive: explore(program, false),
        dpor: explore(program, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_core::{AffinityKind, PushSpec, QueueDefect, QueueMachine, VirtualProgram};

    fn push(id: u32) -> PushSpec {
        PushSpec {
            id,
            token: None,
            kind: AffinityKind::None,
        }
    }

    fn two_server_machine(defect: QueueDefect) -> QueueMachine {
        QueueMachine::new(4, vec![vec![push(0), push(1)], vec![push(2)]], defect)
    }

    #[test]
    fn naive_explores_all_interleavings() {
        let s = explore(&two_server_machine(QueueDefect::None), false);
        assert!(s.schedules > 1, "{s:?}");
        assert_eq!(s.sleep_pruned, 0);
        assert_eq!(s.violation_count, 0);
    }

    #[test]
    fn sleep_sets_prune_but_preserve_soundness() {
        let m = two_server_machine(QueueDefect::None);
        let naive = explore(&m, false);
        let dpor = explore(&m, true);
        assert!(dpor.schedules < naive.schedules, "{naive:?} vs {dpor:?}");
        assert!(dpor.sleep_pruned > 0);
        assert_eq!(dpor.violation_count, 0);
        // Every state the reduced search visits exists in the full search.
        assert!(dpor.states <= naive.states);
    }

    #[test]
    fn exploration_is_deterministic() {
        let m = two_server_machine(QueueDefect::None);
        let a = explore(&m, true);
        let b = explore(&m, true);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.sleep_pruned, b.sleep_pruned);
        assert_eq!(a.states, b.states);
    }

    #[test]
    fn seeded_queue_defects_are_found_in_both_modes() {
        for defect in [QueueDefect::LoseOnSteal, QueueDefect::DupOnSteal] {
            let m = two_server_machine(defect);
            let naive = explore(&m, false);
            let dpor = explore(&m, true);
            assert!(naive.violation_count > 0, "{defect:?} invisible to naive");
            assert!(dpor.violation_count > 0, "{defect:?} pruned away by DPOR");
            let v = &dpor.violations[0];
            assert!(!v.trace.is_empty(), "violation must carry its schedule");
        }
    }

    #[test]
    fn violation_traces_replay_to_the_violation() {
        // The recorded trace is a real schedule: replaying it op by op on a
        // fresh machine reproduces the invariant failure.
        let m = two_server_machine(QueueDefect::LoseOnSteal);
        let dpor = explore(&m, true);
        let v = dpor.violations.first().expect("defect found");
        let mut replay = m.clone();
        let mut failed = false;
        for opname in &v.trace {
            let op = replay
                .enabled()
                .into_iter()
                .find(|o| format!("{o:?}") == *opname)
                .expect("trace op enabled during replay");
            replay.step(op);
            if replay.check().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "replayed schedule must reproduce the violation");
    }
}
