//! Combined analysis results and a stable, dependency-free JSON emitter.
//!
//! The workspace is built offline with no serialisation crates, so the
//! findings file is emitted by hand. Output is fully deterministic: map keys
//! are written in a fixed order and every list is sorted upstream, so the
//! committed `analyze_findings.json` can be regression-checked with a plain
//! `git diff`.

use crate::hb::{Race, RaceReport};
use crate::lints::{self, Lint};
use crate::locks::{LockCycle, LockReport};

/// All three passes over one run's event stream.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Happens-before race detection results.
    pub races: RaceReport,
    /// Lock-order graph and any acquisition cycles.
    pub locks: LockReport,
    /// Affinity-hint lint findings.
    pub lints: Vec<Lint>,
}

impl Analysis {
    /// Does the analysis contain any correctness finding (race or lock-order
    /// cycle)? Lints are performance findings and do not fail this.
    pub fn has_errors(&self) -> bool {
        !self.races.races.is_empty() || !self.locks.cycles.is_empty()
    }

    /// Is the run completely clean (no races, cycles, or lints)?
    pub fn is_clean(&self) -> bool {
        !self.has_errors() && self.lints.is_empty()
    }
}

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn race_json(r: &Race, indent: &str) -> String {
    let side = |a: &crate::hb::AccessInfo| {
        format!(
            "{{\"task\": \"{}\", \"label\": \"{}\", \"kind\": \"{}\", \"addr\": {}, \"len\": {}, \"time\": {}}}",
            a.task,
            esc(a.label.unwrap_or("task")),
            a.kind.label(),
            a.addr,
            a.len,
            a.time
        )
    };
    format!(
        "{indent}{{\"block\": {}, \"first\": {}, \"second\": {}}}",
        r.block,
        side(&r.first),
        side(&r.second)
    )
}

fn cycle_json(c: &LockCycle, indent: &str) -> String {
    let locks: Vec<String> = c.locks.iter().map(|l| l.addr().to_string()).collect();
    let wit: Vec<String> = c.witnesses.iter().map(|w| format!("\"{}\"", esc(w))).collect();
    format!(
        "{indent}{{\"locks\": [{}], \"witnesses\": [{}]}}",
        locks.join(", "),
        wit.join(", ")
    )
}

fn lint_json(l: &Lint, indent: &str) -> String {
    format!(
        "{indent}{{\"kind\": \"{}\", \"task\": \"{}\", \"label\": \"{}\", \"obj\": {}, \"detail\": \"{}\"}}",
        l.kind.key(),
        l.task,
        esc(l.label.unwrap_or("task")),
        l.obj.addr(),
        esc(&l.detail)
    )
}

/// One analyzed run of one application configuration.
#[derive(Clone, Debug)]
pub struct RunFindings {
    /// Application name (e.g. "gauss").
    pub app: String,
    /// Version label (e.g. "affinity+distr").
    pub version: String,
    /// "default" or "faulted".
    pub schedule: String,
    /// The three analysis passes over the run's event stream.
    pub analysis: Analysis,
}

impl RunFindings {
    fn to_json(&self, indent: &str) -> String {
        let a = &self.analysis;
        let inner = format!("{indent}    ");
        let list = |items: Vec<String>| -> String {
            if items.is_empty() {
                "[]".to_string()
            } else {
                format!("[\n{}\n{indent}  ]", items.join(",\n"))
            }
        };
        let races = list(a.races.races.iter().map(|r| race_json(r, &inner)).collect());
        let cycles = list(a.locks.cycles.iter().map(|c| cycle_json(c, &inner)).collect());
        let lints = list(a.lints.iter().map(|l| lint_json(l, &inner)).collect());
        let lint_counts: Vec<String> = lints::counts(&a.lints)
            .into_iter()
            .map(|(k, n)| format!("\"{k}\": {n}"))
            .collect();
        format!(
            "{indent}{{\n\
             {indent}  \"app\": \"{}\",\n\
             {indent}  \"version\": \"{}\",\n\
             {indent}  \"schedule\": \"{}\",\n\
             {indent}  \"tasks\": {},\n\
             {indent}  \"accesses\": {},\n\
             {indent}  \"race_count\": {},\n\
             {indent}  \"lock_cycle_count\": {},\n\
             {indent}  \"lock_edge_count\": {},\n\
             {indent}  \"lint_counts\": {{{}}},\n\
             {indent}  \"races\": {},\n\
             {indent}  \"lock_cycles\": {},\n\
             {indent}  \"lints\": {}\n\
             {indent}}}",
            esc(&self.app),
            esc(&self.version),
            esc(&self.schedule),
            a.races.tasks,
            a.races.accesses,
            a.races.races.len(),
            a.locks.cycles.len(),
            a.locks.edges.len(),
            lint_counts.join(", "),
            races,
            cycles,
            lints,
        )
    }
}

/// Serialise a full findings set to the stable JSON document committed as
/// `analyze_findings.json`.
pub fn findings_to_json(findings: &[RunFindings]) -> String {
    let clean = findings.iter().all(|f| !f.analysis.has_errors());
    let entries: Vec<String> = findings.iter().map(|f| f.to_json("    ")).collect();
    let body = if entries.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", entries.join(",\n"))
    };
    format!(
        "{{\n  \"schema\": 1,\n  \"tool\": \"cool-analyze\",\n  \"clean\": {},\n  \"runs\": {}\n}}\n",
        clean, body
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_findings_serialize_stably() {
        let doc = findings_to_json(&[]);
        assert!(doc.contains("\"schema\": 1"));
        assert!(doc.contains("\"clean\": true"));
        assert_eq!(doc, findings_to_json(&[]), "deterministic");
    }

    #[test]
    fn clean_run_serializes_counts() {
        let f = RunFindings {
            app: "gauss".into(),
            version: "base".into(),
            schedule: "default".into(),
            analysis: Analysis::default(),
        };
        let doc = findings_to_json(&[f]);
        assert!(doc.contains("\"app\": \"gauss\""));
        assert!(doc.contains("\"race_count\": 0"));
        assert!(doc.contains("\"stale-object-hint\": 0"));
        assert!(doc.ends_with('\n'));
    }
}
