//! Sparse vector clocks over task slots.

use std::collections::HashMap;

/// A vector clock mapping task *slots* (dense per-run indices, not
/// [`cool_core::TaskUid`]s) to the latest known counter of that task.
/// Missing entries are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    entries: HashMap<u32, u32>,
}

impl VectorClock {
    /// The empty (all-zero) clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter known for `slot` (0 if never seen).
    pub fn get(&self, slot: u32) -> u32 {
        self.entries.get(&slot).copied().unwrap_or(0)
    }

    /// Raise `slot`'s entry to at least `value`.
    pub fn raise(&mut self, slot: u32, value: u32) {
        let e = self.entries.entry(slot).or_insert(0);
        if *e < value {
            *e = value;
        }
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        for (&slot, &v) in &other.entries {
            self.raise(slot, v);
        }
    }

    /// Number of non-zero entries (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is non-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_entries_are_zero() {
        let vc = VectorClock::new();
        assert_eq!(vc.get(7), 0);
        assert!(vc.is_empty());
    }

    #[test]
    fn raise_is_monotone() {
        let mut vc = VectorClock::new();
        vc.raise(1, 5);
        vc.raise(1, 3);
        assert_eq!(vc.get(1), 5);
        vc.raise(1, 9);
        assert_eq!(vc.get(1), 9);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.raise(1, 4);
        a.raise(2, 1);
        let mut b = VectorClock::new();
        b.raise(1, 2);
        b.raise(3, 7);
        a.join(&b);
        assert_eq!((a.get(1), a.get(2), a.get(3)), (4, 1, 7));
        assert_eq!(a.len(), 3);
    }
}
