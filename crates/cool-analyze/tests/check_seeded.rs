//! Seeded-defect exploration: every virtual-machine defect must be found
//! by the interleaving explorer on *some* schedule, in both naive and
//! sleep-set (DPOR) modes — proving the reduction never prunes away the
//! only schedule exhibiting a bug, and that each invariant actually fires.

use cool_analyze::explore;
use cool_core::{AffinityKind, PushSpec, QueueDefect, QueueMachine};
use cool_rt::{ServeDefect, ServeMachine, SubmitSpec};

fn push(id: u32) -> PushSpec {
    PushSpec {
        id,
        token: None,
        kind: AffinityKind::None,
    }
}

fn spec(id: u64, shard: u64, failures: u32) -> SubmitSpec {
    SubmitSpec {
        id,
        shard,
        cost: 1,
        failures,
    }
}

/// A scenario where the defect is reachable: enough clients/requests to
/// exercise dedup, retry, drain racing and the double-enqueue ghost.
fn serve_machine(defect: ServeDefect) -> ServeMachine {
    let use_drain = matches!(
        defect,
        ServeDefect::AdmitPastDrain | ServeDefect::LoseRetry | ServeDefect::None
    );
    ServeMachine::new(
        2,
        4,
        64,
        2,
        vec![vec![spec(1, 0, 1), spec(1, 0, 0)], vec![spec(2, 1, 0)]],
        use_drain,
        defect,
    )
}

#[test]
fn clean_serve_machine_has_no_violations() {
    let m = serve_machine(ServeDefect::None);
    assert_eq!(explore(&m, false).violation_count, 0);
    assert_eq!(explore(&m, true).violation_count, 0);
}

#[test]
fn every_serve_defect_is_found_in_both_modes() {
    for defect in [
        ServeDefect::AdmitPastDrain,
        ServeDefect::DedupMiss,
        ServeDefect::LoseRetry,
        ServeDefect::DoubleEnqueue,
    ] {
        let m = serve_machine(defect);
        let naive = explore(&m, false);
        let dpor = explore(&m, true);
        assert!(naive.violation_count > 0, "{defect:?} invisible to naive");
        assert!(dpor.violation_count > 0, "{defect:?} pruned away by DPOR");
        let v = &dpor.violations[0];
        assert!(!v.trace.is_empty(), "{defect:?} violation lacks a schedule");
    }
}

#[test]
fn every_queue_defect_is_found_in_both_modes() {
    for defect in [QueueDefect::LoseOnSteal, QueueDefect::DupOnSteal] {
        let m = QueueMachine::new(4, vec![vec![push(0), push(1)], vec![push(2)]], defect);
        let naive = explore(&m, false);
        let dpor = explore(&m, true);
        assert!(naive.violation_count > 0, "{defect:?} invisible to naive");
        assert!(dpor.violation_count > 0, "{defect:?} pruned away by DPOR");
    }
}

#[test]
fn dpor_prunes_on_every_clean_scenario() {
    let serve = serve_machine(ServeDefect::None);
    let queue = QueueMachine::new(
        4,
        vec![vec![push(0), push(1)], vec![push(2)]],
        QueueDefect::None,
    );
    let (sn, sd) = (explore(&serve, false), explore(&serve, true));
    assert!(sd.schedules < sn.schedules, "{sn:?} vs {sd:?}");
    let (qn, qd) = (explore(&queue, false), explore(&queue, true));
    assert!(qd.schedules < qn.schedules, "{qn:?} vs {qd:?}");
}
