//! Seeded-defect and end-to-end tests for the analyzer.
//!
//! Each seeded test injects one deliberate defect into a tiny simulated
//! program — a write-write race, a lock-order cycle, a useless prefetch, a
//! migration ping-pong, a stale object hint — and asserts the corresponding
//! pass reports it (and nothing else). Where a canonical fix exists the test
//! also applies it and asserts the finding disappears, guarding against the
//! detector keying on the wrong edge.
//!
//! The end-to-end test runs all six case-study apps under every scheduling
//! version plus a fault-injected schedule and asserts the full matrix is
//! clean; the proptest generates random correctly-synchronised fork-join
//! DAGs and asserts no false positives.

use cool_analyze::{analyze_all, analyze_events, analyze_locks, detect_races, run_lints, LintKind};
use cool_sim::{AffinitySpec, MachineConfig, SimConfig, SimRuntime, Task};
use proptest::prelude::*;

/// A small flat machine (one processor per cluster, so every processor has
/// its own memory node and migration visibly changes an object's home).
fn flat_rt(nprocs: usize) -> SimRuntime {
    let mut m = MachineConfig::dash_small(nprocs);
    m.procs_per_cluster = 1;
    SimRuntime::new(SimConfig::new(m).with_events())
}

#[test]
fn seeded_write_write_race_is_detected_and_mutex_fixes_it() {
    let run = |with_mutex: bool| {
        let mut rt = flat_rt(4);
        let obj = rt.machine_mut().alloc_on_proc(0, 256);
        rt.run_phase(move |ctx| {
            for _ in 0..2 {
                let mut t = Task::new(move |c| {
                    c.write(obj, 64);
                })
                .with_label("writer");
                if with_mutex {
                    t = t.with_mutex(obj);
                }
                ctx.spawn(t);
            }
        });
        detect_races(&rt.take_events())
    };

    let racy = run(false);
    assert_eq!(racy.races.len(), 1, "expected exactly the seeded race");
    let d = racy.races[0].describe();
    assert!(d.contains("writer"), "race should name the task label: {d}");

    let fixed = run(true);
    assert!(
        fixed.races.is_empty(),
        "mutex serialises the writers: {:?}",
        fixed.races
    );
}

#[test]
fn seeded_lock_order_cycle_is_detected_and_consistent_order_fixes_it() {
    let run = |swap_second: bool| {
        let mut rt = flat_rt(4);
        let a = rt.machine_mut().alloc_on_proc(0, 64);
        let b = rt.machine_mut().alloc_on_proc(1, 64);
        rt.run_phase(move |ctx| {
            ctx.spawn(Task::new(|_| {}).with_mutex(a).with_mutex(b).with_label("fwd"));
            let t = if swap_second {
                Task::new(|_| {}).with_mutex(b).with_mutex(a).with_label("rev")
            } else {
                Task::new(|_| {}).with_mutex(a).with_mutex(b).with_label("fwd2")
            };
            ctx.spawn(t);
        });
        analyze_locks(&rt.take_events())
    };

    let cyclic = run(true);
    assert_eq!(cyclic.cycles.len(), 1, "opposite acquisition orders deadlock");
    assert_eq!(cyclic.cycles[0].locks.len(), 2);

    let fixed = run(false);
    assert!(fixed.cycles.is_empty());
    assert!(!fixed.edges.is_empty(), "consistent order still records edges");
}

#[test]
fn seeded_unused_prefetch_is_detected() {
    let mut rt = flat_rt(4);
    let used = rt.machine_mut().alloc_on_proc(0, 256);
    let wasted = rt.machine_mut().alloc_on_proc(1, 256);
    rt.run_phase(move |ctx| {
        ctx.spawn(
            Task::new(move |c| {
                c.read(used, 64);
            })
            .with_prefetch(vec![(used, 64), (wasted, 64)])
            .with_label("reader"),
        );
    });
    let lints = run_lints(&rt.take_events());
    assert_eq!(lints.len(), 1, "{lints:?}");
    assert_eq!(lints[0].kind, LintKind::UnusedPrefetch);
    assert_eq!(lints[0].obj, wasted, "only the untouched prefetch is flagged");
}

#[test]
fn seeded_migration_thrash_is_detected() {
    let mut rt = flat_rt(4);
    let obj = rt.machine_mut().alloc_on_proc(0, 4096);
    rt.run_phase(move |ctx| {
        ctx.migrate(obj, 4096, 1);
        ctx.migrate(obj, 4096, 2);
        ctx.migrate(obj, 4096, 1); // back to a node it already left
    });
    let lints = run_lints(&rt.take_events());
    assert_eq!(lints.len(), 1, "{lints:?}");
    assert_eq!(lints[0].kind, LintKind::MigrationThrash);
}

#[test]
fn seeded_stale_object_hint_is_detected() {
    let mut rt = flat_rt(4);
    let obj = rt.machine_mut().alloc_on_proc(1, 256);
    rt.run_phase(move |ctx| {
        // OBJECT affinity is evaluated at spawn time (object homed on 1)...
        ctx.spawn(
            Task::new(move |c| {
                c.read(obj, 64);
            })
            .with_affinity(AffinitySpec::simple(obj))
            .with_label("stale"),
        );
        // ...but the object moves before the task is dispatched.
        ctx.migrate(obj, 256, 3);
    });
    let lints = run_lints(&rt.take_events());
    assert_eq!(lints.len(), 1, "{lints:?}");
    assert_eq!(lints[0].kind, LintKind::StaleObjectHint);
}

/// The headline acceptance check: every app, every scheduling version,
/// default and fault-injected schedules — no races, no lock cycles, no
/// lints. This is the same matrix the `cool-analyze` binary serialises into
/// the committed `analyze_findings.json`.
#[test]
fn all_six_apps_are_clean_in_every_schedule() {
    let findings = analyze_all();
    assert_eq!(
        findings.len(),
        51,
        "6 apps x (7 versions + 1 faulted) + 3 service rows"
    );
    for f in &findings {
        let a = &f.analysis;
        let who = format!("{} {} {}", f.app, f.version, f.schedule);
        assert!(
            a.races.races.is_empty(),
            "{who}: races {:?}",
            a.races.races.iter().map(|r| r.describe()).collect::<Vec<_>>()
        );
        assert!(
            a.locks.cycles.is_empty(),
            "{who}: lock cycles {:?}",
            a.locks.cycles.iter().map(|c| c.describe()).collect::<Vec<_>>()
        );
        assert!(
            a.lints.is_empty(),
            "{who}: lints {:?}",
            a.lints.iter().map(|l| l.describe()).collect::<Vec<_>>()
        );
        assert!(a.races.tasks > 1 && a.races.accesses > 0, "{who}: ran nothing?");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random fork-join DAGs that are correctly synchronised by
    /// construction: levels separated by phase barriers, each task writing
    /// its own object, reading a random subset of the previous level's
    /// outputs, and optionally contending on one shared per-level object
    /// under a mutex. The analyzer must report nothing.
    #[test]
    fn random_fork_join_dags_have_no_false_positives(
        widths in prop::collection::vec(1usize..5, 1..4),
        shared_writes in any::<bool>(),
        read_mask in any::<u64>(),
    ) {
        let mut rt = flat_rt(4);
        let objs: Vec<Vec<_>> = widths
            .iter()
            .map(|&w| (0..w).map(|_| rt.machine_mut().alloc_on_proc(0, 128)).collect())
            .collect();
        let shared: Vec<_> = widths
            .iter()
            .map(|_| rt.machine_mut().alloc_on_proc(1, 64))
            .collect();

        for (lv, &width) in widths.iter().enumerate() {
            let objs = objs.clone();
            let shared_obj = shared[lv];
            rt.run_phase(move |ctx| {
                for i in 0..width {
                    let mine = objs[lv][i];
                    // Random subset of the previous level's outputs; the
                    // phase barrier orders all of them before us.
                    let inputs: Vec<_> = if lv > 0 {
                        objs[lv - 1]
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| read_mask >> ((lv * 17 + i * 5 + j) % 63) & 1 == 1)
                            .map(|(_, o)| *o)
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let mut t = Task::new(move |c| {
                        for inp in inputs {
                            c.read(inp, 128);
                        }
                        c.write(mine, 128);
                        if shared_writes {
                            c.read(shared_obj, 64);
                            c.write(shared_obj, 64);
                        }
                    });
                    if shared_writes {
                        t = t.with_mutex(shared_obj);
                    }
                    ctx.spawn(t);
                }
            });
        }

        let analysis = analyze_events(&rt.take_events());
        prop_assert!(analysis.races.races.is_empty(), "{:?}",
            analysis.races.races.iter().map(|r| r.describe()).collect::<Vec<_>>());
        prop_assert!(analysis.locks.cycles.is_empty());
        prop_assert!(analysis.lints.is_empty());
    }
}
