//! Supernode detection and the panel partition (Rothberg & Gupta's
//! representation used by the Panel Cholesky case study): columns with
//! identical non-zero structure are organised into panels, and the update
//! dependencies between panels form the task graph the runtime schedules.

use crate::symbolic::SymbolicFactor;

/// A partition of the columns `0..n` into contiguous panels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanelPartition {
    /// Panel start columns, plus a final sentinel `n`.
    starts: Vec<usize>,
}

impl PanelPartition {
    /// Detect *fundamental supernodes* — maximal runs of consecutive columns
    /// where column `j+1`'s pattern equals column `j`'s pattern minus row
    /// `j` — and cap their width at `max_width` to keep panels schedulable.
    pub fn fundamental(sym: &SymbolicFactor, max_width: usize) -> Self {
        assert!(max_width >= 1);
        let n = sym.n();
        let mut starts = vec![0];
        let mut width = 1;
        for j in 1..n {
            let prev = sym.col_rows(j - 1);
            let cur = sym.col_rows(j);
            // prev = [j-1, rest...]; mergeable iff rest == cur.
            let mergeable = prev.len() == cur.len() + 1 && prev[1..] == *cur;
            if mergeable && width < max_width {
                width += 1;
            } else {
                starts.push(j);
                width = 1;
            }
        }
        starts.push(n);
        PanelPartition { starts }
    }

    /// Fixed-width panels (no structure detection) — useful for tests and
    /// for the dense Gaussian elimination example.
    pub fn fixed(n: usize, width: usize) -> Self {
        assert!(width >= 1);
        let mut starts: Vec<usize> = (0..n).step_by(width).collect();
        starts.push(n);
        if n == 0 {
            starts = vec![0, 0];
        }
        PanelPartition { starts }
    }

    /// Number of panels.
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 || self.starts[self.starts.len() - 1] == 0
    }

    /// Column range of panel `p`.
    pub fn range(&self, p: usize) -> std::ops::Range<usize> {
        self.starts[p]..self.starts[p + 1]
    }

    /// The panel containing column `j`.
    pub fn panel_of(&self, j: usize) -> usize {
        match self.starts.binary_search(&j) {
            Ok(p) => p.min(self.len() - 1),
            Err(ins) => ins - 1,
        }
    }

    /// Iterate panel ranges.
    pub fn iter(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.len()).map(|p| self.range(p))
    }
}

/// The panel-level update dependency structure: which panels a given panel
/// modifies once it is ready (the "panels `p` modified by this panel" loop of
/// Figure 13), and how many updates each panel must receive before it can be
/// completed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanelDeps {
    /// `updates_to[p]`: sorted list of panels strictly right of `p` that `p`
    /// updates (∃ column k ∈ p, row i ∈ q with L(i,k) ≠ 0).
    updates_to: Vec<Vec<usize>>,
    /// `pending[q]`: number of distinct source panels that update `q`.
    pending: Vec<usize>,
}

impl PanelDeps {
    /// Build the dependency structure from the symbolic factor.
    pub fn new(sym: &SymbolicFactor, panels: &PanelPartition) -> Self {
        let np = panels.len();
        let mut updates_to = vec![Vec::new(); np];
        for (p, tos) in updates_to.iter_mut().enumerate() {
            let mut touched: Vec<usize> = Vec::new();
            for k in panels.range(p) {
                for &i in sym.col_rows(k) {
                    let q = panels.panel_of(i);
                    if q > p {
                        touched.push(q);
                    }
                }
            }
            touched.sort_unstable();
            touched.dedup();
            *tos = touched;
        }
        let mut pending = vec![0usize; np];
        for tos in &updates_to {
            for &q in tos {
                pending[q] += 1;
            }
        }
        PanelDeps {
            updates_to,
            pending,
        }
    }

    /// Panels updated by `p`.
    pub fn updates_to(&self, p: usize) -> &[usize] {
        &self.updates_to[p]
    }

    /// Updates panel `q` must receive before completion.
    pub fn pending(&self, q: usize) -> usize {
        self.pending[q]
    }

    /// Panels with no incoming updates — the initially-ready set that seeds
    /// the computation in Figure 13's `main`.
    pub fn initially_ready(&self) -> Vec<usize> {
        (0..self.pending.len())
            .filter(|&q| self.pending[q] == 0)
            .collect()
    }

    /// Total panel-to-panel update tasks in the whole factorization.
    pub fn total_updates(&self) -> usize {
        self.updates_to.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::CscMatrix;
    use crate::etree::EliminationTree;

    fn sym_of(a: &CscMatrix) -> SymbolicFactor {
        let e = EliminationTree::new(a);
        SymbolicFactor::new(a, &e)
    }

    fn dense_first_col(n: usize) -> CscMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 10.0));
            if i > 0 {
                t.push((i, 0, 1.0));
            }
        }
        CscMatrix::from_triplets(n, &t)
    }

    #[test]
    fn dense_factor_is_one_supernode_capped_by_width() {
        // Dense L ⇒ all columns have nested structure ⇒ one big supernode,
        // split only by the cap.
        let a = dense_first_col(8);
        let sym = sym_of(&a);
        let p = PanelPartition::fundamental(&sym, 8);
        assert_eq!(p.len(), 1);
        assert_eq!(p.range(0), 0..8);
        let p3 = PanelPartition::fundamental(&sym, 3);
        assert_eq!(p3.len(), 3);
        assert_eq!(p3.range(0), 0..3);
        assert_eq!(p3.range(2), 6..8);
    }

    #[test]
    fn tridiagonal_columns_merge_pairwise_at_most() {
        // Tridiagonal L: col j pattern {j, j+1}; col j+1 pattern {j+1, j+2}.
        // prev minus head = {j+1} ≠ {j+1, j+2} ⇒ no merging except the last
        // column, whose pattern {n-1} equals prev {n-2,n-1} minus head.
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, &t);
        let sym = sym_of(&a);
        let p = PanelPartition::fundamental(&sym, 16);
        // Panels: [0],[1],[2],[3],[4,5].
        assert_eq!(p.len(), n - 1);
        assert_eq!(p.range(p.len() - 1), n - 2..n);
    }

    #[test]
    fn panel_of_is_inverse_of_range() {
        let p = PanelPartition::fixed(10, 3); // [0..3),[3..6),[6..9),[9..10)
        assert_eq!(p.len(), 4);
        for q in 0..p.len() {
            for j in p.range(q) {
                assert_eq!(p.panel_of(j), q, "column {j}");
            }
        }
    }

    #[test]
    fn deps_on_tridiagonal_form_a_chain() {
        let n = 7;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, &t);
        let sym = sym_of(&a);
        let p = PanelPartition::fixed(n, 1);
        let d = PanelDeps::new(&sym, &p);
        assert_eq!(d.initially_ready(), vec![0]);
        for q in 0..n - 1 {
            assert_eq!(d.updates_to(q), &[q + 1]);
            assert_eq!(d.pending(q + 1), 1);
        }
        assert_eq!(d.total_updates(), n - 1);
    }

    #[test]
    fn deps_counts_are_consistent_with_updates_to() {
        let a = dense_first_col(9);
        let sym = sym_of(&a);
        let p = PanelPartition::fundamental(&sym, 2);
        let d = PanelDeps::new(&sym, &p);
        let mut pending = vec![0usize; p.len()];
        for src in 0..p.len() {
            for &q in d.updates_to(src) {
                assert!(q > src, "updates must go right");
                pending[q] += 1;
            }
        }
        for (q, &want) in pending.iter().enumerate() {
            assert_eq!(d.pending(q), want);
        }
    }

    #[test]
    fn diagonal_matrix_all_panels_initially_ready() {
        let a = CscMatrix::from_triplets(
            4,
            &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)],
        );
        let sym = sym_of(&a);
        let p = PanelPartition::fixed(4, 1);
        let d = PanelDeps::new(&sym, &p);
        assert_eq!(d.initially_ready(), vec![0, 1, 2, 3]);
        assert_eq!(d.total_updates(), 0);
    }
}
