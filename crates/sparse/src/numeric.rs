//! Numeric sparse Cholesky: the `cmod`/`cdiv` kernels, a sequential
//! left-looking reference factorization, and the panel-level operations the
//! parallel Panel Cholesky case study schedules as tasks.

use std::sync::Arc;

use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use crate::symbolic::SymbolicFactor;

/// A numeric Cholesky factor: values laid over a fixed symbolic pattern.
#[derive(Clone, Debug)]
pub struct Factor {
    sym: Arc<SymbolicFactor>,
    values: Vec<f64>,
}

impl Factor {
    /// Scatter `A`'s lower triangle onto the pattern of `L`; fill-in
    /// positions start at zero.
    pub fn init(a: &CscMatrix, sym: Arc<SymbolicFactor>) -> Self {
        assert_eq!(a.n(), sym.n());
        let mut values = vec![0.0; sym.nnz()];
        for j in 0..a.n() {
            let lrows = sym.col_rows(j);
            let base = sym.col_range(j).start;
            for (pos, &i) in a.col_rows(j).iter().enumerate() {
                let v = a.col_values(j)[pos];
                let p = lrows
                    .binary_search(&i)
                    .unwrap_or_else(|_| panic!("A entry ({i},{j}) missing from L pattern"));
                values[base + p] = v;
            }
        }
        Factor { sym, values }
    }

    /// The symbolic pattern.
    pub fn sym(&self) -> &SymbolicFactor {
        &self.sym
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.sym.n()
    }

    /// Value of L(i, j) (0 if not in pattern).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self.sym.col_rows(j).binary_search(&i) {
            Ok(pos) => self.values[self.sym.col_range(j).start + pos],
            Err(_) => 0.0,
        }
    }

    /// `cdiv(j)`: complete column `j` — take the square root of the diagonal
    /// and scale the subdiagonal. Panics if the reduced diagonal is not
    /// positive (matrix not positive definite).
    pub fn cdiv(&mut self, j: usize) {
        let r = self.sym.col_range(j);
        let col = &mut self.values[r];
        let d = col[0];
        assert!(d > 0.0, "not positive definite at column {j} (d = {d})");
        let d = d.sqrt();
        col[0] = d;
        for v in &mut col[1..] {
            *v /= d;
        }
    }

    /// `cmod(j, k)`: update destination column `j` by completed source column
    /// `k < j`: `L[j.., j] -= L[j, k] · L[j.., k]`. A no-op when L(j, k) is
    /// not in the pattern. Returns the number of positions updated (used by
    /// the case study to charge simulated work).
    pub fn cmod(&mut self, j: usize, k: usize) -> usize {
        assert!(k < j, "cmod source must be left of destination");
        let krows = self.sym.col_rows(k);
        let start = match krows.binary_search(&j) {
            Ok(pos) => pos,
            Err(_) => return 0,
        };
        let kr = self.sym.col_range(k);
        let jr = self.sym.col_range(j);
        // Split the value array so we can read col k while writing col j
        // (k < j ⇒ kr ends at or before jr starts).
        debug_assert!(kr.end <= jr.start);
        let (left, right) = self.values.split_at_mut(jr.start);
        let src = &left[kr.start..kr.end];
        let dst = &mut right[..jr.end - jr.start];
        let jrows = self.sym.col_rows(j);
        let mult = src[start];
        // Merge walk: pattern(L[j.., k]) ⊆ pattern(L[:, j]) by the subset
        // property (j is an ancestor of k in the elimination tree), so every
        // source row finds a destination slot.
        let mut dpos = 0;
        let mut updated = 0;
        for (off, &row) in krows[start..].iter().enumerate() {
            while jrows[dpos] < row {
                dpos += 1;
            }
            debug_assert_eq!(jrows[dpos], row, "subset property violated");
            dst[dpos] -= mult * src[start + off];
            updated += 1;
        }
        updated
    }

    /// Factor the columns of `panel` (a contiguous range) against each other
    /// and complete them: the *internal completion* step of `CompletePanel`
    /// in Figure 13. All external updates to these columns must already have
    /// been applied. Returns positions updated (simulated-work accounting).
    pub fn panel_internal_factor(&mut self, panel: std::ops::Range<usize>) -> usize {
        let mut updated = 0;
        for k in panel.clone() {
            self.cdiv(k);
            updated += self.sym.col_rows(k).len();
            for j in k + 1..panel.end {
                // cmod is a no-op when L(j, k) ∉ pattern.
                updated += self.cmod(j, k);
            }
        }
        updated
    }

    /// Apply all updates from completed source panel `src` to destination
    /// panel `dst` — the body of `UpdatePanel` (Figure 13). Returns positions
    /// updated (for simulated work accounting).
    pub fn panel_update(
        &mut self,
        dst: std::ops::Range<usize>,
        src: std::ops::Range<usize>,
    ) -> usize {
        assert!(src.end <= dst.start, "source panel must be left of dest");
        let mut updated = 0;
        for j in dst {
            for k in src.clone() {
                updated += self.cmod(j, k);
            }
        }
        updated
    }

    /// Sequential left-looking factorization (the serial baseline and
    /// correctness reference). Consumes an initialised factor and completes
    /// it in place.
    pub fn factorize_left_looking(&mut self) {
        let n = self.n();
        // rowlist[i]: source columns whose next un-applied row is i.
        let mut rowlist: Vec<Vec<usize>> = vec![Vec::new(); n];
        // next_ptr[k]: offset into column k's rows of the next row to apply.
        let mut next_ptr = vec![0usize; n];
        for j in 0..n {
            let sources = std::mem::take(&mut rowlist[j]);
            for k in sources {
                self.cmod(j, k);
                // Advance k to its next subdiagonal row.
                next_ptr[k] += 1;
                let krows = self.sym.col_rows(k);
                if next_ptr[k] < krows.len() {
                    let nr = krows[next_ptr[k]];
                    rowlist[nr].push(k);
                }
            }
            self.cdiv(j);
            let jrows = self.sym.col_rows(j);
            if jrows.len() > 1 {
                next_ptr[j] = 1;
                rowlist[jrows[1]].push(j);
            }
        }
    }

    /// Solve `A x = b` using the completed factor (`L Lᵀ x = b`).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(b.len(), n);
        // Forward: L y = b.
        let mut y = b.to_vec();
        for j in 0..n {
            let r = self.sym.col_range(j);
            let rows = self.sym.col_rows(j);
            let vals = &self.values[r];
            y[j] /= vals[0];
            let yj = y[j];
            for (off, &i) in rows.iter().enumerate().skip(1) {
                y[i] -= vals[off] * yj;
            }
        }
        // Backward: Lᵀ x = y.
        let mut x = y;
        for j in (0..n).rev() {
            let r = self.sym.col_range(j);
            let rows = self.sym.col_rows(j);
            let vals = &self.values[r];
            let mut s = x[j];
            for (off, &i) in rows.iter().enumerate().skip(1) {
                s -= vals[off] * x[i];
            }
            x[j] = s / vals[0];
        }
        x
    }

    /// Dense `L·Lᵀ` for verification on small problems.
    pub fn product_dense(&self) -> DenseMatrix {
        let n = self.n();
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let r = self.sym.col_range(j);
            for (off, &i) in self.sym.col_rows(j).iter().enumerate() {
                l.set(i, j, self.values[r.start + off]);
            }
        }
        l.mul_transpose(&l)
    }

    /// Max |A - L·Lᵀ| over all entries (small problems only).
    pub fn residual(&self, a: &CscMatrix) -> f64 {
        self.product_dense().max_diff(&a.to_dense())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::EliminationTree;

    fn grid_matrix(k: usize) -> CscMatrix {
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut t = Vec::new();
        for r in 0..k {
            for c in 0..k {
                t.push((idx(r, c), idx(r, c), 4.0));
                if r + 1 < k {
                    t.push((idx(r + 1, c), idx(r, c), -1.0));
                }
                if c + 1 < k {
                    t.push((idx(r, c + 1), idx(r, c), -1.0));
                }
            }
        }
        CscMatrix::from_triplets(n, &t)
    }

    fn factor_of(a: &CscMatrix) -> Factor {
        let e = EliminationTree::new(a);
        let sym = Arc::new(SymbolicFactor::new(a, &e));
        Factor::init(a, sym)
    }

    #[test]
    fn left_looking_matches_dense_cholesky() {
        let a = grid_matrix(4);
        let mut f = factor_of(&a);
        f.factorize_left_looking();
        assert!(f.residual(&a) < 1e-10, "residual {}", f.residual(&a));
        let lref = crate::dense::dense_cholesky(&a.to_dense());
        for j in 0..a.n() {
            for i in j..a.n() {
                assert!(
                    (f.get(i, j) - lref.get(i, j)).abs() < 1e-10,
                    "L({i},{j}): {} vs {}",
                    f.get(i, j),
                    lref.get(i, j)
                );
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = grid_matrix(5);
        let n = a.n();
        let mut f = factor_of(&a);
        f.factorize_left_looking();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let b = a.mul_vec(&x_true);
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn panelwise_right_looking_matches_left_looking() {
        let a = grid_matrix(4);
        let n = a.n();
        // Reference.
        let mut fref = factor_of(&a);
        fref.factorize_left_looking();
        // Panel-wise right-looking: fixed-width panels, sequential order.
        let w = 3;
        let panels: Vec<std::ops::Range<usize>> =
            (0..n).step_by(w).map(|s| s..(s + w).min(n)).collect();
        let mut f = factor_of(&a);
        for (pi, p) in panels.iter().enumerate() {
            // All earlier panels have updated p already (sequential order);
            // factor internally, then push updates right.
            f.panel_internal_factor(p.clone());
            for q in panels.iter().skip(pi + 1) {
                f.panel_update(q.clone(), p.clone());
            }
        }
        for j in 0..n {
            for i in j..n {
                assert!(
                    (f.get(i, j) - fref.get(i, j)).abs() < 1e-10,
                    "L({i},{j}) mismatch"
                );
            }
        }
    }

    #[test]
    fn cmod_is_noop_outside_pattern() {
        // Tridiagonal: column 0 does not touch column 2.
        let mut t = Vec::new();
        for i in 0..4 {
            t.push((i, i, 4.0));
            if i + 1 < 4 {
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(4, &t);
        let mut f = factor_of(&a);
        f.cdiv(0);
        assert_eq!(f.cmod(2, 0), 0);
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn cdiv_rejects_nonpositive_diagonal() {
        let a = CscMatrix::from_triplets(2, &[(0, 0, -1.0), (1, 1, 1.0)]);
        let mut f = factor_of(&a);
        f.cdiv(0);
    }

    #[test]
    fn init_scatters_a_onto_pattern() {
        let a = grid_matrix(3);
        let f = factor_of(&a);
        for j in 0..a.n() {
            for &i in a.col_rows(j) {
                assert_eq!(f.get(i, j), a.get(i, j));
            }
        }
    }
}
