//! Elimination tree (Liu's algorithm with path compression) and postorder.
//!
//! The elimination tree drives the symbolic factorization: the non-zero
//! pattern of column `k` of `L` is the union of `A`'s column pattern with the
//! patterns of `k`'s children in the tree.

use crate::csc::CscMatrix;

/// Marker for "no parent" (tree root).
pub const NONE: usize = usize::MAX;

/// The elimination tree of a symmetric matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EliminationTree {
    parent: Vec<usize>,
}

impl EliminationTree {
    /// Compute the elimination tree of `a` (lower-triangle CSC) using Liu's
    /// algorithm with path compression: O(nnz·α(n)).
    pub fn new(a: &CscMatrix) -> Self {
        let n = a.n();
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        // Walk columns; for the lower-triangle storage, entry (i, k) with
        // i > k appears in column k, meaning row i of column k — we need, for
        // each k, the entries (k, j) with j < k, i.e. row k across earlier
        // columns. Iterating columns j and their rows i > j gives exactly the
        // pairs (i, j), j < i; process them keyed by i in increasing order of
        // traversal — Liu's algorithm tolerates any order within a column
        // provided columns are processed in order of the *row* index. The
        // standard formulation iterates k = 0..n and for each nonzero
        // A(k, j), j < k; with lower storage those are found by scanning
        // column j's rows. We precompute row lists to keep it linear.
        let mut row_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            for &i in a.col_rows(j) {
                if i > j {
                    row_lists[i].push(j);
                }
            }
        }
        for (k, js) in row_lists.iter().enumerate() {
            for &j in js {
                // Walk from j up to the root of its current subtree, path
                // compressing onto k.
                let mut r = j;
                while ancestor[r] != NONE && ancestor[r] != k {
                    let next = ancestor[r];
                    ancestor[r] = k;
                    r = next;
                }
                if ancestor[r] == NONE {
                    ancestor[r] = k;
                    parent[r] = k;
                }
            }
        }
        EliminationTree { parent }
    }

    /// Parent of column `j`, or [`NONE`] for roots.
    pub fn parent(&self, j: usize) -> usize {
        self.parent[j]
    }

    /// The parent array.
    pub fn parents(&self) -> &[usize] {
        &self.parent
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Children lists (index = parent).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (j, &p) in self.parent.iter().enumerate() {
            if p != NONE {
                ch[p].push(j);
            }
        }
        ch
    }

    /// A postorder of the forest: children before parents; within the same
    /// parent, smaller-numbered subtrees first. Returns `post` such that
    /// `post[k]` is the k-th column in postorder.
    pub fn postorder(&self) -> Vec<usize> {
        let n = self.parent.len();
        let children = self.children();
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, child cursor)
        for root in 0..n {
            if self.parent[root] != NONE {
                continue;
            }
            stack.push((root, 0));
            while let Some(&mut (node, ref mut cur)) = stack.last_mut() {
                if *cur < children[node].len() {
                    let c = children[node][*cur];
                    *cur += 1;
                    stack.push((c, 0));
                } else {
                    post.push(node);
                    stack.pop();
                }
            }
        }
        post
    }

    /// Number of roots (connected components after elimination ordering).
    pub fn nroots(&self) -> usize {
        self.parent.iter().filter(|&&p| p == NONE).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arrowhead matrix: last row/col dense. Every column's first
    /// off-diagonal connects to n-1, so parent(j) = n-1 ... except fill-in:
    /// arrowhead has parent(j) = j+1? Let's use known small cases instead.
    #[test]
    fn tridiagonal_chain() {
        // Tridiagonal: parent(j) = j+1, a chain.
        let n = 6;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, &t);
        let e = EliminationTree::new(&a);
        for j in 0..n - 1 {
            assert_eq!(e.parent(j), j + 1);
        }
        assert_eq!(e.parent(n - 1), NONE);
        assert_eq!(e.nroots(), 1);
    }

    #[test]
    fn diagonal_matrix_is_a_forest_of_singletons() {
        let a = CscMatrix::from_triplets(4, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)]);
        let e = EliminationTree::new(&a);
        assert!(e.parents().iter().all(|&p| p == NONE));
        assert_eq!(e.nroots(), 4);
        assert_eq!(e.postorder(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn star_matrix_parents_point_at_hub() {
        // Column 0..3 each connected only to 4 (the hub), hub last.
        let mut t = vec![(4, 4, 8.0)];
        for j in 0..4 {
            t.push((j, j, 4.0));
            t.push((4, j, 1.0));
        }
        let a = CscMatrix::from_triplets(5, &t);
        let e = EliminationTree::new(&a);
        for j in 0..4 {
            assert_eq!(e.parent(j), 4);
        }
        assert_eq!(e.parent(4), NONE);
    }

    #[test]
    fn postorder_lists_children_before_parents() {
        let n = 7;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
        }
        // A small tree: 0→2, 1→2, 2→6, 3→5, 4→5, 5→6.
        for &(c, p) in &[(0, 2), (1, 2), (2, 6), (3, 5), (4, 5), (5, 6)] {
            t.push((p, c, -1.0));
        }
        let a = CscMatrix::from_triplets(n, &t);
        let e = EliminationTree::new(&a);
        let post = e.postorder();
        assert_eq!(post.len(), n);
        let mut pos = vec![0; n];
        for (k, &j) in post.iter().enumerate() {
            pos[j] = k;
        }
        for j in 0..n {
            if e.parent(j) != NONE {
                assert!(
                    pos[j] < pos[e.parent(j)],
                    "child {j} after parent {}",
                    e.parent(j)
                );
            }
        }
    }

    #[test]
    fn postorder_is_a_permutation() {
        let n = 10;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 5.0));
            if i + 2 < n {
                t.push((i + 2, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, &t);
        let e = EliminationTree::new(&a);
        let mut post = e.postorder();
        post.sort_unstable();
        assert_eq!(post, (0..n).collect::<Vec<_>>());
    }
}
