//! # sparse — sparse Cholesky substrate for the Cholesky case studies
//!
//! The paper's Panel Cholesky case study (Section 6.3) factors a sparse
//! symmetric positive-definite matrix `A = L·Lᵀ` using the panel
//! representation of Rothberg & Gupta: columns with identical non-zero
//! structure are grouped into panels, updates happen between panels, and a
//! panel becomes *ready* once all updates to it are done. Reproducing that
//! requires the whole supporting stack, which this crate provides from
//! scratch:
//!
//! * [`csc`] — compressed sparse column storage for the symmetric input
//!   (lower triangle).
//! * [`etree`] — elimination tree and postorder (Liu's algorithm).
//! * [`symbolic`] — symbolic factorization: the non-zero pattern of `L`.
//! * [`supernodes`] — fundamental supernodes, capped into panels, plus the
//!   panel-to-panel update dependency structure that drives the task graph.
//! * [`numeric`] — numeric kernels (`cmod`, `cdiv`) and a sequential
//!   left-looking factorization used both as the correctness reference and
//!   as the serial baseline for speedup curves.
//! * [`ordering`] — fill-reducing orderings (reverse Cuthill-McKee, minimum
//!   degree) and symmetric permutations, the preprocessing any real sparse
//!   Cholesky pipeline starts with.
//! * [`dense`] — small dense-matrix helpers: dense Cholesky (verification),
//!   the column-oriented Gaussian elimination of Figure 3, and the blocked
//!   dense Cholesky used for the Block Cholesky case study.

pub mod csc;
pub mod dense;
pub mod etree;
pub mod numeric;
pub mod ordering;
pub mod supernodes;
pub mod symbolic;

pub use csc::CscMatrix;
pub use dense::DenseMatrix;
pub use etree::EliminationTree;
pub use numeric::Factor;
pub use ordering::Permutation;
pub use supernodes::{PanelDeps, PanelPartition};
pub use symbolic::SymbolicFactor;
