//! Fill-reducing orderings.
//!
//! The paper's sparse matrices came from real problems, pre-ordered by the
//! standard tools of the time. A credible sparse Cholesky stack needs the
//! same machinery, so this module provides:
//!
//! * [`reverse_cuthill_mckee`] — bandwidth-reducing RCM ordering;
//! * [`minimum_degree`] — a (quotient-graph-free, textbook) minimum-degree
//!   ordering that greedily eliminates the vertex of least degree and forms
//!   the clique of its neighbours;
//! * [`Permutation`] — apply/compose/invert permutations, and
//!   [`CscMatrix::permute_sym`] to produce `P·A·Pᵀ`.
//!
//! Orderings only permute the problem; the factorization machinery is
//! unchanged, and the effect is measured as fill-in (see the ordering tests
//! and the `figures --ablations` output).

use std::collections::VecDeque;

use crate::csc::CscMatrix;

/// A permutation of `0..n`: `perm[new_index] = old_index`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
}

impl Permutation {
    /// Identity permutation.
    pub fn identity(n: usize) -> Self {
        Permutation {
            perm: (0..n).collect(),
        }
    }

    /// From a `new → old` map. Panics if not a permutation.
    pub fn from_vec(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        Permutation { perm }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `new → old`.
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// The inverse map `old → new`.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old] = new;
        }
        Permutation { perm: inv }
    }

    /// Apply to a vector indexed by *old* positions, producing one indexed
    /// by *new* positions.
    pub fn apply<T: Clone>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.perm.len());
        self.perm.iter().map(|&old| v[old].clone()).collect()
    }

    /// Raw `new → old` slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }
}

impl CscMatrix {
    /// Symmetric permutation `P·A·Pᵀ`: entry (i, j) of the result is entry
    /// `(perm[i], perm[j])` of `self`.
    pub fn permute_sym(&self, p: &Permutation) -> CscMatrix {
        assert_eq!(p.len(), self.n());
        let inv = p.inverse();
        let mut triplets = Vec::with_capacity(self.nnz());
        for j in 0..self.n() {
            for (pos, &i) in self.col_rows(j).iter().enumerate() {
                let v = self.col_values(j)[pos];
                triplets.push((inv.old_of(i), inv.old_of(j), v));
            }
        }
        CscMatrix::from_triplets(self.n(), &triplets)
    }
}

/// Adjacency lists of the matrix graph (off-diagonal pattern, symmetric).
fn adjacency(a: &CscMatrix) -> Vec<Vec<usize>> {
    let n = a.n();
    let mut adj = vec![Vec::new(); n];
    for j in 0..n {
        for &i in a.col_rows(j) {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

/// Reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex, neighbours in
/// increasing-degree order, then reverse. Reduces bandwidth, which bounds
/// fill for banded-ish problems.
pub fn reverse_cuthill_mckee(a: &CscMatrix) -> Permutation {
    let n = a.n();
    let adj = adjacency(a);
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Process each connected component.
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = pseudo_peripheral(&adj, start);
        let mut q = VecDeque::new();
        q.push_back(root);
        visited[root] = true;
        while let Some(v) = q.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                q.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order)
}

/// Find a pseudo-peripheral vertex by repeated BFS to the farthest,
/// lowest-degree frontier vertex.
fn pseudo_peripheral(adj: &[Vec<usize>], start: usize) -> usize {
    let mut root = start;
    let mut last_ecc = 0;
    for _ in 0..4 {
        let (far, ecc) = bfs_farthest(adj, root);
        if ecc <= last_ecc {
            break;
        }
        last_ecc = ecc;
        root = far;
    }
    root
}

fn bfs_farthest(adj: &[Vec<usize>], root: usize) -> (usize, usize) {
    let mut dist = vec![usize::MAX; adj.len()];
    let mut q = VecDeque::new();
    dist[root] = 0;
    q.push_back(root);
    let mut far = root;
    while let Some(v) = q.pop_front() {
        for &u in &adj[v] {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                // Prefer low degree among equally-far vertices (ties go to
                // the first found; adequate for a pseudo-peripheral search).
                if dist[u] > dist[far] || (dist[u] == dist[far] && adj[u].len() < adj[far].len())
                {
                    far = u;
                }
                q.push_back(u);
            }
        }
    }
    (far, dist[far])
}

/// Greedy minimum-degree ordering: repeatedly eliminate a vertex of minimum
/// current degree and connect its neighbours into a clique (the textbook
/// algorithm; quadratic worst case but fine for the model problems here).
pub fn minimum_degree(a: &CscMatrix) -> Permutation {
    let n = a.n();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = adjacency(a)
        .into_iter()
        .map(|l| l.into_iter().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Vertex of minimum degree (ties to lowest index: deterministic).
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| (adj[v].len(), v))
            .expect("vertices remain");
        eliminated[v] = true;
        order.push(v);
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        // Form the elimination clique among v's neighbours.
        for (ai, &x) in nbrs.iter().enumerate() {
            adj[x].remove(&v);
            for &y in nbrs.iter().skip(ai + 1) {
                adj[x].insert(y);
                adj[y].insert(x);
            }
        }
        adj[v].clear();
    }
    Permutation::from_vec(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::EliminationTree;
    use crate::symbolic::SymbolicFactor;

    fn fill_of(a: &CscMatrix) -> usize {
        let e = EliminationTree::new(a);
        SymbolicFactor::new(a, &e).fill_in(a)
    }

    fn grid(k: usize) -> CscMatrix {
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut t = Vec::new();
        for r in 0..k {
            for c in 0..k {
                t.push((idx(r, c), idx(r, c), 4.5));
                if r + 1 < k {
                    t.push((idx(r + 1, c), idx(r, c), -1.0));
                }
                if c + 1 < k {
                    t.push((idx(r, c + 1), idx(r, c), -1.0));
                }
            }
        }
        CscMatrix::from_triplets(n, &t)
    }

    #[test]
    fn permutation_roundtrip() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]);
        let inv = p.inverse();
        for new in 0..4 {
            assert_eq!(inv.old_of(p.old_of(new)), new);
        }
        let v = vec![10, 11, 12, 13];
        assert_eq!(p.apply(&v), vec![12, 10, 13, 11]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_rejected() {
        Permutation::from_vec(vec![0, 0, 1]);
    }

    #[test]
    fn permute_sym_preserves_symmetric_values() {
        let a = grid(3);
        let p = reverse_cuthill_mckee(&a);
        let pa = a.permute_sym(&p);
        pa.check().unwrap();
        assert_eq!(pa.nnz(), a.nnz(), "permutation must not change nnz");
        // Spot-check: entry (i,j) of P·A·Pᵀ equals (perm[i], perm[j]) of A.
        for new_i in 0..a.n() {
            for new_j in 0..a.n() {
                assert_eq!(
                    pa.get(new_i, new_j),
                    a.get(p.old_of(new_i), p.old_of(new_j)),
                    "({new_i},{new_j})"
                );
            }
        }
    }

    #[test]
    fn orderings_are_permutations_and_factorable() {
        let a = grid(6);
        for p in [reverse_cuthill_mckee(&a), minimum_degree(&a)] {
            let mut sorted = p.as_slice().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..a.n()).collect::<Vec<_>>());
            // The permuted matrix still factors correctly.
            let pa = a.permute_sym(&p);
            let e = EliminationTree::new(&pa);
            let sym = std::sync::Arc::new(SymbolicFactor::new(&pa, &e));
            let mut f = crate::numeric::Factor::init(&pa, sym);
            f.factorize_left_looking();
            assert!(f.residual(&pa) < 1e-8);
        }
    }

    #[test]
    fn minimum_degree_reduces_grid_fill() {
        // Natural ordering of a 2-D grid produces heavy fill; minimum degree
        // (nested-dissection-like on grids) reduces it substantially.
        let a = grid(8);
        let natural = fill_of(&a);
        let md = fill_of(&a.permute_sym(&minimum_degree(&a)));
        assert!(
            (md as f64) < 0.8 * natural as f64,
            "minimum degree did not reduce fill: {md} vs {natural}"
        );
    }

    #[test]
    fn rcm_reduces_bandwidth_of_a_shuffled_band_matrix() {
        // A banded matrix whose rows were scattered: RCM should recover a
        // narrow band (measured via fill, which tracks bandwidth for bands).
        let n = 40;
        let mut t = Vec::new();
        // A permutation that scatters indices: j -> (17*j) % n.
        let scatter: Vec<usize> = (0..n).map(|j| (17 * j) % n).collect();
        for j in 0..n {
            t.push((scatter[j], scatter[j], 5.0));
            if j + 1 < n {
                t.push((
                    scatter[j].max(scatter[j + 1]),
                    scatter[j].min(scatter[j + 1]),
                    -1.0,
                ));
            }
        }
        let a = CscMatrix::from_triplets(n, &t);
        let scattered_fill = fill_of(&a);
        let rcm_fill = fill_of(&a.permute_sym(&reverse_cuthill_mckee(&a)));
        assert!(
            rcm_fill < scattered_fill / 2,
            "RCM fill {rcm_fill} vs scattered {scattered_fill}"
        );
    }

    #[test]
    fn solves_agree_across_orderings() {
        // Solving P·A·Pᵀ·y = P·b and un-permuting recovers A⁻¹·b.
        let a = grid(5);
        let n = a.n();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let b = a.mul_vec(&x_true);
        for p in [
            Permutation::identity(n),
            reverse_cuthill_mckee(&a),
            minimum_degree(&a),
        ] {
            let pa = a.permute_sym(&p);
            let e = EliminationTree::new(&pa);
            let sym = std::sync::Arc::new(SymbolicFactor::new(&pa, &e));
            let mut f = crate::numeric::Factor::init(&pa, sym);
            f.factorize_left_looking();
            let pb = p.apply(&b);
            let py = f.solve(&pb);
            // Un-permute.
            let mut x = vec![0.0; n];
            for new in 0..n {
                x[p.old_of(new)] = py[new];
            }
            for (u, v) in x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-8, "{u} vs {v}");
            }
        }
    }
}
