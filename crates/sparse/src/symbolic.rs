//! Symbolic factorization: the non-zero pattern of the Cholesky factor `L`.
//!
//! Column `k` of `L` has pattern
//! `pattern(A[k.., k]) ∪ (⋃_{c child of k} pattern(L[.., c]) \ {c})`,
//! a classical result (Liu). We materialise the full pattern (sorted row
//! indices per column), which the numeric factorization and the panel
//! partition both consume.

use crate::csc::CscMatrix;
use crate::etree::EliminationTree;

/// The symbolic Cholesky factor: pattern of `L` (lower triangle, diagonal
/// included, rows sorted per column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolicFactor {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl SymbolicFactor {
    /// Compute the pattern of `L` for `a` using its elimination tree.
    pub fn new(a: &CscMatrix, etree: &EliminationTree) -> Self {
        let n = a.n();
        assert_eq!(etree.n(), n);
        let children = etree.children();
        let mut cols: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut mark = vec![usize::MAX; n];
        for k in 0..n {
            let mut rows = Vec::new();
            mark[k] = k;
            rows.push(k);
            // Original entries of A in column k (at or below the diagonal).
            for &i in a.col_rows(k) {
                if mark[i] != k {
                    mark[i] = k;
                    rows.push(i);
                }
            }
            // Fill-in propagated from children.
            for &c in &children[k] {
                for &i in &cols[c] {
                    if i > k && mark[i] != k {
                        mark[i] = k;
                        rows.push(i);
                    }
                }
            }
            rows.sort_unstable();
            cols.push(rows);
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for c in &cols {
            row_idx.extend_from_slice(c);
            col_ptr.push(row_idx.len());
        }
        SymbolicFactor {
            n,
            col_ptr,
            row_idx,
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Non-zeros in `L` (including the diagonal).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointers.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// All row indices.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Sorted rows of column `j` (first entry is always `j` itself).
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Position range of column `j` in the value array of a numeric factor.
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        self.col_ptr[j]..self.col_ptr[j + 1]
    }

    /// Fill-in: non-zeros of `L` not present in `A`'s lower triangle.
    pub fn fill_in(&self, a: &CscMatrix) -> usize {
        self.nnz().saturating_sub({
            // A's pattern may lack explicit diagonal entries; count the
            // union with the diagonal, since L always has the diagonal.
            let mut cnt = 0;
            for j in 0..self.n {
                let rows = a.col_rows(j);
                cnt += rows.len();
                if rows.first() != Some(&j) {
                    cnt += 1;
                }
            }
            cnt
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_of(a: &CscMatrix) -> SymbolicFactor {
        let e = EliminationTree::new(a);
        SymbolicFactor::new(a, &e)
    }

    /// Brute-force symbolic factorization by running dense Cholesky on the
    /// 0/1 pattern with magic values avoided: simulate fill by the update
    /// rule pattern(col j) ∪= pattern(col k)\{k} whenever L[j,k] ≠ 0.
    fn brute_force_pattern(a: &CscMatrix) -> Vec<Vec<usize>> {
        let n = a.n();
        let mut cols: Vec<std::collections::BTreeSet<usize>> =
            (0..n).map(|j| a.col_rows(j).iter().copied().collect()).collect();
        for (j, col) in cols.iter_mut().enumerate() {
            col.insert(j);
        }
        for k in 0..n {
            let col_k: Vec<usize> = cols[k].iter().copied().filter(|&i| i > k).collect();
            if let Some(&j) = col_k.first() {
                // Fill propagates to the column of the first subdiagonal
                // non-zero (the parent in the etree).
                for &i in &col_k {
                    if i > j {
                        cols[j].insert(i);
                    }
                }
            }
        }
        cols.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let n = 8;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i + 1 < n {
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, &t);
        let s = pattern_of(&a);
        assert_eq!(s.fill_in(&a), 0);
        for j in 0..n - 1 {
            assert_eq!(s.col_rows(j), &[j, j + 1]);
        }
    }

    #[test]
    fn first_column_dense_fills_everything() {
        // Column 0 dense ⇒ L is completely dense below the diagonal.
        let n = 5;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 10.0));
            if i > 0 {
                t.push((i, 0, 1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, &t);
        let s = pattern_of(&a);
        for j in 0..n {
            let expect: Vec<usize> = (j..n).collect();
            assert_eq!(s.col_rows(j), &expect[..], "column {j}");
        }
        assert_eq!(s.nnz(), n * (n + 1) / 2);
    }

    #[test]
    fn matches_brute_force_on_grid_like_matrix() {
        // 3x3 grid Laplacian (5-point stencil), natural order: known to fill.
        let k = 3;
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut t = Vec::new();
        for r in 0..k {
            for c in 0..k {
                t.push((idx(r, c), idx(r, c), 4.0));
                if r + 1 < k {
                    t.push((idx(r + 1, c), idx(r, c), -1.0));
                }
                if c + 1 < k {
                    t.push((idx(r, c + 1), idx(r, c), -1.0));
                }
            }
        }
        let a = CscMatrix::from_triplets(n, &t);
        let s = pattern_of(&a);
        let brute = brute_force_pattern(&a);
        for (j, bj) in brute.iter().enumerate() {
            assert_eq!(s.col_rows(j), &bj[..], "column {j}");
        }
        assert!(s.fill_in(&a) > 0, "grid ordering must produce fill");
    }

    #[test]
    fn diagonal_of_l_is_always_present() {
        let a = CscMatrix::from_triplets(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let s = pattern_of(&a);
        for j in 0..3 {
            assert_eq!(s.col_rows(j), &[j]);
        }
    }
}
