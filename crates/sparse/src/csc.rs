//! Compressed-sparse-column storage for symmetric matrices.
//!
//! Only the lower triangle (including the diagonal) is stored; the matrix is
//! implicitly symmetric. Row indices within each column are kept sorted,
//! which the downstream symbolic algorithms rely on.

/// A sparse symmetric matrix in CSC format, lower triangle stored.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from (row, col, value) triplets of the lower triangle.
    /// Duplicate entries are summed; upper-triangle triplets are mirrored
    /// into the lower triangle. Panics on out-of-range indices.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(r, c, v) in triplets {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range for n={n}");
            let (r, c) = if r >= c { (r, c) } else { (c, r) };
            per_col[c].push((r, v));
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for col in &mut per_col {
            col.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < col.len() {
                let r = col[i].0;
                let mut v = 0.0;
                while i < col.len() && col[i].0 == r {
                    v += col[i].1;
                    i += 1;
                }
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            n,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored non-zeros (lower triangle).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointers (length n+1).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, sorted within each column.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Values aligned with `row_idx`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The sorted row indices of column `j` (lower triangle).
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// The values of column `j`, aligned with [`CscMatrix::col_rows`].
    pub fn col_values(&self, j: usize) -> &[f64] {
        &self.values[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Entry (i, j) of the full symmetric matrix (0 if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        match self.col_rows(j).binary_search(&i) {
            Ok(pos) => self.col_values(j)[pos],
            Err(_) => 0.0,
        }
    }

    /// Dense (full symmetric) form, column-major — for verification only.
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.n, self.n);
        for j in 0..self.n {
            for (pos, &i) in self.col_rows(j).iter().enumerate() {
                let v = self.col_values(j)[pos];
                d.set(i, j, v);
                d.set(j, i, v);
            }
        }
        d
    }

    /// y = A·x for the full symmetric matrix.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for j in 0..self.n {
            for (pos, &i) in self.col_rows(j).iter().enumerate() {
                let v = self.col_values(j)[pos];
                y[i] += v * x[j];
                if i != j {
                    y[j] += v * x[i];
                }
            }
        }
        y
    }

    /// Verify structural invariants (sorted rows, lower triangle, monotone
    /// pointers). Used by tests and debug assertions.
    pub fn check(&self) -> Result<(), String> {
        if self.col_ptr.len() != self.n + 1 {
            return Err("col_ptr length".into());
        }
        for j in 0..self.n {
            let (a, b) = (self.col_ptr[j], self.col_ptr[j + 1]);
            if a > b || b > self.row_idx.len() {
                return Err(format!("col_ptr not monotone at {j}"));
            }
            let rows = &self.row_idx[a..b];
            for w in rows.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("rows not strictly sorted in col {j}"));
                }
            }
            if let Some(&r0) = rows.first() {
                if r0 < j {
                    return Err(format!("upper-triangle entry in col {j}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CscMatrix {
        // [ 4 1 0 ]
        // [ 1 5 2 ]
        // [ 0 2 6 ]
        CscMatrix::from_triplets(
            3,
            &[(0, 0, 4.0), (1, 0, 1.0), (1, 1, 5.0), (2, 1, 2.0), (2, 2, 6.0)],
        )
    }

    #[test]
    fn triplets_build_sorted_lower_triangle() {
        let m = example();
        m.check().unwrap();
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.col_rows(0), &[0, 1]);
        assert_eq!(m.col_rows(1), &[1, 2]);
        assert_eq!(m.col_rows(2), &[2]);
    }

    #[test]
    fn get_is_symmetric() {
        let m = example();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(2, 0), 0.0);
        assert_eq!(m.get(2, 2), 6.0);
    }

    #[test]
    fn upper_triplets_are_mirrored_and_duplicates_summed() {
        let m = CscMatrix::from_triplets(2, &[(0, 1, 3.0), (1, 0, 2.0), (0, 0, 1.0), (1, 1, 1.0)]);
        m.check().unwrap();
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 1), 5.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = example();
        let x = vec![1.0, 2.0, 3.0];
        let y = m.mul_vec(&x);
        // Dense: [4*1+1*2, 1*1+5*2+2*3, 2*2+6*3]
        assert_eq!(y, vec![6.0, 17.0, 22.0]);
        let d = m.to_dense();
        let yd = d.mul_vec(&x);
        assert_eq!(y, yd);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_triplet_panics() {
        CscMatrix::from_triplets(2, &[(2, 0, 1.0)]);
    }
}
