//! Dense matrix helpers: verification Cholesky, the column-oriented Gaussian
//! elimination of Figure 3, and blocked dense Cholesky kernels for the Block
//! Cholesky case study.

/// A dense column-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read entry (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    /// Write entry (i, j).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    /// A whole column as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// A whole column, mutable.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Two distinct columns, one mutable (for column updates).
    pub fn col_pair_mut(&mut self, dest: usize, src: usize) -> (&mut [f64], &[f64]) {
        assert_ne!(dest, src);
        let r = self.rows;
        if dest < src {
            let (a, b) = self.data.split_at_mut(src * r);
            (&mut a[dest * r..(dest + 1) * r], &b[..r])
        } else {
            let (a, b) = self.data.split_at_mut(dest * r);
            (&mut b[..r], &a[src * r..(src + 1) * r])
        }
    }

    /// y = A·x.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            let c = self.col(j);
            for i in 0..self.rows {
                y[i] += c[i] * xj;
            }
        }
        y
    }

    /// C = A·Bᵀ restricted to the lower triangle? No — full product A·Bᵀ.
    pub fn mul_transpose(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.cols);
        let mut c = DenseMatrix::zeros(self.rows, other.rows);
        for k in 0..self.cols {
            for j in 0..other.rows {
                let b = other.get(j, k);
                if b == 0.0 {
                    continue;
                }
                for i in 0..self.rows {
                    let v = c.get(i, j) + self.get(i, k) * b;
                    c.set(i, j, v);
                }
            }
        }
        c
    }

    /// Max |A - B| entry.
    pub fn max_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// In-place dense Cholesky: returns L (lower triangular, upper part zeroed).
/// Panics if the matrix is not positive definite.
pub fn dense_cholesky(a: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    let mut l = a.clone();
    for k in 0..n {
        let mut d = l.get(k, k);
        for j in 0..k {
            let v = l.get(k, j);
            d -= v * v;
        }
        assert!(d > 0.0, "matrix not positive definite at column {k}");
        let d = d.sqrt();
        l.set(k, k, d);
        for i in k + 1..n {
            let mut v = l.get(i, k);
            for j in 0..k {
                v -= l.get(i, j) * l.get(k, j);
            }
            l.set(i, k, v / d);
        }
    }
    // Zero the strict upper triangle.
    for j in 1..n {
        for i in 0..j {
            l.set(i, j, 0.0);
        }
    }
    l
}

/// One column update of column-oriented Gaussian elimination (the `update`
/// parallel function of Figure 3): `dest -= dest[src_pivot] * src` below the
/// pivot, and zero the pivot position. `src` must already be normalised
/// (unit pivot with stored multipliers below).
///
/// Returns the multiplier used (for tests).
pub fn ge_column_update(dest: &mut [f64], src: &[f64], pivot: usize) -> f64 {
    let m = dest[pivot];
    if m != 0.0 {
        for i in pivot + 1..dest.len() {
            dest[i] -= m * src[i];
        }
    }
    dest[pivot] = m; // multiplier stored in place (classic LU storage)
    m
}

/// Normalise a completed GE column: divide the subdiagonal by the pivot so it
/// stores multipliers (the `complete` step of the Figure 3 algorithm).
pub fn ge_column_complete(col: &mut [f64], pivot: usize) {
    let d = col[pivot];
    assert!(d.abs() > 1e-300, "zero pivot at {pivot}");
    for v in col[pivot + 1..].iter_mut() {
        *v /= d;
    }
}

/// Sequential column-oriented (unpivoted) LU: after return the matrix holds
/// U on and above the diagonal and the multipliers of L strictly below.
/// This is the serial baseline for the Gaussian elimination example.
pub fn ge_factor(a: &mut DenseMatrix) {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    for k in 0..n {
        {
            let col = a.col_mut(k);
            ge_column_complete(col, k);
        }
        for j in k + 1..n {
            let (dest, src) = a.col_pair_mut(j, k);
            let m = dest[k];
            for i in k + 1..n {
                dest[i] -= m * src[i];
            }
        }
    }
}

/// Solve A·x = b given the in-place LU produced by [`ge_factor`].
pub fn ge_solve(lu: &DenseMatrix, b: &[f64]) -> Vec<f64> {
    let n = lu.rows();
    assert_eq!(b.len(), n);
    // Forward: L·y = b (unit diagonal).
    let mut y = b.to_vec();
    for j in 0..n {
        let yj = y[j];
        let col = lu.col(j);
        for i in j + 1..n {
            y[i] -= col[i] * yj;
        }
    }
    // Backward: U·x = y.
    let mut x = y;
    for j in (0..n).rev() {
        x[j] /= lu.get(j, j);
        let xj = x[j];
        let col = lu.col(j);
        for (i, xi) in x.iter_mut().enumerate().take(j) {
            *xi -= col[i] * xj;
        }
    }
    x
}

// ----- blocked dense Cholesky kernels (Block Cholesky case study) -----

/// Factor a dense `w×w` diagonal block in place (lower Cholesky).
pub fn block_potrf(block: &mut [f64], w: usize) {
    debug_assert_eq!(block.len(), w * w);
    for k in 0..w {
        let mut d = block[k * w + k];
        for j in 0..k {
            let v = block[j * w + k];
            d -= v * v;
        }
        assert!(d > 0.0, "block not positive definite");
        let d = d.sqrt();
        block[k * w + k] = d;
        for i in k + 1..w {
            let mut v = block[k * w + i];
            for j in 0..k {
                v -= block[j * w + i] * block[j * w + k];
            }
            block[k * w + i] = v / d;
        }
        for i in 0..k {
            block[k * w + i] = 0.0;
        }
    }
    // Zero the strict upper triangle (column-major, so entry (i,j) with i<j).
    for j in 1..w {
        for i in 0..j {
            block[j * w + i] = 0.0;
        }
    }
}

/// Triangular solve: `B ← B · L⁻ᵀ` where `L` is the factored diagonal block.
/// Both blocks are `w×w` column-major; `B` is a subdiagonal block.
pub fn block_trsm(b: &mut [f64], l: &[f64], w: usize) {
    debug_assert_eq!(b.len(), w * w);
    debug_assert_eq!(l.len(), w * w);
    // Solve X · Lᵀ = B column by column of X (i.e. for each column j of X:
    // X[:,j] = (B[:,j] - Σ_{k<j} X[:,k]·L[j,k]) / L[j,j]).
    for j in 0..w {
        for k in 0..j {
            let ljk = l[k * w + j];
            if ljk == 0.0 {
                continue;
            }
            for i in 0..w {
                b[j * w + i] -= b[k * w + i] * ljk;
            }
        }
        let d = l[j * w + j];
        for i in 0..w {
            b[j * w + i] /= d;
        }
    }
}

/// Schur update: `C ← C - A·Bᵀ` for `w×w` column-major blocks.
pub fn block_gemm_sub(c: &mut [f64], a: &[f64], b: &[f64], w: usize) {
    debug_assert_eq!(c.len(), w * w);
    for k in 0..w {
        for j in 0..w {
            let bjk = b[k * w + j];
            if bjk == 0.0 {
                continue;
            }
            let a_col = &a[k * w..(k + 1) * w];
            let c_col = &mut c[j * w..(j + 1) * w];
            for i in 0..w {
                c_col[i] -= a_col[i] * bjk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> DenseMatrix {
        // Diagonally dominant symmetric → SPD.
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                (n as f64) + 2.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        })
    }

    #[test]
    fn dense_cholesky_reconstructs() {
        let a = spd(8);
        let l = dense_cholesky(&a);
        let llt = l.mul_transpose(&l);
        assert!(llt.max_diff(&a) < 1e-9, "diff {}", llt.max_diff(&a));
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_fn(2, 2, |i, j| if i == j { -1.0 } else { 0.0 });
        dense_cholesky(&a);
    }

    #[test]
    fn ge_factor_solves_systems() {
        let n = 12;
        let a = spd(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 3.5).collect();
        let b = a.mul_vec(&x_true);
        let mut lu = a.clone();
        ge_factor(&mut lu);
        let x = ge_solve(&lu, &b);
        for (xa, xb) in x.iter().zip(&x_true) {
            assert!((xa - xb).abs() < 1e-8, "{xa} vs {xb}");
        }
    }

    #[test]
    fn ge_column_kernels_match_ge_factor() {
        let n = 6;
        let a = spd(n);
        let mut by_kernel = a.clone();
        // Column-oriented dataflow: complete column k, then update all
        // columns to its right — exactly the paper's Figure 3 schedule.
        for k in 0..n {
            ge_column_complete(by_kernel.col_mut(k), k);
            for j in k + 1..n {
                let (dest, src) = by_kernel.col_pair_mut(j, k);
                let m = dest[k];
                for i in k + 1..n {
                    dest[i] -= m * src[i];
                }
            }
        }
        let mut by_factor = a.clone();
        ge_factor(&mut by_factor);
        assert!(by_kernel.max_diff(&by_factor) < 1e-12);
    }

    #[test]
    fn ge_column_update_subtracts_below_pivot() {
        let mut dest = vec![5.0, 3.0, 4.0, 2.0];
        let src = vec![1.0, 1.0, 0.5, 0.25]; // normalised source column
        let m = ge_column_update(&mut dest, &src, 1);
        assert_eq!(m, 3.0);
        assert_eq!(dest, vec![5.0, 3.0, 4.0 - 3.0 * 0.5, 2.0 - 3.0 * 0.25]);
    }

    #[test]
    fn blocked_kernels_factor_a_2x2_block_matrix() {
        let w = 4;
        let n = 2 * w;
        let a = spd(n);
        // Extract blocks column-major.
        let blk = |bi: usize, bj: usize| -> Vec<f64> {
            let mut v = vec![0.0; w * w];
            for j in 0..w {
                for i in 0..w {
                    v[j * w + i] = a.get(bi * w + i, bj * w + j);
                }
            }
            v
        };
        let mut a00 = blk(0, 0);
        let mut a10 = blk(1, 0);
        let mut a11 = blk(1, 1);
        block_potrf(&mut a00, w);
        block_trsm(&mut a10, &a00, w);
        let mut tmp = a11.clone();
        block_gemm_sub(&mut tmp, &a10, &a10, w);
        a11 = tmp;
        block_potrf(&mut a11, w);
        // Assemble L and compare to dense Cholesky.
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..w {
            for i in 0..w {
                l.set(i, j, a00[j * w + i]);
                l.set(w + i, j, a10[j * w + i]);
                l.set(w + i, w + j, a11[j * w + i]);
            }
        }
        let lref = dense_cholesky(&a);
        assert!(l.max_diff(&lref) < 1e-9, "diff {}", l.max_diff(&lref));
    }

    #[test]
    fn col_pair_mut_returns_disjoint_columns() {
        let mut m = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let (d, s) = m.col_pair_mut(2, 0);
        assert_eq!(s, &[0.0, 3.0, 6.0]);
        d[0] = 99.0;
        assert_eq!(m.get(0, 2), 99.0);
    }
}
