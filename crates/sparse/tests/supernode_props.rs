//! Property-based tests for the panel partition and its dependency graph.

use proptest::prelude::*;
use sparse::{CscMatrix, EliminationTree, PanelDeps, PanelPartition, SymbolicFactor};

fn random_spd(n: usize, edges: &[(usize, usize)]) -> CscMatrix {
    let mut t = Vec::new();
    let mut degree = vec![0.0f64; n];
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in edges {
        let (i, j) = (a % n, b % n);
        if i == j || !seen.insert((i.max(j), i.min(j))) {
            continue;
        }
        t.push((i.max(j), i.min(j), -1.0));
        degree[i] += 1.0;
        degree[j] += 1.0;
    }
    for (i, &d) in degree.iter().enumerate() {
        t.push((i, i, d + 1.5));
    }
    CscMatrix::from_triplets(n, &t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental partition is a contiguous cover of 0..n respecting
    /// the width cap, and panel_of inverts range().
    #[test]
    fn partition_covers_columns(
        n in 1usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..60),
        width in 1usize..9,
    ) {
        let a = random_spd(n, &edges);
        let e = EliminationTree::new(&a);
        let sym = SymbolicFactor::new(&a, &e);
        let p = PanelPartition::fundamental(&sym, width);
        let mut next = 0;
        for q in 0..p.len() {
            let r = p.range(q);
            prop_assert_eq!(r.start, next, "gap before panel {}", q);
            prop_assert!(!r.is_empty());
            prop_assert!(r.end - r.start <= width, "panel {} too wide", q);
            for j in r.clone() {
                prop_assert_eq!(p.panel_of(j), q);
            }
            next = r.end;
        }
        prop_assert_eq!(next, n);
    }

    /// Merged columns really have nested structure: within any fundamental
    /// panel, each column's pattern equals the previous column's minus its
    /// head.
    #[test]
    fn panels_have_nested_structure(
        n in 2usize..24,
        edges in prop::collection::vec((0usize..24, 0usize..24), 0..50),
    ) {
        let a = random_spd(n, &edges);
        let e = EliminationTree::new(&a);
        let sym = SymbolicFactor::new(&a, &e);
        let p = PanelPartition::fundamental(&sym, usize::MAX >> 1);
        for q in 0..p.len() {
            let r = p.range(q);
            for j in r.start + 1..r.end {
                let prev = sym.col_rows(j - 1);
                let cur = sym.col_rows(j);
                prop_assert_eq!(&prev[1..], cur, "panel {} not nested at col {}", q, j);
            }
        }
    }

    /// The dependency DAG is topologically consistent: edges only point
    /// right, pending counts equal in-degrees, and peeling initially-ready
    /// panels completes every panel exactly once.
    #[test]
    fn dependency_dag_is_sound(
        n in 1usize..30,
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..70),
        width in 1usize..6,
    ) {
        let a = random_spd(n, &edges);
        let e = EliminationTree::new(&a);
        let sym = SymbolicFactor::new(&a, &e);
        let panels = PanelPartition::fundamental(&sym, width);
        let deps = PanelDeps::new(&sym, &panels);
        let np = panels.len();
        let mut indeg = vec![0usize; np];
        for p in 0..np {
            let mut prev = None;
            for &q in deps.updates_to(p) {
                prop_assert!(q > p, "edge {p}→{q} points left");
                prop_assert!(prev.is_none_or(|x| x < q), "targets not sorted/unique");
                prev = Some(q);
                indeg[q] += 1;
            }
        }
        for (q, &want) in indeg.iter().enumerate() {
            prop_assert_eq!(deps.pending(q), want);
        }
        // Kahn's algorithm completes everything.
        let mut pend = indeg.clone();
        let mut stack = deps.initially_ready();
        let mut done = vec![false; np];
        let mut count = 0;
        while let Some(p) = stack.pop() {
            prop_assert!(!done[p], "panel {p} completed twice");
            done[p] = true;
            count += 1;
            for &q in deps.updates_to(p) {
                pend[q] -= 1;
                if pend[q] == 0 {
                    stack.push(q);
                }
            }
        }
        prop_assert_eq!(count, np);
    }
}
