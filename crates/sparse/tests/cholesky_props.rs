//! Property-based tests for the sparse Cholesky stack on random SPD
//! matrices.

use std::sync::Arc;

use proptest::prelude::*;
use sparse::dense::dense_cholesky;
use sparse::{CscMatrix, EliminationTree, Factor, PanelDeps, PanelPartition, SymbolicFactor};

/// Random sparse SPD matrix: random symmetric pattern + diagonal dominance.
fn random_spd(n: usize, edges: &[(usize, usize)]) -> CscMatrix {
    let mut t = Vec::new();
    let mut degree = vec![0.0f64; n];
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in edges {
        let (i, j) = (a % n, b % n);
        if i == j || !seen.insert((i.max(j), i.min(j))) {
            continue;
        }
        t.push((i.max(j), i.min(j), -1.0));
        degree[i] += 1.0;
        degree[j] += 1.0;
    }
    for (i, &d) in degree.iter().enumerate() {
        t.push((i, i, d + 1.5));
    }
    CscMatrix::from_triplets(n, &t)
}

fn pipeline(a: &CscMatrix) -> (Arc<SymbolicFactor>, Factor) {
    let e = EliminationTree::new(a);
    let sym = Arc::new(SymbolicFactor::new(a, &e));
    let f = Factor::init(a, sym.clone());
    (sym, f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// L·Lᵀ = A for the left-looking factorization of any random SPD matrix.
    #[test]
    fn factorization_reconstructs_a(
        n in 2usize..24,
        edges in prop::collection::vec((0usize..24, 0usize..24), 0..60),
    ) {
        let a = random_spd(n, &edges);
        let (_, mut f) = pipeline(&a);
        f.factorize_left_looking();
        prop_assert!(f.residual(&a) < 1e-8, "residual {}", f.residual(&a));
    }

    /// The sparse factor agrees entrywise with dense Cholesky.
    #[test]
    fn sparse_matches_dense(
        n in 2usize..16,
        edges in prop::collection::vec((0usize..16, 0usize..16), 0..40),
    ) {
        let a = random_spd(n, &edges);
        let (_, mut f) = pipeline(&a);
        f.factorize_left_looking();
        let lref = dense_cholesky(&a.to_dense());
        for j in 0..n {
            for i in j..n {
                prop_assert!((f.get(i, j) - lref.get(i, j)).abs() < 1e-8);
            }
        }
    }

    /// solve() inverts mul_vec().
    #[test]
    fn solve_roundtrip(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..50),
        xs in prop::collection::vec(-5.0f64..5.0, 20),
    ) {
        let a = random_spd(n, &edges);
        let (_, mut f) = pipeline(&a);
        f.factorize_left_looking();
        let x_true = &xs[..n];
        let b = a.mul_vec(x_true);
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(x_true) {
            prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    /// The panel-wise right-looking schedule produces the same factor as the
    /// left-looking reference, for any panel width.
    #[test]
    fn panel_schedule_equals_reference(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..50),
        width in 1usize..6,
    ) {
        let a = random_spd(n, &edges);
        let (sym, mut fref) = pipeline(&a);
        fref.factorize_left_looking();

        let panels = PanelPartition::fundamental(&sym, width);
        let mut f = Factor::init(&a, sym.clone());
        for p in 0..panels.len() {
            f.panel_internal_factor(panels.range(p));
            for q in p + 1..panels.len() {
                f.panel_update(panels.range(q), panels.range(p));
            }
        }
        for j in 0..n {
            for i in j..n {
                prop_assert!((f.get(i, j) - fref.get(i, j)).abs() < 1e-8);
            }
        }
    }

    /// Subset property the cmod merge relies on: for every L(j,k) ≠ 0 with
    /// j > k, pattern(L[j.., k]) ⊆ pattern(L[.., j]).
    #[test]
    fn symbolic_subset_property(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..50),
    ) {
        let a = random_spd(n, &edges);
        let e = EliminationTree::new(&a);
        let sym = SymbolicFactor::new(&a, &e);
        for k in 0..n {
            let rows = sym.col_rows(k);
            for (pos, &j) in rows.iter().enumerate() {
                if j == k {
                    continue;
                }
                let jset: std::collections::HashSet<usize> =
                    sym.col_rows(j).iter().copied().collect();
                for &i in &rows[pos..] {
                    prop_assert!(jset.contains(&i), "L({i},{k}) not covered by col {j}");
                }
            }
        }
    }

    /// The panel DAG is acyclic-by-construction and consistent: following
    /// ready-order execution, every panel's pending count reaches zero.
    #[test]
    fn panel_dag_executes_to_completion(
        n in 2usize..24,
        edges in prop::collection::vec((0usize..24, 0usize..24), 0..60),
        width in 1usize..5,
    ) {
        let a = random_spd(n, &edges);
        let e = EliminationTree::new(&a);
        let sym = SymbolicFactor::new(&a, &e);
        let panels = PanelPartition::fundamental(&sym, width);
        let deps = PanelDeps::new(&sym, &panels);
        let mut pending: Vec<usize> = (0..panels.len()).map(|q| deps.pending(q)).collect();
        let mut ready: Vec<usize> = deps.initially_ready();
        let mut done = 0;
        while let Some(p) = ready.pop() {
            done += 1;
            for &q in deps.updates_to(p) {
                pending[q] -= 1;
                if pending[q] == 0 {
                    ready.push(q);
                }
            }
        }
        prop_assert_eq!(done, panels.len(), "DAG stalled");
    }
}
