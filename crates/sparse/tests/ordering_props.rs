//! Property-based tests for the ordering module on random SPD matrices.

use std::sync::Arc;

use proptest::prelude::*;
use sparse::ordering::{minimum_degree, reverse_cuthill_mckee, Permutation};
use sparse::{CscMatrix, EliminationTree, Factor, SymbolicFactor};

fn random_spd(n: usize, edges: &[(usize, usize)]) -> CscMatrix {
    let mut t = Vec::new();
    let mut degree = vec![0.0f64; n];
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in edges {
        let (i, j) = (a % n, b % n);
        if i == j || !seen.insert((i.max(j), i.min(j))) {
            continue;
        }
        t.push((i.max(j), i.min(j), -1.0));
        degree[i] += 1.0;
        degree[j] += 1.0;
    }
    for (i, &d) in degree.iter().enumerate() {
        t.push((i, i, d + 1.5));
    }
    CscMatrix::from_triplets(n, &t)
}

fn fill_of(a: &CscMatrix) -> usize {
    let e = EliminationTree::new(a);
    SymbolicFactor::new(a, &e).fill_in(a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both orderings always produce permutations, the permuted matrix keeps
    /// its nnz, and it still factors with a small residual.
    #[test]
    fn orderings_preserve_the_problem(
        n in 2usize..24,
        edges in prop::collection::vec((0usize..24, 0usize..24), 0..70),
    ) {
        let a = random_spd(n, &edges);
        for p in [reverse_cuthill_mckee(&a), minimum_degree(&a)] {
            let mut sorted = p.as_slice().to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            let pa = a.permute_sym(&p);
            pa.check().unwrap();
            prop_assert_eq!(pa.nnz(), a.nnz());
            let e = EliminationTree::new(&pa);
            let sym = Arc::new(SymbolicFactor::new(&pa, &e));
            let mut f = Factor::init(&pa, sym);
            f.factorize_left_looking();
            prop_assert!(f.residual(&pa) < 1e-7, "residual {}", f.residual(&pa));
        }
    }

    /// Permutation algebra: inverse ∘ perm = identity; applying a
    /// permutation then its inverse recovers any vector.
    #[test]
    fn permutation_inverse_roundtrip(perm_seed in prop::collection::vec(0..1000u32, 1..40)) {
        // Build a permutation by sorting indices by the random keys.
        let n = perm_seed.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (perm_seed[i], i));
        let p = Permutation::from_vec(idx);
        let inv = p.inverse();
        for new in 0..n {
            prop_assert_eq!(inv.old_of(p.old_of(new)), new);
        }
        let v: Vec<u32> = (0..n as u32).collect();
        let vp = p.apply(&v);
        let back = inv.apply(&vp);
        prop_assert_eq!(back, v);
    }

    /// permute_sym is consistent: entry-wise (i,j) of P·A·Pᵀ equals
    /// (perm[i], perm[j]) of A.
    #[test]
    fn permute_sym_entrywise(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..30),
        keys in prop::collection::vec(0..1000u32, 12),
    ) {
        let a = random_spd(n, &edges);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (keys[i], i));
        let p = Permutation::from_vec(idx);
        let pa = a.permute_sym(&p);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(pa.get(i, j), a.get(p.old_of(i), p.old_of(j)));
            }
        }
    }

    /// Minimum degree never increases fill beyond the natural ordering by
    /// more than a small factor on random sparse graphs (it is a heuristic,
    /// but a sane one).
    #[test]
    fn minimum_degree_is_not_pathological(
        n in 4usize..24,
        edges in prop::collection::vec((0usize..24, 0usize..24), 4..70),
    ) {
        let a = random_spd(n, &edges);
        let natural = fill_of(&a);
        let md = fill_of(&a.permute_sym(&minimum_degree(&a)));
        prop_assert!(
            md <= natural.max(4) * 2,
            "minimum degree exploded fill: {md} vs natural {natural}"
        );
    }
}
