//! Runtime event stream consumed by `cool-analyze`.
//!
//! When event recording is enabled, the simulated runtime emits one
//! [`RtEvent`] per scheduling/synchronisation/memory action, in **execution
//! order**. Because the simulator runs task bodies atomically (one body at a
//! time in host order, interleaved deterministically by virtual time), the
//! recorded order is consistent with the happens-before relation it induces:
//! a spawn is recorded before its child starts, a mutex release before the
//! next acquire of the same lock, a sync release before any acquire that
//! observes it. The analyzer can therefore build vector clocks in a single
//! forward pass over the stream.
//!
//! The edges that create ordering (see DESIGN.md, "Happens-before model"):
//!
//! * **spawn** — everything the creator did before [`RtEvent::Spawn`]
//!   happens-before everything the child does;
//! * **phase** — every task of phase *N* happens-before every task of phase
//!   *N+1* ([`RtEvent::PhaseEnd`] is the `waitfor` barrier);
//! * **mutex** — a `with_mutex` body's release happens-before the next
//!   acquisition of the same lock object;
//! * **sync** — [`RtEvent::Sync`] is a combined release-acquire on a token
//!   object, modelling the runtime-internal completion counters/flags that
//!   dataflow programs consult before spawning dependent work.
//!
//! Plain [`RtEvent::Access`]es not ordered by those edges and overlapping in
//! bytes (with at least one write, not both atomic) are data races.

use crate::ids::{ObjRef, ProcId};

/// Unique identity of one task instance within one run. `TaskUid(0)` is
/// reserved for the *root* context (spawns from outside any task).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskUid(pub u64);

impl TaskUid {
    /// The root (external) context.
    pub const ROOT: TaskUid = TaskUid(0);
}

impl std::fmt::Display for TaskUid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// How a memory access participates in the concurrency model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Ordinary read: races with unordered overlapping writes.
    Read,
    /// Ordinary write: races with unordered overlapping accesses.
    Write,
    /// Relaxed atomic read (e.g. LocusRoute's deliberately stale CostArray
    /// lookups): never races with other atomics, still races with plain
    /// writes.
    AtomicRead,
    /// Relaxed atomic write (e.g. per-cell occupancy increments): never races
    /// with other atomics, still races with plain accesses.
    AtomicWrite,
}

impl AccessKind {
    /// Does this access modify memory?
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::AtomicWrite)
    }

    /// Is this access an atomic (race-exempt against other atomics)?
    pub fn is_atomic(self) -> bool {
        matches!(self, AccessKind::AtomicRead | AccessKind::AtomicWrite)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::AtomicRead => "atomic-read",
            AccessKind::AtomicWrite => "atomic-write",
        }
    }
}

/// One runtime event. Times are virtual cycles of the acting server; they are
/// informational (the stream order is what carries the happens-before
/// structure).
#[derive(Clone, Debug, PartialEq)]
pub enum RtEvent {
    /// A `run_phase` began (the `waitfor` block opened).
    PhaseBegin {
        /// Phase sequence number (monotone per run).
        seq: u32,
    },
    /// The phase ran to quiescence: all transitively spawned tasks are done.
    PhaseEnd {
        /// Phase sequence number (matches the corresponding begin).
        seq: u32,
    },
    /// A task was created and enqueued. `parent` is `None` for spawns from
    /// outside any task (the root context).
    Spawn {
        /// Spawning task, or `None` for the root context.
        parent: Option<TaskUid>,
        /// Identity of the new task.
        child: TaskUid,
        /// Human-readable task label, when the app provided one.
        label: Option<&'static str>,
        /// OBJECT-affinity object, if hinted.
        object: Option<ObjRef>,
        /// Server the affinity resolution selected.
        target: ProcId,
        /// Virtual cycle of the spawning server.
        time: u64,
    },
    /// A task began executing (after any mutex acquisition succeeded).
    TaskStart {
        /// Task being dispatched.
        task: TaskUid,
        /// Server executing the task.
        proc: ProcId,
        /// Server the spawn-time affinity resolution selected.
        target: ProcId,
        /// OBJECT-affinity object, when it *drove placement* (no PROCESSOR
        /// override) — so `target` was this object's home at spawn time.
        object: Option<ObjRef>,
        /// The object's home server resolved *now* (dispatch time) — differs
        /// from `target` when the object migrated after the spawn.
        object_home: Option<ProcId>,
        /// Virtual cycle of the dispatching server.
        time: u64,
    },
    /// The task body completed (after mutex release).
    TaskEnd {
        /// Task that finished.
        task: TaskUid,
        /// Server it ran on.
        proc: ProcId,
        /// Virtual cycle of completion.
        time: u64,
    },
    /// A `with_mutex` lock was acquired (emitted once per lock, in the
    /// task's declared acquisition order).
    MutexAcquire {
        /// Acquiring task.
        task: TaskUid,
        /// Lock object.
        lock: ObjRef,
        /// Virtual cycle of acquisition.
        time: u64,
    },
    /// A `with_mutex` lock was released (reverse acquisition order).
    MutexRelease {
        /// Releasing task.
        task: TaskUid,
        /// Lock object.
        lock: ObjRef,
        /// Virtual cycle of release.
        time: u64,
    },
    /// A mirrored memory access.
    Access {
        /// Accessing task.
        task: TaskUid,
        /// Base of the accessed range.
        obj: ObjRef,
        /// Length of the accessed range in bytes.
        len: u64,
        /// Read/write/atomic classification.
        kind: AccessKind,
        /// Server the access executed on.
        proc: ProcId,
        /// Virtual cycle of the access.
        time: u64,
    },
    /// Release-acquire synchronisation point on `token` (zero-cost; models
    /// the runtime's completion counters — see module docs).
    Sync {
        /// Synchronising task.
        task: TaskUid,
        /// Token object carrying the release-acquire edge.
        token: ObjRef,
        /// Virtual cycle of the sync.
        time: u64,
    },
    /// A prefetch issued at task dispatch. `cost` is the cycles the issue
    /// charged (0 when the lines were already cached).
    Prefetch {
        /// Task whose dispatch issued the prefetch.
        task: TaskUid,
        /// Object being prefetched.
        obj: ObjRef,
        /// Bytes fetched.
        bytes: u64,
        /// Cycles charged for the issue (0 if already cached).
        cost: u64,
        /// Virtual cycle of the issue.
        time: u64,
    },
    /// `migrate()` moved `bytes` at `obj` to `to`'s local memory.
    Migrate {
        /// Task that requested the migration.
        task: TaskUid,
        /// Object that moved.
        obj: ObjRef,
        /// Bytes moved.
        bytes: u64,
        /// Destination server (its cluster's local memory).
        to: ProcId,
        /// Virtual cycle of the move.
        time: u64,
    },
    /// A serve-layer request was admitted into a shard domain's pool
    /// (emitted under the admission lock, before the queue push).
    ///
    /// Happens-before: spawn-style — everything the submitter did before
    /// the admit happens-before everything the request does — plus a
    /// *release* onto the domain's queue channel (the shard-pool mutex +
    /// condvar): the admit happens-before any attempt that pops it.
    ReqAdmit {
        /// Identity of the admitted request (requests share the task-uid
        /// namespace; the serve layer offsets its ids past task uids).
        req: TaskUid,
        /// Channel token of the domain pool the request entered.
        domain: ObjRef,
        /// Milliseconds since the server started (informational).
        time: u64,
    },
    /// A worker popped a request from its domain queue and is about to
    /// run one attempt of its body.
    ///
    /// Happens-before: an *acquire* of the domain queue channel (joins
    /// every earlier push: the admit, and requeues of retried requests)
    /// and of the worker's own program order (a single worker's attempts
    /// are serialized by its thread).
    ReqAttempt {
        /// The request being attempted.
        req: TaskUid,
        /// 1-based attempt number.
        attempt: u32,
        /// Channel token of the domain pool.
        domain: ObjRef,
        /// Worker identity (worker threads share the proc namespace).
        proc: ProcId,
        /// Milliseconds since the server started.
        time: u64,
    },
    /// An attempt finished: terminal success/failure, or a retry about to
    /// be requeued.
    ///
    /// Happens-before: a *release* of the worker's program order and — for
    /// retries — of the domain queue channel (the requeue happens-before
    /// the next attempt's pop). Every outcome also releases into the
    /// drain barrier.
    ReqOutcome {
        /// The request whose attempt finished.
        req: TaskUid,
        /// 1-based attempt number that finished.
        attempt: u32,
        /// Whether the body succeeded (terminal completion).
        ok: bool,
        /// Channel token of the domain pool.
        domain: ObjRef,
        /// Worker identity.
        proc: ProcId,
        /// Milliseconds since the server started.
        time: u64,
    },
    /// The server drained: every admitted request reached a terminal
    /// outcome and `drain()` returned.
    ///
    /// Happens-before: a barrier — every [`RtEvent::ReqOutcome`] emitted
    /// before this happens-before everything the drainer does after.
    ReqDrain {
        /// Milliseconds since the server started.
        time: u64,
    },
}

impl RtEvent {
    /// The task this event is attributed to, if any.
    pub fn task(&self) -> Option<TaskUid> {
        match self {
            RtEvent::PhaseBegin { .. } | RtEvent::PhaseEnd { .. } => None,
            RtEvent::Spawn { child, .. } => Some(*child),
            RtEvent::TaskStart { task, .. }
            | RtEvent::TaskEnd { task, .. }
            | RtEvent::MutexAcquire { task, .. }
            | RtEvent::MutexRelease { task, .. }
            | RtEvent::Access { task, .. }
            | RtEvent::Sync { task, .. }
            | RtEvent::Prefetch { task, .. }
            | RtEvent::Migrate { task, .. } => Some(*task),
            RtEvent::ReqAdmit { req, .. }
            | RtEvent::ReqAttempt { req, .. }
            | RtEvent::ReqOutcome { req, .. } => Some(*req),
            RtEvent::ReqDrain { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_classification() {
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::AtomicWrite.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::AtomicRead.is_atomic());
        assert!(!AccessKind::Write.is_atomic());
        assert_eq!(AccessKind::AtomicWrite.label(), "atomic-write");
    }

    #[test]
    fn event_task_attribution() {
        let ev = RtEvent::Spawn {
            parent: None,
            child: TaskUid(3),
            label: None,
            object: None,
            target: ProcId(0),
            time: 0,
        };
        assert_eq!(ev.task(), Some(TaskUid(3)));
        assert_eq!(RtEvent::PhaseEnd { seq: 1 }.task(), None);
        assert_eq!(TaskUid::ROOT.to_string(), "T0");
    }
}
