//! Work-stealing policy and machine topology knobs.
//!
//! Section 4.2 of the paper describes the stealing behaviour the runtime
//! layers on top of the affinity hints: idle processors steal; task-affinity
//! sets are stolen as a set; object-affinity tasks should preferably not be
//! stolen. Section 6.3 adds *cluster stealing* — an idle processor first (or
//! only) steals from processors within its own cluster so stolen tasks keep
//! referencing the destination object in local memory — controlled in the
//! paper by a runtime flag the programmer can manipulate dynamically.
//!
//! The paper evaluates on DASH's fixed 2-level machine (processors grouped
//! into clusters sharing a memory). Modern machines nest deeper — SMT pairs
//! inside cores inside chiplets inside sockets — so [`Topology`] generalizes
//! the cluster model to an N-level tree: each level groups a fixed number of
//! consecutive processors into a *domain*, domains nest, and one designated
//! level (the *memory level*) plays the role of the paper's cluster. Victim
//! scan orders widen domain by domain — nearest common ancestor first — and
//! [`StealPolicy`] gains a per-level radius and a politeness knob that widens
//! the steal domain one level per failed scan, in the spirit of the
//! bubble-scheduler line of work (Thibault et al.). A 2-level machine remains
//! a special case with byte-identical scan orders.

use crate::ids::{ClusterId, ProcId};

/// Maximum explicit levels in a machine tree (the implicit machine root sits
/// above the outermost one). Four levels model e.g. SMT pair → core cluster →
/// chiplet → socket.
pub const MAX_TOPO_LEVELS: usize = 4;

/// Machine topology as seen by the scheduler: an N-level tree of processor
/// groupings.
///
/// Level `l` (innermost first) groups `level_size(l)` consecutive processors
/// into a domain; sizes strictly increase and each divides the next, so
/// domains nest. One level — [`Topology::mem_level`] — is the *cluster*
/// level: the domains that share a local memory (the paper's DASH clusters).
/// The machine root sits implicitly above the outermost explicit level, at
/// level index [`Topology::nlevels`].
///
/// The classic 2-level DASH machine is [`Topology::clustered`]: one explicit
/// level (the cluster) under the root.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Topology {
    /// Number of server processes (one per processor).
    pub nservers: usize,
    /// Domain sizes per explicit level, innermost first; unused entries 1.
    levels: [usize; MAX_TOPO_LEVELS],
    /// Explicit levels in use.
    nlevels: u8,
    /// The level whose domains share a local memory.
    mem_level: u8,
}

impl Topology {
    /// A flat machine: every processor is its own cluster.
    pub fn flat(nservers: usize) -> Self {
        Self::clustered(nservers, 1)
    }

    /// DASH-like topology: clusters of `procs_per_cluster` processors.
    pub fn clustered(nservers: usize, procs_per_cluster: usize) -> Self {
        Self::tree(nservers, &[procs_per_cluster], 0)
    }

    /// An N-level tree. `level_sizes` are domain sizes innermost-first, each
    /// strictly larger than and divisible by the previous; `mem_level`
    /// designates which level's domains share a local memory. The processor
    /// count does not need to fill the tree — the last domain of any level
    /// may be ragged, exactly like the classic partial last cluster.
    pub fn tree(nservers: usize, level_sizes: &[usize], mem_level: usize) -> Self {
        assert!(
            !level_sizes.is_empty() && level_sizes.len() <= MAX_TOPO_LEVELS,
            "1..={MAX_TOPO_LEVELS} levels, got {}",
            level_sizes.len()
        );
        assert!(mem_level < level_sizes.len(), "mem_level out of range");
        let mut levels = [1usize; MAX_TOPO_LEVELS];
        for (l, &s) in level_sizes.iter().enumerate() {
            assert!(s > 0, "level sizes must be positive");
            if l > 0 {
                assert!(
                    s > level_sizes[l - 1] && s % level_sizes[l - 1] == 0,
                    "level sizes must strictly increase and nest: {level_sizes:?}"
                );
            }
            levels[l] = s;
        }
        Topology {
            nservers,
            levels,
            nlevels: level_sizes.len() as u8,
            mem_level: mem_level as u8,
        }
    }

    /// Explicit levels in the tree (the root above them is level `nlevels`).
    #[inline]
    pub fn nlevels(&self) -> usize {
        self.nlevels as usize
    }

    /// The level whose domains share a local memory (the paper's cluster).
    #[inline]
    pub fn mem_level(&self) -> usize {
        self.mem_level as usize
    }

    /// Domain size (processors per domain) at explicit level `l`.
    #[inline]
    pub fn level_size(&self, l: usize) -> usize {
        assert!(l < self.nlevels as usize);
        self.levels[l]
    }

    /// The domain sizes of all explicit levels, innermost first.
    pub fn level_sizes(&self) -> &[usize] {
        &self.levels[..self.nlevels as usize]
    }

    /// Processors per cluster (domain size at the memory level).
    #[inline]
    pub fn procs_per_cluster(&self) -> usize {
        self.levels[self.mem_level as usize]
    }

    /// The domain index of processor `p` at explicit level `l`.
    #[inline]
    pub fn domain_of(&self, p: ProcId, l: usize) -> usize {
        p.index() / self.levels[l]
    }

    /// Number of domains at explicit level `l` (last may be ragged).
    pub fn ndomains(&self, l: usize) -> usize {
        assert!(l < self.nlevels as usize);
        self.nservers.div_ceil(self.levels[l])
    }

    /// The cluster (memory-level domain) a processor belongs to.
    #[inline]
    pub fn cluster_of(&self, p: ProcId) -> ClusterId {
        ClusterId(p.index() / self.levels[self.mem_level as usize])
    }

    /// Number of clusters (last one may be partially populated).
    pub fn nclusters(&self) -> usize {
        self.nservers.div_ceil(self.levels[self.mem_level as usize])
    }

    /// Are two processors in the same cluster (sharing a local memory)?
    #[inline]
    pub fn same_cluster(&self, a: ProcId, b: ProcId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }

    /// The innermost explicit level at which `a` and `b` share a domain, or
    /// `nlevels` (the machine root) if they share none. Level 0 means the
    /// two processors are nearest neighbours; larger is farther apart.
    #[inline]
    pub fn common_level(&self, a: ProcId, b: ProcId) -> usize {
        for l in 0..self.nlevels as usize {
            if a.index() / self.levels[l] == b.index() / self.levels[l] {
                return l;
            }
        }
        self.nlevels as usize
    }

    /// Victim scan order for a thief: nearest domains first (common-ancestor
    /// level ascending), each bucket in round-robin order starting after the
    /// thief. On a 2-level machine this is exactly "same-cluster processors
    /// first, then remote" — byte-identical to the original order. A
    /// deterministic order keeps the simulation reproducible.
    pub fn steal_order(&self, thief: ProcId) -> Vec<ProcId> {
        self.order_with_levels(thief)
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    }

    /// As [`Topology::steal_order`], with each victim's common-ancestor
    /// level attached.
    fn order_with_levels(&self, thief: ProcId) -> Vec<(ProcId, u8)> {
        let nl = self.nlevels as usize;
        let mut buckets: Vec<Vec<(ProcId, u8)>> = vec![Vec::new(); nl + 1];
        for k in 1..self.nservers {
            let v = ProcId((thief.index() + k) % self.nservers);
            let lvl = self.common_level(thief, v);
            buckets[lvl].push((v, lvl as u8));
        }
        buckets.concat()
    }

    /// Precompute every thief's victim order (see [`VictimOrders`]).
    pub fn victim_orders(&self) -> VictimOrders {
        VictimOrders::new(self)
    }
}

/// Precomputed victim scan orders for every thief.
///
/// [`Topology::steal_order`] allocates a fresh vector per call, and it sits
/// on the idle/steal hot path — every failed scan rebuilt the same order.
/// This table builds each order once; entries carry the victim together with
/// its common-ancestor level so level-widening policies need no per-probe
/// recomputation.
#[derive(Clone, Debug, Default)]
pub struct VictimOrders {
    /// All thieves' orders, concatenated; thief `t` owns
    /// `entries[t * stride .. (t + 1) * stride]`.
    entries: Vec<(ProcId, u8)>,
    /// Victims per thief (`nservers − 1`).
    stride: usize,
}

impl VictimOrders {
    /// Build the table for `topo` (O(nservers²) once, at runtime startup).
    pub fn new(topo: &Topology) -> Self {
        let stride = topo.nservers.saturating_sub(1);
        let mut entries = Vec::with_capacity(stride * topo.nservers);
        for t in 0..topo.nservers {
            entries.extend(topo.order_with_levels(ProcId(t)));
        }
        VictimOrders { entries, stride }
    }

    /// Victims per thief (`nservers − 1`).
    #[inline]
    pub fn len_per_thief(&self) -> usize {
        self.stride
    }

    /// The scan order for `thief`: `(victim, common-ancestor level)` pairs,
    /// nearest domains first.
    #[inline]
    pub fn order(&self, thief: ProcId) -> &[(ProcId, u8)] {
        let s = thief.index() * self.stride;
        &self.entries[s..s + self.stride]
    }

    /// The `i`-th entry of `thief`'s scan order (indexed access for callers
    /// that cannot hold the slice borrow across mutation).
    #[inline]
    pub fn entry(&self, thief: ProcId, i: usize) -> (ProcId, u8) {
        self.entries[thief.index() * self.stride + i]
    }
}

/// Steal-policy configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StealPolicy {
    /// Master switch: disable stealing entirely (used by the round-robin
    /// "Base" versions in the case studies, which rely on even initial
    /// placement alone).
    pub enabled: bool,
    /// Thieves avoid tasks collocated with objects (OBJECT affinity).
    pub avoid_object_affinity: bool,
    /// Steal task-affinity sets as a whole (Section 4.2: "tasks scheduled
    /// with task-affinity can be stolen as a set ... and still benefit from
    /// cache locality"). When false, thieves take a single task even from
    /// affinity slots — the ablation shows the cache-reuse cost.
    pub steal_whole_sets: bool,
    /// Restrict stealing to processors within the thief's cluster, so stolen
    /// tasks still reference the destination object in local memory
    /// (the `Distr+Aff+ClusterStealing` experiment of Section 6.3).
    pub cluster_only: bool,
    /// After this many consecutive failed scans an idle server performs a
    /// last-resort steal ignoring `avoid_object_affinity`, guaranteeing
    /// progress (locality boundaries — `cluster_only`, `steal_radius` — stay
    /// strict; `polite_widening` widens itself as scans fail).
    pub last_resort_after: usize,
    /// Topology-aware generalization of `cluster_only`: victims whose common
    /// ancestor with the thief is more than this many levels above the
    /// cluster level are never stolen from. `Some(0)` is equivalent to
    /// `cluster_only`; `None` leaves the machine unrestricted.
    pub steal_radius: Option<usize>,
    /// Widen the steal domain politely, one topology level per consecutive
    /// failed scan: the first scan probes only nearest-neighbour domains,
    /// the next admits one level further out, and so on to the machine root.
    pub polite_widening: bool,
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy {
            enabled: true,
            avoid_object_affinity: true,
            steal_whole_sets: true,
            cluster_only: false,
            last_resort_after: 2,
            steal_radius: None,
            polite_widening: false,
        }
    }
}

impl StealPolicy {
    /// A compact, stable fingerprint of the policy knobs, used in the
    /// `cool-repro` memoization key. Topology-aware knobs append segments
    /// only when set, so classic policies keep their historical fingerprint.
    pub fn fingerprint(&self) -> String {
        let mut s = format!(
            "steal={} avoid={} sets={} cluster={} lr={}",
            u8::from(self.enabled),
            u8::from(self.avoid_object_affinity),
            u8::from(self.steal_whole_sets),
            u8::from(self.cluster_only),
            self.last_resort_after,
        );
        if let Some(r) = self.steal_radius {
            s.push_str(&format!(" rad={r}"));
        }
        if self.polite_widening {
            s.push_str(" widen=1");
        }
        s
    }

    /// No stealing at all.
    pub fn disabled() -> Self {
        StealPolicy {
            enabled: false,
            ..Self::default()
        }
    }

    /// Default stealing with the cluster-only restriction enabled.
    pub fn cluster_only() -> Self {
        StealPolicy {
            cluster_only: true,
            ..Self::default()
        }
    }

    /// Default stealing bounded to `radius` levels above the cluster level
    /// (`with_radius(0)` is [`StealPolicy::cluster_only`] by another name;
    /// `with_radius(1)` allows the enclosing socket, and so on).
    pub fn with_radius(radius: usize) -> Self {
        StealPolicy {
            steal_radius: Some(radius),
            ..Self::default()
        }
    }

    /// Default stealing with polite level-by-level widening.
    pub fn widening() -> Self {
        StealPolicy {
            polite_widening: true,
            ..Self::default()
        }
    }

    /// The highest common-ancestor level a thief may currently steal across:
    /// victims with [`Topology::common_level`] above this are skipped
    /// (without even a probe, exactly like the original `cluster_only`
    /// check). `cluster_only` pins the ceiling at the memory level and
    /// `steal_radius` at `mem_level + radius` — both strict, desperation
    /// never lifts a locality boundary. `polite_widening` starts the ceiling
    /// at level 0 and raises it one level per consecutive failed scan.
    #[inline]
    pub fn allowed_level(&self, topo: &Topology, failed_scans: usize) -> usize {
        let mut ceiling = usize::MAX;
        if self.cluster_only {
            ceiling = topo.mem_level();
        }
        if let Some(r) = self.steal_radius {
            ceiling = ceiling.min(topo.mem_level().saturating_add(r));
        }
        if self.polite_widening {
            ceiling = ceiling.min(failed_scans);
        }
        ceiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_partition_processors() {
        let t = Topology::clustered(32, 4);
        assert_eq!(t.nclusters(), 8);
        assert_eq!(t.cluster_of(ProcId(0)), ClusterId(0));
        assert_eq!(t.cluster_of(ProcId(3)), ClusterId(0));
        assert_eq!(t.cluster_of(ProcId(4)), ClusterId(1));
        assert_eq!(t.cluster_of(ProcId(31)), ClusterId(7));
        assert!(t.same_cluster(ProcId(4), ProcId(7)));
        assert!(!t.same_cluster(ProcId(3), ProcId(4)));
    }

    #[test]
    fn flat_topology_has_singleton_clusters() {
        let t = Topology::flat(5);
        assert_eq!(t.nclusters(), 5);
        assert!(!t.same_cluster(ProcId(0), ProcId(1)));
    }

    #[test]
    fn steal_order_visits_everyone_once_cluster_first() {
        let t = Topology::clustered(8, 4);
        let order = t.steal_order(ProcId(1));
        assert_eq!(order.len(), 7);
        // First the rest of cluster 0 ...
        assert_eq!(&order[..3], &[ProcId(2), ProcId(3), ProcId(0)]);
        // ... then cluster 1.
        assert!(order[3..].iter().all(|p| p.index() >= 4));
        let mut sorted: Vec<usize> = order.iter().map(|p| p.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn partial_last_cluster_is_counted() {
        let t = Topology::clustered(10, 4);
        assert_eq!(t.nclusters(), 3);
        assert_eq!(t.cluster_of(ProcId(9)), ClusterId(2));
    }

    #[test]
    fn deep_tree_levels_nest() {
        // SMT pairs → 8-proc chiplets (memory) → 32-proc sockets, 64 procs.
        let t = Topology::tree(64, &[2, 8, 32], 1);
        assert_eq!(t.nlevels(), 3);
        assert_eq!(t.mem_level(), 1);
        assert_eq!(t.procs_per_cluster(), 8);
        assert_eq!(t.nclusters(), 8);
        assert_eq!(t.ndomains(0), 32);
        assert_eq!(t.ndomains(2), 2);
        assert_eq!(t.common_level(ProcId(0), ProcId(1)), 0); // SMT pair
        assert_eq!(t.common_level(ProcId(0), ProcId(2)), 1); // same chiplet
        assert_eq!(t.common_level(ProcId(0), ProcId(8)), 2); // same socket
        assert_eq!(t.common_level(ProcId(0), ProcId(32)), 3); // machine root
        assert!(t.same_cluster(ProcId(0), ProcId(7)));
        assert!(!t.same_cluster(ProcId(7), ProcId(8)));
    }

    #[test]
    fn deep_steal_order_widens_nearest_first() {
        let t = Topology::tree(16, &[2, 4, 8], 1);
        let order = t.steal_order(ProcId(5));
        assert_eq!(order.len(), 15);
        // SMT sibling first, then the rest of the 4-proc chiplet, then the
        // other chiplet of the 8-proc socket, then the far socket.
        assert_eq!(order[0], ProcId(4));
        let lv: Vec<usize> = order.iter().map(|&v| t.common_level(ProcId(5), v)).collect();
        assert!(lv.windows(2).all(|w| w[0] <= w[1]), "levels ascend: {lv:?}");
        let mut sorted: Vec<usize> = order.iter().map(|p| p.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).filter(|&i| i != 5).collect::<Vec<_>>());
    }

    #[test]
    fn victim_orders_match_steal_order() {
        for topo in [
            Topology::clustered(10, 4),
            Topology::flat(3),
            Topology::tree(24, &[2, 8], 1),
        ] {
            let orders = topo.victim_orders();
            assert_eq!(orders.len_per_thief(), topo.nservers - 1);
            for t in 0..topo.nservers {
                let thief = ProcId(t);
                let fresh = topo.steal_order(thief);
                let pre: Vec<ProcId> = orders.order(thief).iter().map(|&(v, _)| v).collect();
                assert_eq!(pre, fresh, "thief {t}");
                for (i, &(v, lvl)) in orders.order(thief).iter().enumerate() {
                    assert_eq!(orders.entry(thief, i), (v, lvl));
                    assert_eq!(lvl as usize, topo.common_level(thief, v));
                }
            }
        }
    }

    #[test]
    fn allowed_level_reproduces_cluster_only_and_widens() {
        let t2 = Topology::clustered(8, 4);
        let deep = Topology::tree(64, &[2, 8, 32], 1);
        let dflt = StealPolicy::default();
        assert_eq!(dflt.allowed_level(&t2, 0), usize::MAX);
        let co = StealPolicy::cluster_only();
        // Strict at every desperation stage: cluster boundary never lifts.
        assert_eq!(co.allowed_level(&t2, 0), 0);
        assert_eq!(co.allowed_level(&t2, 99), 0);
        assert_eq!(co.allowed_level(&deep, 99), 1);
        let sock = StealPolicy::with_radius(1);
        assert_eq!(sock.allowed_level(&deep, 99), 2);
        let widen = StealPolicy::widening();
        assert_eq!(widen.allowed_level(&deep, 0), 0);
        assert_eq!(widen.allowed_level(&deep, 2), 2);
        assert_eq!(widen.allowed_level(&deep, 9), 9);
    }

    #[test]
    fn classic_policy_fingerprints_are_unchanged() {
        assert_eq!(
            StealPolicy::default().fingerprint(),
            "steal=1 avoid=1 sets=1 cluster=0 lr=2"
        );
        assert_eq!(
            StealPolicy::cluster_only().fingerprint(),
            "steal=1 avoid=1 sets=1 cluster=1 lr=2"
        );
        // Topology-aware knobs append — they never collide with classic.
        assert_eq!(
            StealPolicy::with_radius(1).fingerprint(),
            "steal=1 avoid=1 sets=1 cluster=0 lr=2 rad=1"
        );
        assert_eq!(
            StealPolicy::widening().fingerprint(),
            "steal=1 avoid=1 sets=1 cluster=0 lr=2 widen=1"
        );
    }
}
