//! Work-stealing policy and machine topology knobs.
//!
//! Section 4.2 of the paper describes the stealing behaviour the runtime
//! layers on top of the affinity hints: idle processors steal; task-affinity
//! sets are stolen as a set; object-affinity tasks should preferably not be
//! stolen. Section 6.3 adds *cluster stealing* — an idle processor first (or
//! only) steals from processors within its own cluster so stolen tasks keep
//! referencing the destination object in local memory — controlled in the
//! paper by a runtime flag the programmer can manipulate dynamically.

use crate::ids::{ClusterId, ProcId};

/// Machine topology as seen by the scheduler: how many servers there are and
/// how they group into clusters sharing a local memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Topology {
    /// Number of server processes (one per processor).
    pub nservers: usize,
    /// Processors per cluster (4 on the DASH prototype).
    pub procs_per_cluster: usize,
}

impl Topology {
    /// A flat machine: every processor is its own cluster.
    pub fn flat(nservers: usize) -> Self {
        Topology {
            nservers,
            procs_per_cluster: 1,
        }
    }

    /// DASH-like topology: clusters of `procs_per_cluster` processors.
    pub fn clustered(nservers: usize, procs_per_cluster: usize) -> Self {
        assert!(procs_per_cluster > 0);
        Topology {
            nservers,
            procs_per_cluster,
        }
    }

    /// The cluster a processor belongs to.
    #[inline]
    pub fn cluster_of(&self, p: ProcId) -> ClusterId {
        ClusterId(p.index() / self.procs_per_cluster)
    }

    /// Number of clusters (last one may be partially populated).
    pub fn nclusters(&self) -> usize {
        self.nservers.div_ceil(self.procs_per_cluster)
    }

    /// Are two processors in the same cluster (sharing a local memory)?
    #[inline]
    pub fn same_cluster(&self, a: ProcId, b: ProcId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }

    /// Victim scan order for a thief: same-cluster processors first (in
    /// round-robin order starting after the thief), then remote processors.
    /// A deterministic order keeps the simulation reproducible.
    pub fn steal_order(&self, thief: ProcId) -> Vec<ProcId> {
        let mut local = Vec::new();
        let mut remote = Vec::new();
        for k in 1..self.nservers {
            let v = ProcId((thief.index() + k) % self.nservers);
            if self.same_cluster(thief, v) {
                local.push(v);
            } else {
                remote.push(v);
            }
        }
        local.extend(remote);
        local
    }
}

/// Steal-policy configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StealPolicy {
    /// Master switch: disable stealing entirely (used by the round-robin
    /// "Base" versions in the case studies, which rely on even initial
    /// placement alone).
    pub enabled: bool,
    /// Thieves avoid tasks collocated with objects (OBJECT affinity).
    pub avoid_object_affinity: bool,
    /// Steal task-affinity sets as a whole (Section 4.2: "tasks scheduled
    /// with task-affinity can be stolen as a set ... and still benefit from
    /// cache locality"). When false, thieves take a single task even from
    /// affinity slots — the ablation shows the cache-reuse cost.
    pub steal_whole_sets: bool,
    /// Restrict stealing to processors within the thief's cluster, so stolen
    /// tasks still reference the destination object in local memory
    /// (the `Distr+Aff+ClusterStealing` experiment of Section 6.3).
    pub cluster_only: bool,
    /// After this many consecutive failed scans an idle server performs a
    /// last-resort steal ignoring `avoid_object_affinity` and
    /// `cluster_only`, guaranteeing progress.
    pub last_resort_after: usize,
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy {
            enabled: true,
            avoid_object_affinity: true,
            steal_whole_sets: true,
            cluster_only: false,
            last_resort_after: 2,
        }
    }
}

impl StealPolicy {
    /// A compact, stable fingerprint of the policy knobs, used in the
    /// `cool-repro` memoization key.
    pub fn fingerprint(&self) -> String {
        format!(
            "steal={} avoid={} sets={} cluster={} lr={}",
            u8::from(self.enabled),
            u8::from(self.avoid_object_affinity),
            u8::from(self.steal_whole_sets),
            u8::from(self.cluster_only),
            self.last_resort_after,
        )
    }

    /// No stealing at all.
    pub fn disabled() -> Self {
        StealPolicy {
            enabled: false,
            ..Self::default()
        }
    }

    /// Default stealing with the cluster-only restriction enabled.
    pub fn cluster_only() -> Self {
        StealPolicy {
            cluster_only: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_partition_processors() {
        let t = Topology::clustered(32, 4);
        assert_eq!(t.nclusters(), 8);
        assert_eq!(t.cluster_of(ProcId(0)), ClusterId(0));
        assert_eq!(t.cluster_of(ProcId(3)), ClusterId(0));
        assert_eq!(t.cluster_of(ProcId(4)), ClusterId(1));
        assert_eq!(t.cluster_of(ProcId(31)), ClusterId(7));
        assert!(t.same_cluster(ProcId(4), ProcId(7)));
        assert!(!t.same_cluster(ProcId(3), ProcId(4)));
    }

    #[test]
    fn flat_topology_has_singleton_clusters() {
        let t = Topology::flat(5);
        assert_eq!(t.nclusters(), 5);
        assert!(!t.same_cluster(ProcId(0), ProcId(1)));
    }

    #[test]
    fn steal_order_visits_everyone_once_cluster_first() {
        let t = Topology::clustered(8, 4);
        let order = t.steal_order(ProcId(1));
        assert_eq!(order.len(), 7);
        // First the rest of cluster 0 ...
        assert_eq!(&order[..3], &[ProcId(2), ProcId(3), ProcId(0)]);
        // ... then cluster 1.
        assert!(order[3..].iter().all(|p| p.index() >= 4));
        let mut sorted: Vec<usize> = order.iter().map(|p| p.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn partial_last_cluster_is_counted() {
        let t = Topology::clustered(10, 4);
        assert_eq!(t.nclusters(), 3);
        assert_eq!(t.cluster_of(ProcId(9)), ClusterId(2));
    }
}
