//! Failure descriptions surfaced by the runtimes.
//!
//! A COOL task body that panics must not take the runtime down with it: the
//! worker catches the unwind, releases whatever the task held (its scope
//! slot, its mutex object) and records a [`TaskError`] against the enclosing
//! scope, which reports every failure when it completes.

use crate::ObjRef;

/// One task body that panicked inside a scope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskError {
    /// Server index the body was executing on when it panicked.
    pub proc: usize,
    /// The panic payload, stringified (`&str` / `String` payloads verbatim,
    /// anything else as a placeholder).
    pub message: String,
    /// The mutex object the task held, if it was a `parallel mutex` function
    /// (released by the runtime before this error was recorded).
    pub mutex_on: Option<ObjRef>,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked on server {}: {}", self.proc, self.message)?;
        if let Some(obj) = self.mutex_on {
            write!(f, " (held mutex on {obj:?}, released)")?;
        }
        Ok(())
    }
}

impl std::error::Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_server_and_mutex() {
        let e = TaskError {
            proc: 3,
            message: "boom".into(),
            mutex_on: Some(ObjRef(0x40)),
        };
        let s = e.to_string();
        assert!(s.contains("server 3"), "{s}");
        assert!(s.contains("boom"), "{s}");
        assert!(s.contains("released"), "{s}");
        let e2 = TaskError {
            proc: 0,
            message: "x".into(),
            mutex_on: None,
        };
        assert!(!e2.to_string().contains("mutex"));
    }
}
