//! The per-server task-queue structure (Section 5 of the paper).
//!
//! Each server owns two kinds of task queues:
//!
//! 1. An **array of affinity queues**. A task carrying an affinity token is
//!    mapped to slot `hash(token) % array_size` — together with the server
//!    choice this is the paper's "two modulo operations". All tasks of one
//!    task-affinity set land in the same slot, so servicing a slot until it
//!    is empty executes the set *back to back*, maximising cache reuse.
//!    The non-empty slots are threaded on an intrusive doubly-linked list so
//!    enqueue and dequeue are O(1) regardless of array size.
//! 2. A **default queue** (plain FIFO) for tasks with no affinity token.
//!
//! Distinct task-affinity sets can hash to the same slot. Every entry
//! therefore carries the token it was queued under, so collided sets keep
//! their identity: steals extract exactly one set (labelled with *its*
//! token), steal-avoidance is decided per set rather than per slot, and a
//! stolen set re-inserted by a thief lands contiguously at the front of
//! service order even when it collides with the thief's own work.
//!
//! The structure is generic over the task payload `T` so the simulated and
//! the threaded runtime can queue their own task representations.

use std::collections::VecDeque;

use crate::affinity::{hash_token, AffinityKind};
use crate::ids::ObjRef;

/// Classification of a queue slot for steal policies, derived from the tasks
/// it currently holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotClass {
    /// At least one queued task-affinity set is safe to move whole
    /// (task-affinity or weaker).
    Stealable,
    /// Every set in the slot contains a task collocated with an object
    /// (OBJECT affinity or the default rule); moving one would turn local
    /// references into remote ones, so thieves avoid the slot unless
    /// desperate.
    PrefersHome,
}

/// A task queued with its steal classification and the affinity token it was
/// queued under (`None` only on the default queue).
#[derive(Clone, Debug)]
struct Entry<T> {
    token: Option<ObjRef>,
    kind: AffinityKind,
    payload: T,
}

/// One affinity-queue slot plus its intrusive list links.
#[derive(Clone, Debug)]
struct Slot<T> {
    queue: VecDeque<Entry<T>>,
    /// Index of the previous non-empty slot, or `NIL`.
    prev: usize,
    /// Index of the next non-empty slot, or `NIL`.
    next: usize,
    /// Whether this slot is currently on the non-empty list.
    linked: bool,
}

const NIL: usize = usize::MAX;

/// A batch of tasks stolen together. Whole task-affinity sets travel as one
/// batch so the thief still executes them back to back (Section 4.2).
#[derive(Clone, Debug)]
pub struct StolenBatch<T> {
    /// The affinity token of the stolen set, if a whole set was taken from
    /// an affinity slot (`None` when a single task was stolen, from the
    /// default queue or as a last resort).
    pub token: Option<ObjRef>,
    /// The stolen tasks, in their original FIFO order.
    pub tasks: Vec<T>,
}

/// What an enqueue did to the slot structure; consumed by the observability
/// layer to emit slot link events without coupling the queue to a recorder.
#[derive(Clone, Copy, Debug)]
pub struct SlotUpdate {
    /// The affinity slot touched, or `None` for the default queue.
    pub slot: Option<usize>,
    /// True when the enqueue took the slot from empty to linked.
    pub newly_linked: bool,
}

/// A dequeued task plus the queue bookkeeping the observability layer wants.
#[derive(Debug)]
pub struct Popped<T> {
    /// Affinity classification the task was queued with.
    pub kind: AffinityKind,
    /// The task itself.
    pub payload: T,
    /// Token the task was queued under (`None` for the default queue).
    pub token: Option<ObjRef>,
    /// Affinity slot it came from, or `None` for the default queue.
    pub slot: Option<usize>,
    /// True when this pop emptied (and unlinked) the affinity slot.
    pub drained: bool,
}

/// The dual task-queue structure owned by one server.
#[derive(Clone, Debug)]
pub struct ServerQueues<T> {
    slots: Vec<Slot<T>>,
    /// Head/tail of the intrusive list of non-empty slots (service order:
    /// oldest non-empty slot first).
    head: usize,
    tail: usize,
    default_queue: VecDeque<Entry<T>>,
    len: usize,
}

impl<T> ServerQueues<T> {
    /// Create a queue structure with `array_size` affinity slots. The paper
    /// notes collisions between different task-affinity sets are minimised by
    /// choosing a suitably large array size; 64 is a reasonable default.
    pub fn new(array_size: usize) -> Self {
        assert!(array_size > 0, "affinity array must have at least one slot");
        let mut slots = Vec::with_capacity(array_size);
        for _ in 0..array_size {
            slots.push(Slot {
                queue: VecDeque::new(),
                prev: NIL,
                next: NIL,
                linked: false,
            });
        }
        ServerQueues {
            slots,
            head: NIL,
            tail: NIL,
            default_queue: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of affinity slots.
    pub fn array_size(&self) -> usize {
        self.slots.len()
    }

    /// Total queued tasks across all queues.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index for an affinity token (the second of the two modulo
    /// operations).
    #[inline]
    pub fn slot_of(&self, token: ObjRef) -> usize {
        hash_token(token) % self.slots.len()
    }

    /// Enqueue a task carrying an affinity token into its slot.
    pub fn push_affinity(&mut self, token: ObjRef, kind: AffinityKind, payload: T) -> SlotUpdate {
        let idx = self.slot_of(token);
        self.slots[idx].queue.push_back(Entry {
            token: Some(token),
            kind,
            payload,
        });
        let newly_linked = !self.slots[idx].linked;
        if newly_linked {
            self.link_tail(idx);
        }
        self.len += 1;
        SlotUpdate {
            slot: Some(idx),
            newly_linked,
        }
    }

    /// Enqueue a task with no affinity token on the default queue.
    pub fn push_default(&mut self, kind: AffinityKind, payload: T) {
        self.default_queue.push_back(Entry {
            token: None,
            kind,
            payload,
        });
        self.len += 1;
    }

    /// Re-insert a stolen batch at the *front* of service order so the thief
    /// runs it next, back to back.
    ///
    /// The batch is spliced in ahead of any tasks already queued in the
    /// colliding slot (keeping the stolen set contiguous) and the slot is
    /// promoted to the head of the service list even when it was already
    /// linked — otherwise a hash collision on the thief would silently bury
    /// the stolen set behind resident work.
    pub fn push_stolen(&mut self, batch: StolenBatch<T>, kind: AffinityKind) -> SlotUpdate {
        match batch.token {
            Some(token) => {
                let idx = self.slot_of(token);
                let newly_linked = !self.slots[idx].linked;
                for payload in batch.tasks.into_iter().rev() {
                    self.slots[idx].queue.push_front(Entry {
                        token: Some(token),
                        kind,
                        payload,
                    });
                    self.len += 1;
                }
                if self.slots[idx].queue.is_empty() {
                    return SlotUpdate {
                        slot: Some(idx),
                        newly_linked: false,
                    };
                }
                if !newly_linked {
                    self.unlink(idx);
                }
                self.link_head(idx);
                SlotUpdate {
                    slot: Some(idx),
                    newly_linked,
                }
            }
            None => {
                for payload in batch.tasks.into_iter().rev() {
                    self.default_queue.push_front(Entry {
                        token: None,
                        kind,
                        payload,
                    });
                    self.len += 1;
                }
                SlotUpdate {
                    slot: None,
                    newly_linked: false,
                }
            }
        }
    }

    /// Dequeue the next task for local execution.
    ///
    /// Affinity slots are serviced before the default queue, and the head
    /// slot is drained completely before moving on — this is what realises
    /// back-to-back execution of a task-affinity set.
    pub fn pop_local(&mut self) -> Option<(AffinityKind, T)> {
        self.pop_local_info().map(|p| (p.kind, p.payload))
    }

    /// As [`ServerQueues::pop_local`], also reporting the token, slot, and
    /// whether the pop drained the slot (for the observability layer).
    pub fn pop_local_info(&mut self) -> Option<Popped<T>> {
        if self.head != NIL {
            let idx = self.head;
            let entry = self.slots[idx]
                .queue
                .pop_front()
                .expect("linked slot must be non-empty");
            let drained = self.slots[idx].queue.is_empty();
            if drained {
                self.unlink(idx);
            }
            self.len -= 1;
            return Some(Popped {
                kind: entry.kind,
                payload: entry.payload,
                token: entry.token,
                slot: Some(idx),
                drained,
            });
        }
        if let Some(entry) = self.default_queue.pop_front() {
            self.len -= 1;
            return Some(Popped {
                kind: entry.kind,
                payload: entry.payload,
                token: entry.token,
                slot: None,
                drained: false,
            });
        }
        None
    }

    /// Classify the slot at the *tail* of the non-empty list (the one a
    /// thief would probe first), without removing anything. Returns `None`
    /// when no affinity slot is linked.
    ///
    /// Classification is per task-affinity *set*: a slot is `Stealable` when
    /// it holds at least one set a thief may move whole. One collided
    /// object-affinity task no longer pins otherwise-stealable sets sharing
    /// its slot.
    pub fn tail_slot_class(&self) -> Option<SlotClass> {
        if self.tail == NIL {
            return None;
        }
        Some(if self.stealable_set_in(self.tail).is_some() {
            SlotClass::Stealable
        } else {
            SlotClass::PrefersHome
        })
    }

    /// Find the tail-most task-affinity set in slot `idx` whose every task
    /// is safe to move, scanning candidate sets from the back of the queue
    /// (the work the victim will reach last). Returns its token.
    fn stealable_set_in(&self, idx: usize) -> Option<ObjRef> {
        let queue = &self.slots[idx].queue;
        let mut rejected: Vec<ObjRef> = Vec::new();
        for entry in queue.iter().rev() {
            let tok = entry.token?;
            if rejected.contains(&tok) {
                continue;
            }
            let prefers_home = queue
                .iter()
                .filter(|e| e.token == Some(tok))
                .any(|e| matches!(e.kind, AffinityKind::Object));
            if prefers_home {
                rejected.push(tok);
            } else {
                return Some(tok);
            }
        }
        None
    }

    /// Attempt to steal work for an idle server.
    ///
    /// * Task-affinity sets are stolen whole, from the tail of the non-empty
    ///   list (the set the victim will reach last, minimising disruption).
    ///   When collided sets share a slot, exactly one set is extracted and
    ///   the batch carries *that* set's token, so the thief re-homes it to
    ///   the right slot and reports it under the right label.
    /// * Sets holding object-affinity tasks are skipped when
    ///   `avoid_object_affinity` is set, falling back to the default queue;
    ///   passing `false` implements the last-resort steal that keeps the
    ///   system making progress — but even then only a *single* task is
    ///   taken from such a slot: the set's collocation is worth preserving,
    ///   and moving the whole set would overshoot the imbalance the steal is
    ///   correcting.
    /// * From the default queue, a single task is stolen.
    pub fn steal(&mut self, avoid_object_affinity: bool) -> Option<StolenBatch<T>> {
        self.steal_with(avoid_object_affinity, true)
    }

    /// As [`ServerQueues::steal`], with whole-set stealing controllable:
    /// when `whole_sets` is false a single task is taken even from a
    /// task-affinity slot (the ablation case).
    pub fn steal_with(
        &mut self,
        avoid_object_affinity: bool,
        whole_sets: bool,
    ) -> Option<StolenBatch<T>> {
        // Walk affinity slots from the tail, looking for a stealable set.
        let mut idx = self.tail;
        while idx != NIL {
            if let Some(tok) = self.stealable_set_in(idx) {
                if !whole_sets {
                    // Single task from the tail of the chosen set. No token:
                    // a lone task does not re-form a set at the thief.
                    let pos = self.slots[idx]
                        .queue
                        .iter()
                        .rposition(|e| e.token == Some(tok))
                        .expect("stealable set must have entries");
                    let entry = self.slots[idx]
                        .queue
                        .remove(pos)
                        .expect("position just found");
                    self.len -= 1;
                    if self.slots[idx].queue.is_empty() {
                        self.unlink(idx);
                    }
                    return Some(StolenBatch {
                        token: None,
                        tasks: vec![entry.payload],
                    });
                }
                // Extract the whole set — and only that set — preserving the
                // FIFO order of both the stolen tasks and the survivors.
                let drained = std::mem::take(&mut self.slots[idx].queue);
                let mut kept = VecDeque::with_capacity(drained.len());
                let mut stolen = Vec::new();
                for entry in drained {
                    if entry.token == Some(tok) {
                        stolen.push(entry.payload);
                    } else {
                        kept.push_back(entry);
                    }
                }
                self.slots[idx].queue = kept;
                self.len -= stolen.len();
                if self.slots[idx].queue.is_empty() {
                    self.unlink(idx);
                }
                return Some(StolenBatch {
                    token: Some(tok),
                    tasks: stolen,
                });
            }
            if !avoid_object_affinity {
                // Last-resort: one task from the tail of the slot.
                let entry = self.slots[idx]
                    .queue
                    .pop_back()
                    .expect("linked slot must be non-empty");
                self.len -= 1;
                if self.slots[idx].queue.is_empty() {
                    self.unlink(idx);
                }
                return Some(StolenBatch {
                    token: None,
                    tasks: vec![entry.payload],
                });
            }
            idx = self.slots[idx].prev;
        }
        // Fall back to a single task from the default queue (FIFO end: steal
        // the oldest, as classic work stealing does).
        if let Some(entry) = self.default_queue.pop_back() {
            self.len -= 1;
            return Some(StolenBatch {
                token: None,
                tasks: vec![entry.payload],
            });
        }
        None
    }

    /// Number of currently linked (non-empty) affinity slots. Exposed for
    /// tests and statistics.
    pub fn linked_slots(&self) -> usize {
        let mut n = 0;
        let mut idx = self.head;
        while idx != NIL {
            n += 1;
            idx = self.slots[idx].next;
        }
        n
    }

    /// Internal consistency check used by tests: the linked list threads
    /// exactly the non-empty slots, in both directions, `len` matches, and
    /// every queued entry sits in the slot its token hashes to.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut forward = Vec::new();
        let mut idx = self.head;
        let mut prev = NIL;
        while idx != NIL {
            let slot = &self.slots[idx];
            if !slot.linked {
                return Err(format!("slot {idx} on list but not marked linked"));
            }
            if slot.queue.is_empty() {
                return Err(format!("slot {idx} linked but empty"));
            }
            if slot.prev != prev {
                return Err(format!("slot {idx} prev link broken"));
            }
            forward.push(idx);
            prev = idx;
            idx = slot.next;
        }
        if self.tail != prev {
            return Err("tail pointer broken".into());
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.linked != forward.contains(&i) {
                return Err(format!("slot {i} linked flag inconsistent"));
            }
            if !slot.linked && !slot.queue.is_empty() {
                return Err(format!("slot {i} non-empty but unlinked"));
            }
            for entry in &slot.queue {
                match entry.token {
                    Some(tok) if self.slot_of(tok) == i => {}
                    Some(tok) => {
                        return Err(format!("slot {i} holds entry for token {tok:?} \
                                            which hashes elsewhere"))
                    }
                    None => return Err(format!("slot {i} holds a token-less entry")),
                }
            }
        }
        if self.default_queue.iter().any(|e| e.token.is_some()) {
            return Err("default queue holds a tokened entry".into());
        }
        let total: usize = self.slots.iter().map(|s| s.queue.len()).sum::<usize>()
            + self.default_queue.len();
        if total != self.len {
            return Err(format!("len {} != actual {}", self.len, total));
        }
        Ok(())
    }

    /// Tokens of the queued tasks in service order (affinity slots
    /// head-to-tail front-to-back, then the default queue). Test helper.
    #[doc(hidden)]
    pub fn token_order(&self) -> Vec<Option<ObjRef>> {
        let mut out = Vec::with_capacity(self.len);
        let mut idx = self.head;
        while idx != NIL {
            out.extend(self.slots[idx].queue.iter().map(|e| e.token));
            idx = self.slots[idx].next;
        }
        out.extend(self.default_queue.iter().map(|e| e.token));
        out
    }

    fn link_tail(&mut self, idx: usize) {
        debug_assert!(!self.slots[idx].linked);
        self.slots[idx].prev = self.tail;
        self.slots[idx].next = NIL;
        self.slots[idx].linked = true;
        if self.tail != NIL {
            self.slots[self.tail].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    fn link_head(&mut self, idx: usize) {
        debug_assert!(!self.slots[idx].linked);
        self.slots[idx].next = self.head;
        self.slots[idx].prev = NIL;
        self.slots[idx].linked = true;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn unlink(&mut self, idx: usize) {
        debug_assert!(self.slots[idx].linked);
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
        self.slots[idx].linked = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> ServerQueues<u32> {
        ServerQueues::new(8)
    }

    #[test]
    fn fifo_within_one_affinity_set() {
        let mut q = q();
        let tok = ObjRef(1);
        for i in 0..5 {
            q.push_affinity(tok, AffinityKind::Task, i);
        }
        for i in 0..5 {
            assert_eq!(q.pop_local().unwrap().1, i);
        }
        assert!(q.pop_local().is_none());
        q.check_invariants().unwrap();
    }

    #[test]
    fn back_to_back_service_drains_one_set_before_the_next() {
        let mut q = ServerQueues::new(64);
        let (a, b) = (ObjRef(10), ObjRef(11));
        assert_ne!(q.slot_of(a), q.slot_of(b), "need distinct slots");
        // Interleave enqueues of two sets.
        q.push_affinity(a, AffinityKind::Task, 100);
        q.push_affinity(b, AffinityKind::Task, 200);
        q.push_affinity(a, AffinityKind::Task, 101);
        q.push_affinity(b, AffinityKind::Task, 201);
        q.push_affinity(a, AffinityKind::Task, 102);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_local().map(|(_, t)| t)).collect();
        // Set A linked first, so it is drained completely before set B.
        assert_eq!(order, vec![100, 101, 102, 200, 201]);
    }

    #[test]
    fn affinity_queues_serviced_before_default() {
        let mut q = q();
        q.push_default(AffinityKind::None, 1);
        q.push_affinity(ObjRef(9), AffinityKind::Task, 2);
        assert_eq!(q.pop_local().unwrap().1, 2);
        assert_eq!(q.pop_local().unwrap().1, 1);
    }

    #[test]
    fn steal_takes_whole_set_from_tail() {
        let mut q = ServerQueues::new(64);
        let (a, b) = (ObjRef(10), ObjRef(11));
        q.push_affinity(a, AffinityKind::Task, 1);
        q.push_affinity(a, AffinityKind::Task, 2);
        q.push_affinity(b, AffinityKind::Task, 3);
        let batch = q.steal(true).unwrap();
        assert_eq!(batch.token, Some(b), "tail set stolen first");
        assert_eq!(batch.tasks, vec![3]);
        let batch = q.steal(true).unwrap();
        assert_eq!(batch.token, Some(a));
        assert_eq!(batch.tasks, vec![1, 2], "whole set, original order");
        assert!(q.is_empty());
        q.check_invariants().unwrap();
    }

    #[test]
    fn steal_avoids_object_affinity_until_last_resort() {
        let mut q = q();
        q.push_affinity(ObjRef(5), AffinityKind::Object, 7);
        assert!(q.steal(true).is_none(), "polite thief leaves home tasks");
        assert_eq!(q.len(), 1);
        let batch = q.steal(false).unwrap();
        assert_eq!(batch.tasks, vec![7], "last-resort steal succeeds");
    }

    #[test]
    fn steal_skips_home_slot_but_takes_stealable_one() {
        let mut q = ServerQueues::new(64);
        let (home, roam) = (ObjRef(10), ObjRef(11));
        q.push_affinity(roam, AffinityKind::Task, 1);
        q.push_affinity(home, AffinityKind::Object, 2);
        // `home` is at the tail; the thief must skip it and take `roam`.
        let batch = q.steal(true).unwrap();
        assert_eq!(batch.token, Some(roam));
        assert_eq!(batch.tasks, vec![1]);
        assert_eq!(q.len(), 1);
        q.check_invariants().unwrap();
    }

    #[test]
    fn steal_falls_back_to_default_queue_oldest_task() {
        let mut q = q();
        q.push_default(AffinityKind::None, 1);
        q.push_default(AffinityKind::None, 2);
        let batch = q.steal(true).unwrap();
        assert_eq!(batch.tasks, vec![2], "steals from the back");
        assert_eq!(q.pop_local().unwrap().1, 1);
    }

    #[test]
    fn push_stolen_set_runs_next() {
        let mut thief: ServerQueues<u32> = ServerQueues::new(64);
        let mine = ObjRef(20);
        let stolen_tok = ObjRef(21);
        thief.push_affinity(mine, AffinityKind::Task, 1);
        let batch = StolenBatch {
            token: Some(stolen_tok),
            tasks: vec![8, 9],
        };
        thief.push_stolen(batch, AffinityKind::Task);
        // Stolen set is serviced first (pushed at the head), back to back.
        assert_eq!(thief.pop_local().unwrap().1, 8);
        assert_eq!(thief.pop_local().unwrap().1, 9);
        assert_eq!(thief.pop_local().unwrap().1, 1);
        thief.check_invariants().unwrap();
    }

    #[test]
    fn push_stolen_default_tasks_run_next() {
        let mut thief: ServerQueues<u32> = ServerQueues::new(8);
        thief.push_default(AffinityKind::None, 5);
        thief.push_stolen(
            StolenBatch {
                token: None,
                tasks: vec![1, 2],
            },
            AffinityKind::None,
        );
        assert_eq!(thief.pop_local().unwrap().1, 1);
        assert_eq!(thief.pop_local().unwrap().1, 2);
        assert_eq!(thief.pop_local().unwrap().1, 5);
    }

    #[test]
    fn push_stolen_collision_runs_next_and_stays_contiguous() {
        // Array of size 1: the stolen set collides with the thief's own
        // resident set. The stolen set must still run next, back to back.
        let mut thief: ServerQueues<u32> = ServerQueues::new(1);
        let mine = ObjRef(20);
        let stolen_tok = ObjRef(21);
        thief.push_affinity(mine, AffinityKind::Task, 1);
        thief.push_affinity(mine, AffinityKind::Task, 2);
        thief.push_stolen(
            StolenBatch {
                token: Some(stolen_tok),
                tasks: vec![8, 9],
            },
            AffinityKind::Task,
        );
        thief.check_invariants().unwrap();
        let order: Vec<u32> =
            std::iter::from_fn(|| thief.pop_local().map(|(_, t)| t)).collect();
        assert_eq!(order, vec![8, 9, 1, 2], "stolen set first, contiguous");
    }

    #[test]
    fn push_stolen_collision_promotes_slot_to_head() {
        // Two slots: the thief's resident set A is head, set B occupies the
        // other slot, and the stolen set collides with B (tail). After the
        // push the stolen batch — not A — must be serviced next.
        let mut thief: ServerQueues<u32> = ServerQueues::new(64);
        let (a, b) = (ObjRef(10), ObjRef(11));
        assert_ne!(thief.slot_of(a), thief.slot_of(b));
        // Find a token colliding with b's slot.
        let colliding = (100..)
            .map(ObjRef)
            .find(|t| thief.slot_of(*t) == thief.slot_of(b) && *t != b)
            .unwrap();
        thief.push_affinity(a, AffinityKind::Task, 1);
        thief.push_affinity(b, AffinityKind::Task, 2);
        thief.push_stolen(
            StolenBatch {
                token: Some(colliding),
                tasks: vec![8, 9],
            },
            AffinityKind::Task,
        );
        thief.check_invariants().unwrap();
        let order: Vec<u32> =
            std::iter::from_fn(|| thief.pop_local().map(|(_, t)| t)).collect();
        assert_eq!(order, vec![8, 9, 2, 1], "stolen slot promoted to head");
    }

    #[test]
    fn steal_from_collided_slot_extracts_one_set_with_its_token() {
        // Array of size 1: sets A and B share the slot, interleaved.
        let mut q: ServerQueues<u32> = ServerQueues::new(1);
        let (a, b) = (ObjRef(1), ObjRef(2));
        q.push_affinity(a, AffinityKind::Task, 1);
        q.push_affinity(b, AffinityKind::Task, 3);
        q.push_affinity(a, AffinityKind::Task, 2);
        q.push_affinity(b, AffinityKind::Task, 4);
        // Tail-most entry belongs to B, so B's set is stolen — whole, in
        // FIFO order, labelled with B's token (not A's, which linked first).
        let batch = q.steal(true).unwrap();
        assert_eq!(batch.token, Some(b), "batch carries the stolen set's token");
        assert_eq!(batch.tasks, vec![3, 4]);
        // Survivors keep their order.
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop_local().map(|(_, t)| t)).collect();
        assert_eq!(rest, vec![1, 2]);
    }

    #[test]
    fn collided_object_set_does_not_pin_stealable_set() {
        // One slot holds an object-affinity set and a task-affinity set.
        // The thief must classify per set: steal the task-affinity set and
        // leave the object-affinity one home.
        let mut q: ServerQueues<u32> = ServerQueues::new(1);
        let (home, roam) = (ObjRef(1), ObjRef(2));
        q.push_affinity(home, AffinityKind::Object, 7);
        q.push_affinity(roam, AffinityKind::Task, 1);
        q.push_affinity(roam, AffinityKind::Task, 2);
        assert_eq!(q.tail_slot_class(), Some(SlotClass::Stealable));
        let batch = q.steal(true).unwrap();
        assert_eq!(batch.token, Some(roam));
        assert_eq!(batch.tasks, vec![1, 2]);
        assert_eq!(q.len(), 1, "object-affinity task stays home");
        assert_eq!(q.tail_slot_class(), Some(SlotClass::PrefersHome));
        assert!(q.steal(true).is_none());
        q.check_invariants().unwrap();
    }

    #[test]
    fn single_task_steal_takes_tail_of_stealable_set_only() {
        let mut q: ServerQueues<u32> = ServerQueues::new(1);
        let (home, roam) = (ObjRef(1), ObjRef(2));
        q.push_affinity(roam, AffinityKind::Task, 1);
        q.push_affinity(home, AffinityKind::Object, 7);
        q.push_affinity(roam, AffinityKind::Task, 2);
        // whole_sets = false: one task, from the stealable set's tail, even
        // though an object-affinity entry sits behind it in the queue.
        let batch = q.steal_with(true, false).unwrap();
        assert_eq!(batch.token, None);
        assert_eq!(batch.tasks, vec![2]);
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop_local().map(|(_, t)| t)).collect();
        assert_eq!(rest, vec![1, 7]);
    }

    #[test]
    fn tail_slot_class_reflects_contents() {
        let mut q = ServerQueues::new(64);
        assert_eq!(q.tail_slot_class(), None);
        q.push_affinity(ObjRef(10), AffinityKind::Task, 0);
        assert_eq!(q.tail_slot_class(), Some(SlotClass::Stealable));
        q.push_affinity(ObjRef(11), AffinityKind::Object, 0);
        assert_eq!(q.tail_slot_class(), Some(SlotClass::PrefersHome));
    }

    #[test]
    fn colliding_tokens_share_a_slot_without_breaking_invariants() {
        // Array of size 1 forces every token into the same slot.
        let mut q: ServerQueues<u32> = ServerQueues::new(1);
        q.push_affinity(ObjRef(1), AffinityKind::Task, 1);
        q.push_affinity(ObjRef(2), AffinityKind::Task, 2);
        q.check_invariants().unwrap();
        assert_eq!(q.linked_slots(), 1);
        assert_eq!(q.pop_local().unwrap().1, 1);
        assert_eq!(q.pop_local().unwrap().1, 2);
        q.check_invariants().unwrap();
    }

    #[test]
    fn interleaved_operations_preserve_invariants() {
        let mut q: ServerQueues<usize> = ServerQueues::new(4);
        for i in 0..100 {
            match i % 5 {
                0 => {
                    q.push_affinity(ObjRef(i as u64), AffinityKind::Task, i);
                }
                1 => q.push_default(AffinityKind::None, i),
                2 => {
                    q.pop_local();
                }
                3 => {
                    q.steal(true);
                }
                _ => {
                    q.push_affinity(ObjRef((i % 3) as u64), AffinityKind::Object, i);
                }
            }
            q.check_invariants().unwrap();
        }
    }
}
