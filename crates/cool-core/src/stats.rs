//! Scheduling statistics collected by both runtimes.
//!
//! These are the scheduler-side counterparts of the DASH hardware performance
//! monitor: they let the case studies report affinity adherence (Section 6.2
//! reports that with hints "most of the wire tasks (over 80%) in a region are
//! routed on the corresponding processor") and steal activity.

use std::ops::AddAssign;

use crate::policy::MAX_TOPO_LEVELS;

/// Counters describing how tasks were scheduled and executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks created.
    pub spawned: u64,
    /// Tasks executed to completion.
    pub executed: u64,
    /// Tasks that ran on the server the affinity hint selected.
    pub affinity_hits: u64,
    /// Tasks that carried some affinity hint (denominator for adherence).
    pub hinted: u64,
    /// Individual tasks moved by stealing.
    pub tasks_stolen: u64,
    /// Steal operations that moved a whole task-affinity set.
    pub sets_stolen: u64,
    /// Steal attempts that found nothing.
    pub failed_steals: u64,
    /// Steals that crossed a cluster boundary.
    pub remote_steals: u64,
    /// Last-resort steals (policy restrictions waived).
    pub desperate_steals: u64,
    /// Tasks that blocked on a mutex object at least once.
    pub mutex_blocks: u64,
    /// Additional re-blocks of tasks that had already blocked once
    /// (requeue-and-retry churn beyond the first block).
    pub mutex_retries: u64,
    /// Times a server escalated from rotating blocked mutex tasks to a short
    /// park (bounded backoff instead of a hot spin).
    pub mutex_parks: u64,
    /// Task bodies that panicked (caught and isolated by the runtime).
    pub panics: u64,
    /// Transient injected faults (a `FaultPlan` failing a task's first
    /// dispatch; the task was requeued and completed later).
    pub injected_faults: u64,
    /// Feedback windows in which the adaptive layer widened a server's
    /// steal ceiling by one topology level (zero on static versions).
    pub adaptive_widenings: u64,
    /// `migrate` requests ignored by the adaptive migration throttle
    /// because the observed remote-miss rate did not justify the move.
    pub throttled_migrations: u64,
    /// Pages re-homed by the phase-boundary global rebalancer.
    pub rebalanced_pages: u64,
    /// Successful steals by the thief–victim common-ancestor topology level:
    /// index 0 is the innermost explicit level, index
    /// [`crate::policy::Topology::nlevels`] the machine root. On a 2-level
    /// machine only indices 0 (intra-cluster) and 1 (remote) are populated.
    pub steals_by_level: [u64; MAX_TOPO_LEVELS + 1],
}

impl SchedStats {
    /// Fraction of hinted tasks that executed on their hinted server,
    /// in [0, 1]. Returns 1.0 when nothing was hinted.
    pub fn adherence(&self) -> f64 {
        if self.hinted == 0 {
            1.0
        } else {
            self.affinity_hits as f64 / self.hinted as f64
        }
    }

    /// Fraction of executed tasks that arrived by stealing.
    pub fn steal_fraction(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.tasks_stolen as f64 / self.executed as f64
        }
    }
}

impl AddAssign for SchedStats {
    fn add_assign(&mut self, o: Self) {
        self.spawned += o.spawned;
        self.executed += o.executed;
        self.affinity_hits += o.affinity_hits;
        self.hinted += o.hinted;
        self.tasks_stolen += o.tasks_stolen;
        self.sets_stolen += o.sets_stolen;
        self.failed_steals += o.failed_steals;
        self.remote_steals += o.remote_steals;
        self.desperate_steals += o.desperate_steals;
        self.mutex_blocks += o.mutex_blocks;
        self.mutex_retries += o.mutex_retries;
        self.mutex_parks += o.mutex_parks;
        self.panics += o.panics;
        self.injected_faults += o.injected_faults;
        self.adaptive_widenings += o.adaptive_widenings;
        self.throttled_migrations += o.throttled_migrations;
        self.rebalanced_pages += o.rebalanced_pages;
        for (a, b) in self.steals_by_level.iter_mut().zip(o.steals_by_level) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adherence_handles_zero_hints() {
        let s = SchedStats::default();
        assert_eq!(s.adherence(), 1.0);
        assert_eq!(s.steal_fraction(), 0.0);
    }

    #[test]
    fn adherence_ratio() {
        let s = SchedStats {
            hinted: 10,
            affinity_hits: 8,
            ..Default::default()
        };
        assert!((s.adherence() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = SchedStats {
            spawned: 1,
            executed: 2,
            tasks_stolen: 3,
            ..Default::default()
        };
        let b = SchedStats {
            spawned: 10,
            executed: 20,
            tasks_stolen: 30,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.spawned, 11);
        assert_eq!(a.executed, 22);
        assert_eq!(a.tasks_stolen, 33);
    }
}
