//! The affinity-hint hierarchy (Section 4.1 and Table 1 of the paper).
//!
//! A COOL parallel function may carry an optional block of affinity hints
//! that is evaluated when the function is invoked and a task is created. The
//! hints only influence scheduling, never semantics. The hierarchy is:
//!
//! | Hint                      | Runtime action |
//! |---------------------------|----------------|
//! | *default*                 | schedule on the processor holding the base object; run tasks on the same object back to back |
//! | `affinity(obj)`           | as default, but based on `obj` instead of the base object |
//! | `affinity(obj, TASK)`     | tasks naming the same `obj` form a *task-affinity set*, executed back to back for cache reuse; the particular server may be chosen for load balance |
//! | `affinity(obj, OBJECT)`   | collocate the task with `obj`'s memory node for memory locality; thieves avoid such tasks |
//! | `affinity(n, PROCESSOR)`  | schedule directly on server `n % nservers` |
//!
//! TASK and OBJECT affinity may be combined to exploit cache locality on one
//! object and memory locality on another simultaneously (the Gaussian
//! elimination example of Figure 3: task affinity on the source column,
//! object affinity on the destination column).

use crate::ids::{ObjRef, ProcId};

/// The kind of affinity that determined a task's placement. Stored with the
/// queued task so steal policies can discriminate (object-affinity tasks
/// should preferably not be stolen; task-affinity sets are stolen whole).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AffinityKind {
    /// No hint and no base object: scheduled on the creating server's
    /// default queue; freely stealable.
    None,
    /// Placed via the default rule or an explicit OBJECT hint: collocated
    /// with an object's home memory. Thieves should avoid it.
    Object,
    /// Member of a task-affinity set: serviced back to back, stolen as a
    /// whole set.
    Task,
    /// Pinned to an explicit server by a PROCESSOR hint. Stealable (the hint
    /// is usually about load distribution, not memory locality); Section 6.2
    /// reports >80% adherence rather than 100% precisely because stealing
    /// remains enabled.
    Processor,
}

/// A fully-evaluated affinity specification for one task, the result of
/// running the affinity block at task-creation time.
///
/// Construct via the builder-style constructors, which mirror the language
/// syntax:
///
/// ```
/// use cool_core::affinity::AffinitySpec;
/// use cool_core::ids::ObjRef;
///
/// let src = ObjRef(0x100);
/// let dst = ObjRef(0x900);
/// // [affinity (src, TASK); affinity (dst, OBJECT)]
/// let spec = AffinitySpec::task(src).and_object(dst);
/// assert!(spec.task.is_some() && spec.object.is_some());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AffinitySpec {
    /// OBJECT affinity: collocate with this object's home node.
    pub object: Option<ObjRef>,
    /// TASK affinity: the token identifying the task-affinity set.
    pub task: Option<ObjRef>,
    /// PROCESSOR affinity: schedule on this server (modulo server count).
    pub processor: Option<usize>,
}

impl AffinitySpec {
    /// No hints at all. With a base object the default rule still applies;
    /// without one the task goes to the creating server's default queue.
    pub fn none() -> Self {
        Self::default()
    }

    /// Simple affinity: `affinity(obj)` — both memory locality (collocation)
    /// and cache locality (back-to-back service) on the same object. This is
    /// also what the *default* rule produces for the base object of a
    /// parallel method invocation.
    pub fn simple(obj: ObjRef) -> Self {
        AffinitySpec {
            object: Some(obj),
            task: Some(obj),
            processor: None,
        }
    }

    /// `affinity(obj, OBJECT)` — memory locality only.
    pub fn object(obj: ObjRef) -> Self {
        AffinitySpec {
            object: Some(obj),
            task: None,
            processor: None,
        }
    }

    /// `affinity(obj, TASK)` — cache locality via a task-affinity set.
    pub fn task(obj: ObjRef) -> Self {
        AffinitySpec {
            object: None,
            task: Some(obj),
            processor: None,
        }
    }

    /// `affinity(n, PROCESSOR)` — direct placement on server `n % nservers`.
    pub fn processor(n: usize) -> Self {
        AffinitySpec {
            object: None,
            task: None,
            processor: Some(n),
        }
    }

    /// Add an OBJECT affinity to an existing spec (e.g. TASK + OBJECT).
    pub fn and_object(mut self, obj: ObjRef) -> Self {
        self.object = Some(obj);
        self
    }

    /// Add a TASK affinity to an existing spec.
    pub fn and_task(mut self, obj: ObjRef) -> Self {
        self.task = Some(obj);
        self
    }

    /// Add a PROCESSOR affinity to an existing spec.
    pub fn and_processor(mut self, n: usize) -> Self {
        self.processor = Some(n);
        self
    }

    /// Is any hint present?
    pub fn is_hinted(&self) -> bool {
        self.object.is_some() || self.task.is_some() || self.processor.is_some()
    }

    /// The steal-policy classification of a task scheduled with this spec.
    ///
    /// OBJECT dominates (moving the task away from the object's memory incurs
    /// remote references), then TASK (the set should stay together), then
    /// PROCESSOR.
    pub fn kind(&self) -> AffinityKind {
        if self.object.is_some() {
            AffinityKind::Object
        } else if self.task.is_some() {
            AffinityKind::Task
        } else if self.processor.is_some() {
            AffinityKind::Processor
        } else {
            AffinityKind::None
        }
    }

    /// Resolve the target server for this task.
    ///
    /// `home` maps an object to the server whose local memory holds it (the
    /// `home()` primitive of Section 4.1). Precedence: PROCESSOR > OBJECT >
    /// TASK (hashed for load distribution) > `creator` (no hint: stay local).
    /// This is the "two modulo operations" placement of Section 5.
    pub fn resolve_server(
        &self,
        nservers: usize,
        creator: ProcId,
        home: impl Fn(ObjRef) -> ProcId,
    ) -> ProcId {
        debug_assert!(nservers > 0);
        if let Some(n) = self.processor {
            ProcId(n % nservers)
        } else if let Some(obj) = self.object {
            ProcId(home(obj).index() % nservers)
        } else if let Some(tok) = self.task {
            ProcId(hash_token(tok) % nservers)
        } else {
            ProcId(creator.index() % nservers)
        }
    }

    /// The affinity-queue token: tasks with the same token map to the same
    /// queue slot and are serviced back to back. TASK affinity takes
    /// precedence (that is its purpose); otherwise simple/OBJECT affinity
    /// groups tasks on the same object.
    pub fn queue_token(&self) -> Option<ObjRef> {
        self.task.or(self.object)
    }
}

/// Resolution of affinity for **multiple objects** — the heuristic the paper
/// sketches in Section 4.1: "There are obvious better heuristics that would
/// determine the relative importance of objects based on their size and
/// schedule the task on the processor that has the most objects in its local
/// memory, while prefetching the remaining objects."
///
/// Given `(object, size)` pairs and the home map, returns the server owning
/// the largest total size (ties to the earlier-listed object, matching the
/// paper's first-object default for equal weights) and the list of objects
/// *not* local to that server — the prefetch candidates.
pub fn resolve_multi_object(
    objects: &[(ObjRef, u64)],
    home: impl Fn(ObjRef) -> ProcId,
) -> Option<(ProcId, Vec<ObjRef>)> {
    if objects.is_empty() {
        return None;
    }
    // Total bytes per candidate home, preserving first-listed priority.
    let mut order: Vec<ProcId> = Vec::new();
    let mut weight: std::collections::HashMap<ProcId, u64> = std::collections::HashMap::new();
    for &(obj, size) in objects {
        let h = home(obj);
        if !order.contains(&h) {
            order.push(h);
        }
        *weight.entry(h).or_insert(0) += size;
    }
    // Strict comparison keeps the earliest-listed home on ties (max_by_key
    // would keep the last).
    let mut best = order[0];
    for &cand in &order[1..] {
        if weight[&cand] > weight[&best] {
            best = cand;
        }
    }
    let prefetch = objects
        .iter()
        .filter(|&&(obj, _)| home(obj) != best)
        .map(|&(obj, _)| obj)
        .collect();
    Some((best, prefetch))
}

/// Cheap deterministic hash of an affinity token, used for the modulo
/// placement of task-affinity sets and queue slots. Multiplicative
/// (Fibonacci) hashing followed by a high-low fold: callers reduce the
/// result modulo small array sizes, so the high bits — where the multiply
/// concentrates its mixing — must reach the low bits, or strided token
/// sequences alias onto a few slots (caught by the affinity property tests).
#[inline]
pub fn hash_token(tok: ObjRef) -> usize {
    // 2^64 / phi, the usual Fibonacci hashing multiplier.
    const K: u64 = 0x9E37_79B9_7F4A_7C15;
    let h = tok.0.wrapping_mul(K);
    ((h >> 17) ^ (h >> 32)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home_is_addr(obj: ObjRef) -> ProcId {
        ProcId(obj.0 as usize)
    }

    #[test]
    fn processor_affinity_wraps_modulo_servers() {
        let spec = AffinitySpec::processor(10);
        assert_eq!(
            spec.resolve_server(4, ProcId(0), home_is_addr),
            ProcId(10 % 4)
        );
        assert_eq!(spec.kind(), AffinityKind::Processor);
    }

    #[test]
    fn object_affinity_follows_home() {
        let spec = AffinitySpec::object(ObjRef(3));
        assert_eq!(spec.resolve_server(8, ProcId(0), home_is_addr), ProcId(3));
        assert_eq!(spec.kind(), AffinityKind::Object);
        assert_eq!(spec.queue_token(), Some(ObjRef(3)));
    }

    #[test]
    fn simple_affinity_sets_both_object_and_task() {
        let spec = AffinitySpec::simple(ObjRef(5));
        assert_eq!(spec.object, Some(ObjRef(5)));
        assert_eq!(spec.task, Some(ObjRef(5)));
        // Collocation dominates for steal classification.
        assert_eq!(spec.kind(), AffinityKind::Object);
        assert_eq!(spec.resolve_server(8, ProcId(0), home_is_addr), ProcId(5));
    }

    #[test]
    fn task_affinity_hashes_to_a_stable_server() {
        let spec = AffinitySpec::task(ObjRef(42));
        let s1 = spec.resolve_server(6, ProcId(0), home_is_addr);
        let s2 = spec.resolve_server(6, ProcId(5), home_is_addr);
        assert_eq!(s1, s2, "task-affinity placement ignores the creator");
        assert!(s1.index() < 6);
    }

    #[test]
    fn unhinted_tasks_stay_with_creator() {
        let spec = AffinitySpec::none();
        assert_eq!(spec.resolve_server(8, ProcId(5), home_is_addr), ProcId(5));
        assert_eq!(spec.kind(), AffinityKind::None);
        assert_eq!(spec.queue_token(), None);
    }

    #[test]
    fn combined_task_object_resolves_by_object_queues_by_task() {
        // The Gaussian elimination pattern (Figure 3): memory locality on the
        // destination, cache locality on the source.
        let src = ObjRef(7);
        let dst = ObjRef(2);
        let spec = AffinitySpec::task(src).and_object(dst);
        assert_eq!(spec.resolve_server(8, ProcId(0), home_is_addr), ProcId(2));
        assert_eq!(spec.queue_token(), Some(src));
        assert_eq!(spec.kind(), AffinityKind::Object);
    }

    #[test]
    fn processor_overrides_object() {
        let spec = AffinitySpec::object(ObjRef(3)).and_processor(1);
        assert_eq!(spec.resolve_server(8, ProcId(0), home_is_addr), ProcId(1));
    }

    #[test]
    fn multi_object_picks_heaviest_home() {
        let objs = [
            (ObjRef(1), 100u64), // home P1
            (ObjRef(2), 300),    // home P2
            (ObjRef(12), 250),   // home P2
        ];
        let home = |o: ObjRef| match o.0 {
            1 => ProcId(1),
            _ => ProcId(2),
        };
        let (best, prefetch) = resolve_multi_object(&objs, home).unwrap();
        assert_eq!(best, ProcId(2), "P2 holds 550 bytes vs P1's 100");
        assert_eq!(prefetch, vec![ObjRef(1)]);
    }

    #[test]
    fn multi_object_single_entry_has_no_prefetch() {
        let (best, prefetch) =
            resolve_multi_object(&[(ObjRef(3), 10)], home_is_addr).unwrap();
        assert_eq!(best, ProcId(3));
        assert!(prefetch.is_empty());
    }

    #[test]
    fn multi_object_tie_prefers_first_listed() {
        let objs = [(ObjRef(5), 100u64), (ObjRef(7), 100)];
        let (best, _) = resolve_multi_object(&objs, home_is_addr).unwrap();
        assert_eq!(best, ProcId(5), "equal weights fall back to first object");
    }

    #[test]
    fn multi_object_empty_is_none() {
        assert!(resolve_multi_object(&[], home_is_addr).is_none());
    }

    #[test]
    fn hash_token_spreads_consecutive_addresses() {
        // Consecutive cache-line-spaced tokens should not all collide mod a
        // small array size.
        let slots = 64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(hash_token(ObjRef(0x1000 + i * 64)) % slots);
        }
        assert!(seen.len() > slots / 2, "only {} distinct slots", seen.len());
    }
}
