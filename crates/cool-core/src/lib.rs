//! Core model shared by the COOL runtimes.
//!
//! This crate contains the backend-independent pieces of the COOL
//! reproduction (Chandra, Gupta & Hennessy, *Data Locality and Load Balancing
//! in COOL*, PPoPP 1993):
//!
//! * [`ids`] — strongly-typed identifiers for processors, clusters, memory
//!   nodes, and object references.
//! * [`affinity`] — the hierarchy of affinity hints from Table 1 of the
//!   paper: smart defaults, simple affinity, TASK / OBJECT affinity, and
//!   PROCESSOR affinity, plus the rules for resolving a hint to a server and
//!   a queue slot.
//! * [`queues`] — the per-server task-queue structure from Section 5: an
//!   array of affinity queues (indexed by a modulo hash of the affinity
//!   token) threaded by an intrusive doubly-linked list of non-empty slots,
//!   plus a default FIFO queue. Provides O(1) enqueue/dequeue and
//!   back-to-back service of task-affinity sets.
//! * [`policy`] — work-stealing policy knobs from Sections 4.2 and 6.3:
//!   stealing whole task-affinity sets, avoiding object-affinity tasks, and
//!   cluster-first stealing.
//! * [`feedback`] — the closed-loop layer over those knobs: the
//!   [`AdaptiveConfig`]/[`RebalanceConfig`] knob sets and the deterministic
//!   [`PolicyFeedback`] aggregator that turns observed steal failures,
//!   remote-miss rates and queue depths into ceiling widening, migration
//!   throttling and probe limits (sampled at task boundaries, so adaptive
//!   runs stay schedule-deterministic).
//! * [`stats`] — scheduling statistics (tasks executed, stolen, affinity
//!   adherence) used by both runtimes and by the figure harnesses.
//! * [`error`] — failure descriptions ([`TaskError`]) surfaced when a task
//!   body panics and is isolated by the runtime.
//! * [`events`] — the [`RtEvent`] stream an instrumented runtime emits
//!   (spawn/phase/mutex/sync edges plus mirrored accesses), consumed by the
//!   `cool-analyze` happens-before race detector and lint passes.
//! * [`obs`] — the scheduler observability vocabulary ([`ObsEvent`]) and a
//!   bounded per-worker ring-buffer recorder ([`ObsRecorder`]), zero-cost
//!   when disabled; exported to Chrome-trace/metrics form by `cool-obs`.
//! * [`faults`] — seeded, deterministic [`FaultPlan`] descriptions of
//!   injected perturbations (stragglers, stalls, transient task failures)
//!   consumed by both runtimes' chaos hooks.
//! * [`vsched`] — the virtual-scheduler abstraction for model checking:
//!   [`VirtualProgram`] lifts a concurrent state machine onto explicit
//!   decision points, and [`QueueMachine`] models multi-server
//!   push/pop/steal over the real [`ServerQueues`] for the `cool-check`
//!   exhaustive-interleaving explorer.
//!
//! Both the simulated runtime (`cool-sim`, which reproduces the paper's DASH
//! numbers) and the real threaded runtime (`cool-rt`) are built on these
//! types, so the scheduling behaviour under test is literally the same code.

#![warn(missing_docs)]

pub mod affinity;
pub mod error;
pub mod events;
pub mod faults;
pub mod feedback;
pub mod ids;
pub mod obs;
pub mod policy;
pub mod queues;
pub mod stats;
pub mod vsched;

pub use affinity::{AffinityKind, AffinitySpec};
pub use error::TaskError;
pub use events::{AccessKind, RtEvent, TaskUid};
pub use faults::FaultPlan;
pub use feedback::{AdaptiveConfig, PolicyFeedback, RebalanceConfig};
pub use ids::{ClusterId, NodeId, ObjRef, ProcId};
pub use obs::{MemDelta, ObsEvent, ObsRecorder, ObsTrace};
pub use policy::{StealPolicy, Topology, VictimOrders, MAX_TOPO_LEVELS};
pub use queues::{Popped, ServerQueues, SlotClass, SlotUpdate, StolenBatch};
pub use stats::SchedStats;
pub use vsched::{PushSpec, QueueDefect, QueueMachine, QueueOp, VirtualProgram};
