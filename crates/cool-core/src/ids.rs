//! Strongly-typed identifiers used throughout the runtimes.

use std::fmt;

/// A processor (equivalently, a COOL *server process*: the implementation
/// creates one server per processor and keeps it there for its lifetime).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcId(pub usize);

/// A cluster of processors sharing a local memory (a DASH cluster holds four
/// processors and a slice of shared memory).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClusterId(pub usize);

/// A memory node — the unit of "local memory". On DASH this is the cluster
/// memory, so there is one node per cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

/// A reference to a shared object: a virtual address in the simulated shared
/// address space.
///
/// Affinity hints name objects by reference; the runtime maps the reference
/// to the memory node holding it (via the page table in `dash-sim`, or a
/// placement registry in `cool-rt`) to decide where to schedule the task.
/// The same value doubles as the task-affinity *token*: tasks declaring TASK
/// affinity for the same object form one task-affinity set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ObjRef(pub u64);

impl ProcId {
    /// Index form for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl ClusterId {
    /// Index form for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl NodeId {
    /// Index form for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl ObjRef {
    /// Construct an object reference from a raw simulated address.
    #[inline]
    pub fn from_addr(addr: u64) -> Self {
        ObjRef(addr)
    }

    /// Raw simulated address.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0
    }

    /// Object reference displaced by `bytes` — used to name sub-objects
    /// (e.g. one column within a matrix allocation).
    #[inline]
    pub fn offset(self, bytes: u64) -> Self {
        ObjRef(self.0 + bytes)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objref_offset_displaces_address() {
        let base = ObjRef::from_addr(0x1000);
        assert_eq!(base.offset(0x40).addr(), 0x1040);
        assert_eq!(base.offset(0), base);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(3).to_string(), "P3");
        assert_eq!(ClusterId(1).to_string(), "C1");
        assert_eq!(NodeId(7).to_string(), "N7");
        assert_eq!(ObjRef(0x20).to_string(), "@0x20");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ProcId(1) < ProcId(2));
        assert!(ObjRef(5) < ObjRef(6));
    }
}
