//! Deterministic fault-injection plans shared by both runtimes.
//!
//! The paper's load-balancing claims (affinity sets run back-to-back,
//! stealing preserves locality, mutex tasks block the task and never the
//! server) are only meaningful if they survive perturbation: stragglers,
//! stalled processors, transient task failures. A [`FaultPlan`] describes
//! such a perturbation *declaratively and deterministically*, so the same
//! plan replayed against the simulator yields bit-identical schedules, and
//! replayed against the threaded runtime yields the same set of injected
//! events (real time varies, the events do not).
//!
//! Quantities are expressed in abstract **units**: the simulated runtime
//! interprets one unit as one machine cycle, the threaded runtime as one
//! microsecond of wall-clock delay. Injected task failures are *transient*:
//! the task's first dispatch fails before the body runs and the untouched
//! body is requeued, so a retried task still executes exactly once and
//! application results stay correct and comparable.
//!
//! The service layer (`cool-rt::serve`) consumes a second family of faults —
//! request-keyed transient failures, slow domain pools, and request-keyed
//! intake stalls — keyed by request id or shard domain rather than by
//! arrival order, so the injected event set is identical under any
//! submission interleaving (asserted by the serve chaos tests).

/// A one-shot processor stall: before `proc`'s `nth_dispatch`-th task
/// dispatch (0-based), the server freezes for `units`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stall {
    /// Server index the stall applies to.
    pub proc: usize,
    /// Which dispatch on that server triggers the stall (0 = the first).
    pub nth_dispatch: u64,
    /// Stall length in plan units.
    pub units: u64,
}

/// A deterministic, seeded description of injected faults.
///
/// Built with the fluent methods below; queried by the runtimes via the
/// `*_units` / [`FaultPlan::should_fail`] accessors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Extra units charged to every task dispatched on a server (straggler).
    slow: Vec<(usize, u64)>,
    /// One-shot freezes.
    stalls: Vec<Stall>,
    /// Global spawn indices whose first dispatch fails transiently (sorted).
    fail_spawns: Vec<u64>,
    /// Extra units charged each time a server goes idle / scans for steals.
    wakeup: Vec<(usize, u64)>,
    /// Service layer: request ids whose first attempt fails transiently
    /// (sorted). Keyed by request id, not arrival order, so the injected
    /// event set is independent of submission interleaving.
    fail_requests: Vec<u64>,
    /// Service layer: extra units charged to every job a domain pool
    /// executes (slow-worker). Domains are resolved from the request's
    /// shard key, so which requests are slowed does not depend on timing.
    slow_domains: Vec<(usize, u64)>,
    /// Service layer: intake stalls keyed by request id — admitting the
    /// request freezes the intake path for the given units.
    intake_stalls: Vec<(u64, u64)>,
}

/// The xorshift* step used to derive pseudo-random injection points from the
/// plan seed (no external RNG dependency; bit-stable across platforms).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

impl FaultPlan {
    /// An empty plan with the given seed (used only by the `*_random_*`
    /// builders; two plans built identically from the same seed are equal).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.slow.is_empty()
            && self.stalls.is_empty()
            && self.fail_spawns.is_empty()
            && self.wakeup.is_empty()
            && self.fail_requests.is_empty()
            && self.slow_domains.is_empty()
            && self.intake_stalls.is_empty()
    }

    /// Make `proc` a straggler: every task it dispatches costs `units` extra.
    pub fn slow_server(mut self, proc: usize, units: u64) -> Self {
        self.slow.push((proc, units));
        self
    }

    /// Freeze `proc` for `units` just before its `nth_dispatch`-th dispatch.
    pub fn stall_server(mut self, proc: usize, nth_dispatch: u64, units: u64) -> Self {
        self.stalls.push(Stall {
            proc,
            nth_dispatch,
            units,
        });
        self
    }

    /// Fail the `n`-th spawned task (0-based, counted across all servers) on
    /// its first dispatch. The failure is transient: the body is requeued
    /// untouched and runs on a later dispatch.
    pub fn fail_task(mut self, n: u64) -> Self {
        if let Err(pos) = self.fail_spawns.binary_search(&n) {
            self.fail_spawns.insert(pos, n);
        }
        self
    }

    /// Fail `count` distinct spawn indices drawn deterministically from the
    /// seed, uniform over `0..upto`.
    pub fn fail_random_tasks(mut self, count: usize, upto: u64) -> Self {
        assert!(upto > 0, "fail_random_tasks needs a non-empty range");
        let mut state = self.seed | 1;
        let mut added = 0;
        // Bounded attempts so a near-full range cannot loop forever.
        let mut attempts = 0usize;
        while added < count && attempts < count * 64 {
            attempts += 1;
            let n = xorshift(&mut state) % upto;
            if let Err(pos) = self.fail_spawns.binary_search(&n) {
                self.fail_spawns.insert(pos, n);
                added += 1;
            }
        }
        self
    }

    /// Delay `proc` by `units` every time it wakes from idle or scans for
    /// work to steal (models a processor slow to notice new work).
    pub fn delay_wakeups(mut self, proc: usize, units: u64) -> Self {
        self.wakeup.push((proc, units));
        self
    }

    /// Total straggler surcharge per task dispatched on `proc`.
    pub fn slow_units(&self, proc: usize) -> u64 {
        self.slow
            .iter()
            .filter(|&&(p, _)| p == proc)
            .map(|&(_, u)| u)
            .sum()
    }

    /// Stall to apply before `proc`'s dispatch number `nth` (0 if none).
    pub fn stall_units(&self, proc: usize, nth: u64) -> u64 {
        self.stalls
            .iter()
            .filter(|s| s.proc == proc && s.nth_dispatch == nth)
            .map(|s| s.units)
            .sum()
    }

    /// Should the task with global spawn index `n` fail its first dispatch?
    pub fn should_fail(&self, n: u64) -> bool {
        self.fail_spawns.binary_search(&n).is_ok()
    }

    /// Number of injected task failures in the plan.
    pub fn fail_count(&self) -> usize {
        self.fail_spawns.len()
    }

    /// Wakeup/steal-scan surcharge for `proc`.
    pub fn wakeup_units(&self, proc: usize) -> u64 {
        self.wakeup
            .iter()
            .filter(|&&(p, _)| p == proc)
            .map(|&(_, u)| u)
            .sum()
    }

    // ---- Service-scoped faults (the `cool-rt` serve layer) ----------------
    //
    // Every service fault is keyed by request id or by shard domain — never
    // by arrival order or dispatch count — so replaying the same request set
    // against the same plan injects the same events no matter how arrivals
    // interleave across submitter threads.

    /// Fail the first service attempt of the request with id `id`. The
    /// failure is transient: the server retries the request (with backoff),
    /// and the job body still runs exactly once on success.
    pub fn fail_request(mut self, id: u64) -> Self {
        if let Err(pos) = self.fail_requests.binary_search(&id) {
            self.fail_requests.insert(pos, id);
        }
        self
    }

    /// Fail `count` distinct request ids drawn deterministically from the
    /// seed, uniform over `0..upto`.
    pub fn fail_random_requests(mut self, count: usize, upto: u64) -> Self {
        assert!(upto > 0, "fail_random_requests needs a non-empty range");
        // Offset the state so request victims differ from task victims
        // drawn from the same seed.
        let mut state = (self.seed ^ 0xF00D_5EED_0BAD_CAFE) | 1;
        let mut added = 0;
        let mut attempts = 0usize;
        while added < count && attempts < count * 64 {
            attempts += 1;
            let n = xorshift(&mut state) % upto;
            if let Err(pos) = self.fail_requests.binary_search(&n) {
                self.fail_requests.insert(pos, n);
                added += 1;
            }
        }
        self
    }

    /// Make every job executed by service domain `domain` cost `units`
    /// extra (a slow worker pool).
    pub fn slow_domain(mut self, domain: usize, units: u64) -> Self {
        self.slow_domains.push((domain, units));
        self
    }

    /// Freeze the intake path for `units` while admitting the request with
    /// id `id` (a stalled intake, attributable to one request).
    pub fn stall_intake(mut self, id: u64, units: u64) -> Self {
        self.intake_stalls.push((id, units));
        self
    }

    /// Should the first service attempt of request `id` fail?
    pub fn should_fail_request(&self, id: u64) -> bool {
        self.fail_requests.binary_search(&id).is_ok()
    }

    /// Number of request-keyed transient failures in the plan.
    pub fn request_fail_count(&self) -> usize {
        self.fail_requests.len()
    }

    /// Slow-worker surcharge per job executed by service domain `domain`.
    pub fn domain_slow_units(&self, domain: usize) -> u64 {
        self.slow_domains
            .iter()
            .filter(|&&(d, _)| d == domain)
            .map(|&(_, u)| u)
            .sum()
    }

    /// Intake stall owed while admitting request `id`.
    pub fn intake_stall_units(&self, id: u64) -> u64 {
        self.intake_stalls
            .iter()
            .filter(|&&(r, _)| r == id)
            .map(|&(_, u)| u)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new(7);
        assert!(p.is_empty());
        assert_eq!(p.slow_units(0), 0);
        assert_eq!(p.stall_units(3, 0), 0);
        assert!(!p.should_fail(0));
        assert_eq!(p.wakeup_units(1), 0);
    }

    #[test]
    fn builders_accumulate() {
        let p = FaultPlan::new(1)
            .slow_server(2, 100)
            .slow_server(2, 50)
            .stall_server(1, 4, 9_999)
            .fail_task(10)
            .fail_task(3)
            .fail_task(10)
            .delay_wakeups(0, 25);
        assert_eq!(p.slow_units(2), 150);
        assert_eq!(p.slow_units(1), 0);
        assert_eq!(p.stall_units(1, 4), 9_999);
        assert_eq!(p.stall_units(1, 5), 0);
        assert!(p.should_fail(3) && p.should_fail(10));
        assert_eq!(p.fail_count(), 2, "fail_task must deduplicate");
        assert_eq!(p.wakeup_units(0), 25);
    }

    #[test]
    fn random_failures_are_seed_deterministic() {
        let a = FaultPlan::new(42).fail_random_tasks(8, 1000);
        let b = FaultPlan::new(42).fail_random_tasks(8, 1000);
        let c = FaultPlan::new(43).fail_random_tasks(8, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should pick different tasks");
        assert_eq!(a.fail_count(), 8);
        for n in 0..1000 {
            assert_eq!(a.should_fail(n), b.should_fail(n));
        }
    }

    #[test]
    fn service_faults_are_keyed_by_id_and_domain() {
        let p = FaultPlan::new(3)
            .fail_request(7)
            .fail_request(2)
            .fail_request(7)
            .slow_domain(1, 500)
            .slow_domain(1, 250)
            .stall_intake(9, 4_000);
        assert!(p.should_fail_request(2) && p.should_fail_request(7));
        assert!(!p.should_fail_request(3));
        assert_eq!(p.request_fail_count(), 2, "fail_request must deduplicate");
        assert_eq!(p.domain_slow_units(1), 750);
        assert_eq!(p.domain_slow_units(0), 0);
        assert_eq!(p.intake_stall_units(9), 4_000);
        assert_eq!(p.intake_stall_units(8), 0);
        assert!(!p.is_empty());
    }

    #[test]
    fn random_request_failures_are_seed_deterministic_and_independent() {
        let a = FaultPlan::new(42).fail_random_requests(8, 1000);
        let b = FaultPlan::new(42).fail_random_requests(8, 1000);
        assert_eq!(a, b);
        assert_eq!(a.request_fail_count(), 8);
        // Request victims are drawn from a different stream than task
        // victims of the same seed, so one plan can carry both without the
        // two fault populations shadowing each other.
        let both = FaultPlan::new(42)
            .fail_random_tasks(8, 1000)
            .fail_random_requests(8, 1000);
        let tasks: Vec<u64> = (0..1000).filter(|&n| both.should_fail(n)).collect();
        let reqs: Vec<u64> = (0..1000).filter(|&n| both.should_fail_request(n)).collect();
        assert_ne!(tasks, reqs, "victim streams must differ");
    }

    #[test]
    fn random_failures_stay_in_range() {
        let p = FaultPlan::new(5).fail_random_tasks(16, 64);
        let hits: Vec<u64> = (0..64).filter(|&n| p.should_fail(n)).collect();
        assert_eq!(hits.len(), p.fail_count());
        assert!((64..4096).all(|n| !p.should_fail(n)));
    }
}
