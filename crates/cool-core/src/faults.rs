//! Deterministic fault-injection plans shared by both runtimes.
//!
//! The paper's load-balancing claims (affinity sets run back-to-back,
//! stealing preserves locality, mutex tasks block the task and never the
//! server) are only meaningful if they survive perturbation: stragglers,
//! stalled processors, transient task failures. A [`FaultPlan`] describes
//! such a perturbation *declaratively and deterministically*, so the same
//! plan replayed against the simulator yields bit-identical schedules, and
//! replayed against the threaded runtime yields the same set of injected
//! events (real time varies, the events do not).
//!
//! Quantities are expressed in abstract **units**: the simulated runtime
//! interprets one unit as one machine cycle, the threaded runtime as one
//! microsecond of wall-clock delay. Injected task failures are *transient*:
//! the task's first dispatch fails before the body runs and the untouched
//! body is requeued, so a retried task still executes exactly once and
//! application results stay correct and comparable.

/// A one-shot processor stall: before `proc`'s `nth_dispatch`-th task
/// dispatch (0-based), the server freezes for `units`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stall {
    /// Server index the stall applies to.
    pub proc: usize,
    /// Which dispatch on that server triggers the stall (0 = the first).
    pub nth_dispatch: u64,
    /// Stall length in plan units.
    pub units: u64,
}

/// A deterministic, seeded description of injected faults.
///
/// Built with the fluent methods below; queried by the runtimes via the
/// `*_units` / [`FaultPlan::should_fail`] accessors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Extra units charged to every task dispatched on a server (straggler).
    slow: Vec<(usize, u64)>,
    /// One-shot freezes.
    stalls: Vec<Stall>,
    /// Global spawn indices whose first dispatch fails transiently (sorted).
    fail_spawns: Vec<u64>,
    /// Extra units charged each time a server goes idle / scans for steals.
    wakeup: Vec<(usize, u64)>,
}

/// The xorshift* step used to derive pseudo-random injection points from the
/// plan seed (no external RNG dependency; bit-stable across platforms).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

impl FaultPlan {
    /// An empty plan with the given seed (used only by the `*_random_*`
    /// builders; two plans built identically from the same seed are equal).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.slow.is_empty()
            && self.stalls.is_empty()
            && self.fail_spawns.is_empty()
            && self.wakeup.is_empty()
    }

    /// Make `proc` a straggler: every task it dispatches costs `units` extra.
    pub fn slow_server(mut self, proc: usize, units: u64) -> Self {
        self.slow.push((proc, units));
        self
    }

    /// Freeze `proc` for `units` just before its `nth_dispatch`-th dispatch.
    pub fn stall_server(mut self, proc: usize, nth_dispatch: u64, units: u64) -> Self {
        self.stalls.push(Stall {
            proc,
            nth_dispatch,
            units,
        });
        self
    }

    /// Fail the `n`-th spawned task (0-based, counted across all servers) on
    /// its first dispatch. The failure is transient: the body is requeued
    /// untouched and runs on a later dispatch.
    pub fn fail_task(mut self, n: u64) -> Self {
        if let Err(pos) = self.fail_spawns.binary_search(&n) {
            self.fail_spawns.insert(pos, n);
        }
        self
    }

    /// Fail `count` distinct spawn indices drawn deterministically from the
    /// seed, uniform over `0..upto`.
    pub fn fail_random_tasks(mut self, count: usize, upto: u64) -> Self {
        assert!(upto > 0, "fail_random_tasks needs a non-empty range");
        let mut state = self.seed | 1;
        let mut added = 0;
        // Bounded attempts so a near-full range cannot loop forever.
        let mut attempts = 0usize;
        while added < count && attempts < count * 64 {
            attempts += 1;
            let n = xorshift(&mut state) % upto;
            if let Err(pos) = self.fail_spawns.binary_search(&n) {
                self.fail_spawns.insert(pos, n);
                added += 1;
            }
        }
        self
    }

    /// Delay `proc` by `units` every time it wakes from idle or scans for
    /// work to steal (models a processor slow to notice new work).
    pub fn delay_wakeups(mut self, proc: usize, units: u64) -> Self {
        self.wakeup.push((proc, units));
        self
    }

    /// Total straggler surcharge per task dispatched on `proc`.
    pub fn slow_units(&self, proc: usize) -> u64 {
        self.slow
            .iter()
            .filter(|&&(p, _)| p == proc)
            .map(|&(_, u)| u)
            .sum()
    }

    /// Stall to apply before `proc`'s dispatch number `nth` (0 if none).
    pub fn stall_units(&self, proc: usize, nth: u64) -> u64 {
        self.stalls
            .iter()
            .filter(|s| s.proc == proc && s.nth_dispatch == nth)
            .map(|s| s.units)
            .sum()
    }

    /// Should the task with global spawn index `n` fail its first dispatch?
    pub fn should_fail(&self, n: u64) -> bool {
        self.fail_spawns.binary_search(&n).is_ok()
    }

    /// Number of injected task failures in the plan.
    pub fn fail_count(&self) -> usize {
        self.fail_spawns.len()
    }

    /// Wakeup/steal-scan surcharge for `proc`.
    pub fn wakeup_units(&self, proc: usize) -> u64 {
        self.wakeup
            .iter()
            .filter(|&&(p, _)| p == proc)
            .map(|&(_, u)| u)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new(7);
        assert!(p.is_empty());
        assert_eq!(p.slow_units(0), 0);
        assert_eq!(p.stall_units(3, 0), 0);
        assert!(!p.should_fail(0));
        assert_eq!(p.wakeup_units(1), 0);
    }

    #[test]
    fn builders_accumulate() {
        let p = FaultPlan::new(1)
            .slow_server(2, 100)
            .slow_server(2, 50)
            .stall_server(1, 4, 9_999)
            .fail_task(10)
            .fail_task(3)
            .fail_task(10)
            .delay_wakeups(0, 25);
        assert_eq!(p.slow_units(2), 150);
        assert_eq!(p.slow_units(1), 0);
        assert_eq!(p.stall_units(1, 4), 9_999);
        assert_eq!(p.stall_units(1, 5), 0);
        assert!(p.should_fail(3) && p.should_fail(10));
        assert_eq!(p.fail_count(), 2, "fail_task must deduplicate");
        assert_eq!(p.wakeup_units(0), 25);
    }

    #[test]
    fn random_failures_are_seed_deterministic() {
        let a = FaultPlan::new(42).fail_random_tasks(8, 1000);
        let b = FaultPlan::new(42).fail_random_tasks(8, 1000);
        let c = FaultPlan::new(43).fail_random_tasks(8, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should pick different tasks");
        assert_eq!(a.fail_count(), 8);
        for n in 0..1000 {
            assert_eq!(a.should_fail(n), b.should_fail(n));
        }
    }

    #[test]
    fn random_failures_stay_in_range() {
        let p = FaultPlan::new(5).fail_random_tasks(16, 64);
        let hits: Vec<u64> = (0..64).filter(|&n| p.should_fail(n)).collect();
        assert_eq!(hits.len(), p.fail_count());
        assert!((64..4096).all(|n| !p.should_fail(n)));
    }
}
