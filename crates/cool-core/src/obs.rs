//! Scheduler observability: the shared trace-event vocabulary and a
//! per-worker ring-buffer recorder.
//!
//! Both backends emit the same [`ObsEvent`] stream when tracing is enabled:
//! the deterministic simulator stamps events with virtual cycles, the
//! threaded runtime with nanoseconds since the run's epoch. The recorder is
//! *zero-cost when disabled* — the runtimes hold an `Option<ObsRecorder>`
//! and guard every emission on it, the same gating discipline as the
//! analyzer's [`RtEvent`](crate::events::RtEvent) recording — and
//! "lock-free-ish" when enabled: each worker appends only to its own
//! bounded ring behind a mutex nobody else takes on the hot path, with one
//! shared atomic sequence counter providing a global merge order. The rings
//! are bounded; when a worker overflows its ring the oldest events are
//! dropped and counted, never blocking the scheduler.
//!
//! Per-task memory attribution ([`MemDelta`]) is measured at task
//! boundaries: the runtime snapshots its processor's PerfMonitor reference
//! counters at `TaskBegin` and records the difference at `TaskEnd`. The
//! monitor only moves those counters inside `Machine::reference`, which only
//! runs inside task bodies, so summing `MemDelta`s over any partition of the
//! tasks (e.g. per task-affinity set) reproduces the end-of-run aggregates
//! exactly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::events::TaskUid;
use crate::ids::{ObjRef, ProcId};

/// Cache/local/remote reference breakdown accumulated between two points in
/// time on one processor — the unit of per-task locality attribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemDelta {
    /// Shared-data references issued.
    pub refs: u64,
    /// References serviced by the processor cache.
    pub l1_hits: u64,
    /// References serviced by the second-level / lookaside path.
    pub l2_hits: u64,
    /// Misses serviced from the local memory node.
    pub local_misses: u64,
    /// Misses serviced from a remote node (or remote dirty cache).
    pub remote_misses: u64,
}

impl MemDelta {
    /// Component-wise sum (used when aggregating tasks into sets).
    pub fn accumulate(&mut self, other: &MemDelta) {
        self.refs += other.refs;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.local_misses += other.local_misses;
        self.remote_misses += other.remote_misses;
    }

    /// True when no reference was recorded.
    pub fn is_zero(&self) -> bool {
        self.refs == 0
            && self.l1_hits == 0
            && self.l2_hits == 0
            && self.local_misses == 0
            && self.remote_misses == 0
    }
}

/// One scheduler-observability event. `time` is backend-defined (virtual
/// cycles in `cool-sim`, nanoseconds since the run epoch in `cool-rt`); the
/// recorder's sequence numbers provide the global order.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsEvent {
    /// A task body is about to run.
    TaskBegin {
        /// Task being dispatched.
        task: TaskUid,
        /// Human-readable task label, when the app provided one.
        label: Option<&'static str>,
        /// Server executing the task.
        proc: ProcId,
        /// Task-affinity set (queue token) the task was queued under.
        set: Option<ObjRef>,
        /// Whether the task carried any affinity hint.
        hinted: bool,
        /// Whether it runs on the server its hint resolved to.
        on_target: bool,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// The task body finished. `mem` is the PerfMonitor delta across the
    /// body (absent on backends without a memory model, i.e. `cool-rt`).
    TaskEnd {
        /// Task that finished.
        task: TaskUid,
        /// Server it ran on.
        proc: ProcId,
        /// PerfMonitor reference delta across the body, when modelled.
        mem: Option<MemDelta>,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// A steal succeeded: `ntasks` tasks moved from `victim` to `thief`.
    /// `token` is the stolen set's affinity token (`None` for single-task
    /// steals).
    StealSuccess {
        /// Stealing server.
        thief: ProcId,
        /// Server the work was taken from.
        victim: ProcId,
        /// Affinity token of the stolen set (`None` for single tasks).
        token: Option<ObjRef>,
        /// Number of tasks moved.
        ntasks: usize,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// A steal scan found nothing after probing `probes` victims.
    StealFail {
        /// Scanning server.
        thief: ProcId,
        /// Victims probed before giving up.
        probes: usize,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// An empty affinity slot became linked (a new task-affinity set started
    /// queueing) on `proc`.
    SlotLink {
        /// Server owning the queue.
        proc: ProcId,
        /// Affinity-slot index.
        slot: usize,
        /// Affinity token hashed into the slot.
        token: ObjRef,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// Local service drained an affinity slot (the set ran to completion
    /// back to back).
    SlotDrain {
        /// Server owning the queue.
        proc: ProcId,
        /// Affinity-slot index.
        slot: usize,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// A task found its declared mutex held and was set aside.
    MutexWait {
        /// Waiting task.
        task: TaskUid,
        /// Contended lock object.
        lock: ObjRef,
        /// Server the task was dispatched on.
        proc: ProcId,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// `migrate()` moved `bytes` at `obj` to `to`'s local memory.
    Migrate {
        /// Task that requested the migration.
        task: TaskUid,
        /// Object that moved.
        obj: ObjRef,
        /// Bytes moved.
        bytes: u64,
        /// Destination server (its cluster's local memory).
        to: ProcId,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// The phase-boundary rebalancer re-homed one page: the closing
    /// phase's traffic said the page's dominant consumer was a remote
    /// memory domain and the modelled saving beat the migration cost.
    Rebalance {
        /// First byte of the moved page.
        obj: ObjRef,
        /// Destination server (the winning domain's first processor).
        to: ProcId,
        /// Remote misses the page drew from the winning domain during the
        /// closing phase.
        misses: u64,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// Queue-depth sample on `proc`, taken at dispatch points.
    QueueDepth {
        /// Sampled server.
        proc: ProcId,
        /// Tasks queued (all slots plus the default queue).
        depth: usize,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// Service layer: admission accepted a request into a domain's intake
    /// queue.
    RequestAdmit {
        /// Request (idempotency) id.
        req: u64,
        /// Shard domain the request was routed to.
        domain: usize,
        /// Outstanding requests on the domain after admission.
        depth: usize,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// Service layer: admission shed a request (queue depth or service-time
    /// budget exceeded, or the server is draining).
    RequestShed {
        /// Request (idempotency) id.
        req: u64,
        /// Shard domain the request would have landed on.
        domain: usize,
        /// Outstanding requests on the domain at the shed decision.
        depth: usize,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// Service layer: a failed attempt scheduled a retry after a backoff.
    RequestRetry {
        /// Request (idempotency) id.
        req: u64,
        /// Attempt number that failed (0-based).
        attempt: u32,
        /// Jittered backoff before the next attempt, in nanoseconds.
        backoff_ns: u64,
        /// Shard domain serving the request.
        domain: usize,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
    /// Service layer: a request reached a terminal state (completed, failed
    /// permanently, or timed out past its deadline).
    RequestDone {
        /// Request (idempotency) id.
        req: u64,
        /// Attempts consumed (1 = first attempt succeeded).
        attempts: u32,
        /// Whether the request completed successfully.
        ok: bool,
        /// Admission-to-completion latency in nanoseconds.
        latency_ns: u64,
        /// Shard domain that served the request.
        domain: usize,
        /// Backend timestamp (see enum docs).
        time: u64,
    },
}

impl ObsEvent {
    /// The event's backend timestamp.
    pub fn time(&self) -> u64 {
        match self {
            ObsEvent::TaskBegin { time, .. }
            | ObsEvent::TaskEnd { time, .. }
            | ObsEvent::StealSuccess { time, .. }
            | ObsEvent::StealFail { time, .. }
            | ObsEvent::SlotLink { time, .. }
            | ObsEvent::SlotDrain { time, .. }
            | ObsEvent::MutexWait { time, .. }
            | ObsEvent::Migrate { time, .. }
            | ObsEvent::Rebalance { time, .. }
            | ObsEvent::QueueDepth { time, .. }
            | ObsEvent::RequestAdmit { time, .. }
            | ObsEvent::RequestShed { time, .. }
            | ObsEvent::RequestRetry { time, .. }
            | ObsEvent::RequestDone { time, .. } => *time,
        }
    }

    /// The processor the event is attributed to (thief for steals, the
    /// shard domain for service-request events).
    pub fn proc(&self) -> ProcId {
        match self {
            ObsEvent::TaskBegin { proc, .. }
            | ObsEvent::TaskEnd { proc, .. }
            | ObsEvent::SlotLink { proc, .. }
            | ObsEvent::SlotDrain { proc, .. }
            | ObsEvent::MutexWait { proc, .. }
            | ObsEvent::QueueDepth { proc, .. } => *proc,
            ObsEvent::StealSuccess { thief, .. } | ObsEvent::StealFail { thief, .. } => *thief,
            ObsEvent::Migrate { to, .. } | ObsEvent::Rebalance { to, .. } => *to,
            ObsEvent::RequestAdmit { domain, .. }
            | ObsEvent::RequestShed { domain, .. }
            | ObsEvent::RequestRetry { domain, .. }
            | ObsEvent::RequestDone { domain, .. } => ProcId(*domain),
        }
    }
}

/// A recorded event with its global sequence number.
#[derive(Clone, Debug)]
struct Stamped {
    seq: u64,
    event: ObsEvent,
}

/// One worker's bounded ring. Overflow drops the *oldest* events (the tail
/// of a trace is usually the interesting part) and counts them.
#[derive(Debug)]
struct Ring {
    buf: VecDeque<Stamped>,
    dropped: u64,
}

/// The merged result of a recording session.
#[derive(Clone, Debug, Default)]
pub struct ObsTrace {
    /// Events in global emission order.
    pub events: Vec<ObsEvent>,
    /// Events discarded because a worker overflowed its ring.
    pub dropped: u64,
}

/// Per-worker ring-buffer recorder shared by all workers of a runtime.
///
/// `record` takes `&self` so the threaded runtime can share it without
/// wrapping; worker `w` must only ever record under its own index (that is
/// what keeps the per-ring mutexes uncontended).
#[derive(Debug)]
pub struct ObsRecorder {
    rings: Vec<Mutex<Ring>>,
    seq: AtomicU64,
    capacity: usize,
}

/// Default per-worker ring capacity: large enough for every app in the
/// pinned sweeps to trace without drops, small enough to bound memory.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

impl ObsRecorder {
    /// A recorder with one ring of `capacity` events per worker.
    pub fn new(nworkers: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        ObsRecorder {
            rings: (0..nworkers)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: VecDeque::new(),
                        dropped: 0,
                    })
                })
                .collect(),
            seq: AtomicU64::new(0),
            capacity,
        }
    }

    /// A recorder with the default per-worker capacity.
    pub fn with_default_capacity(nworkers: usize) -> Self {
        ObsRecorder::new(nworkers, DEFAULT_RING_CAPACITY)
    }

    /// Number of worker rings.
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// Record `event` on worker `worker`'s ring.
    pub fn record(&self, worker: usize, event: ObsEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.rings[worker]
            .lock()
            .expect("obs ring poisoned (worker panicked mid-record)");
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(Stamped { seq, event });
    }

    /// Merge all rings into one stream ordered by emission sequence,
    /// consuming the recorded events (rings are left empty).
    pub fn drain(&self) -> ObsTrace {
        let mut all: Vec<Stamped> = Vec::new();
        let mut dropped = 0;
        for ring in &self.rings {
            let mut ring = ring.lock().expect("obs ring poisoned");
            dropped += ring.dropped;
            ring.dropped = 0;
            all.extend(ring.buf.drain(..));
        }
        all.sort_by_key(|s| s.seq);
        ObsTrace {
            events: all.into_iter().map(|s| s.event).collect(),
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: usize, t: u64) -> ObsEvent {
        ObsEvent::QueueDepth {
            proc: ProcId(p),
            depth: 1,
            time: t,
        }
    }

    #[test]
    fn drain_merges_rings_in_emission_order() {
        let rec = ObsRecorder::new(2, 16);
        rec.record(0, ev(0, 10));
        rec.record(1, ev(1, 20));
        rec.record(0, ev(0, 30));
        let trace = rec.drain();
        assert_eq!(trace.dropped, 0);
        let times: Vec<u64> = trace.events.iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert!(rec.drain().events.is_empty(), "drain consumes");
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let rec = ObsRecorder::new(1, 4);
        for t in 0..10 {
            rec.record(0, ev(0, t));
        }
        let trace = rec.drain();
        assert_eq!(trace.dropped, 6);
        let times: Vec<u64> = trace.events.iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "tail of the stream survives");
    }

    #[test]
    fn mem_delta_accumulates() {
        let mut a = MemDelta {
            refs: 1,
            l1_hits: 1,
            l2_hits: 0,
            local_misses: 0,
            remote_misses: 0,
        };
        assert!(!a.is_zero());
        assert!(MemDelta::default().is_zero());
        a.accumulate(&MemDelta {
            refs: 2,
            l1_hits: 0,
            l2_hits: 1,
            local_misses: 1,
            remote_misses: 0,
        });
        assert_eq!(a.refs, 3);
        assert_eq!(a.l2_hits, 1);
        assert_eq!(a.local_misses, 1);
    }

    #[test]
    fn event_accessors() {
        let e = ObsEvent::StealSuccess {
            thief: ProcId(2),
            victim: ProcId(5),
            token: Some(ObjRef(9)),
            ntasks: 3,
            time: 77,
        };
        assert_eq!(e.time(), 77);
        assert_eq!(e.proc(), ProcId(2));
    }
}
