//! Closed-loop policy feedback: the knobs and the deterministic aggregator
//! behind the adaptive scheduling versions.
//!
//! The paper's affinity hints are static annotations; this module adds the
//! feedback layer ROADMAP calls for (in the spirit of the Sandia
//! communication-and-memory-aware load-balancing model, arXiv 2404.16793):
//! the scheduler *measures* its own steal failures, remote-miss rates and
//! queue depths, and folds them into three controls —
//!
//! * **steal-ceiling widening** — a [`StealPolicy`](crate::StealPolicy)
//!   locality ceiling (`cluster_only`, `steal_radius`) is lifted by
//!   [`PolicyFeedback::extra_levels`] while the observed failed-scan rate
//!   shows starvation, and decays back once steals succeed again;
//! * **migration throttling** — `migrate` requests are honoured only while
//!   the observed remote-miss rate says the data is actually remote
//!   ([`PolicyFeedback::migration_open`]);
//! * **probe limiting** — the number of victims probed per steal scan is
//!   proportional to the observed queue depth
//!   ([`PolicyFeedback::probe_cap`]): shallow queues mean there is little
//!   to find, so an idle server stops paying for full scans.
//!
//! ## Determinism
//!
//! All signals are sampled at *task boundaries* from counters the runtime
//! already maintains (`SchedStats`, the PerfMonitor reference mix), and the
//! controls change only at fixed window boundaries (every
//! [`AdaptiveConfig::window`] completed tasks). On the virtual-time
//! simulator the whole loop is therefore a pure function of the schedule,
//! which is itself deterministic — adaptive runs replay byte-identically,
//! and the sweep engine can memoize them like any static configuration.
//! On the threaded runtime each worker keeps its own private aggregator,
//! so no cross-thread timing enters the control loop.
//!
//! Both config types render a stable [`fingerprint`](AdaptiveConfig::fingerprint)
//! segment that the simulator appends to its own, so memoized records can
//! never be satisfied by a run with different adaptation knobs.

/// Knobs of the closed-loop steal/migration adaptation. All rates are in
/// per-mille (‰) so the control loop stays in integer arithmetic — floats
/// would invite platform-dependent rounding into the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Completed tasks per feedback window: controls are recomputed (and
    /// the window counters reset) every `window` task completions.
    pub window: u64,
    /// Failed-scan rate (‰ of the window's steal scans) at or above which
    /// the steal ceiling widens by one topology level. Below *half* this
    /// rate the extra widening decays by one level — hysteresis, so the
    /// ceiling does not flap around the threshold.
    pub widen_fail_permille: u32,
    /// Remote-miss rate (‰ of the window's references) below which
    /// `migrate` requests are ignored: if the data is not actually being
    /// missed remotely, moving it buys nothing and costs the page-move.
    /// `0` disables the throttle (every `migrate` is honoured).
    pub migrate_remote_permille: u32,
    /// Floor of the queue-depth-proportional probe limit: a steal scan
    /// always probes at least this many victims.
    pub probe_base: u32,
    /// Extra probes allowed per unit of mean dispatch-time queue depth
    /// observed in the previous window. `0` (with `probe_base = 0`)
    /// disables the cap entirely.
    pub probe_per_depth: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 32,
            widen_fail_permille: 800,
            migrate_remote_permille: 0,
            probe_base: 8,
            probe_per_depth: 4,
        }
    }
}

impl AdaptiveConfig {
    /// Stable fingerprint segment (`adapt=w32/f800/m0/p8+4`) appended to
    /// the simulator config fingerprint when adaptation is enabled.
    pub fn fingerprint(&self) -> String {
        format!(
            "adapt=w{}/f{}/m{}/p{}+{}",
            self.window,
            self.widen_fail_permille,
            self.migrate_remote_permille,
            self.probe_base,
            self.probe_per_depth
        )
    }

    /// Is the probe cap active? (`probe_base` and `probe_per_depth` both
    /// zero means "never cap".)
    pub fn caps_probes(&self) -> bool {
        self.probe_base > 0 || self.probe_per_depth > 0
    }
}

/// Knobs of the phase-boundary global rebalancer: at every `waitfor` phase
/// boundary the simulator inspects the per-page remote-miss traffic of the
/// closing phase and re-homes pages whose modelled communication saving
/// beats the migration cost by the configured margin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RebalanceConfig {
    /// Minimum remote misses a page must have drawn from its best remote
    /// cluster during the phase before it is considered at all (filters
    /// cold pages whose traffic is noise).
    pub min_remote: u32,
    /// Benefit-over-cost margin in per-mille: a page moves only when the
    /// modelled cycle saving is at least `cost × margin_permille / 1000`.
    /// `1000` is break-even; larger values demand a clear win.
    pub margin_permille: u32,
}

impl Default for RebalanceConfig {
    /// Deliberately conservative defaults, tuned on the deep-topology sweep:
    /// a page must draw at least 192 remote misses from one cluster in a
    /// single phase and the modelled saving must be 3× the migration cost.
    /// At this setting the rebalancer never fires on well-placed committed
    /// workloads (their records stay cycle-identical to the static parent)
    /// and still recovers genuinely bad placements decisively.
    fn default() -> Self {
        RebalanceConfig {
            min_remote: 192,
            margin_permille: 3000,
        }
    }
}

impl RebalanceConfig {
    /// Stable fingerprint segment (`rebal=m192/g3000`) appended to the
    /// simulator config fingerprint when the rebalancer is enabled.
    pub fn fingerprint(&self) -> String {
        format!("rebal=m{}/g{}", self.min_remote, self.margin_permille)
    }
}

/// Deterministic per-server feedback aggregator.
///
/// The runtime feeds it at task boundaries ([`PolicyFeedback::note_task`])
/// and after every steal scan ([`PolicyFeedback::note_scan`]); it exposes
/// the three controls as plain getters. Controls change only when a window
/// completes, so between boundaries the scheduler sees constants.
#[derive(Clone, Debug)]
pub struct PolicyFeedback {
    cfg: AdaptiveConfig,
    /// Widening headroom: extra levels can never exceed this (the number
    /// of topology levels above the innermost — beyond that `allowed`
    /// already spans the whole machine).
    max_extra: usize,
    // Window accumulators.
    tasks: u64,
    scans: u64,
    failed: u64,
    refs: u64,
    remote: u64,
    depth_sum: u64,
    // Controls (recomputed at window boundaries).
    extra: usize,
    migrate_open: bool,
    probe_cap: usize,
    // Lifetime counters.
    windows: u64,
    widenings: u64,
}

impl PolicyFeedback {
    /// A fresh aggregator. `max_extra` bounds ceiling widening — pass the
    /// machine tree's level count (widening past the root is meaningless).
    pub fn new(cfg: AdaptiveConfig, max_extra: usize) -> Self {
        assert!(cfg.window > 0, "feedback window must be positive");
        PolicyFeedback {
            cfg,
            max_extra,
            tasks: 0,
            scans: 0,
            failed: 0,
            refs: 0,
            remote: 0,
            depth_sum: 0,
            extra: 0,
            migrate_open: true,
            probe_cap: usize::MAX,
            windows: 0,
            widenings: 0,
        }
    }

    /// Record the outcome of one steal scan.
    pub fn note_scan(&mut self, failed: bool) {
        self.scans += 1;
        if failed {
            self.failed += 1;
        }
    }

    /// Record one completed task: the task's reference/remote-miss deltas
    /// (zeros on backends without a memory model) and the server's queue
    /// depth at the completion boundary. Returns `true` when this
    /// completion closed a window *and* the steal ceiling widened — the
    /// caller counts those into `SchedStats::adaptive_widenings`.
    pub fn note_task(&mut self, refs: u64, remote: u64, queue_depth: usize) -> bool {
        self.tasks += 1;
        self.refs += refs;
        self.remote += remote;
        self.depth_sum += queue_depth as u64;
        if self.tasks < self.cfg.window {
            return false;
        }
        self.close_window()
    }

    /// Close the current window: recompute the three controls from the
    /// accumulated signals and reset the accumulators. Returns `true` if
    /// the steal ceiling widened.
    fn close_window(&mut self) -> bool {
        self.windows += 1;
        let mut widened = false;
        // Steal-ceiling widening with hysteresis. `checked_div` is `None`
        // only when the window saw no scans at all.
        if let Some(fail_permille) = (self.failed * 1000).checked_div(self.scans) {
            if fail_permille >= u64::from(self.cfg.widen_fail_permille) {
                if self.extra < self.max_extra {
                    self.extra += 1;
                    self.widenings += 1;
                    widened = true;
                }
            } else if fail_permille * 2 < u64::from(self.cfg.widen_fail_permille) {
                self.extra = self.extra.saturating_sub(1);
            }
        } else {
            // No scans at all: the server never went idle — no starvation,
            // narrow back toward the static ceiling.
            self.extra = self.extra.saturating_sub(1);
        }
        // Migration throttle: open only while the observed remote-miss
        // rate clears the threshold. Without a memory model (refs == 0)
        // the throttle never engages.
        self.migrate_open = self.cfg.migrate_remote_permille == 0
            || self.refs == 0
            || self.remote * 1000 >= u64::from(self.cfg.migrate_remote_permille) * self.refs;
        // Queue-depth-proportional probe cap.
        self.probe_cap = if self.cfg.caps_probes() {
            let mean_depth = self.depth_sum / self.cfg.window;
            self.cfg.probe_base as usize
                + (self.cfg.probe_per_depth as u64 * mean_depth) as usize
        } else {
            usize::MAX
        };
        self.tasks = 0;
        self.scans = 0;
        self.failed = 0;
        self.refs = 0;
        self.remote = 0;
        self.depth_sum = 0;
        widened
    }

    /// Extra topology levels the steal ceiling is currently lifted by.
    pub fn extra_levels(&self) -> usize {
        self.extra
    }

    /// May `migrate` requests proceed right now?
    pub fn migration_open(&self) -> bool {
        self.migrate_open
    }

    /// Most victims one steal scan may probe right now (`usize::MAX`
    /// before the first window closes, or when the cap is disabled).
    pub fn probe_cap(&self) -> usize {
        self.probe_cap
    }

    /// Completed feedback windows.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Times the ceiling widened over the aggregator's lifetime.
    pub fn widenings(&self) -> u64 {
        self.widenings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            window: 4,
            widen_fail_permille: 500,
            migrate_remote_permille: 100,
            probe_base: 2,
            probe_per_depth: 1,
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(
            AdaptiveConfig::default().fingerprint(),
            "adapt=w32/f800/m0/p8+4"
        );
        assert_eq!(RebalanceConfig::default().fingerprint(), "rebal=m192/g3000");
        assert_ne!(cfg().fingerprint(), AdaptiveConfig::default().fingerprint());
        let wider = RebalanceConfig {
            min_remote: 9,
            ..RebalanceConfig::default()
        };
        assert_ne!(wider.fingerprint(), RebalanceConfig::default().fingerprint());
    }

    #[test]
    fn widens_under_sustained_failure_and_decays_when_quiet() {
        let mut fb = PolicyFeedback::new(cfg(), 2);
        assert_eq!(fb.extra_levels(), 0);
        // Window 1: every scan fails → widen.
        for _ in 0..4 {
            fb.note_scan(true);
        }
        let mut widened = false;
        for _ in 0..4 {
            widened |= fb.note_task(0, 0, 0);
        }
        assert!(widened);
        assert_eq!(fb.extra_levels(), 1);
        // Window 2: still failing → widen to the cap.
        for _ in 0..4 {
            fb.note_scan(true);
        }
        for _ in 0..4 {
            fb.note_task(0, 0, 0);
        }
        assert_eq!(fb.extra_levels(), 2);
        // Window 3: failing, but already at the cap — no further widening,
        // and note_task must not report one.
        for _ in 0..4 {
            fb.note_scan(true);
        }
        let mut again = false;
        for _ in 0..4 {
            again |= fb.note_task(0, 0, 0);
        }
        assert!(!again);
        assert_eq!(fb.extra_levels(), 2);
        assert_eq!(fb.widenings(), 2);
        // Quiet window (scans succeed) → decay by one.
        for _ in 0..4 {
            fb.note_scan(false);
        }
        for _ in 0..4 {
            fb.note_task(0, 0, 0);
        }
        assert_eq!(fb.extra_levels(), 1);
        // No scans at all → keeps decaying.
        for _ in 0..4 {
            fb.note_task(0, 0, 0);
        }
        assert_eq!(fb.extra_levels(), 0);
        assert_eq!(fb.windows(), 5);
    }

    #[test]
    fn hysteresis_holds_the_level_between_thresholds() {
        // Fail rate between half-threshold and threshold: neither widen
        // nor decay.
        let mut fb = PolicyFeedback::new(cfg(), 4);
        for _ in 0..4 {
            fb.note_scan(true);
        }
        for _ in 0..4 {
            fb.note_task(0, 0, 0);
        }
        assert_eq!(fb.extra_levels(), 1);
        // 1 failure / 3 successes = 250‰: inside [250, 500) — hold.
        fb.note_scan(true);
        for _ in 0..3 {
            fb.note_scan(false);
        }
        for _ in 0..4 {
            fb.note_task(0, 0, 0);
        }
        assert_eq!(fb.extra_levels(), 1);
    }

    #[test]
    fn migration_throttle_follows_remote_rate() {
        let mut fb = PolicyFeedback::new(cfg(), 1);
        assert!(fb.migration_open(), "open before any evidence");
        // Window with 1000 refs, 10 remote = 10‰ < 100‰ → closed.
        for _ in 0..4 {
            fb.note_task(250, 2, 0);
        }
        assert!(!fb.migration_open());
        // Window with heavy remote traffic → reopens.
        for _ in 0..4 {
            fb.note_task(250, 100, 0);
        }
        assert!(fb.migration_open());
        // Threshold 0 disables the throttle entirely.
        let mut off = PolicyFeedback::new(
            AdaptiveConfig {
                migrate_remote_permille: 0,
                window: 2,
                ..cfg()
            },
            1,
        );
        off.note_task(1000, 0, 0);
        off.note_task(1000, 0, 0);
        assert!(off.migration_open());
        // No memory model (refs == 0): never throttles.
        let mut nomem = PolicyFeedback::new(AdaptiveConfig { window: 2, ..cfg() }, 1);
        nomem.note_task(0, 0, 0);
        nomem.note_task(0, 0, 0);
        assert!(nomem.migration_open());
    }

    #[test]
    fn probe_cap_tracks_mean_queue_depth() {
        let mut fb = PolicyFeedback::new(cfg(), 1);
        assert_eq!(fb.probe_cap(), usize::MAX, "uncapped before evidence");
        // Mean depth (3+5+0+0)/4 = 2 → cap = base 2 + 1×2 = 4.
        fb.note_task(0, 0, 3);
        fb.note_task(0, 0, 5);
        fb.note_task(0, 0, 0);
        fb.note_task(0, 0, 0);
        assert_eq!(fb.probe_cap(), 4);
        // Cap disabled when both knobs are zero.
        let mut open = PolicyFeedback::new(
            AdaptiveConfig {
                probe_base: 0,
                probe_per_depth: 0,
                window: 1,
                ..cfg()
            },
            1,
        );
        open.note_task(0, 0, 9);
        assert_eq!(open.probe_cap(), usize::MAX);
    }
}
