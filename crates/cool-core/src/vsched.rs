//! Virtual-scheduler abstraction for model checking.
//!
//! The concurrent machinery in this workspace — the serve admission /
//! retry / drain state machine in `cool-rt` and the affinity
//! [`ServerQueues`] steal structure here — normally runs under real
//! threads, where the schedule is whatever the OS produces. This module
//! lifts those state machines onto *explicit decision points*: a
//! [`VirtualProgram`] exposes the set of enabled operations in the
//! current state, applies one at a time, and checks its invariants after
//! every transition. An explorer (see `cool-analyze`'s `check` module)
//! can then enumerate every interleaving of a bounded configuration —
//! with sleep-set partial-order reduction — instead of sampling a few
//! random ones.
//!
//! Two programs live in the workspace:
//!
//! * [`QueueMachine`] (here) — `K` servers pushing, popping and stealing
//!   over the *real* [`ServerQueues`] structure, asserting structural
//!   integrity and task conservation on every step;
//! * `ServeMachine` (in `cool-rt::vserve`) — a logical-time model of the
//!   work-server admission/dedup/retry/drain protocol.
//!
//! Both support *seeded defects*: deliberately broken variants of one
//! transition rule, used by tests to prove the explorer's invariants
//! actually fire.

use crate::affinity::AffinityKind;
use crate::ids::ObjRef;
use crate::queues::ServerQueues;
use std::collections::VecDeque;

/// A deterministic, explorable concurrent program.
///
/// Implementations are small bounded state machines: `enabled` lists the
/// operations runnable in the current state (in a deterministic order),
/// `step` applies one, and `check` validates the program's invariants
/// after each transition. States are cloned by the explorer at every
/// branch point, so keep them compact.
pub trait VirtualProgram: Clone {
    /// One atomic operation at a scheduling decision point.
    type Op: Copy + PartialEq + Eq + std::fmt::Debug;

    /// Operations enabled in the current state, in deterministic order.
    ///
    /// An empty result means the program has terminated (the explorer
    /// then runs [`VirtualProgram::check_terminal`]).
    fn enabled(&self) -> Vec<Self::Op>;

    /// Apply one operation previously returned by [`VirtualProgram::enabled`].
    fn step(&mut self, op: Self::Op);

    /// Invariants that must hold in every reachable state.
    ///
    /// `Err` names the violated invariant; the explorer records it with
    /// the schedule that reached it.
    fn check(&self) -> Result<(), String>;

    /// Invariants that must hold in terminal states only (e.g. "nothing
    /// was lost once all work has been drained").
    fn check_terminal(&self) -> Result<(), String> {
        Ok(())
    }

    /// Whether two operations are *dependent* (their order can matter).
    ///
    /// Used by the sleep-set pruner: independent operations commute, so
    /// exploring both orders is redundant. This must over-approximate —
    /// when unsure, return `true`; claiming independence for dependent
    /// ops makes the exploration unsound.
    fn dependent(&self, a: Self::Op, b: Self::Op) -> bool;

    /// Stable fingerprint of the current state, for distinct-state
    /// counting in reports. Must be deterministic across runs.
    fn state_key(&self) -> u64;
}

/// Deterministic FNV-1a hash, used by [`VirtualProgram::state_key`]
/// implementations so reports are byte-stable across runs and hosts.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A scripted push a server will perform in the [`QueueMachine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PushSpec {
    /// Task identity (must be unique within a scenario, and < 64 so the
    /// machine can track execution with a bitmask).
    pub id: u32,
    /// Affinity token, or `None` for the default FIFO queue.
    pub token: Option<ObjRef>,
    /// Affinity classification the task is queued with.
    pub kind: AffinityKind,
}

/// Seeded defects for the [`QueueMachine`] — each breaks exactly one
/// transition rule so tests can prove the corresponding invariant fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueDefect {
    /// Correct behaviour.
    None,
    /// Drop the last task of every stolen batch on the floor before
    /// handing it to the thief (models the pre-PR-5 steal collision).
    /// Caught by the task-conservation invariant.
    LoseOnSteal,
    /// Duplicate the first task of every stolen batch. Caught by the
    /// exactly-once execution invariant.
    DupOnSteal,
}

/// One scheduling operation of the [`QueueMachine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueOp {
    /// Server `server` performs its next scripted push.
    Push {
        /// Acting server.
        server: usize,
    },
    /// Server `server` pops and executes one local task.
    Pop {
        /// Acting server.
        server: usize,
    },
    /// Idle server `thief` steals from `victim` and enqueues the batch.
    Steal {
        /// The stealing server (must be locally idle).
        thief: usize,
        /// The victim server (must have queued work).
        victim: usize,
    },
}

impl QueueOp {
    fn touches(&self, s: usize) -> bool {
        match *self {
            QueueOp::Push { server } | QueueOp::Pop { server } => server == s,
            QueueOp::Steal { thief, victim } => thief == s || victim == s,
        }
    }

    fn servers(&self) -> [usize; 2] {
        match *self {
            QueueOp::Push { server } | QueueOp::Pop { server } => [server, server],
            QueueOp::Steal { thief, victim } => [thief, victim],
        }
    }
}

/// A bounded multi-server push/pop/steal program over the real
/// [`ServerQueues`] structure.
///
/// Each server owns a `ServerQueues<u32>` (payloads are task ids) and a
/// script of pushes it will perform; a server whose local queues are
/// empty and whose script is exhausted may steal from any server with
/// queued work. Invariants checked on every transition:
///
/// * every queue's internal structure is intact
///   ([`ServerQueues::check_invariants`]);
/// * task conservation — `pushed == executed + queued` at all times;
/// * exactly-once execution — no task id is ever popped twice.
///
/// Terminal states additionally require that every pushed task was
/// executed (nothing stranded, nothing lost).
#[derive(Clone, Debug)]
pub struct QueueMachine {
    queues: Vec<ServerQueues<u32>>,
    scripts: Vec<VecDeque<PushSpec>>,
    executed: Vec<u32>,
    executed_mask: u64,
    pushed: usize,
    double_exec: Option<u32>,
    defect: QueueDefect,
    /// Steals remaining. Two idle servers could otherwise ping-pong a
    /// batch forever, making the schedule tree infinite; the budget (2 per
    /// server) keeps exploration bounded while still covering every
    /// steal/steal-back interleaving of interest.
    steal_budget: u32,
}

impl QueueMachine {
    /// Build a machine with one queue of `array_size` affinity slots per
    /// script entry; `scripts[s]` is the ordered pushes server `s` will
    /// perform.
    pub fn new(array_size: usize, scripts: Vec<Vec<PushSpec>>, defect: QueueDefect) -> Self {
        let n = scripts.len();
        QueueMachine {
            queues: (0..n).map(|_| ServerQueues::new(array_size)).collect(),
            scripts: scripts.into_iter().map(VecDeque::from).collect(),
            executed: Vec::new(),
            executed_mask: 0,
            pushed: 0,
            double_exec: None,
            defect,
            steal_budget: 2 * n as u32,
        }
    }

    /// Task ids in the order they were executed, for post-hoc assertions.
    pub fn executed(&self) -> &[u32] {
        &self.executed
    }

    fn record_exec(&mut self, id: u32) {
        let bit = 1u64 << (id as u64 % 64);
        if self.executed_mask & bit != 0 && self.double_exec.is_none() {
            self.double_exec = Some(id);
        }
        self.executed_mask |= bit;
        self.executed.push(id);
    }
}

impl VirtualProgram for QueueMachine {
    type Op = QueueOp;

    fn enabled(&self) -> Vec<QueueOp> {
        let mut ops = Vec::new();
        for s in 0..self.queues.len() {
            if !self.scripts[s].is_empty() {
                ops.push(QueueOp::Push { server: s });
            }
            if !self.queues[s].is_empty() {
                ops.push(QueueOp::Pop { server: s });
            }
        }
        // A server steals only when it is locally idle (queue empty and
        // script exhausted), mirroring the runtimes' idle-steal loops.
        if self.steal_budget == 0 {
            return ops;
        }
        for thief in 0..self.queues.len() {
            if self.queues[thief].is_empty() && self.scripts[thief].is_empty() {
                for victim in 0..self.queues.len() {
                    if victim != thief && !self.queues[victim].is_empty() {
                        ops.push(QueueOp::Steal { thief, victim });
                    }
                }
            }
        }
        ops
    }

    fn step(&mut self, op: QueueOp) {
        match op {
            QueueOp::Push { server } => {
                let spec = self.scripts[server].pop_front().expect("push enabled");
                match spec.token {
                    Some(tok) => {
                        self.queues[server].push_affinity(tok, spec.kind, spec.id);
                    }
                    None => self.queues[server].push_default(spec.kind, spec.id),
                }
                self.pushed += 1;
            }
            QueueOp::Pop { server } => {
                let (_, id) = self.queues[server].pop_local().expect("pop enabled");
                self.record_exec(id);
            }
            QueueOp::Steal { thief, victim } => {
                self.steal_budget = self.steal_budget.checked_sub(1).expect("steal enabled");
                // Prefer a whole stealable set (avoiding object-affinity
                // work), fall back to the last-resort single steal — the
                // same victim-side policy the runtimes use.
                let mut batch = match self.queues[victim].steal(true) {
                    Some(b) => b,
                    None => self.queues[victim].steal(false).expect("victim non-empty"),
                };
                match self.defect {
                    QueueDefect::None => {}
                    QueueDefect::LoseOnSteal => {
                        batch.tasks.pop();
                    }
                    QueueDefect::DupOnSteal => {
                        if let Some(&first) = batch.tasks.first() {
                            batch.tasks.push(first);
                        }
                    }
                }
                let kind = if batch.token.is_some() {
                    AffinityKind::Task
                } else {
                    AffinityKind::None
                };
                if !batch.tasks.is_empty() {
                    self.queues[thief].push_stolen(batch, kind);
                }
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        for (s, q) in self.queues.iter().enumerate() {
            q.check_invariants()
                .map_err(|e| format!("queue structure (server {s}): {e}"))?;
        }
        if let Some(id) = self.double_exec {
            return Err(format!("exactly-once execution: task {id} executed twice"));
        }
        let queued: usize = self.queues.iter().map(|q| q.len()).sum();
        if queued + self.executed.len() != self.pushed {
            return Err(format!(
                "task conservation: pushed {} != queued {} + executed {}",
                self.pushed,
                queued,
                self.executed.len()
            ));
        }
        Ok(())
    }

    fn check_terminal(&self) -> Result<(), String> {
        let total: usize = self.pushed;
        if self.executed.len() != total {
            return Err(format!(
                "termination: {} of {} pushed tasks executed",
                self.executed.len(),
                total
            ));
        }
        Ok(())
    }

    fn dependent(&self, a: QueueOp, b: QueueOp) -> bool {
        if self.defect != QueueDefect::None {
            // Defective machines get full exploration: pruning assumes
            // the independence argument below, which a seeded defect may
            // invalidate.
            return true;
        }
        a.servers().iter().any(|&s| b.touches(s))
    }

    fn state_key(&self) -> u64 {
        // The Debug rendering covers queue contents (slot order, tokens,
        // payloads), remaining scripts, the execution log and the steal
        // budget — a faithful state fingerprint, and deterministic.
        stable_hash(
            format!(
                "{:?}{:?}{:?}{}",
                self.queues, self.scripts, self.executed, self.steal_budget
            )
            .as_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32, tok: Option<u64>, kind: AffinityKind) -> PushSpec {
        PushSpec {
            id,
            token: tok.map(ObjRef),
            kind,
        }
    }

    fn run_serial(mut m: QueueMachine) -> QueueMachine {
        loop {
            let ops = m.enabled();
            match ops.first() {
                Some(&op) => {
                    m.step(op);
                    m.check().unwrap();
                }
                None => break,
            }
        }
        m.check_terminal().unwrap();
        m
    }

    #[test]
    fn serial_run_executes_everything_exactly_once() {
        let m = QueueMachine::new(
            4,
            vec![
                vec![
                    spec(0, Some(7), AffinityKind::Task),
                    spec(1, Some(7), AffinityKind::Task),
                    spec(2, None, AffinityKind::None),
                ],
                vec![spec(3, Some(9), AffinityKind::Object)],
            ],
            QueueDefect::None,
        );
        let m = run_serial(m);
        assert_eq!(m.executed().len(), 4);
    }

    #[test]
    fn steal_path_conserves_tasks() {
        // Server 1 has no script: it must steal server 0's set.
        let mut m = QueueMachine::new(
            4,
            vec![
                vec![
                    spec(0, Some(7), AffinityKind::Task),
                    spec(1, Some(7), AffinityKind::Task),
                ],
                vec![],
            ],
            QueueDefect::None,
        );
        m.step(QueueOp::Push { server: 0 });
        m.step(QueueOp::Push { server: 0 });
        m.check().unwrap();
        m.step(QueueOp::Steal { thief: 1, victim: 0 });
        m.check().unwrap();
        m.step(QueueOp::Pop { server: 1 });
        m.step(QueueOp::Pop { server: 1 });
        m.check().unwrap();
        m.check_terminal().unwrap();
        assert_eq!(m.executed(), &[0, 1]);
    }

    #[test]
    fn lose_on_steal_defect_breaks_conservation() {
        let mut m = QueueMachine::new(
            4,
            vec![vec![spec(0, Some(7), AffinityKind::Task)], vec![]],
            QueueDefect::LoseOnSteal,
        );
        m.step(QueueOp::Push { server: 0 });
        m.step(QueueOp::Steal { thief: 1, victim: 0 });
        let err = m.check().unwrap_err();
        assert!(err.contains("conservation"), "unexpected error: {err}");
    }

    #[test]
    fn dup_on_steal_defect_breaks_exactly_once() {
        let mut m = QueueMachine::new(
            4,
            vec![vec![spec(0, Some(7), AffinityKind::Task)], vec![]],
            QueueDefect::DupOnSteal,
        );
        m.step(QueueOp::Push { server: 0 });
        m.step(QueueOp::Steal { thief: 1, victim: 0 });
        m.step(QueueOp::Pop { server: 1 });
        m.step(QueueOp::Pop { server: 1 });
        let err = m.check().unwrap_err();
        assert!(err.contains("exactly-once"), "unexpected error: {err}");
    }

    #[test]
    fn state_key_is_deterministic_and_distinguishes_states() {
        let m1 = QueueMachine::new(
            4,
            vec![vec![spec(0, None, AffinityKind::None)]],
            QueueDefect::None,
        );
        let mut m2 = m1.clone();
        assert_eq!(m1.state_key(), m2.state_key());
        m2.step(QueueOp::Push { server: 0 });
        assert_ne!(m1.state_key(), m2.state_key());
    }
}
