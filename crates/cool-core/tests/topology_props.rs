//! Property-based tests for N-level topology trees and the widening steal
//! order: every processor is visited exactly once, nearest domains come
//! first, and 2-level trees reproduce the original local-then-remote scan
//! byte-for-byte.

use cool_core::{ProcId, Topology};
use proptest::prelude::*;

/// Strategy over valid topology trees: level sizes strictly increase and
/// nest (each a multiple of the previous), `nservers` need not be a
/// multiple of the outermost domain (ragged last domains are legal), and
/// `mem_level` points at any level.
fn tree_strategy() -> impl Strategy<Value = Topology> {
    (
        1usize..5,                               // innermost domain size
        prop::collection::vec(2usize..5, 0..3),  // per-level multipliers
        1usize..4,                               // machines per outer domain
        0usize..8,                               // ragged tail processors
        0usize..16,                              // raw mem level
    )
        .prop_map(|(s0, mults, outer_q, ragged, raw_mem)| {
            let mut sizes = vec![s0];
            for m in mults {
                let next = sizes.last().unwrap() * m;
                sizes.push(next);
            }
            let outermost = *sizes.last().unwrap();
            let nservers = (outermost * outer_q + ragged).max(1);
            let mem_level = raw_mem % sizes.len();
            Topology::tree(nservers, &sizes, mem_level)
        })
}

/// The original 2-level scan this crate shipped with: one pass over
/// `(thief + k) % nservers` collecting same-cluster victims, then a second
/// collecting the rest.
fn classic_two_level_order(nservers: usize, ppc: usize, thief: ProcId) -> Vec<ProcId> {
    let cluster = |p: ProcId| p.index() / ppc;
    let mut order = Vec::with_capacity(nservers.saturating_sub(1));
    for pass in 0..2 {
        for k in 1..nservers {
            let v = ProcId((thief.index() + k) % nservers);
            let local = cluster(v) == cluster(thief);
            if (pass == 0) == local {
                order.push(v);
            }
        }
    }
    order
}

proptest! {
    /// Every other processor appears in the steal order exactly once.
    #[test]
    fn steal_order_is_a_permutation(topo in tree_strategy(), thief_raw in 0usize..512) {
        let thief = ProcId(thief_raw % topo.nservers);
        let order = topo.steal_order(thief);
        prop_assert_eq!(order.len(), topo.nservers - 1);
        let mut seen = vec![false; topo.nservers];
        seen[thief.index()] = true;
        for v in &order {
            prop_assert!(!seen[v.index()], "duplicate victim {v:?}");
            seen[v.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Victims are sorted by common-ancestor level: every victim sharing a
    /// nearer domain with the thief precedes every farther one.
    #[test]
    fn steal_order_widens_nearest_domain_first(
        topo in tree_strategy(),
        thief_raw in 0usize..512,
    ) {
        let thief = ProcId(thief_raw % topo.nservers);
        let order = topo.steal_order(thief);
        let mut last_level = 0;
        for v in &order {
            let lvl = topo.common_level(thief, *v);
            prop_assert!(
                lvl >= last_level,
                "victim {v:?} at level {lvl} after level {last_level}"
            );
            last_level = lvl;
        }
    }

    /// Within one level bucket, victims keep the circular
    /// `(thief + k) % nservers` scan order — the tie-break the 2-level
    /// equivalence below depends on.
    #[test]
    fn steal_order_keeps_scan_order_within_a_level(
        topo in tree_strategy(),
        thief_raw in 0usize..512,
    ) {
        let thief = ProcId(thief_raw % topo.nservers);
        let n = topo.nservers;
        let scan_pos = |v: ProcId| (v.index() + n - thief.index()) % n;
        let order = topo.steal_order(thief);
        for w in order.windows(2) {
            if topo.common_level(thief, w[0]) == topo.common_level(thief, w[1]) {
                prop_assert!(scan_pos(w[0]) < scan_pos(w[1]), "{w:?}");
            }
        }
    }

    /// 2-level trees (the classic cluster machine) reproduce the original
    /// local-then-remote scan exactly, for every thief.
    #[test]
    fn two_level_trees_match_the_classic_order(
        nservers in 1usize..48,
        ppc in 1usize..12,
    ) {
        let topo = Topology::clustered(nservers, ppc);
        for t in 0..nservers {
            let thief = ProcId(t);
            prop_assert_eq!(
                topo.steal_order(thief),
                classic_two_level_order(nservers, ppc, thief),
                "thief {}", t
            );
        }
    }

    /// The precomputed per-thief table is exactly the per-call order, and
    /// carries the same levels `common_level` reports.
    #[test]
    fn victim_orders_table_matches_per_call_orders(topo in tree_strategy()) {
        let table = topo.victim_orders();
        prop_assert_eq!(table.len_per_thief(), topo.nservers - 1);
        for t in 0..topo.nservers {
            let thief = ProcId(t);
            let fresh = topo.steal_order(thief);
            let cached = table.order(thief);
            prop_assert_eq!(cached.len(), fresh.len());
            for (i, &(v, lvl)) in cached.iter().enumerate() {
                prop_assert_eq!(v, fresh[i]);
                prop_assert_eq!(lvl as usize, topo.common_level(thief, v));
            }
        }
    }
}
