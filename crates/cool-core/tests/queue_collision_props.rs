//! Property-based tests for affinity-slot *collisions*: tiny slot arrays
//! force many tokens to hash to the same slot, the configuration where the
//! old `push_stolen` appended behind a collided set and stolen sets could
//! interleave or lose their labels.
//!
//! The model: a "set" is the tasks sharing one token, wherever they sit.
//! Steal/re-insert round trips must (a) move exactly one whole set with its
//! own token, (b) keep the set contiguous — and at the *front* of service
//! order at the thief, (c) preserve FIFO order within every set, and
//! (d) keep `len` and the structural invariants exact on both sides.

use cool_core::affinity::AffinityKind;
use cool_core::ids::ObjRef;
use cool_core::queues::ServerQueues;
use proptest::prelude::*;

/// Payload: (token tag, spawn sequence number).
type Tagged = (u8, u64);

fn check(q: &ServerQueues<Tagged>) -> Result<(), TestCaseError> {
    q.check_invariants().map_err(TestCaseError::fail)
}

proptest! {
    /// Whole-set steals out of colliding slots: every batch is one complete
    /// set carrying its own token; re-inserting it at a thief with an
    /// equally tiny (colliding) array keeps it contiguous at the head of
    /// service order; per-set FIFO survives the full round trip.
    #[test]
    fn whole_set_round_trips_preserve_contiguity_and_fifo(
        tokens in prop::collection::vec(0u8..6, 1..80),
        victim_slots in 1usize..4,
        thief_slots in 1usize..4,
    ) {
        let mut victim: ServerQueues<Tagged> = ServerQueues::new(victim_slots);
        let mut thief: ServerQueues<Tagged> = ServerQueues::new(thief_slots);
        let total = tokens.len();
        for (seq, &tok) in tokens.iter().enumerate() {
            victim.push_affinity(ObjRef(tok as u64), AffinityKind::Task, (tok, seq as u64));
        }
        check(&victim)?;

        // Steal everything across, one set per round.
        while let Some(batch) = victim.steal_with(true, true) {
            let tok = batch.token;
            prop_assert!(tok.is_some(), "Task-kind sets always steal whole");
            let tok = tok.unwrap();
            let n = batch.tasks.len();
            prop_assert!(n >= 1);
            // (a) the batch is labelled with its set's token, and the victim
            // retains nothing of that set (the steal took all of it).
            for &(tag, _) in &batch.tasks {
                prop_assert_eq!(ObjRef(tag as u64), tok, "batch holds a foreign task");
            }
            prop_assert!(
                !victim.token_order().contains(&Some(tok)),
                "steal left part of set {tok:?} behind"
            );
            // (c) FIFO inside the stolen batch.
            for w in batch.tasks.windows(2) {
                prop_assert!(w[0].1 < w[1].1, "steal reordered a set");
            }
            thief.push_stolen(batch, AffinityKind::Task);
            // (b) the re-inserted set is contiguous at the FRONT of the
            // thief's service order, even when its slot already holds
            // collided sets.
            let order = thief.token_order();
            prop_assert!(
                order[..n].iter().all(|t| *t == Some(tok)),
                "stolen set not contiguous at head: {order:?}"
            );
            check(&victim)?;
            check(&thief)?;
            // (d) nothing lost or duplicated.
            prop_assert_eq!(victim.len() + thief.len(), total);
        }
        prop_assert!(victim.is_empty());

        // Drain the thief: per-set FIFO must have survived the round trip,
        // and every pop reports the token its set was pushed under.
        let mut last_seen: std::collections::HashMap<u8, u64> = Default::default();
        let mut drained = 0usize;
        while let Some(popped) = thief.pop_local_info() {
            let (tag, seq) = popped.payload;
            prop_assert_eq!(
                popped.token, Some(ObjRef(tag as u64)),
                "pop reported the wrong token for its entry"
            );
            if let Some(&prev) = last_seen.get(&tag) {
                prop_assert!(seq > prev, "set {tag}: {seq} popped after {prev}");
            }
            last_seen.insert(tag, seq);
            drained += 1;
        }
        prop_assert_eq!(drained, total);
        prop_assert!(thief.is_empty());
    }

    /// Mixed Task/Object sets under collisions: an Object set sharing a slot
    /// must neither pin a stealable Task set (classification is per set, not
    /// per slot) nor leak into a stolen batch; invariants and conservation
    /// hold under any interleaving of steals, re-inserts and pops.
    #[test]
    fn collided_mixed_kinds_conserve_and_label_correctly(
        pushes in prop::collection::vec((0u8..6, any::<bool>()), 1..80),
        array_size in 1usize..4,
        polite in any::<bool>(),
        whole_sets in any::<bool>(),
    ) {
        let mut victim: ServerQueues<Tagged> = ServerQueues::new(array_size);
        let mut thief: ServerQueues<Tagged> = ServerQueues::new(array_size);
        let total = pushes.len();
        let mut object_tokens = std::collections::HashSet::new();
        for (seq, &(tok, is_obj)) in pushes.iter().enumerate() {
            let kind = if is_obj { AffinityKind::Object } else { AffinityKind::Task };
            if is_obj {
                object_tokens.insert(tok);
            }
            victim.push_affinity(ObjRef(tok as u64), kind, (tok, seq as u64));
        }
        check(&victim)?;

        let mut produced = std::collections::HashSet::new();
        while let Some(batch) = victim.steal_with(polite, whole_sets) {
            match batch.token {
                Some(tok) => {
                    // A labelled batch is one whole set of one token — and a
                    // polite steal never takes a set that contains Object-
                    // affinity work.
                    for &(tag, _) in &batch.tasks {
                        prop_assert_eq!(ObjRef(tag as u64), tok);
                        if polite {
                            prop_assert!(
                                !object_tokens.contains(&tag),
                                "polite steal moved object set {tag}"
                            );
                        }
                    }
                    prop_assert!(!victim.token_order().contains(&Some(tok)));
                }
                None => prop_assert_eq!(batch.tasks.len(), 1, "unlabelled steals are singles"),
            }
            let kind = if batch.token.is_some() {
                AffinityKind::Task
            } else {
                AffinityKind::None
            };
            for &(_, seq) in &batch.tasks {
                prop_assert!(produced.insert(seq), "task {seq} stolen twice");
            }
            thief.push_stolen(batch, kind);
            check(&victim)?;
            check(&thief)?;
            prop_assert_eq!(victim.len() + thief.len(), total);
        }

        // Conservation: both queues drain to exactly the pushed multiset.
        let mut seen = std::collections::HashSet::new();
        while let Some((_, (_, seq))) = victim.pop_local() {
            prop_assert!(seen.insert(seq));
        }
        while let Some((_, (_, seq))) = thief.pop_local() {
            prop_assert!(seen.insert(seq));
        }
        prop_assert_eq!(seen.len(), total);
        prop_assert!(victim.is_empty() && thief.is_empty());
    }
}
