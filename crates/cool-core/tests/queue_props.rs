//! Property-based tests for the per-server task-queue structure.
//!
//! The model: the queue structure is a multiset of tasks with (a) FIFO order
//! within an affinity set, (b) back-to-back service of the head set, and
//! (c) conservation — nothing is lost or duplicated by any interleaving of
//! push / pop / steal operations.

use cool_core::affinity::AffinityKind;
use cool_core::ids::ObjRef;
use cool_core::queues::ServerQueues;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    PushAffinity { token: u8, kind_obj: bool },
    PushDefault,
    PopLocal,
    Steal { polite: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, any::<bool>()).prop_map(|(token, kind_obj)| Op::PushAffinity { token, kind_obj }),
        Just(Op::PushDefault),
        Just(Op::PopLocal),
        any::<bool>().prop_map(|polite| Op::Steal { polite }),
    ]
}

proptest! {
    /// Conservation: every pushed task is eventually produced exactly once by
    /// pop_local or steal, and the internal invariants hold after every op.
    #[test]
    fn conservation_and_invariants(
        ops in prop::collection::vec(op_strategy(), 1..200),
        array_size in 1usize..16,
    ) {
        let mut q: ServerQueues<u64> = ServerQueues::new(array_size);
        let mut next_id = 0u64;
        let mut pushed = std::collections::HashSet::new();
        let mut produced = std::collections::HashSet::new();

        for op in ops {
            match op {
                Op::PushAffinity { token, kind_obj } => {
                    let kind = if kind_obj { AffinityKind::Object } else { AffinityKind::Task };
                    q.push_affinity(ObjRef(token as u64), kind, next_id);
                    pushed.insert(next_id);
                    next_id += 1;
                }
                Op::PushDefault => {
                    q.push_default(AffinityKind::None, next_id);
                    pushed.insert(next_id);
                    next_id += 1;
                }
                Op::PopLocal => {
                    if let Some((_, t)) = q.pop_local() {
                        prop_assert!(produced.insert(t), "task {t} produced twice");
                    }
                }
                Op::Steal { polite } => {
                    if let Some(batch) = q.steal(polite) {
                        prop_assert!(!batch.tasks.is_empty());
                        for t in batch.tasks {
                            prop_assert!(produced.insert(t), "task {t} produced twice");
                        }
                    }
                }
            }
            q.check_invariants().map_err(TestCaseError::fail)?;
        }

        // Drain the remainder; everything pushed must come out exactly once.
        while let Some((_, t)) = q.pop_local() {
            prop_assert!(produced.insert(t));
        }
        prop_assert_eq!(produced, pushed);
        prop_assert!(q.is_empty());
    }

    /// FIFO per affinity set: popping locally yields each set's tasks in
    /// insertion order (sets may interleave only at set boundaries).
    #[test]
    fn fifo_within_each_set(
        tokens in prop::collection::vec(0u8..8, 1..100),
        array_size in 8usize..64,
    ) {
        let mut q: ServerQueues<(u8, u64)> = ServerQueues::new(array_size);
        for (seq, &tok) in tokens.iter().enumerate() {
            q.push_affinity(ObjRef(tok as u64), AffinityKind::Task, (tok, seq as u64));
        }
        let mut last_seen: std::collections::HashMap<u8, u64> = Default::default();
        while let Some((_, (tok, s))) = q.pop_local() {
            if let Some(&prev) = last_seen.get(&tok) {
                prop_assert!(s > prev, "set {tok}: {s} after {prev}");
            }
            last_seen.insert(tok, s);
        }
    }

    /// Polite stealing never removes an Object-affinity task.
    #[test]
    fn polite_steal_never_moves_object_tasks(
        pushes in prop::collection::vec((0u8..8, any::<bool>()), 1..100),
    ) {
        let mut q: ServerQueues<bool> = ServerQueues::new(16);
        for (tok, is_obj) in pushes {
            let kind = if is_obj { AffinityKind::Object } else { AffinityKind::Task };
            // Payload records whether this task is an Object-affinity task.
            q.push_affinity(ObjRef(tok as u64), kind, is_obj);
        }
        while let Some(batch) = q.steal(true) {
            for is_obj in batch.tasks {
                prop_assert!(!is_obj, "polite steal moved an object-affinity task");
            }
        }
    }
}
