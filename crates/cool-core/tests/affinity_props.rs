//! Property-based tests for affinity resolution: the scheduling laws of
//! Table 1 hold for every combination of hints, server counts and homes.

use cool_core::affinity::{hash_token, resolve_multi_object};
use cool_core::{AffinityKind, AffinitySpec, ObjRef, ProcId};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = AffinitySpec> {
    (
        prop::option::of(0u64..64),
        prop::option::of(0u64..64),
        prop::option::of(0usize..256),
    )
        .prop_map(|(obj, task, processor)| AffinitySpec {
            object: obj.map(ObjRef),
            task: task.map(ObjRef),
            processor,
        })
}

proptest! {
    /// The resolved server is always a valid server index.
    #[test]
    fn resolve_server_is_in_range(
        spec in spec_strategy(),
        nservers in 1usize..64,
        creator in 0usize..64,
        home_stride in 1u64..13,
    ) {
        let home = |o: ObjRef| ProcId(((o.0 * home_stride) % 64) as usize);
        let s = spec.resolve_server(nservers, ProcId(creator % nservers), home);
        prop_assert!(s.index() < nservers);
    }

    /// PROCESSOR dominates every other hint.
    #[test]
    fn processor_hint_dominates(
        obj in prop::option::of(0u64..64),
        task in prop::option::of(0u64..64),
        n in 0usize..512,
        nservers in 1usize..64,
    ) {
        let spec = AffinitySpec {
            object: obj.map(ObjRef),
            task: task.map(ObjRef),
            processor: Some(n),
        };
        let s = spec.resolve_server(nservers, ProcId(0), |o| ProcId(o.0 as usize % nservers));
        prop_assert_eq!(s, ProcId(n % nservers));
    }

    /// OBJECT affinity follows the home map exactly (modulo servers).
    #[test]
    fn object_hint_follows_home(
        obj in 0u64..1024,
        task in prop::option::of(0u64..64),
        nservers in 1usize..64,
        home_mul in 1u64..31,
    ) {
        let spec = AffinitySpec {
            object: Some(ObjRef(obj)),
            task: task.map(ObjRef),
            processor: None,
        };
        let home = |o: ObjRef| ProcId(((o.0 * home_mul) % 97) as usize);
        let s = spec.resolve_server(nservers, ProcId(0), home);
        prop_assert_eq!(s.index(), ((obj * home_mul) % 97) as usize % nservers);
    }

    /// The queue token prefers TASK over OBJECT, and exists iff either does.
    #[test]
    fn queue_token_law(spec in spec_strategy()) {
        match (spec.task, spec.object) {
            (Some(t), _) => prop_assert_eq!(spec.queue_token(), Some(t)),
            (None, Some(o)) => prop_assert_eq!(spec.queue_token(), Some(o)),
            (None, None) => prop_assert_eq!(spec.queue_token(), None),
        }
    }

    /// Steal classification: Object > Task > Processor > None precedence.
    #[test]
    fn kind_precedence(spec in spec_strategy()) {
        let k = spec.kind();
        if spec.object.is_some() {
            prop_assert_eq!(k, AffinityKind::Object);
        } else if spec.task.is_some() {
            prop_assert_eq!(k, AffinityKind::Task);
        } else if spec.processor.is_some() {
            prop_assert_eq!(k, AffinityKind::Processor);
        } else {
            prop_assert_eq!(k, AffinityKind::None);
        }
    }

    /// hash_token is a pure function and never degenerates: any 64 tokens in
    /// arithmetic progression land in a healthy number of distinct slots of
    /// a 64-slot array (adversarial strides may alias some slots, but the
    /// multiplier must keep well clear of the single-slot collapse a plain
    /// modulo would suffer for stride = 64).
    #[test]
    fn hash_token_is_stable_and_spreading(base in 0u64..1_000_000, stride in 1u64..4096) {
        let mut slots = std::collections::HashSet::new();
        for i in 0..64u64 {
            let tok = ObjRef(base + i * stride);
            prop_assert_eq!(hash_token(tok), hash_token(tok));
            slots.insert(hash_token(tok) % 64);
        }
        prop_assert!(slots.len() >= 8, "only {} slots used", slots.len());
    }

    /// Multi-object resolution: the chosen server owns at least as many
    /// bytes as any other candidate, and the prefetch list is exactly the
    /// objects homed elsewhere.
    #[test]
    fn multi_object_law(
        objs in prop::collection::vec((0u64..32, 1u64..10_000), 1..8),
        nhomes in 1u64..8,
    ) {
        let pairs: Vec<(ObjRef, u64)> = objs.iter().map(|&(o, s)| (ObjRef(o), s)).collect();
        let home = |o: ObjRef| ProcId((o.0 % nhomes) as usize);
        let (best, prefetch) = resolve_multi_object(&pairs, home).unwrap();
        // Weight owned by the chosen server.
        let weight = |p: ProcId| -> u64 {
            pairs.iter().filter(|&&(o, _)| home(o) == p).map(|&(_, s)| s).sum()
        };
        let best_w = weight(best);
        for h in 0..nhomes {
            prop_assert!(weight(ProcId(h as usize)) <= best_w || weight(ProcId(h as usize)) == 0 || best_w >= weight(ProcId(h as usize)),
                "server {h} owns more than the chosen one");
            prop_assert!(best_w >= weight(ProcId(h as usize)));
        }
        for &(o, _) in &pairs {
            let remote = home(o) != best;
            prop_assert_eq!(remote, prefetch.contains(&o));
        }
    }
}
