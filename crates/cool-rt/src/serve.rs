//! cool-serve: a long-running work server over per-domain worker pools.
//!
//! The batch runtime ([`Runtime`](crate::Runtime)) answers "run these tasks
//! and wait"; this module answers the production-shape question: what does
//! the COOL scheduling model look like *as a service* that admits a sustained
//! request stream and must survive overload and faults? The building blocks:
//!
//! * **affinity-keyed sharding** — every [`Request`] carries a `shard` key;
//!   requests with the same key land on the same domain pool
//!   (`shard % domains`), the service-layer analogue of object affinity:
//!   state a shard touches stays hot in one pool's workers;
//! * **admission control + backpressure** — each domain has a bounded intake
//!   queue (`queue_capacity` waiting requests) and an estimated-service-time
//!   budget (`budget_units`); a request that would exceed either is *shed*
//!   at submit time with a typed [`Backpressure`] describing the pressure,
//!   so the submitting side can slow down instead of piling on;
//! * **retries with deadlines** — a failed attempt (injected fault, body
//!   error, or panic) is retried after a deterministic
//!   jittered-exponential backoff ([`retry_backoff`]) up to `max_attempts`,
//!   unless the per-request deadline would pass first; the request id is an
//!   idempotency key, so a retried request is re-run from its own queue slot
//!   and a duplicate *submission* of the same id is refused outright;
//! * **graceful degradation** — [`WorkServer::drain`] stops admission
//!   (new submits get [`SubmitError::Draining`]) and completes everything
//!   already accepted; a stalled pool (a stuck body, with queued work behind
//!   it) trips a watchdog that records a diagnosable [`StallDump`] — live
//!   queue depths plus the in-flight request ids — and starts a bounded
//!   number of replacement workers so the domain keeps serving;
//! * **deterministic chaos** — a [`FaultPlan`]'s service faults are keyed by
//!   request id (transient failure, intake stall) or shard domain (slow
//!   worker pool), never by arrival order, so a fixed seed injects the same
//!   event set under any submission interleaving.
//!
//! Everything the server does is observable: admissions, sheds, retries and
//! completions flow into the shared [`ObsEvent`] stream (drained with
//! [`WorkServer::take_obs`]), so a service run exports to Perfetto exactly
//! like a batch run. With [`ServeConfig::with_events`] the request
//! lifecycle is additionally recorded as [`RtEvent`]s
//! (admit/attempt/outcome/drain plus [`Request::with_accesses`]-declared
//! byte ranges), emitted under the locks that create the corresponding
//! happens-before edges so `cool-analyze`'s vector-clock race detector can
//! consume the stream in one forward pass.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use cool_core::obs::{ObsEvent, ObsRecorder, ObsTrace};
use cool_core::{AccessKind, FaultPlan, ObjRef, ProcId, RtEvent, SchedStats, TaskUid};

use crate::watchdog::StallDump;

/// Requests share the task-uid namespace with batch tasks; serve-layer
/// [`RtEvent`]s attribute request work to `TaskUid(REQ_UID_BASE + id)` so
/// request ids can never collide with task uids (or the root).
pub const REQ_UID_BASE: u64 = 1 << 48;

/// The [`ObjRef`] token carrying a domain pool's queue-channel
/// happens-before edges in the recorded [`RtEvent`] stream.
pub fn domain_token(domain: usize) -> ObjRef {
    ObjRef(0xC001_0000_0000_0000 | domain as u64)
}

/// The request-uid for an application request id (see [`REQ_UID_BASE`]).
pub fn req_uid(id: u64) -> TaskUid {
    TaskUid(REQ_UID_BASE + id)
}

/// Configuration for a [`WorkServer`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Shard domains (each owns one worker pool and one intake queue).
    pub domains: usize,
    /// Worker threads per domain pool.
    pub workers_per_domain: usize,
    /// Max requests *waiting* (ready + backed off) per domain; one more is
    /// shed.
    pub queue_capacity: usize,
    /// Max estimated service units queued per domain; a request whose cost
    /// would exceed the budget is shed.
    pub budget_units: u64,
    /// Max attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff before the first retry (doubles per attempt).
    pub base_backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: Duration,
    /// Per-request deadline, measured from admission. A request that cannot
    /// retry (or start) before its deadline is terminally timed out.
    pub deadline: Duration,
    /// If set, a watchdog thread restarts stalled pools and records
    /// [`StallDump`]s. Pick an interval longer than the longest healthy
    /// request body.
    pub stall_timeout: Option<Duration>,
    /// Max replacement workers the watchdog may start, across all domains.
    pub max_pool_restarts: usize,
    /// Record [`ObsEvent`]s (admissions, sheds, retries, completions, and
    /// per-attempt task slices), drained with [`WorkServer::take_obs`].
    pub record_trace: bool,
    /// Record [`RtEvent`]s for the request lifecycle (admit/attempt/outcome/
    /// drain plus declared accesses), drained with
    /// [`WorkServer::take_events`] and fed to `cool-analyze`'s race
    /// detector. Events are emitted under the same locks that create the
    /// real happens-before edges, so the stream order is consistent with
    /// them.
    pub record_events: bool,
}

impl ServeConfig {
    /// Defaults for `domains` pools of `workers_per_domain` workers.
    pub fn new(domains: usize, workers_per_domain: usize) -> Self {
        ServeConfig {
            domains,
            workers_per_domain,
            queue_capacity: 64,
            budget_units: u64::MAX,
            max_attempts: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            deadline: Duration::from_secs(5),
            stall_timeout: None,
            max_pool_restarts: 4,
            record_trace: false,
            record_events: false,
        }
    }

    /// Replace the per-domain waiting-queue capacity.
    pub fn with_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Bound the estimated service units queued per domain.
    pub fn with_budget(mut self, units: u64) -> Self {
        self.budget_units = units;
        self
    }

    /// Replace the retry policy.
    pub fn with_retry(mut self, max_attempts: u32, base: Duration, max: Duration) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        self.max_attempts = max_attempts;
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Replace the per-request deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enable the stall watchdog (see [`ServeConfig::stall_timeout`]).
    pub fn with_stall_timeout(mut self, interval: Duration) -> Self {
        self.stall_timeout = Some(interval);
        self
    }

    /// Bound how many replacement workers the watchdog may start.
    pub fn with_max_pool_restarts(mut self, n: usize) -> Self {
        self.max_pool_restarts = n;
        self
    }

    /// Enable observability tracing.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable [`RtEvent`] recording (see [`ServeConfig::record_events`]).
    pub fn with_events(mut self) -> Self {
        self.record_events = true;
        self
    }
}

/// A request body: called with the attempt number (0 = first), returns
/// `Err` to request a retry. Shared (`Arc`) so a retried attempt re-runs the
/// same closure without cloning application state.
pub type ServeBody = Arc<dyn Fn(u32) -> Result<(), String> + Send + Sync>;

/// One unit of work submitted to a [`WorkServer`].
pub struct Request {
    /// Idempotency key: a second submission of the same id is refused, and
    /// retries of an admitted id never double-run a successful body.
    pub id: u64,
    /// Affinity key: requests with equal `shard % domains` share a pool.
    pub shard: u64,
    /// Estimated service units (whatever unit the budget is expressed in).
    pub cost: u64,
    body: ServeBody,
    /// Byte ranges the body touches, declared for event recording:
    /// `(addr, len, kind)` triples mirrored as [`RtEvent::Access`]es on
    /// every body-running attempt.
    accesses: Arc<Vec<(u64, u64, AccessKind)>>,
}

impl Request {
    /// A request with the given identity, shard key and cost estimate.
    pub fn new(
        id: u64,
        shard: u64,
        cost: u64,
        body: impl Fn(u32) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        Request {
            id,
            shard,
            cost,
            body: Arc::new(body),
            accesses: Arc::new(Vec::new()),
        }
    }

    /// Declare the byte ranges the body touches, for [`RtEvent`] recording
    /// (no effect unless the server was built with
    /// [`ServeConfig::with_events`]).
    pub fn with_accesses(mut self, accesses: Vec<(u64, u64, AccessKind)>) -> Self {
        self.accesses = Arc::new(accesses);
        self
    }
}

/// Why admission shed a request, reported to the submitting side so it can
/// back off instead of piling on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// Domain the request hashed to.
    pub domain: usize,
    /// Requests waiting on that domain at the shed decision.
    pub depth: usize,
    /// Estimated service units waiting on that domain.
    pub queued_units: u64,
}

/// Typed submission failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control refused the request; the payload says how loaded
    /// the target domain was.
    Shed(Backpressure),
    /// The server is draining (or shut down) and admits nothing new.
    Draining,
    /// A request with this id was already admitted (idempotency refusal).
    Duplicate(u64),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Shed(bp) => write!(
                f,
                "shed: domain {} at depth {} ({} units queued)",
                bp.domain, bp.depth, bp.queued_units
            ),
            SubmitError::Draining => write!(f, "server is draining"),
            SubmitError::Duplicate(id) => write!(f, "request {id} was already admitted"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Terminal state of an admitted request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The body returned `Ok` on some attempt.
    Completed {
        /// Attempts consumed (1 = first attempt succeeded).
        attempts: u32,
        /// Admission-to-completion latency.
        latency: Duration,
    },
    /// Every allowed attempt failed.
    Failed {
        /// Attempts consumed.
        attempts: u32,
        /// The last attempt's error.
        error: String,
    },
    /// The deadline passed before the request could start or retry.
    TimedOut {
        /// Attempts consumed before the deadline cut the request off.
        attempts: u32,
    },
}

/// Everything the server knows about one admitted request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// Terminal state; `None` while the request is still in flight (a
    /// `None` after [`WorkServer::drain`] means the request was *lost* —
    /// the invariant the chaos tests assert never happens).
    pub outcome: Option<Outcome>,
    /// Times the body was invoked (any result).
    pub body_runs: u32,
    /// Times the body returned `Ok` — the never-double-execute invariant is
    /// `body_successes <= 1`.
    pub body_successes: u32,
}

impl RequestRecord {
    fn admitted() -> Self {
        RequestRecord {
            outcome: None,
            body_runs: 0,
            body_successes: 0,
        }
    }
}

/// Service counters since startup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submit calls that reached admission (sheds and duplicates included;
    /// drain refusals are not).
    pub submitted: u64,
    /// Requests admitted into a queue.
    pub admitted: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Submissions refused because the id was already admitted.
    pub duplicates: u64,
    /// Requests that reached `Outcome::Completed`.
    pub completed: u64,
    /// Requests that reached `Outcome::Failed`.
    pub failed: u64,
    /// Requests that reached `Outcome::TimedOut`.
    pub timed_out: u64,
    /// Retry attempts scheduled (with backoff) after failed attempts.
    pub retries: u64,
    /// Attempts started (body runs plus injected pre-body failures).
    pub attempts: u64,
    /// FaultPlan-injected transient request failures consumed.
    pub injected_failures: u64,
    /// FaultPlan-injected intake stalls consumed.
    pub intake_stalls: u64,
    /// Replacement workers started by the watchdog.
    pub pool_restarts: u64,
}

/// A queued attempt of an admitted request.
struct Job {
    id: u64,
    cost: u64,
    /// Next attempt to run (0-based).
    attempt: u32,
    admitted: Instant,
    deadline: Instant,
    body: ServeBody,
    accesses: Arc<Vec<(u64, u64, AccessKind)>>,
}

/// One domain's intake: ready work plus backed-off retries.
struct DomainQueue {
    ready: VecDeque<Job>,
    /// Retries waiting out their backoff: `(not_before, job)`.
    deferred: Vec<(Instant, Job)>,
    /// Estimated service units across `ready` + `deferred`.
    queued_units: u64,
}

impl DomainQueue {
    fn depth(&self) -> usize {
        self.ready.len() + self.deferred.len()
    }
}

/// One shard domain: its queue, wakeup signal and liveness beacons.
struct DomainPool {
    q: Mutex<DomainQueue>,
    wake: Condvar,
    /// Jobs currently inside `run_job` on this domain.
    executing: AtomicUsize,
    /// ns-since-epoch of the last job start/finish on this domain — the
    /// liveness signal the watchdog keys off.
    last_beat: AtomicU64,
}

struct ServeInner {
    cfg: ServeConfig,
    pools: Vec<DomainPool>,
    /// Idempotency registry: every id ever *admitted* (shed ids are not
    /// recorded, so a shed request may be resubmitted under the same id).
    seen: Mutex<HashSet<u64>>,
    /// Per-request records, keyed by id (BTreeMap for deterministic
    /// iteration in reports).
    records: Mutex<BTreeMap<u64, RequestRecord>>,
    /// Request ids currently inside a body (for stall dumps).
    in_flight: Mutex<HashSet<u64>>,
    /// Admitted requests not yet terminal.
    outstanding: AtomicUsize,
    drain_lock: Mutex<()>,
    drained: Condvar,
    draining: AtomicBool,
    shutdown: AtomicBool,
    faults: Option<FaultPlan>,
    stats: Mutex<ServeStats>,
    dumps: Mutex<Vec<StallDump>>,
    /// Replacement workers started by the watchdog (joined at drop).
    extra_workers: Mutex<Vec<JoinHandle<()>>>,
    obs: Option<ObsRecorder>,
    /// Serve-lifecycle [`RtEvent`] stream (admit/attempt/outcome/drain and
    /// declared accesses); `None` unless `record_events` is set. Appends
    /// happen under the locks that create the corresponding happens-before
    /// edges, so the buffer order is analyzer-consistent.
    events: Option<Mutex<Vec<RtEvent>>>,
    epoch: Instant,
    /// Per-attempt uid source for observability task slices.
    next_uid: AtomicU64,
}

impl ServeInner {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn obs_emit(&self, ring: usize, ev: ObsEvent) {
        if let Some(obs) = &self.obs {
            obs.record(ring, ev);
        }
    }

    /// Milliseconds since the server started (the time base of serve
    /// [`RtEvent`]s).
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn rt_emit(&self, ev: RtEvent) {
        if let Some(events) = &self.events {
            events.lock().push(ev);
        }
    }

    /// The intake path records on the last ring (workers own the others).
    fn intake_ring(&self) -> usize {
        self.cfg.domains * self.cfg.workers_per_domain + self.cfg.max_pool_restarts
    }

    fn beat(&self, domain: usize) {
        self.pools[domain].last_beat.store(self.now_ns(), Ordering::SeqCst);
    }

    /// Record a terminal outcome and release the request's outstanding slot.
    fn terminal(&self, worker: usize, domain: usize, job: &Job, attempts: u32, outcome: Outcome) {
        let ok = matches!(outcome, Outcome::Completed { .. });
        {
            let mut st = self.stats.lock();
            match outcome {
                Outcome::Completed { .. } => st.completed += 1,
                Outcome::Failed { .. } => st.failed += 1,
                Outcome::TimedOut { .. } => st.timed_out += 1,
            }
        }
        self.records
            .lock()
            .get_mut(&job.id)
            .expect("terminal for unadmitted request")
            .outcome = Some(outcome);
        if self.obs.is_some() {
            self.obs_emit(
                worker,
                ObsEvent::RequestDone {
                    req: job.id,
                    attempts,
                    ok,
                    latency_ns: job.admitted.elapsed().as_nanos() as u64,
                    domain,
                    time: self.now_ns(),
                },
            );
        }
        // Emitted before the outstanding decrement so the drain barrier
        // event always follows every terminal outcome in the stream.
        self.rt_emit(RtEvent::ReqOutcome {
            req: req_uid(job.id),
            attempt: attempts.max(1),
            ok,
            domain: domain_token(domain),
            proc: ProcId(worker),
            time: self.now_ms(),
        });
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.drain_lock.lock();
            self.drained.notify_all();
        }
    }

    /// Snapshot for a stall post-mortem: per-domain waiting depths plus the
    /// request ids currently stuck inside bodies.
    fn dump(&self) -> StallDump {
        let mut in_flight: Vec<u64> = self.in_flight.lock().iter().copied().collect();
        in_flight.sort_unstable();
        let st = *self.stats.lock();
        let stats = SchedStats {
            spawned: st.admitted,
            executed: st.attempts,
            ..SchedStats::default()
        };
        StallDump {
            queue_depths: self.pools.iter().map(|p| p.q.lock().depth()).collect(),
            held_mutexes: Vec::new(),
            stats,
            open_scopes: 0,
            tasks_executed: st.attempts,
            in_flight,
        }
    }
}

/// Deterministic jittered exponential backoff for retry `attempt` (1-based)
/// of request `id`: the exponential level is `base * 2^(attempt-1)` capped
/// at `max`, and the jitter draws uniformly from `[level/2, level]` using an
/// xorshift* stream seeded by `(id, attempt)` — so the same request retries
/// on the same schedule in every run, but distinct requests decorrelate
/// instead of thundering back together.
pub fn retry_backoff(id: u64, attempt: u32, base: Duration, max: Duration) -> Duration {
    assert!(attempt >= 1, "attempt is 1-based");
    let base = base.max(Duration::from_micros(1));
    let max = max.max(base);
    let shift = (attempt - 1).min(20);
    let level = base.checked_mul(1u32 << shift).unwrap_or(max).min(max);
    let mut state = (id ^ 0x9E37_79B9_7F4A_7C15).wrapping_add(u64::from(attempt) << 32) | 1;
    for _ in 0..3 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
    }
    let half = (level.as_nanos() as u64) / 2;
    let jitter = if half == 0 { 0 } else { state % (half + 1) };
    Duration::from_nanos(half + jitter)
}

/// The long-running work server. Admission happens on the submitting
/// thread; execution on `domains * workers_per_domain` pool workers (plus
/// any watchdog replacements). Dropping the server shuts the pools down;
/// call [`WorkServer::drain`] first for a graceful stop.
pub struct WorkServer {
    inner: Arc<ServeInner>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl WorkServer {
    /// Start a server with no fault injection.
    pub fn new(cfg: ServeConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Start a server whose service layer is perturbed by `plan` (one plan
    /// unit = one microsecond). Injected request failures are transient and
    /// keyed by request id; see the module docs.
    pub fn with_faults(cfg: ServeConfig, plan: FaultPlan) -> Self {
        Self::build(cfg, Some(plan))
    }

    fn build(cfg: ServeConfig, faults: Option<FaultPlan>) -> Self {
        assert!(cfg.domains >= 1, "at least one domain");
        assert!(cfg.workers_per_domain >= 1, "at least one worker per domain");
        assert!(cfg.queue_capacity >= 1, "queue capacity must be positive");
        let nrings = cfg.domains * cfg.workers_per_domain + cfg.max_pool_restarts + 1;
        let inner = Arc::new(ServeInner {
            pools: (0..cfg.domains)
                .map(|_| DomainPool {
                    q: Mutex::new(DomainQueue {
                        ready: VecDeque::new(),
                        deferred: Vec::new(),
                        queued_units: 0,
                    }),
                    wake: Condvar::new(),
                    executing: AtomicUsize::new(0),
                    last_beat: AtomicU64::new(0),
                })
                .collect(),
            seen: Mutex::new(HashSet::new()),
            records: Mutex::new(BTreeMap::new()),
            in_flight: Mutex::new(HashSet::new()),
            outstanding: AtomicUsize::new(0),
            drain_lock: Mutex::new(()),
            drained: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            faults,
            stats: Mutex::new(ServeStats::default()),
            dumps: Mutex::new(Vec::new()),
            extra_workers: Mutex::new(Vec::new()),
            obs: cfg.record_trace.then(|| ObsRecorder::with_default_capacity(nrings)),
            events: cfg.record_events.then(|| Mutex::new(Vec::new())),
            epoch: Instant::now(),
            next_uid: AtomicU64::new(1),
            cfg,
        });
        let mut workers = Vec::new();
        for d in 0..inner.cfg.domains {
            for w in 0..inner.cfg.workers_per_domain {
                let windex = d * inner.cfg.workers_per_domain + w;
                let inner = inner.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("cool-serve-{d}.{w}"))
                        .spawn(move || worker_loop(&inner, d, windex))
                        .expect("spawn serve worker"),
                );
            }
        }
        let watchdog = inner.cfg.stall_timeout.map(|interval| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("cool-serve-watchdog".into())
                .spawn(move || serve_watchdog(&inner, interval))
                .expect("spawn serve watchdog")
        });
        WorkServer {
            inner,
            workers,
            watchdog,
        }
    }

    /// Submit a request. Returns the domain it was admitted to, or a typed
    /// refusal: [`SubmitError::Shed`] with backpressure detail,
    /// [`SubmitError::Duplicate`] for an already-admitted id, or
    /// [`SubmitError::Draining`] once a drain has begun.
    pub fn submit(&self, req: Request) -> Result<usize, SubmitError> {
        let inner = &self.inner;
        // Deterministic intake stall: attributable to one request id, so the
        // injected freeze lands on the same admission in every run.
        if let Some(f) = &inner.faults {
            let units = f.intake_stall_units(req.id);
            if units > 0 {
                inner.stats.lock().intake_stalls += 1;
                std::thread::sleep(Duration::from_micros(units));
            }
        }
        let domain = (req.shard % inner.cfg.domains as u64) as usize;
        let seen = &mut *inner.seen.lock();
        // Checked under the registry lock so a drain begun mid-submit cannot
        // admit behind the drain's back.
        if inner.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        inner.stats.lock().submitted += 1;
        if seen.contains(&req.id) {
            inner.stats.lock().duplicates += 1;
            return Err(SubmitError::Duplicate(req.id));
        }
        let pool = &inner.pools[domain];
        let mut q = pool.q.lock();
        let depth = q.depth();
        if depth >= inner.cfg.queue_capacity
            || q.queued_units.saturating_add(req.cost) > inner.cfg.budget_units
        {
            let bp = Backpressure {
                domain,
                depth,
                queued_units: q.queued_units,
            };
            drop(q);
            inner.stats.lock().shed += 1;
            if inner.obs.is_some() {
                let (ring, time) = (inner.intake_ring(), inner.now_ns());
                inner.obs_emit(
                    ring,
                    ObsEvent::RequestShed {
                        req: req.id,
                        domain,
                        depth,
                        time,
                    },
                );
            }
            return Err(SubmitError::Shed(bp));
        }
        seen.insert(req.id);
        inner.records.lock().insert(req.id, RequestRecord::admitted());
        inner.outstanding.fetch_add(1, Ordering::SeqCst);
        inner.stats.lock().admitted += 1;
        let now = Instant::now();
        q.queued_units += req.cost;
        q.ready.push_back(Job {
            id: req.id,
            cost: req.cost,
            attempt: 0,
            admitted: now,
            deadline: now + inner.cfg.deadline,
            body: req.body,
            accesses: req.accesses,
        });
        let depth = q.depth();
        pool.wake.notify_one();
        // Emitted while the queue lock is held: the admit event lands in
        // the stream before any attempt event of the worker that pops it.
        inner.rt_emit(RtEvent::ReqAdmit {
            req: req_uid(req.id),
            domain: domain_token(domain),
            time: inner.now_ms(),
        });
        drop(q);
        if inner.obs.is_some() {
            let (ring, time) = (inner.intake_ring(), inner.now_ns());
            inner.obs_emit(
                ring,
                ObsEvent::RequestAdmit {
                    req: req.id,
                    domain,
                    depth,
                    time,
                },
            );
        }
        Ok(domain)
    }

    /// Graceful shutdown, phase 1: stop admitting (new submits get
    /// [`SubmitError::Draining`]) and block until every admitted request has
    /// reached a terminal outcome — including retries still waiting out
    /// their backoff. Workers stay up until the server is dropped.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        let mut g = self.inner.drain_lock.lock();
        while self.inner.outstanding.load(Ordering::SeqCst) > 0 {
            // Bounded waits double as wakeups for deferred retries.
            self.inner
                .drained
                .wait_for(&mut g, Duration::from_millis(1));
        }
        drop(g);
        self.inner.rt_emit(RtEvent::ReqDrain {
            time: self.inner.now_ms(),
        });
    }

    /// Service counters since startup.
    pub fn stats(&self) -> ServeStats {
        *self.inner.stats.lock()
    }

    /// Per-request records, keyed by id (deterministic order).
    pub fn outcomes(&self) -> BTreeMap<u64, RequestRecord> {
        self.inner.records.lock().clone()
    }

    /// Stall dumps recorded by the watchdog.
    pub fn stall_dumps(&self) -> Vec<StallDump> {
        self.inner.dumps.lock().clone()
    }

    /// Drain the observability trace recorded so far (empty unless built
    /// with [`ServeConfig::with_trace`]).
    pub fn take_obs(&self) -> ObsTrace {
        self.inner
            .obs
            .as_ref()
            .map(ObsRecorder::drain)
            .unwrap_or_default()
    }

    /// Requests admitted but not yet terminal.
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::SeqCst)
    }

    /// Drain the serve-lifecycle [`RtEvent`] stream recorded so far (empty
    /// unless built with [`ServeConfig::with_events`]). Call after
    /// [`WorkServer::drain`] for a stream that ends with the drain barrier.
    pub fn take_events(&self) -> Vec<RtEvent> {
        self.inner
            .events
            .as_ref()
            .map(|e| std::mem::take(&mut *e.lock()))
            .unwrap_or_default()
    }
}

impl Drop for WorkServer {
    fn drop(&mut self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for pool in &self.inner.pools {
            let _q = pool.q.lock();
            pool.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let extras: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.inner.extra_workers.lock());
        for w in extras {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }
}

/// One pool worker: pop ready work (promoting backed-off retries whose time
/// has come), run it, and park until woken or the earliest deferred retry is
/// due.
fn worker_loop(inner: &ServeInner, domain: usize, windex: usize) {
    let pool = &inner.pools[domain];
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let job = {
            let mut q = pool.q.lock();
            let now = Instant::now();
            let mut i = 0;
            while i < q.deferred.len() {
                if q.deferred[i].0 <= now {
                    let (_, j) = q.deferred.swap_remove(i);
                    q.ready.push_back(j);
                } else {
                    i += 1;
                }
            }
            match q.ready.pop_front() {
                Some(j) => {
                    q.queued_units = q.queued_units.saturating_sub(j.cost);
                    Some(j)
                }
                None => {
                    let wake_at = q
                        .deferred
                        .iter()
                        .map(|&(t, _)| t)
                        .min()
                        .unwrap_or_else(|| now + Duration::from_millis(1));
                    pool.wake.wait_until(&mut q, wake_at);
                    None
                }
            }
        };
        if let Some(job) = job {
            run_job(inner, domain, windex, job);
        }
    }
}

/// What one attempt produced.
enum Attempt {
    Success,
    Failed(String),
    DeadlineExceeded,
}

fn run_job(inner: &ServeInner, domain: usize, windex: usize, mut job: Job) {
    let pool = &inner.pools[domain];
    pool.executing.fetch_add(1, Ordering::SeqCst);
    inner.beat(domain);
    inner.in_flight.lock().insert(job.id);
    inner.stats.lock().attempts += 1;
    inner.rt_emit(RtEvent::ReqAttempt {
        req: req_uid(job.id),
        attempt: job.attempt + 1,
        domain: domain_token(domain),
        proc: ProcId(windex),
        time: inner.now_ms(),
    });
    let result = if Instant::now() >= job.deadline {
        Attempt::DeadlineExceeded
    } else if job.attempt == 0
        && inner
            .faults
            .as_ref()
            .is_some_and(|f| f.should_fail_request(job.id))
    {
        // Injected transient failure: consumed before the body runs, so a
        // later successful attempt is still the body's only success.
        inner.stats.lock().injected_failures += 1;
        Attempt::Failed("injected transient request failure".into())
    } else {
        if let Some(f) = &inner.faults {
            // Slow pool: every job this domain executes costs extra.
            let extra = f.domain_slow_units(domain);
            if extra > 0 {
                std::thread::sleep(Duration::from_micros(extra));
            }
        }
        let traced = inner.obs.is_some();
        let uid = TaskUid(inner.next_uid.fetch_add(1, Ordering::Relaxed));
        if traced {
            inner.obs_emit(
                windex,
                ObsEvent::TaskBegin {
                    task: uid,
                    label: Some("serve"),
                    proc: cool_core::ProcId(windex),
                    set: None,
                    hinted: true,
                    on_target: true,
                    time: inner.now_ns(),
                },
            );
        }
        inner
            .records
            .lock()
            .get_mut(&job.id)
            .expect("running unadmitted request")
            .body_runs += 1;
        if inner.events.is_some() {
            for &(addr, len, kind) in job.accesses.iter() {
                inner.rt_emit(RtEvent::Access {
                    task: req_uid(job.id),
                    obj: ObjRef(addr),
                    len,
                    kind,
                    proc: ProcId(windex),
                    time: inner.now_ms(),
                });
            }
        }
        let body = job.body.clone();
        let attempt = job.attempt;
        let outcome = catch_unwind(AssertUnwindSafe(move || body(attempt)));
        if traced {
            inner.obs_emit(
                windex,
                ObsEvent::TaskEnd {
                    task: uid,
                    proc: cool_core::ProcId(windex),
                    mem: None,
                    time: inner.now_ns(),
                },
            );
        }
        match outcome {
            Ok(Ok(())) => Attempt::Success,
            Ok(Err(e)) => Attempt::Failed(e),
            Err(payload) => Attempt::Failed(panic_text(payload.as_ref())),
        }
    };
    inner.in_flight.lock().remove(&job.id);
    pool.executing.fetch_sub(1, Ordering::SeqCst);
    inner.beat(domain);
    match result {
        Attempt::Success => {
            inner
                .records
                .lock()
                .get_mut(&job.id)
                .expect("completing unadmitted request")
                .body_successes += 1;
            let attempts = job.attempt + 1;
            let latency = job.admitted.elapsed();
            inner.terminal(windex, domain, &job, attempts, Outcome::Completed { attempts, latency });
        }
        Attempt::DeadlineExceeded => {
            let attempts = job.attempt;
            inner.terminal(windex, domain, &job, attempts, Outcome::TimedOut { attempts });
        }
        Attempt::Failed(error) => {
            let attempts = job.attempt + 1;
            if attempts >= inner.cfg.max_attempts {
                inner.terminal(windex, domain, &job, attempts, Outcome::Failed { attempts, error });
                return;
            }
            let backoff = retry_backoff(
                job.id,
                attempts,
                inner.cfg.base_backoff,
                inner.cfg.max_backoff,
            );
            let not_before = Instant::now() + backoff;
            if not_before >= job.deadline {
                // No room to retry before the deadline: time the request
                // out now instead of wasting a doomed attempt.
                inner.terminal(windex, domain, &job, attempts, Outcome::TimedOut { attempts });
                return;
            }
            inner.stats.lock().retries += 1;
            if inner.obs.is_some() {
                inner.obs_emit(
                    windex,
                    ObsEvent::RequestRetry {
                        req: job.id,
                        attempt: job.attempt,
                        backoff_ns: backoff.as_nanos() as u64,
                        domain,
                        time: inner.now_ns(),
                    },
                );
            }
            // Emitted before the requeue is published: the next attempt's
            // pop (and its event) can only follow this retry outcome.
            inner.rt_emit(RtEvent::ReqOutcome {
                req: req_uid(job.id),
                attempt: attempts,
                ok: false,
                domain: domain_token(domain),
                proc: ProcId(windex),
                time: inner.now_ms(),
            });
            job.attempt = attempts;
            let cost = job.cost;
            let mut q = pool.q.lock();
            q.queued_units += cost;
            q.deferred.push((not_before, job));
            pool.wake.notify_one();
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Pool-stall detector: a domain with work on hand (a body executing or
/// ready requests waiting) whose liveness beacon has been quiet for a full
/// `interval` gets a [`StallDump`] recorded — naming the in-flight request
/// ids — and, while the restart budget lasts, a replacement worker so the
/// queue behind the stuck body keeps draining.
fn serve_watchdog(inner: &Arc<ServeInner>, interval: Duration) {
    let poll = (interval / 4).max(Duration::from_millis(1));
    loop {
        std::thread::sleep(poll);
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now_ns = inner.now_ns();
        for d in 0..inner.cfg.domains {
            let pool = &inner.pools[d];
            let busy =
                pool.executing.load(Ordering::SeqCst) > 0 || !pool.q.lock().ready.is_empty();
            let quiet =
                now_ns.saturating_sub(pool.last_beat.load(Ordering::SeqCst)) >= interval.as_nanos() as u64;
            if !(busy && quiet) {
                continue;
            }
            let dump = inner.dump();
            eprintln!("cool-serve watchdog: domain {d} stalled: {dump}");
            inner.dumps.lock().push(dump);
            // Reset the beacon either way so one stuck body produces one
            // dump per quiet interval, not one per poll.
            inner.beat(d);
            let restarts = inner.stats.lock().pool_restarts;
            if (restarts as usize) < inner.cfg.max_pool_restarts {
                inner.stats.lock().pool_restarts += 1;
                let windex =
                    inner.cfg.domains * inner.cfg.workers_per_domain + restarts as usize;
                let inner2 = inner.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("cool-serve-{d}.r{restarts}"))
                    .spawn(move || worker_loop(&inner2, d, windex))
                    .expect("spawn replacement worker");
                inner.extra_workers.lock().push(handle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn counters(n: usize) -> Arc<Vec<AtomicU32>> {
        Arc::new((0..n).map(|_| AtomicU32::new(0)).collect())
    }

    #[test]
    fn completes_all_requests_exactly_once() {
        let srv = WorkServer::new(ServeConfig::new(4, 2));
        let runs = counters(64);
        for i in 0..64u64 {
            let runs = runs.clone();
            srv.submit(Request::new(i, i * 7, 1, move |_| {
                runs[i as usize].fetch_add(1, Ordering::SeqCst);
                Ok(())
            }))
            .unwrap();
        }
        srv.drain();
        for (i, c) in runs.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "request {i} ran wrong # times");
        }
        let st = srv.stats();
        assert_eq!(st.admitted, 64);
        assert_eq!(st.completed, 64);
        for (id, rec) in srv.outcomes() {
            assert!(
                matches!(rec.outcome, Some(Outcome::Completed { attempts: 1, .. })),
                "request {id}: {rec:?}"
            );
            assert_eq!(rec.body_successes, 1);
        }
    }

    #[test]
    fn duplicate_ids_are_refused() {
        let srv = WorkServer::new(ServeConfig::new(1, 1));
        srv.submit(Request::new(9, 0, 1, |_| Ok(()))).unwrap();
        let err = srv.submit(Request::new(9, 0, 1, |_| Ok(()))).unwrap_err();
        assert_eq!(err, SubmitError::Duplicate(9));
        srv.drain();
        assert_eq!(srv.stats().duplicates, 1);
        assert_eq!(srv.outcomes()[&9].body_runs, 1);
    }

    #[test]
    fn overload_sheds_with_backpressure() {
        // One slow worker, capacity 2: a fast burst must shed.
        let srv = WorkServer::new(ServeConfig::new(1, 1).with_capacity(2));
        let mut shed = 0;
        for i in 0..16u64 {
            let r = srv.submit(Request::new(i, 0, 1, |_| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(())
            }));
            if let Err(SubmitError::Shed(bp)) = r {
                assert_eq!(bp.domain, 0);
                assert!(bp.depth >= 2, "shed below capacity: {bp:?}");
                shed += 1;
            }
        }
        assert!(shed > 0, "burst never shed");
        srv.drain();
        let st = srv.stats();
        assert_eq!(st.shed, shed);
        assert_eq!(st.admitted + st.shed, 16);
        assert_eq!(st.completed, st.admitted);
    }

    #[test]
    fn budget_admission_counts_queued_units() {
        let srv = WorkServer::new(ServeConfig::new(1, 1).with_capacity(100).with_budget(10));
        // A blocker occupies the worker so queued units accumulate.
        srv.submit(Request::new(0, 0, 1, |_| {
            std::thread::sleep(Duration::from_millis(10));
            Ok(())
        }))
        .unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let mut shed_units = false;
        for i in 1..8u64 {
            if let Err(SubmitError::Shed(_)) = srv.submit(Request::new(i, 0, 4, |_| Ok(()))) {
                shed_units = true;
            }
        }
        assert!(shed_units, "unit budget never shed");
        srv.drain();
    }

    #[test]
    fn injected_failures_retry_and_complete() {
        let plan = FaultPlan::new(1).fail_request(3).fail_request(11);
        let srv = WorkServer::with_faults(ServeConfig::new(2, 1), plan);
        let runs = counters(16);
        for i in 0..16u64 {
            let runs = runs.clone();
            srv.submit(Request::new(i, i, 1, move |_| {
                runs[i as usize].fetch_add(1, Ordering::SeqCst);
                Ok(())
            }))
            .unwrap();
        }
        srv.drain();
        let st = srv.stats();
        assert_eq!(st.injected_failures, 2);
        assert!(st.retries >= 2);
        assert_eq!(st.completed, 16);
        let out = srv.outcomes();
        for id in [3u64, 11] {
            let rec = &out[&id];
            assert!(
                matches!(rec.outcome, Some(Outcome::Completed { attempts: 2, .. })),
                "request {id}: {rec:?}"
            );
            assert_eq!(rec.body_runs, 1, "injected failure must not run the body");
            assert_eq!(rec.body_successes, 1);
        }
        for (id, rec) in &out {
            assert_eq!(rec.body_successes, 1, "request {id} double-ran");
        }
    }

    #[test]
    fn failing_bodies_exhaust_attempts() {
        let cfg = ServeConfig::new(1, 1).with_retry(
            3,
            Duration::from_micros(50),
            Duration::from_micros(200),
        );
        let srv = WorkServer::new(cfg);
        let runs = counters(1);
        let r2 = runs.clone();
        srv.submit(Request::new(0, 0, 1, move |attempt| {
            r2[0].fetch_add(1, Ordering::SeqCst);
            Err(format!("attempt {attempt} says no"))
        }))
        .unwrap();
        srv.drain();
        assert_eq!(runs[0].load(Ordering::SeqCst), 3);
        let rec = &srv.outcomes()[&0];
        match &rec.outcome {
            Some(Outcome::Failed { attempts: 3, error }) => {
                assert!(error.contains("attempt 2"), "last error survives: {error}");
            }
            other => panic!("expected Failed after 3 attempts, got {other:?}"),
        }
        assert_eq!(srv.stats().retries, 2);
    }

    #[test]
    fn deadline_times_out_instead_of_hopeless_retry() {
        // Backoff far beyond the deadline: the first failure must convert to
        // TimedOut without burning another attempt.
        let cfg = ServeConfig::new(1, 1)
            .with_retry(5, Duration::from_millis(50), Duration::from_millis(50))
            .with_deadline(Duration::from_millis(5));
        let srv = WorkServer::with_faults(cfg, FaultPlan::new(0).fail_request(0));
        let runs = counters(1);
        let r2 = runs.clone();
        srv.submit(Request::new(0, 0, 1, move |_| {
            r2[0].fetch_add(1, Ordering::SeqCst);
            Ok(())
        }))
        .unwrap();
        srv.drain();
        assert_eq!(runs[0].load(Ordering::SeqCst), 0, "doomed retry still ran");
        assert!(
            matches!(srv.outcomes()[&0].outcome, Some(Outcome::TimedOut { .. })),
            "{:?}",
            srv.outcomes()[&0]
        );
        assert_eq!(srv.stats().timed_out, 1);
    }

    #[test]
    fn drain_refuses_new_requests() {
        let srv = WorkServer::new(ServeConfig::new(2, 1));
        srv.submit(Request::new(0, 0, 1, |_| Ok(()))).unwrap();
        srv.drain();
        assert_eq!(
            srv.submit(Request::new(1, 0, 1, |_| Ok(()))).unwrap_err(),
            SubmitError::Draining
        );
        assert_eq!(srv.stats().completed, 1);
        assert_eq!(srv.outstanding(), 0);
    }

    #[test]
    fn panicking_body_is_a_failed_attempt_not_a_crash() {
        let cfg = ServeConfig::new(1, 1).with_retry(
            2,
            Duration::from_micros(50),
            Duration::from_micros(100),
        );
        let srv = WorkServer::new(cfg);
        let runs = counters(1);
        let r2 = runs.clone();
        srv.submit(Request::new(0, 0, 1, move |attempt| {
            r2[0].fetch_add(1, Ordering::SeqCst);
            if attempt == 0 {
                panic!("first attempt explodes");
            }
            Ok(())
        }))
        .unwrap();
        srv.drain();
        assert_eq!(runs[0].load(Ordering::SeqCst), 2);
        let rec = &srv.outcomes()[&0];
        assert!(
            matches!(rec.outcome, Some(Outcome::Completed { attempts: 2, .. })),
            "{rec:?}"
        );
        assert_eq!(rec.body_successes, 1);
    }

    #[test]
    fn watchdog_restarts_a_stalled_pool() {
        let cfg = ServeConfig::new(1, 1)
            .with_capacity(8)
            .with_stall_timeout(Duration::from_millis(20));
        let srv = WorkServer::new(cfg);
        let runs = counters(2);
        let r2 = runs.clone();
        // Request 0 wedges the only worker well past the stall interval.
        srv.submit(Request::new(0, 0, 1, move |_| {
            std::thread::sleep(Duration::from_millis(120));
            r2[0].fetch_add(1, Ordering::SeqCst);
            Ok(())
        }))
        .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let r2 = runs.clone();
        srv.submit(Request::new(1, 0, 1, move |_| {
            r2[1].fetch_add(1, Ordering::SeqCst);
            Ok(())
        }))
        .unwrap();
        srv.drain();
        assert_eq!(runs[0].load(Ordering::SeqCst), 1);
        assert_eq!(runs[1].load(Ordering::SeqCst), 1);
        let st = srv.stats();
        assert!(st.pool_restarts >= 1, "watchdog never restarted: {st:?}");
        let dumps = srv.stall_dumps();
        assert!(!dumps.is_empty());
        assert!(
            dumps[0].in_flight.contains(&0),
            "dump must name the stuck request: {:?}",
            dumps[0].in_flight
        );
        assert!(dumps[0].queue_depths[0] >= 1, "queued work behind the stall");
    }

    #[test]
    fn sharding_routes_equal_keys_to_equal_domains() {
        let srv = WorkServer::new(ServeConfig::new(4, 1));
        let d1 = srv.submit(Request::new(0, 13, 1, |_| Ok(()))).unwrap();
        let d2 = srv.submit(Request::new(1, 13 + 4, 1, |_| Ok(()))).unwrap();
        let d3 = srv.submit(Request::new(2, 13, 1, |_| Ok(()))).unwrap();
        assert_eq!(d1, 13 % 4);
        assert_eq!(d1, d2);
        assert_eq!(d1, d3);
        srv.drain();
    }

    #[test]
    fn retry_backoff_is_deterministic_bounded_and_jittered() {
        let base = Duration::from_millis(1);
        let max = Duration::from_millis(8);
        for id in 0..50u64 {
            for attempt in 1..6u32 {
                let b1 = retry_backoff(id, attempt, base, max);
                let b2 = retry_backoff(id, attempt, base, max);
                assert_eq!(b1, b2, "backoff must be deterministic");
                let level = base
                    .checked_mul(1 << (attempt - 1).min(20))
                    .unwrap_or(max)
                    .min(max);
                assert!(b1 >= level / 2 && b1 <= level, "{b1:?} outside [{level:?}/2, {level:?}]");
            }
        }
        // Jitter decorrelates distinct ids at the same attempt.
        let distinct: HashSet<Duration> =
            (0..50u64).map(|id| retry_backoff(id, 3, base, max)).collect();
        assert!(distinct.len() > 10, "jitter too coarse: {}", distinct.len());
    }

    #[test]
    fn recorded_events_respect_lifecycle_order() {
        let cfg = ServeConfig::new(2, 2)
            .with_retry(3, Duration::from_micros(50), Duration::from_micros(200))
            .with_events();
        let srv = WorkServer::with_faults(cfg, FaultPlan::new(0).fail_request(3));
        for i in 0..8u64 {
            srv.submit(
                Request::new(i, i, 1, |_| Ok(()))
                    .with_accesses(vec![(0x1000 + i * 64, 8, AccessKind::Write)]),
            )
            .unwrap();
        }
        srv.drain();
        let evs = srv.take_events();
        assert!(matches!(evs.last(), Some(RtEvent::ReqDrain { .. })));
        // Per request: admit strictly precedes attempt 1; a retry outcome
        // (ok=false) strictly precedes the next attempt; every request has
        // exactly one terminal outcome before the drain event.
        for id in 0..8u64 {
            let uid = req_uid(id);
            let admit = evs
                .iter()
                .position(|e| matches!(e, RtEvent::ReqAdmit { req, .. } if *req == uid))
                .expect("admit recorded");
            let first_attempt = evs
                .iter()
                .position(
                    |e| matches!(e, RtEvent::ReqAttempt { req, attempt: 1, .. } if *req == uid),
                )
                .expect("attempt recorded");
            assert!(admit < first_attempt, "request {id}");
        }
        // Request 3 was injected to fail once: retry outcome then attempt 2.
        let uid = req_uid(3);
        let retry = evs
            .iter()
            .position(|e| {
                matches!(e, RtEvent::ReqOutcome { req, ok: false, .. } if *req == uid)
            })
            .expect("retry outcome recorded");
        let second = evs
            .iter()
            .position(|e| matches!(e, RtEvent::ReqAttempt { req, attempt: 2, .. } if *req == uid))
            .expect("second attempt recorded");
        assert!(retry < second);
        let accesses = evs
            .iter()
            .filter(|e| matches!(e, RtEvent::Access { .. }))
            .count();
        assert_eq!(accesses, 8, "one declared access per body run");
        let terminals = evs
            .iter()
            .filter(|e| matches!(e, RtEvent::ReqOutcome { ok: true, .. }))
            .count();
        assert_eq!(terminals, 8);
        // Drained stream: a second take is empty.
        assert!(srv.take_events().is_empty());
    }

    #[test]
    fn service_events_flow_into_the_obs_stream() {
        let cfg = ServeConfig::new(1, 1).with_capacity(1).with_trace();
        let srv = WorkServer::with_faults(cfg, FaultPlan::new(0).fail_request(0));
        srv.submit(Request::new(0, 0, 1, |_| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(())
        }))
        .unwrap();
        // Overfill so at least one shed is recorded.
        let mut shed = false;
        for i in 1..12u64 {
            if srv.submit(Request::new(i, 0, 1, |_| Ok(()))).is_err() {
                shed = true;
            }
        }
        assert!(shed);
        srv.drain();
        let trace = srv.take_obs();
        let has = |f: &dyn Fn(&ObsEvent) -> bool| trace.events.iter().any(f);
        assert!(has(&|e| matches!(e, ObsEvent::RequestAdmit { .. })));
        assert!(has(&|e| matches!(e, ObsEvent::RequestShed { .. })));
        assert!(has(&|e| matches!(e, ObsEvent::RequestRetry { req: 0, .. })));
        assert!(has(&|e| matches!(e, ObsEvent::RequestDone { ok: true, .. })));
        assert!(has(&|e| matches!(e, ObsEvent::TaskBegin { label: Some("serve"), .. })));
    }
}
