//! # cool-rt — a real threaded COOL runtime
//!
//! The simulated runtime (`cool-sim`) reproduces the paper's DASH numbers;
//! this crate runs the *same scheduling machinery* on real threads, so the
//! queue structure, affinity resolution and steal policies are exercised
//! under true parallelism:
//!
//! * one worker thread per server, each owning the `cool-core`
//!   [`ServerQueues`](cool_core::ServerQueues) behind a mutex;
//! * affinity-directed placement identical to `cool-sim` (PROCESSOR >
//!   OBJECT-home > TASK-hash > creator), with object homes kept in a
//!   placement registry (`alloc_on` / `migrate` / `home`);
//! * back-to-back service of task-affinity sets — which yields *real* cache
//!   reuse on the host machine, measurable with the criterion benches;
//! * work stealing with whole-set transfer, object-affinity avoidance,
//!   cluster-first victim order and last-resort override;
//! * `parallel mutex` functions via per-object locks (`try_lock`; a blocked
//!   task is set aside and the server keeps working, as in COOL);
//! * `waitfor` scopes: [`Runtime::scope`] blocks until every task spawned
//!   within the scope — including nested spawns — has completed, and reports
//!   task panics as a [`ScopeError`] instead of crashing the runtime;
//! * failure isolation: panicking tasks release their scope slot and any
//!   held `mutex` object via RAII guards, a stall watchdog
//!   ([`RtConfig::with_stall_timeout`]) turns silent hangs into diagnostic
//!   [`StallDump`]s, and deterministic fault plans
//!   ([`Runtime::with_faults`]) inject stragglers, stalls and transient
//!   task failures for chaos testing;
//! * a long-running service layer ([`serve::WorkServer`]): affinity-keyed
//!   shard pools with bounded admission and backpressure, idempotency-keyed
//!   dedup, per-request deadlines with deterministic jittered-backoff
//!   retries, drain-and-refuse shutdown, and watchdog-driven pool restarts
//!   — the same scheduling structure under sustained open-loop traffic.
//!
//! The machine here is whatever you run on (UMA, most likely), so *memory*
//! locality effects are not observable; what carries over from the paper is
//! the scheduling behaviour and cache-affinity benefits.
//!
//! ## Example
//!
//! ```
//! use cool_rt::{Runtime, RtConfig, RtTask, AffinitySpec, ProcId};
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! let rt = Runtime::new(RtConfig::new(4));
//! let obj = rt.placement().alloc_on(ProcId(2)); // new (2) T
//! let hits = Arc::new(AtomicU32::new(0));
//! let h = hits.clone();
//! rt.scope(move |s| {              // waitfor { ... }
//!     for _ in 0..16 {
//!         let h = h.clone();
//!         s.spawn(
//!             RtTask::new(move |_| {
//!                 h.fetch_add(1, Ordering::Relaxed);
//!             })
//!             .with_affinity(AffinitySpec::simple(obj)),
//!         );
//!     }
//! })
//! .unwrap();                       // Err(ScopeError) if a task panicked
//! assert_eq!(hits.load(Ordering::Relaxed), 16);
//! ```

#![warn(missing_docs)]

mod faults;
pub mod placement;
pub mod runtime;
pub mod serve;
pub mod vserve;
pub mod watchdog;

pub use placement::Placement;
pub use runtime::{RtConfig, RtCtx, RtTask, Runtime, ScopeError, ScopeResult};
pub use serve::{
    domain_token, req_uid, Backpressure, Outcome, Request, RequestRecord, ServeConfig,
    ServeStats, SubmitError, WorkServer, REQ_UID_BASE,
};
pub use vserve::{ServeDefect, ServeMachine, ServeOp, SubmitSpec, VOutcome};
pub use watchdog::StallDump;

pub use cool_core::{
    AffinitySpec, FaultPlan, ObjRef, ProcId, SchedStats, StealPolicy, TaskError, Topology,
};
