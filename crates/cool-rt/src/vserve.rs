//! Logical-time model of the [`serve`](crate::serve) work-server
//! protocol, explorable by the `cool-check` interleaving explorer.
//!
//! The real [`WorkServer`](crate::serve::WorkServer) runs on OS threads
//! with wall-clock deadlines and condvar wakeups, so its schedules cannot
//! be enumerated directly. [`ServeMachine`] mirrors the *protocol* —
//! admission (capacity, budget, idempotency dedup, drain refusal), the
//! bounded-retry loop and drain completion — as a pure state machine
//! whose decision points are explicit [`ServeOp`]s. The admission
//! predicate and retry accounting are written to match `serve.rs`
//! line-for-line; time-based behaviour (deadlines, backoff *durations*)
//! is abstracted away: a retry re-enters its domain queue at the back,
//! and the explorer's interleavings stand in for every possible expiry
//! order.
//!
//! Invariants checked after every transition (the PR-6 properties):
//!
//! * **exactly-once effects** — no request's body ever succeeds twice;
//! * **dedup exactness** — admissions equal distinct admitted keys
//!   (a duplicate key never creates a second record);
//! * **no admit past drain** — once draining, the admitted set is frozen;
//! * **accounting** — outstanding == admitted records without a terminal
//!   outcome == jobs queued across all domains.
//!
//! Terminal states additionally require: if the scenario drains, the
//! drain completed and every admitted request has a terminal outcome
//! (drain loses nothing).

use cool_core::vsched::{stable_hash, VirtualProgram};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One scripted submission a client will perform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SubmitSpec {
    /// Idempotency key of the request.
    pub id: u64,
    /// Shard key; `shard % domains` selects the domain pool.
    pub shard: u64,
    /// Admission cost in budget units.
    pub cost: u64,
    /// How many leading attempts fail before one succeeds.
    pub failures: u32,
}

/// Seeded defects for the [`ServeMachine`] — each disables exactly one
/// protocol rule so tests can prove the matching invariant fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServeDefect {
    /// Correct behaviour.
    None,
    /// Admission ignores the draining flag (a submit racing a drain can
    /// slip in behind it). Caught by the frozen-admitted-set invariant.
    AdmitPastDrain,
    /// Admission ignores the idempotency `seen` set. Caught by the
    /// dedup-exactness invariant.
    DedupMiss,
    /// A failed attempt with retries remaining is forgotten instead of
    /// requeued. Caught at drain: the request never reaches a terminal
    /// outcome, so the drain can never complete.
    LoseRetry,
    /// A *successful* attempt is also requeued (a double-enqueue race).
    /// Caught by the exactly-once invariant when the ghost runs.
    DoubleEnqueue,
}

/// One scheduling operation of the [`ServeMachine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServeOp {
    /// Client `client` submits its next scripted request (shown with the
    /// request's id and resolved domain so dependence is static).
    Submit {
        /// Submitting client index.
        client: usize,
        /// Idempotency key of the request being submitted.
        id: u64,
        /// Domain the request resolves to (`shard % domains`).
        domain: usize,
    },
    /// A worker of `domain` pops the front job and runs one attempt.
    Work {
        /// Domain whose queue is serviced.
        domain: usize,
    },
    /// The operator starts a drain (admission closes).
    Drain,
    /// The drain completes (enabled once nothing is outstanding).
    Finish,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct VJob {
    id: u64,
    cost: u64,
    attempt: u32,
    failures: u32,
}

/// Terminal outcome of a modelled request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VOutcome {
    /// The body succeeded on attempt `attempts`.
    Completed {
        /// Total attempts consumed (1-based).
        attempts: u32,
    },
    /// All `attempts` attempts failed.
    Failed {
        /// Total attempts consumed.
        attempts: u32,
    },
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct VRecord {
    outcome: Option<VOutcome>,
    body_runs: u32,
    body_successes: u32,
}

/// Pure, explorable model of the work-server admission/retry/drain
/// protocol. See the [module docs](self) for the invariant catalogue.
#[derive(Clone, Debug)]
pub struct ServeMachine {
    domains: usize,
    queue_capacity: usize,
    budget_units: u64,
    max_attempts: u32,
    scripts: Vec<VecDeque<SubmitSpec>>,
    queues: Vec<VecDeque<VJob>>,
    queued_units: Vec<u64>,
    seen: BTreeSet<u64>,
    records: BTreeMap<u64, VRecord>,
    admissions: u64,
    shed: u64,
    duplicates: u64,
    refused: u64,
    outstanding: usize,
    draining: bool,
    admitted_at_drain: u64,
    drained: bool,
    use_drain: bool,
    defect: ServeDefect,
}

impl ServeMachine {
    /// Build a machine over `scripts` (one submission list per client).
    ///
    /// `use_drain` adds an operator actor that may start a drain at any
    /// point; the terminal invariant then requires the drain to have
    /// completed with every admitted request resolved.
    pub fn new(
        domains: usize,
        queue_capacity: usize,
        budget_units: u64,
        max_attempts: u32,
        scripts: Vec<Vec<SubmitSpec>>,
        use_drain: bool,
        defect: ServeDefect,
    ) -> Self {
        assert!(domains > 0 && max_attempts > 0);
        ServeMachine {
            domains,
            queue_capacity,
            budget_units,
            max_attempts,
            scripts: scripts.into_iter().map(VecDeque::from).collect(),
            queues: vec![VecDeque::new(); domains],
            queued_units: vec![0; domains],
            seen: BTreeSet::new(),
            records: BTreeMap::new(),
            admissions: 0,
            shed: 0,
            duplicates: 0,
            refused: 0,
            outstanding: 0,
            draining: false,
            admitted_at_drain: 0,
            drained: false,
            use_drain,
            defect,
        }
    }

    /// Terminal outcome of request `id`, if admitted and resolved.
    pub fn outcome_of(&self, id: u64) -> Option<VOutcome> {
        self.records.get(&id).and_then(|r| r.outcome)
    }

    /// Requests shed for capacity or budget so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Duplicate submissions refused by the idempotency dedup so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Mirror of `WorkServer::submit`'s admission path, on logical time.
    fn submit(&mut self, spec: SubmitSpec) {
        // The real submit checks `draining` under the `seen` lock so a
        // drain begun mid-submit cannot admit behind the drain's back.
        if self.draining && self.defect != ServeDefect::AdmitPastDrain {
            self.refused += 1;
            return;
        }
        if self.seen.contains(&spec.id) && self.defect != ServeDefect::DedupMiss {
            self.duplicates += 1;
            return;
        }
        let d = (spec.shard % self.domains as u64) as usize;
        if self.queues[d].len() >= self.queue_capacity
            || self.queued_units[d].saturating_add(spec.cost) > self.budget_units
        {
            self.shed += 1;
            return;
        }
        self.seen.insert(spec.id);
        self.admissions += 1;
        self.records.insert(
            spec.id,
            VRecord {
                outcome: None,
                body_runs: 0,
                body_successes: 0,
            },
        );
        self.outstanding += 1;
        self.queued_units[d] += spec.cost;
        self.queues[d].push_back(VJob {
            id: spec.id,
            cost: spec.cost,
            attempt: 0,
            failures: spec.failures,
        });
    }

    /// Mirror of `run_job` + `terminal`: one attempt of the front job.
    fn work(&mut self, domain: usize) {
        let job = self.queues[domain].pop_front().expect("work enabled");
        self.queued_units[domain] -= job.cost;
        let fails = job.attempt < job.failures;
        let attempts = job.attempt + 1;
        let rec = self.records.get_mut(&job.id).expect("admitted job");
        rec.body_runs += 1;
        if !fails {
            rec.body_successes += 1;
            rec.outcome = Some(VOutcome::Completed { attempts });
            self.outstanding -= 1;
            if self.defect == ServeDefect::DoubleEnqueue {
                // Ghost requeue of an already-terminal request.
                self.queued_units[domain] += job.cost;
                self.queues[domain].push_back(VJob {
                    attempt: attempts,
                    ..job
                });
            }
        } else if attempts >= self.max_attempts {
            rec.outcome = Some(VOutcome::Failed { attempts });
            self.outstanding -= 1;
        } else if self.defect == ServeDefect::LoseRetry {
            // Forget the retry: no requeue, no terminal outcome. The
            // request stays outstanding forever and the drain hangs.
        } else {
            // Deferred retry: logical backoff expiry is "some later
            // scheduling point", so the job rejoins the back of its
            // domain queue and the explorer tries every expiry order.
            self.queued_units[domain] += job.cost;
            self.queues[domain].push_back(VJob {
                attempt: attempts,
                ..job
            });
        }
    }
}

impl VirtualProgram for ServeMachine {
    type Op = ServeOp;

    fn enabled(&self) -> Vec<ServeOp> {
        let mut ops = Vec::new();
        for (c, script) in self.scripts.iter().enumerate() {
            if let Some(spec) = script.front() {
                ops.push(ServeOp::Submit {
                    client: c,
                    id: spec.id,
                    domain: (spec.shard % self.domains as u64) as usize,
                });
            }
        }
        for d in 0..self.domains {
            if !self.queues[d].is_empty() {
                ops.push(ServeOp::Work { domain: d });
            }
        }
        if self.use_drain && !self.draining {
            ops.push(ServeOp::Drain);
        }
        if self.draining && !self.drained && self.outstanding == 0 {
            ops.push(ServeOp::Finish);
        }
        ops
    }

    fn step(&mut self, op: ServeOp) {
        match op {
            ServeOp::Submit { client, .. } => {
                let spec = self.scripts[client].pop_front().expect("submit enabled");
                self.submit(spec);
            }
            ServeOp::Work { domain } => self.work(domain),
            ServeOp::Drain => {
                self.draining = true;
                self.admitted_at_drain = self.records.len() as u64;
            }
            ServeOp::Finish => {
                self.drained = true;
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        for (id, rec) in &self.records {
            if rec.body_successes > 1 {
                return Err(format!(
                    "exactly-once: request {id} body succeeded {} times",
                    rec.body_successes
                ));
            }
            if matches!(rec.outcome, Some(VOutcome::Completed { .. })) && rec.body_successes != 1 {
                return Err(format!("request {id} completed without a body success"));
            }
        }
        if self.admissions != self.records.len() as u64 {
            return Err(format!(
                "dedup exactness: {} admissions for {} distinct keys",
                self.admissions,
                self.records.len()
            ));
        }
        if self.draining && self.records.len() as u64 != self.admitted_at_drain {
            return Err(format!(
                "admit past drain: {} records admitted at drain, {} now",
                self.admitted_at_drain,
                self.records.len()
            ));
        }
        for (d, q) in self.queues.iter().enumerate() {
            let units: u64 = q.iter().map(|j| j.cost).sum();
            if units != self.queued_units[d] {
                return Err(format!(
                    "accounting: domain {d} queued_units {} != sum of job costs {units}",
                    self.queued_units[d]
                ));
            }
            for j in q {
                let rec = self.records.get(&j.id);
                if !matches!(rec, Some(r) if r.outcome.is_none()) {
                    return Err(format!(
                        "double-run hazard: queued job {} already has a terminal outcome",
                        j.id
                    ));
                }
            }
        }
        let unresolved = self.records.values().filter(|r| r.outcome.is_none()).count();
        if unresolved != self.outstanding {
            return Err(format!(
                "accounting: outstanding {} != unresolved records {unresolved}",
                self.outstanding
            ));
        }
        let queued: usize = self.queues.iter().map(|q| q.len()).sum();
        if queued != self.outstanding {
            return Err(format!(
                "accounting: {queued} queued jobs for {} outstanding requests",
                self.outstanding
            ));
        }
        Ok(())
    }

    fn check_terminal(&self) -> Result<(), String> {
        if self.use_drain && !self.drained {
            return Err(format!(
                "drain stuck: exploration ended with {} outstanding request(s) \
                 and the drain incomplete",
                self.outstanding
            ));
        }
        for (id, rec) in &self.records {
            if rec.outcome.is_none() {
                return Err(format!("request {id} admitted but never resolved"));
            }
        }
        Ok(())
    }

    fn dependent(&self, a: ServeOp, b: ServeOp) -> bool {
        if self.defect != ServeDefect::None {
            return true;
        }
        use ServeOp::*;
        match (a, b) {
            // Distinct-key submits to distinct domains commute: they
            // touch disjoint queues and insert distinct keys into the
            // shared seen/records maps.
            (Submit { id: ia, domain: da, .. }, Submit { id: ib, domain: db, .. }) => {
                ia == ib || da == db
            }
            // A submit and a worker interact only through the domain's
            // queue depth and budget.
            (Submit { domain: da, .. }, Work { domain: db })
            | (Work { domain: db }, Submit { domain: da, .. }) => da == db,
            // Drain races admission: order decides refusal.
            (Submit { .. }, Drain) | (Drain, Submit { .. }) => true,
            // Workers on different domains touch disjoint queues and
            // distinct record entries.
            (Work { domain: da }, Work { domain: db }) => da == db,
            // Drain only freezes admission; workers neither read nor
            // write the draining flag.
            (Work { .. }, Drain) | (Drain, Work { .. }) => false,
            // Finish is enabled only at quiescence; be conservative
            // about anything co-enabled with it.
            (Finish, _) | (_, Finish) => true,
            (Drain, Drain) => true,
        }
    }

    fn state_key(&self) -> u64 {
        stable_hash(
            format!(
                "{:?}{:?}{:?}{:?}{}{}{}{}{}{}",
                self.scripts,
                self.queues,
                self.records,
                self.seen,
                self.admissions,
                self.shed,
                self.duplicates,
                self.refused,
                self.draining,
                self.drained,
            )
            .as_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, shard: u64, failures: u32) -> SubmitSpec {
        SubmitSpec {
            id,
            shard,
            cost: 1,
            failures,
        }
    }

    fn drive_first(m: &mut ServeMachine) {
        loop {
            let ops = m.enabled();
            match ops.first() {
                Some(&op) => {
                    m.step(op);
                    m.check().unwrap();
                }
                None => break,
            }
        }
    }

    #[test]
    fn clean_run_resolves_everything() {
        let mut m = ServeMachine::new(
            2,
            4,
            u64::MAX,
            3,
            vec![vec![spec(1, 0, 0), spec(2, 1, 1)], vec![spec(3, 0, 2)]],
            false,
            ServeDefect::None,
        );
        drive_first(&mut m);
        m.check_terminal().unwrap();
        assert_eq!(m.outcome_of(1), Some(VOutcome::Completed { attempts: 1 }));
        assert_eq!(m.outcome_of(2), Some(VOutcome::Completed { attempts: 2 }));
        assert_eq!(m.outcome_of(3), Some(VOutcome::Completed { attempts: 3 }));
    }

    #[test]
    fn duplicate_submit_is_refused_and_books_balance() {
        let mut m = ServeMachine::new(
            1,
            8,
            u64::MAX,
            2,
            vec![vec![spec(1, 0, 0), spec(1, 0, 0)]],
            false,
            ServeDefect::None,
        );
        drive_first(&mut m);
        m.check_terminal().unwrap();
        assert_eq!(m.duplicates(), 1);
        assert_eq!(m.outcome_of(1), Some(VOutcome::Completed { attempts: 1 }));
    }

    #[test]
    fn capacity_shed_fires_in_model() {
        let mut m = ServeMachine::new(
            1,
            1,
            u64::MAX,
            1,
            vec![vec![spec(1, 0, 0), spec(2, 0, 0)]],
            false,
            ServeDefect::None,
        );
        // Submit both before any worker runs: second one must shed.
        let ops = m.enabled();
        m.step(ops[0]);
        let ops = m.enabled();
        m.step(ops[0]);
        m.check().unwrap();
        assert_eq!(m.shed(), 1);
    }

    #[test]
    fn dedup_miss_defect_breaks_exactness() {
        let mut m = ServeMachine::new(
            1,
            8,
            u64::MAX,
            1,
            vec![vec![spec(1, 0, 0), spec(1, 0, 0)]],
            false,
            ServeDefect::DedupMiss,
        );
        let ops = m.enabled();
        m.step(ops[0]);
        let ops = m.enabled();
        m.step(ops[0]);
        let err = m.check().unwrap_err();
        assert!(err.contains("dedup"), "unexpected error: {err}");
    }

    #[test]
    fn admit_past_drain_defect_breaks_frozen_set() {
        let mut m = ServeMachine::new(
            1,
            8,
            u64::MAX,
            1,
            vec![vec![spec(1, 0, 0)]],
            true,
            ServeDefect::AdmitPastDrain,
        );
        m.step(ServeOp::Drain);
        m.step(ServeOp::Submit {
            client: 0,
            id: 1,
            domain: 0,
        });
        let err = m.check().unwrap_err();
        assert!(err.contains("admit past drain"), "unexpected error: {err}");
    }

    #[test]
    fn lose_retry_defect_strands_the_drain() {
        let mut m = ServeMachine::new(
            1,
            8,
            u64::MAX,
            3,
            vec![vec![spec(1, 0, 1)]],
            true,
            ServeDefect::LoseRetry,
        );
        m.step(ServeOp::Submit {
            client: 0,
            id: 1,
            domain: 0,
        });
        m.step(ServeOp::Drain);
        m.step(ServeOp::Work { domain: 0 });
        // Attempt failed with retries remaining, but the retry was lost:
        // accounting now disagrees (1 outstanding, 0 queued).
        let err = m.check().unwrap_err();
        assert!(err.contains("accounting"), "unexpected error: {err}");
    }

    #[test]
    fn double_enqueue_defect_double_runs() {
        let mut m = ServeMachine::new(
            1,
            8,
            u64::MAX,
            3,
            vec![vec![spec(1, 0, 0)]],
            false,
            ServeDefect::DoubleEnqueue,
        );
        m.step(ServeOp::Submit {
            client: 0,
            id: 1,
            domain: 0,
        });
        m.step(ServeOp::Work { domain: 0 });
        // The ghost requeue is already a double-run hazard.
        let err = m.check().unwrap_err();
        assert!(err.contains("double-run"), "unexpected error: {err}");
    }
}
