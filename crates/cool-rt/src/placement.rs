//! Object placement registry: the threaded runtime's stand-in for the
//! simulated address space's page table.
//!
//! Real objects live wherever Rust allocated them; what matters to the
//! scheduler is the *declared* home of each logical object: `alloc_on(p)`
//! plays the role of `new (p) T`, `migrate` re-homes, and `home` resolves an
//! object for collocation. Object references are opaque ids.

use parking_lot::RwLock;

use cool_core::{ObjRef, ProcId};

/// Thread-safe registry of logical object homes.
#[derive(Debug, Default)]
pub struct Placement {
    homes: RwLock<Vec<ProcId>>,
}

impl Placement {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new logical object homed on `p`; returns its reference.
    pub fn alloc_on(&self, p: ProcId) -> ObjRef {
        let mut homes = self.homes.write();
        homes.push(p);
        ObjRef((homes.len() - 1) as u64)
    }

    /// `migrate()`: re-home an object.
    pub fn migrate(&self, obj: ObjRef, p: ProcId) {
        let mut homes = self.homes.write();
        let slot = homes
            .get_mut(obj.0 as usize)
            .unwrap_or_else(|| panic!("migrate of unregistered object {obj}"));
        *slot = p;
    }

    /// `home()`: the processor whose local memory (conceptually) holds the
    /// object.
    pub fn home(&self, obj: ObjRef) -> ProcId {
        *self
            .homes
            .read()
            .get(obj.0 as usize)
            .unwrap_or_else(|| panic!("home() of unregistered object {obj}"))
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.homes.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_home_roundtrip() {
        let p = Placement::new();
        let a = p.alloc_on(ProcId(3));
        let b = p.alloc_on(ProcId(1));
        assert_eq!(p.home(a), ProcId(3));
        assert_eq!(p.home(b), ProcId(1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn migrate_rehomes() {
        let p = Placement::new();
        let a = p.alloc_on(ProcId(0));
        p.migrate(a, ProcId(5));
        assert_eq!(p.home(a), ProcId(5));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn home_of_unknown_object_panics() {
        Placement::new().home(ObjRef(42));
    }
}
