//! Stall detection: turn a silent hang into a diagnostic dump.
//!
//! A `waitfor` scope that never finishes — a deadlocked mutex chain, a task
//! blocked on an external event, a logic error that spawned work nobody can
//! run — used to hang `scope()` forever with no output. The watchdog gives
//! the runtime two escape hatches:
//!
//! * a background thread (enabled via [`RtConfig::with_stall_timeout`]) that
//!   notices when a scope is open but no task has executed for the
//!   configured interval, prints a [`StallDump`] to stderr and records it
//!   for inspection via `Runtime::stall_dumps()`;
//! * `Runtime::scope_with_timeout`, which gives up waiting after a deadline
//!   and returns the dump in `ScopeError::Stalled` instead of blocking.
//!
//! The interval should exceed the longest-running single task: the liveness
//! signal is "a task finished recently", so one long-running body with no
//! completions in between is indistinguishable from a stall.
//!
//! [`RtConfig::with_stall_timeout`]: crate::RtConfig::with_stall_timeout

use std::fmt;

use cool_core::{ObjRef, SchedStats};

/// Snapshot of runtime state at the moment a stall was detected.
///
/// Everything a post-mortem needs: where the unrun work sits, which mutex
/// objects are held (the usual suspects in a deadlock), and the scheduling
/// counters up to the stall.
#[derive(Clone, Debug)]
pub struct StallDump {
    /// Tasks sitting in each server's queues, by server index.
    pub queue_depths: Vec<usize>,
    /// Objects whose `mutex` is currently held, sorted.
    pub held_mutexes: Vec<ObjRef>,
    /// Aggregated scheduling statistics at dump time.
    pub stats: SchedStats,
    /// `waitfor` scopes open at dump time.
    pub open_scopes: usize,
    /// Tasks executed since startup (the liveness counter that went quiet).
    pub tasks_executed: u64,
    /// Ids of work in flight at dump time, sorted: task uids for a scope
    /// stall, request (idempotency) ids for a service-pool stall. The
    /// difference between these and the queue depths is what makes a dump
    /// diagnosable — it names the work that is stuck, not just how much.
    pub in_flight: Vec<u64>,
}

impl fmt::Display for StallDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "runtime stalled: {} scope(s) open, no task completed recently \
             ({} executed since startup)",
            self.open_scopes, self.tasks_executed
        )?;
        write!(f, "  queue depths:")?;
        for (p, d) in self.queue_depths.iter().enumerate() {
            write!(f, " s{p}={d}")?;
        }
        writeln!(f)?;
        if self.held_mutexes.is_empty() {
            writeln!(f, "  held mutexes: none")?;
        } else {
            write!(f, "  held mutexes:")?;
            for o in &self.held_mutexes {
                write!(f, " {o:?}")?;
            }
            writeln!(f)?;
        }
        if self.in_flight.is_empty() {
            writeln!(f, "  in flight: none")?;
        } else {
            write!(f, "  in flight:")?;
            for id in &self.in_flight {
                write!(f, " #{id}")?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "  stats: spawned={} executed={} stolen={} failed_steals={} \
             mutex_blocks={} mutex_retries={} mutex_parks={} panics={}",
            self.stats.spawned,
            self.stats.executed,
            self.stats.tasks_stolen,
            self.stats.failed_steals,
            self.stats.mutex_blocks,
            self.stats.mutex_retries,
            self.stats.mutex_parks,
            self.stats.panics,
        )
    }
}

impl StallDump {
    /// Total queued-but-unrun tasks across all servers.
    pub fn total_queued(&self) -> usize {
        self.queue_depths.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_queues_and_mutexes() {
        let d = StallDump {
            queue_depths: vec![3, 0, 1],
            held_mutexes: vec![ObjRef(7)],
            stats: SchedStats::default(),
            open_scopes: 1,
            tasks_executed: 42,
            in_flight: vec![11, 29],
        };
        let s = d.to_string();
        assert!(s.contains("s0=3"), "{s}");
        assert!(s.contains("s2=1"), "{s}");
        assert!(s.contains("ObjRef(7)"), "{s}");
        assert!(s.contains("1 scope(s) open"), "{s}");
        assert!(s.contains("#11") && s.contains("#29"), "{s}");
        assert_eq!(d.total_queued(), 4);
    }
}
