//! Threaded-runtime side of fault injection: atomic counters that turn a
//! declarative [`FaultPlan`] into concrete events on worker threads.
//!
//! One plan unit is interpreted as one microsecond of wall-clock delay. The
//! injector never touches task bodies — an injected failure aborts a task's
//! first dispatch *before* the body runs and requeues it untouched, so the
//! task still executes exactly once and application results are unaffected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cool_core::FaultPlan;

/// Per-runtime injection state: the plan plus the counters that decide which
/// spawn/dispatch an event lands on.
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    /// Global spawn counter (matches the plan's spawn indices).
    spawns: AtomicU64,
    /// Per-server dispatch counters (matches `Stall::nth_dispatch`).
    dispatches: Vec<AtomicU64>,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan, nservers: usize) -> Self {
        FaultInjector {
            plan,
            spawns: AtomicU64::new(0),
            dispatches: (0..nservers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Claim the next global spawn index and report whether that task's
    /// first dispatch should fail.
    pub(crate) fn on_spawn(&self) -> bool {
        let idx = self.spawns.fetch_add(1, Ordering::Relaxed);
        self.plan.should_fail(idx)
    }

    /// Claim `proc`'s next dispatch number and return the straggler + stall
    /// delay owed before the task body runs.
    pub(crate) fn dispatch_delay(&self, proc: usize) -> Duration {
        let nth = self.dispatches[proc].fetch_add(1, Ordering::Relaxed);
        Duration::from_micros(self.plan.slow_units(proc) + self.plan.stall_units(proc, nth))
    }

    /// Delay owed each time `proc` comes back from idle.
    pub(crate) fn wakeup_delay(&self, proc: usize) -> Duration {
        Duration::from_micros(self.plan.wakeup_units(proc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_counter_matches_plan_indices() {
        let inj = FaultInjector::new(FaultPlan::new(0).fail_task(0).fail_task(2), 2);
        assert!(inj.on_spawn()); // spawn 0
        assert!(!inj.on_spawn()); // spawn 1
        assert!(inj.on_spawn()); // spawn 2
        assert!(!inj.on_spawn()); // spawn 3
    }

    #[test]
    fn dispatch_delay_combines_slow_and_stall() {
        let inj = FaultInjector::new(
            FaultPlan::new(0).slow_server(1, 5).stall_server(1, 1, 100),
            2,
        );
        assert_eq!(inj.dispatch_delay(0), Duration::ZERO);
        assert_eq!(inj.dispatch_delay(1), Duration::from_micros(5));
        assert_eq!(inj.dispatch_delay(1), Duration::from_micros(105));
        assert_eq!(inj.dispatch_delay(1), Duration::from_micros(5));
    }

    #[test]
    fn wakeup_delay_is_per_proc() {
        let inj = FaultInjector::new(FaultPlan::new(0).delay_wakeups(0, 30), 2);
        assert_eq!(inj.wakeup_delay(0), Duration::from_micros(30));
        assert_eq!(inj.wakeup_delay(1), Duration::ZERO);
    }
}
