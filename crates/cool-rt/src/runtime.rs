//! The threaded runtime: worker threads, scopes, and the scheduling loop.
//!
//! ## Failure model
//!
//! A task body that panics does not take the runtime down with it. Execution
//! is wrapped in `catch_unwind`, and the two pieces of scheduler state a task
//! can hold — its slot in the enclosing `waitfor` scope and the `mutex_on`
//! object it may have locked — are released by RAII guards (`ScopeTicket`,
//! `HeldGuard`) that run on the unwind path too. The worker thread then
//! keeps scheduling; the failure is reported to the scope's waiter as a
//! [`TaskError`] inside [`ScopeError::Panicked`], and counted in
//! `SchedStats::panics`.
//!
//! Scopes that never finish are handled by the stall watchdog (see the
//! [`watchdog`](crate::watchdog) module) and by
//! [`Runtime::scope_with_timeout`].

use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use cool_core::obs::{ObsEvent, ObsRecorder, ObsTrace};
use cool_core::{
    AdaptiveConfig, AffinityKind, AffinitySpec, FaultPlan, ObjRef, PolicyFeedback, ProcId,
    SchedStats, ServerQueues, StealPolicy, TaskError, TaskUid, Topology, VictimOrders,
};

use crate::faults::FaultInjector;
use crate::placement::Placement;
use crate::watchdog::StallDump;

/// Consecutive failed mutex acquisitions on one server before it stops
/// spin-requeueing and parks briefly instead.
const MUTEX_PARK_AFTER: usize = 16;

/// How long a server parks once mutex contention escalates past
/// [`MUTEX_PARK_AFTER`] consecutive rotations.
const MUTEX_PARK: Duration = Duration::from_micros(50);

/// Configuration for the threaded runtime.
#[derive(Clone, Copy, Debug)]
pub struct RtConfig {
    /// Worker threads (servers).
    pub nthreads: usize,
    /// Processors per scheduling cluster (affects steal order and the
    /// cluster-only policy; purely logical on a UMA host).
    pub procs_per_cluster: usize,
    /// Steal policy.
    pub policy: StealPolicy,
    /// Affinity-queue array size per server.
    pub affinity_slots: usize,
    /// If set, run a watchdog thread that dumps diagnostics whenever a scope
    /// is open but no task has completed for this long.
    pub stall_timeout: Option<Duration>,
    /// Record scheduler-observability events ([`ObsEvent`]) into per-worker
    /// rings, drained with [`Runtime::take_obs`]. Timestamps are nanoseconds
    /// since runtime startup. Off by default: when disabled every emission
    /// site is a single branch.
    pub record_trace: bool,
    /// Full machine tree override. `None` (the default) derives the classic
    /// 2-level topology from `nthreads` × `procs_per_cluster`; `Some` runs
    /// the workers on an N-level tree (see [`Topology::tree`]) so the
    /// per-level steal knobs of [`StealPolicy`] have levels to widen over.
    pub topology: Option<Topology>,
    /// Closed-loop policy adaptation (see [`cool_core::feedback`]): each
    /// worker keeps a private [`PolicyFeedback`] aggregator fed at its own
    /// task boundaries, so no cross-thread timing enters the control loop.
    /// The threaded runtime has no memory model, so only the starvation
    /// widening and probe-cap controls engage (the migration throttle
    /// never sees a remote-miss signal). `None` keeps every knob static.
    pub adaptive: Option<AdaptiveConfig>,
}

impl RtConfig {
    /// Sensible defaults for `nthreads` workers.
    pub fn new(nthreads: usize) -> Self {
        RtConfig {
            nthreads,
            procs_per_cluster: 4,
            policy: StealPolicy::default(),
            affinity_slots: 64,
            stall_timeout: None,
            record_trace: false,
            topology: None,
            adaptive: None,
        }
    }

    /// Run the workers on an explicit machine tree (builder style). The
    /// tree's processor count must equal `nthreads`.
    pub fn with_topology(mut self, topo: Topology) -> Self {
        self.topology = Some(topo);
        self
    }

    /// Enable scheduler-observability tracing (see [`Runtime::take_obs`]).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Replace the steal policy.
    pub fn with_policy(mut self, policy: StealPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable the stall watchdog. Pick an interval longer than the
    /// longest-running single task: the liveness signal is task
    /// *completions*, so one long body looks the same as a stall.
    pub fn with_stall_timeout(mut self, interval: Duration) -> Self {
        self.stall_timeout = Some(interval);
        self
    }

    /// Enable closed-loop policy adaptation (see [`RtConfig::adaptive`]).
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = Some(adaptive);
        self
    }
}

/// The body type for threaded tasks.
pub type RtBody = Box<dyn FnOnce(&RtCtx<'_>) + Send>;

/// A task for the threaded runtime (mirrors `cool_sim::Task`).
pub struct RtTask {
    body: RtBody,
    affinity: AffinitySpec,
    mutex_on: Option<ObjRef>,
    label: Option<&'static str>,
}

impl RtTask {
    /// A task with no hints.
    pub fn new(body: impl FnOnce(&RtCtx<'_>) + Send + 'static) -> Self {
        RtTask {
            body: Box::new(body),
            affinity: AffinitySpec::none(),
            mutex_on: None,
            label: None,
        }
    }

    /// Attach an affinity specification.
    pub fn with_affinity(mut self, spec: AffinitySpec) -> Self {
        self.affinity = spec;
        self
    }

    /// Declare the task a `mutex` function on `obj`.
    pub fn with_mutex(mut self, obj: ObjRef) -> Self {
        self.mutex_on = Some(obj);
        self
    }

    /// Attach a label that appears in the observability trace.
    pub fn with_label(mut self, label: &'static str) -> Self {
        self.label = Some(label);
        self
    }
}

/// A queued task bound to its scheduling decision and scope.
struct Queued {
    task: RtTask,
    target: ProcId,
    hinted: bool,
    /// Identity in the observability trace (assigned at spawn).
    uid: TaskUid,
    /// RAII membership in the enclosing scope: dropped (normally, on panic,
    /// or if the task is discarded at shutdown) it signals completion.
    ticket: ScopeTicket,
    /// This task's first dispatch must fail (transient injected fault).
    inject: bool,
    /// The task has already been through a mutex rotation (stats tell first
    /// blocks apart from retries).
    blocked_before: bool,
}

/// Scope bookkeeping for `waitfor`.
struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    /// Panics collected from tasks in this scope.
    failures: Mutex<Vec<TaskError>>,
}

impl ScopeState {
    fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            remaining: Mutex::new(0),
            done: Condvar::new(),
            failures: Mutex::new(Vec::new()),
        })
    }

    fn enter(&self) {
        *self.remaining.lock() += 1;
    }

    fn exit(&self) {
        let mut r = self.remaining.lock();
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn record_failure(&self, err: TaskError) {
        self.failures.lock().push(err);
    }

    fn take_failures(&self) -> Vec<TaskError> {
        std::mem::take(&mut *self.failures.lock())
    }

    fn wait(&self) {
        let mut r = self.remaining.lock();
        while *r > 0 {
            self.done.wait(&mut r);
        }
    }

    /// Wait until the scope drains or `deadline` passes; true iff drained.
    fn wait_until(&self, deadline: Instant) -> bool {
        let mut r = self.remaining.lock();
        while *r > 0 {
            if self.done.wait_until(&mut r, deadline).timed_out() {
                return *r == 0;
            }
        }
        true
    }
}

/// RAII token for one task's membership in a scope. Created at spawn time;
/// however the task ends — normal return, panic, or being dropped unrun when
/// the runtime shuts down — the drop signals the scope, so `scope()` can
/// never be left waiting on a task that no longer exists.
struct ScopeTicket {
    scope: Arc<ScopeState>,
}

impl ScopeTicket {
    fn new(scope: Arc<ScopeState>) -> Self {
        scope.enter();
        ScopeTicket { scope }
    }

    fn scope(&self) -> &Arc<ScopeState> {
        &self.scope
    }
}

impl Drop for ScopeTicket {
    fn drop(&mut self) {
        self.scope.exit();
    }
}

/// RAII ownership of one object's mutex in the global `held` set: released
/// on drop, so a panicking mutex task cannot leak the lock and wedge every
/// later task on the same object.
struct HeldGuard<'a> {
    held: &'a Mutex<HashSet<ObjRef>>,
    obj: ObjRef,
}

impl Drop for HeldGuard<'_> {
    fn drop(&mut self) {
        self.held.lock().remove(&self.obj);
    }
}

/// One server: its queues, sleep signal and statistics.
struct Server {
    queues: Mutex<ServerQueues<Queued>>,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    stats: Mutex<SchedStats>,
}

struct Inner {
    servers: Vec<Server>,
    topology: Topology,
    /// Precomputed per-thief victim orders with common-ancestor levels
    /// (the per-scan `steal_order` allocation sat on the idle hot path).
    victims: VictimOrders,
    policy: StealPolicy,
    /// Adaptation knobs each worker builds its private aggregator from.
    adaptive: Option<AdaptiveConfig>,
    placement: Placement,
    /// Objects whose mutex is currently held.
    held: Mutex<HashSet<ObjRef>>,
    /// Fault injection, if this runtime was built with a plan.
    faults: Option<FaultInjector>,
    /// Liveness counter for the watchdog: bumped on every task completion
    /// and on scope open, so "unchanged for a while" means "stalled".
    activity: AtomicU64,
    /// `waitfor` scopes currently open.
    open_scopes: AtomicUsize,
    /// Uid of the task currently executing on each server (`u64::MAX` when
    /// idle); read by `dump()` so a stall names the bodies that are stuck,
    /// not just the queue depths around them.
    executing: Vec<AtomicU64>,
    /// Diagnostic dumps produced by the watchdog thread.
    dumps: Mutex<Vec<StallDump>>,
    shutdown: AtomicBool,
    /// Observability recorder (present iff `RtConfig::record_trace`).
    obs: Option<ObsRecorder>,
    /// Epoch for observability timestamps (ns since runtime startup).
    epoch: Instant,
    /// Next task identity for the observability trace; `TaskUid(0)` stays
    /// reserved for the root context.
    next_uid: AtomicU64,
}

impl Inner {
    /// Observability enabled? Emission sites check this before building an
    /// event, so disabled tracing costs one branch.
    #[inline]
    fn obs_on(&self) -> bool {
        self.obs.is_some()
    }

    /// Record `ev` on `worker`'s ring (no-op when tracing is off). Workers
    /// record under their own index on the hot path; spawn-side events go to
    /// the target server's ring, which is already serialized by its queue
    /// lock.
    fn obs_emit(&self, worker: usize, ev: ObsEvent) {
        if let Some(obs) = &self.obs {
            obs.record(worker, ev);
        }
    }

    /// Observability timestamp: nanoseconds since runtime startup.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// A fresh task identity for the observability trace.
    fn fresh_uid(&self) -> TaskUid {
        TaskUid(self.next_uid.fetch_add(1, Ordering::Relaxed))
    }

    fn total_stats(&self) -> SchedStats {
        let mut total = SchedStats::default();
        for s in &self.servers {
            total += *s.stats.lock();
        }
        total
    }

    /// Snapshot the state a stall post-mortem needs.
    fn dump(&self) -> StallDump {
        let mut held: Vec<ObjRef> = self.held.lock().iter().copied().collect();
        held.sort();
        let stats = self.total_stats();
        let mut in_flight: Vec<u64> = self
            .executing
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .filter(|&u| u != u64::MAX)
            .collect();
        in_flight.sort_unstable();
        StallDump {
            queue_depths: self.servers.iter().map(|s| s.queues.lock().len()).collect(),
            held_mutexes: held,
            tasks_executed: stats.executed,
            stats,
            open_scopes: self.open_scopes.load(Ordering::SeqCst),
            in_flight,
        }
    }
}

/// Why a `waitfor` scope did not complete cleanly.
#[derive(Debug)]
pub enum ScopeError {
    /// One or more tasks panicked. The scope still ran to completion — every
    /// non-panicking task executed — and the runtime remains usable.
    Panicked(Vec<TaskError>),
    /// The scope was still unfinished when the deadline passed. The dump
    /// shows where the unrun work and held mutexes sit.
    Stalled {
        /// Diagnostic snapshot taken when the deadline expired.
        dump: Box<StallDump>,
        /// How long the scope was given.
        waited: Duration,
    },
}

impl std::fmt::Display for ScopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScopeError::Panicked(errs) => {
                write!(f, "{} task(s) panicked in scope", errs.len())?;
                for e in errs {
                    write!(f, "; {e}")?;
                }
                Ok(())
            }
            ScopeError::Stalled { dump, waited } => {
                write!(f, "scope stalled after {waited:?}: {dump}")
            }
        }
    }
}

impl std::error::Error for ScopeError {}

/// Result of running a `waitfor` scope.
pub type ScopeResult = Result<(), ScopeError>;

/// The threaded COOL runtime. Dropping it shuts the workers down.
pub struct Runtime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

/// The context a threaded task body runs against.
pub struct RtCtx<'a> {
    inner: &'a Inner,
    proc: ProcId,
    /// Executing task's identity in the observability trace (`TaskUid(0)`
    /// for the scope seed).
    task: TaskUid,
    scope: Arc<ScopeState>,
}

/// Decrements `open_scopes` when the scope call returns by any path.
struct OpenScopeGuard<'a>(&'a Inner);

impl Drop for OpenScopeGuard<'_> {
    fn drop(&mut self) {
        self.0.open_scopes.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Runtime {
    /// Start `cfg.nthreads` workers.
    pub fn new(cfg: RtConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Start a runtime whose scheduling is perturbed by `plan` (one plan
    /// unit = one microsecond). Injected task failures are transient: the
    /// task's first dispatch aborts before the body runs and the body is
    /// requeued, so results are unaffected.
    pub fn with_faults(cfg: RtConfig, plan: FaultPlan) -> Self {
        Self::build(cfg, Some(plan))
    }

    fn build(cfg: RtConfig, plan: Option<FaultPlan>) -> Self {
        assert!(cfg.nthreads >= 1);
        let topology = cfg
            .topology
            .unwrap_or_else(|| Topology::clustered(cfg.nthreads, cfg.procs_per_cluster));
        assert_eq!(
            topology.nservers, cfg.nthreads,
            "topology processor count must equal nthreads"
        );
        let inner = Arc::new(Inner {
            servers: (0..cfg.nthreads)
                .map(|_| Server {
                    queues: Mutex::new(ServerQueues::new(cfg.affinity_slots)),
                    sleep_lock: Mutex::new(()),
                    wake: Condvar::new(),
                    stats: Mutex::new(SchedStats::default()),
                })
                .collect(),
            victims: topology.victim_orders(),
            topology,
            policy: cfg.policy,
            adaptive: cfg.adaptive,
            placement: Placement::new(),
            held: Mutex::new(HashSet::new()),
            faults: plan.map(|p| FaultInjector::new(p, cfg.nthreads)),
            activity: AtomicU64::new(0),
            open_scopes: AtomicUsize::new(0),
            executing: (0..cfg.nthreads).map(|_| AtomicU64::new(u64::MAX)).collect(),
            dumps: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            obs: cfg
                .record_trace
                .then(|| ObsRecorder::with_default_capacity(cfg.nthreads)),
            epoch: Instant::now(),
            next_uid: AtomicU64::new(1),
        });
        let workers = (0..cfg.nthreads)
            .map(|p| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("cool-server-{p}"))
                    .spawn(move || worker_loop(&inner, ProcId(p)))
                    .expect("spawn worker")
            })
            .collect();
        let watchdog = cfg.stall_timeout.map(|interval| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("cool-watchdog".into())
                .spawn(move || watchdog_loop(&inner, interval))
                .expect("spawn watchdog")
        });
        Runtime {
            inner,
            workers,
            watchdog,
        }
    }

    /// The placement registry (`alloc_on` / `migrate` / `home`).
    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    /// Number of servers.
    pub fn nservers(&self) -> usize {
        self.inner.servers.len()
    }

    /// Run a `waitfor` scope: execute `seed` (on the calling thread, as
    /// creator server 0), then block until every task transitively spawned
    /// inside the scope has completed.
    ///
    /// Returns `Err(ScopeError::Panicked)` if any task body panicked; the
    /// scope still drained (panicked tasks released their scope slot and any
    /// held mutex via RAII) and the runtime stays usable. A panic in `seed`
    /// itself is propagated to the caller — after the tasks it already
    /// spawned have drained.
    pub fn scope(&self, seed: impl FnOnce(&RtCtx<'_>)) -> ScopeResult {
        self.run_scope(seed, None)
    }

    /// Like [`Runtime::scope`], but give up waiting after `timeout` and
    /// return [`ScopeError::Stalled`] with a diagnostic dump instead of
    /// blocking forever. Tasks of an abandoned scope may still run later;
    /// their scope bookkeeping stays valid.
    pub fn scope_with_timeout(
        &self,
        timeout: Duration,
        seed: impl FnOnce(&RtCtx<'_>),
    ) -> ScopeResult {
        self.run_scope(seed, Some(timeout))
    }

    fn run_scope(&self, seed: impl FnOnce(&RtCtx<'_>), timeout: Option<Duration>) -> ScopeResult {
        let scope = ScopeState::new();
        self.inner.open_scopes.fetch_add(1, Ordering::SeqCst);
        // Restart the watchdog's quiet-period clock for this scope.
        self.inner.activity.fetch_add(1, Ordering::SeqCst);
        let _open = OpenScopeGuard(&self.inner);
        let seed_result = {
            let ctx = RtCtx {
                inner: &self.inner,
                proc: ProcId(0),
                task: TaskUid(0),
                scope: scope.clone(),
            };
            catch_unwind(AssertUnwindSafe(|| seed(&ctx)))
        };
        let completed = match timeout {
            None => {
                scope.wait();
                true
            }
            Some(t) => scope.wait_until(Instant::now() + t),
        };
        if let Err(payload) = seed_result {
            resume_unwind(payload);
        }
        if !completed {
            return Err(ScopeError::Stalled {
                dump: Box::new(self.inner.dump()),
                waited: timeout.expect("timeout present when incomplete"),
            });
        }
        let failures = scope.take_failures();
        if failures.is_empty() {
            Ok(())
        } else {
            Err(ScopeError::Panicked(failures))
        }
    }

    /// Aggregated scheduling statistics since startup.
    pub fn stats(&self) -> SchedStats {
        self.inner.total_stats()
    }

    /// Per-server scheduling statistics since startup, by server index.
    pub fn server_stats(&self) -> Vec<SchedStats> {
        self.inner.servers.iter().map(|s| *s.stats.lock()).collect()
    }

    /// Diagnostic dumps recorded by the stall watchdog (empty unless the
    /// runtime was built with [`RtConfig::with_stall_timeout`] and a stall
    /// was detected).
    pub fn stall_dumps(&self) -> Vec<StallDump> {
        self.inner.dumps.lock().clone()
    }

    /// Drain the observability trace recorded so far (empty unless the
    /// runtime was built with [`RtConfig::with_trace`]). Timestamps are
    /// nanoseconds since startup; the stream is ordered by emission sequence.
    /// Memory deltas (`TaskEnd::mem`) are absent on this backend — the
    /// threaded runtime has no simulated memory system to attribute.
    pub fn take_obs(&self) -> ObsTrace {
        self.inner
            .obs
            .as_ref()
            .map(ObsRecorder::drain)
            .unwrap_or_default()
    }

    /// Objects whose `mutex` is currently held (diagnostics; normally empty
    /// when no scope is running).
    pub fn held_mutexes(&self) -> Vec<ObjRef> {
        let mut v: Vec<ObjRef> = self.inner.held.lock().iter().copied().collect();
        v.sort();
        v
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for s in &self.inner.servers {
            let _guard = s.sleep_lock.lock();
            s.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }
}

impl RtCtx<'_> {
    /// The server executing this task (or the creator, inside `scope`).
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// Number of servers.
    pub fn nservers(&self) -> usize {
        self.inner.servers.len()
    }

    /// Register a logical object homed on processor `p % nservers`.
    pub fn alloc_on(&self, p: usize) -> ObjRef {
        self.inner
            .placement
            .alloc_on(ProcId(p % self.inner.servers.len()))
    }

    /// `migrate()`: re-home a logical object.
    pub fn migrate(&self, obj: ObjRef, p: usize) {
        let to = ProcId(p % self.inner.servers.len());
        self.inner.placement.migrate(obj, to);
        if self.inner.obs_on() {
            self.inner.obs_emit(
                self.proc.index(),
                ObsEvent::Migrate {
                    task: self.task,
                    obj,
                    // No memory model on this backend: size unknown.
                    bytes: 0,
                    to,
                    time: self.inner.now_ns(),
                },
            );
        }
    }

    /// `home()`.
    pub fn home(&self, obj: ObjRef) -> ProcId {
        self.inner.placement.home(obj)
    }

    /// Spawn a task into the enclosing scope.
    pub fn spawn(&self, task: RtTask) {
        let ticket = ScopeTicket::new(self.scope.clone());
        enqueue(self.inner, self.proc, task, ticket);
    }
}

/// Resolve affinity and enqueue, waking the target server.
fn enqueue(inner: &Inner, creator: ProcId, task: RtTask, ticket: ScopeTicket) {
    let spec = task.affinity;
    let target = spec.resolve_server(inner.servers.len(), creator, |o| inner.placement.home(o));
    let hinted = spec.is_hinted();
    let kind = spec.kind();
    let inject = inner.faults.as_ref().is_some_and(|f| f.on_spawn());
    let queued = Queued {
        task,
        target,
        hinted,
        uid: inner.fresh_uid(),
        ticket,
        inject,
        blocked_before: false,
    };
    let server = &inner.servers[target.index()];
    {
        let mut q = server.queues.lock();
        match spec.queue_token() {
            Some(tok) => {
                let update = q.push_affinity(tok, kind, queued);
                if update.newly_linked && inner.obs_on() {
                    inner.obs_emit(
                        target.index(),
                        ObsEvent::SlotLink {
                            proc: target,
                            slot: update.slot.expect("affinity push fills a slot"),
                            token: tok,
                            time: inner.now_ns(),
                        },
                    );
                }
            }
            None => q.push_default(kind, queued),
        }
        server.stats.lock().spawned += 1;
    }
    let _guard = server.sleep_lock.lock();
    server.wake.notify_one();
}

/// Put a task back at the tail of its queue class on server `mi`.
fn requeue(inner: &Inner, mi: usize, kind: AffinityKind, queued: Queued) {
    let mut q = inner.servers[mi].queues.lock();
    match queued.task.affinity.queue_token() {
        Some(tok) => {
            let update = q.push_affinity(tok, kind, queued);
            if update.newly_linked && inner.obs_on() {
                inner.obs_emit(
                    mi,
                    ObsEvent::SlotLink {
                        proc: ProcId(mi),
                        slot: update.slot.expect("affinity push fills a slot"),
                        token: tok,
                        time: inner.now_ns(),
                    },
                );
            }
        }
        None => q.push_default(kind, queued),
    }
}

fn worker_loop(inner: &Inner, me: ProcId) {
    let mi = me.index();
    let mut failed_scans = 0usize;
    // Consecutive mutex rotations with no task executed: drives the bounded
    // backoff that replaces a hot requeue/yield spin under contention.
    let mut mutex_rotations = 0usize;
    // Private per-worker feedback aggregator: fed only from this worker's
    // own task boundaries and scans, so adaptation never couples workers
    // through shared mutable state (see `cool_core::feedback`).
    let mut feedback = inner
        .adaptive
        .map(|a| PolicyFeedback::new(a, inner.topology.nlevels()));
    loop {
        // 0. Shutdown: leave promptly even with work still queued, so a
        // dropped Runtime joins. Discarded tasks notify their scopes via
        // their ScopeTicket when the queues are dropped.
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // 1. Local work.
        let (popped, depth) = {
            let mut q = inner.servers[mi].queues.lock();
            let depth = q.len();
            let popped = q.pop_local_info();
            if popped.is_some() && inner.obs_on() {
                inner.obs_emit(
                    mi,
                    ObsEvent::QueueDepth {
                        proc: me,
                        depth,
                        time: inner.now_ns(),
                    },
                );
            }
            (popped, depth)
        };
        if let Some(popped) = popped {
            if popped.drained && inner.obs_on() {
                if let Some(slot) = popped.slot {
                    inner.obs_emit(
                        mi,
                        ObsEvent::SlotDrain {
                            proc: me,
                            slot,
                            time: inner.now_ns(),
                        },
                    );
                }
            }
            let (kind, queued) = (popped.kind, popped.payload);
            failed_scans = 0;
            if run_or_rotate(inner, me, kind, queued) {
                mutex_rotations = 0;
                // Task-boundary feedback sample. The host runtime has no
                // memory model, so the reference signals are zero and only
                // the widening/probe-cap controls can engage.
                if let Some(fb) = feedback.as_mut() {
                    if fb.note_task(0, 0, depth) {
                        inner.servers[mi].stats.lock().adaptive_widenings += 1;
                    }
                }
            } else {
                mutex_rotations += 1;
                if mutex_rotations >= MUTEX_PARK_AFTER {
                    // The only runnable work is blocked on a mutex another
                    // server holds: stop burning the core, nap briefly.
                    inner.servers[mi].stats.lock().mutex_parks += 1;
                    std::thread::sleep(MUTEX_PARK);
                } else {
                    std::thread::yield_now();
                }
            }
            continue;
        }
        // 2. Steal.
        if inner.policy.enabled {
            let desperate = failed_scans >= inner.policy.last_resort_after;
            // Strict locality ceilings (see cool-sim): desperation lifts
            // only the object-affinity avoidance, never the cluster/radius
            // boundary; polite widening raises itself per failed scan.
            let allowed = inner.policy.allowed_level(&inner.topology, failed_scans);
            // Adaptive widening and probe capping, from this worker's own
            // feedback (see cool-sim's steal scan for the same controls).
            let (allowed, probe_cap) = match &feedback {
                Some(fb) => (allowed.saturating_add(fb.extra_levels()), fb.probe_cap()),
                None => (allowed, usize::MAX),
            };
            let mem_level = inner.topology.mem_level() as u8;
            let mut stolen = None;
            let mut probes = 0usize;
            for &(v, lvl) in inner.victims.order(me) {
                if (lvl as usize) > allowed {
                    continue;
                }
                if probes >= probe_cap {
                    break;
                }
                let cross = lvl > mem_level;
                probes += 1;
                let avoid = inner.policy.avoid_object_affinity && !desperate;
                let batch = inner.servers[v.index()]
                    .queues
                    .lock()
                    .steal_with(avoid, inner.policy.steal_whole_sets);
                if let Some(batch) = batch {
                    let mut st = inner.servers[mi].stats.lock();
                    st.tasks_stolen += batch.tasks.len() as u64;
                    if batch.token.is_some() {
                        st.sets_stolen += 1;
                    }
                    if cross {
                        st.remote_steals += 1;
                    }
                    if desperate {
                        st.desperate_steals += 1;
                    }
                    st.steals_by_level[lvl as usize] += 1;
                    drop(st);
                    if inner.obs_on() {
                        inner.obs_emit(
                            mi,
                            ObsEvent::StealSuccess {
                                thief: me,
                                victim: v,
                                token: batch.token,
                                ntasks: batch.tasks.len(),
                                time: inner.now_ns(),
                            },
                        );
                    }
                    stolen = Some(batch);
                    break;
                }
            }
            if let Some(fb) = feedback.as_mut() {
                fb.note_scan(stolen.is_none());
            }
            match stolen {
                Some(batch) => {
                    let kind = if batch.token.is_some() {
                        AffinityKind::Task
                    } else {
                        AffinityKind::None
                    };
                    inner.servers[mi].queues.lock().push_stolen(batch, kind);
                    failed_scans = 0;
                    continue;
                }
                None => {
                    failed_scans += 1;
                    inner.servers[mi].stats.lock().failed_steals += 1;
                    if inner.obs_on() {
                        inner.obs_emit(
                            mi,
                            ObsEvent::StealFail {
                                thief: me,
                                probes,
                                time: inner.now_ns(),
                            },
                        );
                    }
                }
            }
        }
        // 3. Sleep until woken or shutdown.
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        {
            let server = &inner.servers[mi];
            let mut guard = server.sleep_lock.lock();
            // Re-check under the lock to avoid missed wakeups.
            if server.queues.lock().is_empty() && !inner.shutdown.load(Ordering::SeqCst) {
                server.wake.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
        // Injected fault: a processor slow to notice new work.
        if let Some(inj) = &inner.faults {
            let d = inj.wakeup_delay(mi);
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        }
    }
}

/// Execute a task, or set it aside if its mutex object is busy.
///
/// Returns true if the task made progress (ran, or consumed its injected
/// fault); false if it was rotated because its mutex is held — the signal
/// the worker's bounded backoff keys off.
fn run_or_rotate(inner: &Inner, me: ProcId, kind: AffinityKind, mut queued: Queued) -> bool {
    let mi = me.index();
    if queued.inject {
        // Transient injected failure: consume it before the body runs and
        // requeue the task untouched, so it still executes exactly once.
        queued.inject = false;
        inner.servers[mi].stats.lock().injected_faults += 1;
        requeue(inner, mi, kind, queued);
        return true;
    }
    if let Some(lock_obj) = queued.task.mutex_on {
        let acquired = inner.held.lock().insert(lock_obj);
        if !acquired {
            // Blocked: back of the queue; the server moves on (COOL blocks
            // the task, never the server).
            {
                let mut st = inner.servers[mi].stats.lock();
                if queued.blocked_before {
                    st.mutex_retries += 1;
                } else {
                    st.mutex_blocks += 1;
                }
            }
            if inner.obs_on() && !queued.blocked_before {
                // First block only: retries of the same rotation would flood
                // the ring without adding information.
                inner.obs_emit(
                    mi,
                    ObsEvent::MutexWait {
                        task: queued.uid,
                        lock: lock_obj,
                        proc: me,
                        time: inner.now_ns(),
                    },
                );
            }
            queued.blocked_before = true;
            requeue(inner, mi, kind, queued);
            return false;
        }
        // Held until end of execution — including the unwind path, so a
        // panicking mutex task cannot leak the lock.
        let held = HeldGuard {
            held: &inner.held,
            obj: lock_obj,
        };
        execute(inner, me, queued, Some(held));
    } else {
        execute(inner, me, queued, None);
    }
    true
}

/// Turn a panic payload into something printable for `TaskError`.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn execute(inner: &Inner, me: ProcId, queued: Queued, held: Option<HeldGuard<'_>>) {
    let mi = me.index();
    if let Some(inj) = &inner.faults {
        // Straggler / stall injection charges wall-clock time before the
        // body, where the simulator charges cycles.
        let d = inj.dispatch_delay(mi);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
    {
        let mut st = inner.servers[mi].stats.lock();
        st.executed += 1;
        if queued.hinted {
            st.hinted += 1;
            if queued.target == me {
                st.affinity_hits += 1;
            }
        }
    }
    let traced = inner.obs_on();
    if traced {
        inner.obs_emit(
            mi,
            ObsEvent::TaskBegin {
                task: queued.uid,
                label: queued.task.label,
                proc: me,
                set: queued.task.affinity.queue_token(),
                hinted: queued.hinted,
                on_target: queued.target == me,
                time: inner.now_ns(),
            },
        );
    }
    let Queued { task, ticket, uid, .. } = queued;
    let mutex_on = task.mutex_on;
    let ctx = RtCtx {
        inner,
        proc: me,
        task: uid,
        scope: ticket.scope().clone(),
    };
    let body = task.body;
    inner.executing[mi].store(uid.0, Ordering::SeqCst);
    let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
    inner.executing[mi].store(u64::MAX, Ordering::SeqCst);
    inner.activity.fetch_add(1, Ordering::Relaxed);
    if traced {
        inner.obs_emit(
            mi,
            ObsEvent::TaskEnd {
                task: uid,
                proc: me,
                mem: None,
                time: inner.now_ns(),
            },
        );
    }
    // Release the object's mutex BEFORE the scope ticket fires below: a
    // waiter that observes scope completion must find the lock free.
    drop(held);
    if let Err(payload) = result {
        inner.servers[mi].stats.lock().panics += 1;
        // Record before the ticket drops: the scope waiter must observe the
        // failure once `remaining` reaches zero.
        ticket.scope().record_failure(TaskError {
            proc: mi,
            message: panic_message(payload.as_ref()),
            mutex_on,
        });
    }
    // `ticket` drops here: scope slot released on success and failure alike.
}

/// Background stall detector: while a scope is open, no task completing for
/// a full `interval` produces a diagnostic dump on stderr and in
/// `Runtime::stall_dumps()` (one per quiet interval, not a flood).
fn watchdog_loop(inner: &Inner, interval: Duration) {
    let poll = (interval / 4).max(Duration::from_millis(1));
    let mut last_seen = inner.activity.load(Ordering::SeqCst);
    let mut last_change = Instant::now();
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(poll);
        let act = inner.activity.load(Ordering::SeqCst);
        if act != last_seen {
            last_seen = act;
            last_change = Instant::now();
            continue;
        }
        if inner.open_scopes.load(Ordering::SeqCst) > 0 && last_change.elapsed() >= interval {
            let dump = inner.dump();
            eprintln!("cool-rt watchdog: {dump}");
            inner.dumps.lock().push(dump);
            last_change = Instant::now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_waits_for_all_tasks() {
        let rt = Runtime::new(RtConfig::new(4));
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        rt.scope(move |s| {
            for _ in 0..100 {
                let c = c.clone();
                s.spawn(RtTask::new(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                }));
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_spawns_are_in_scope() {
        let rt = Runtime::new(RtConfig::new(4));
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        rt.scope(move |s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(RtTask::new(move |ctx| {
                    for _ in 0..8 {
                        let c = c.clone();
                        ctx.spawn(RtTask::new(move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        }));
                    }
                }));
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn sequential_scopes_are_barriers() {
        let rt = Runtime::new(RtConfig::new(4));
        let log = Arc::new(Mutex::new(Vec::new()));
        for phase in 0..3u32 {
            let log = log.clone();
            rt.scope(move |s| {
                for _ in 0..16 {
                    let log = log.clone();
                    s.spawn(RtTask::new(move |_| {
                        log.lock().push(phase);
                    }));
                }
            })
            .unwrap();
        }
        let v = log.lock();
        assert_eq!(v.len(), 48);
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "phases interleaved: {v:?}");
    }

    #[test]
    fn processor_affinity_pins_without_stealing() {
        let rt = Runtime::new(RtConfig::new(4).with_policy(StealPolicy::disabled()));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        rt.scope(move |s| {
            for i in 0..32 {
                let seen = s2.clone();
                s.spawn(
                    RtTask::new(move |ctx| {
                        seen.lock().push((i, ctx.proc().index()));
                    })
                    .with_affinity(AffinitySpec::processor(i % 4)),
                );
            }
        })
        .unwrap();
        for &(i, p) in seen.lock().iter() {
            assert_eq!(p, i % 4, "task {i} ran on wrong server");
        }
        assert_eq!(rt.stats().adherence(), 1.0);
    }

    #[test]
    fn object_affinity_follows_placement_and_migration() {
        let rt = Runtime::new(RtConfig::new(4).with_policy(StealPolicy::disabled()));
        let obj = rt.placement().alloc_on(ProcId(2));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        rt.scope(move |s| {
            let seen = s2.clone();
            s.spawn(
                RtTask::new(move |ctx| {
                    seen.lock().push(ctx.proc().index());
                    // Migrate, then respawn: the next task must follow.
                    ctx.migrate(obj, 1);
                    let seen = seen.clone();
                    ctx.spawn(
                        RtTask::new(move |ctx| {
                            seen.lock().push(ctx.proc().index());
                        })
                        .with_affinity(AffinitySpec::object(obj)),
                    );
                })
                .with_affinity(AffinitySpec::object(obj)),
            );
        })
        .unwrap();
        assert_eq!(*seen.lock(), vec![2, 1]);
    }

    #[test]
    fn mutex_tasks_are_mutually_exclusive() {
        let rt = Runtime::new(RtConfig::new(8));
        let obj = rt.placement().alloc_on(ProcId(0));
        let in_section = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let (i2, m2) = (in_section.clone(), max_seen.clone());
        rt.scope(move |s| {
            for _ in 0..64 {
                let (i3, m3) = (i2.clone(), m2.clone());
                s.spawn(
                    RtTask::new(move |_| {
                        let now = i3.fetch_add(1, Ordering::SeqCst) + 1;
                        m3.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(50));
                        i3.fetch_sub(1, Ordering::SeqCst);
                    })
                    .with_mutex(obj),
                );
            }
        })
        .unwrap();
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "mutex violated");
    }

    #[test]
    fn mutex_contention_escalates_to_parking() {
        // One long mutex holder + many blocked tasks on a second server:
        // the retry counter must tick, and with enough rotations the server
        // parks instead of spinning.
        let rt = Runtime::new(RtConfig::new(2).with_policy(StealPolicy::disabled()));
        let obj = rt.placement().alloc_on(ProcId(0));
        rt.scope(|s| {
            s.spawn(
                RtTask::new(|_| {
                    std::thread::sleep(Duration::from_millis(20));
                })
                .with_mutex(obj)
                .with_affinity(AffinitySpec::processor(0)),
            );
            // Give the holder a head start so the rest always collide.
            std::thread::sleep(Duration::from_millis(2));
            for _ in 0..4 {
                s.spawn(
                    RtTask::new(|_| {})
                        .with_mutex(obj)
                        .with_affinity(AffinitySpec::processor(1)),
                );
            }
        })
        .unwrap();
        let st = rt.stats();
        assert!(st.mutex_blocks >= 1, "no first-time blocks: {st:?}");
        assert!(st.mutex_retries > 0, "no retries counted: {st:?}");
        assert!(st.mutex_parks > 0, "contention never parked: {st:?}");
        assert!(rt.held_mutexes().is_empty());
    }

    #[test]
    fn stealing_spreads_work_across_servers() {
        let rt = Runtime::new(RtConfig::new(4));
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let s2 = seen.clone();
        rt.scope(move |s| {
            for _ in 0..200 {
                let seen = s2.clone();
                // Everything lands on server 0; thieves must spread it.
                s.spawn(
                    RtTask::new(move |ctx| {
                        // Enough work that stealing is worthwhile.
                        std::hint::black_box((0..5_000).sum::<u64>());
                        seen.lock().insert(ctx.proc().index());
                    })
                    .with_affinity(AffinitySpec::processor(0)),
                );
            }
        })
        .unwrap();
        // On a single-core host the whole batch can timeslice onto one
        // thief, so "spread across servers" is only required when stolen
        // work and leftover local work can actually run concurrently.
        assert!(
            seen.lock().len() > 1 || rt.stats().tasks_stolen > 0,
            "no stealing happened: {:?}, {:?}",
            seen.lock(),
            rt.stats()
        );
        assert!(rt.stats().tasks_stolen > 0);
    }

    #[test]
    fn exactly_once_under_stress() {
        let rt = Runtime::new(RtConfig::new(8));
        let n = 2_000usize;
        let flags: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let objs: Vec<ObjRef> = (0..16).map(|i| rt.placement().alloc_on(ProcId(i % 8))).collect();
        let f2 = flags.clone();
        rt.scope(move |s| {
            for i in 0..n {
                let flags = f2.clone();
                let aff = match i % 5 {
                    0 => AffinitySpec::none(),
                    1 => AffinitySpec::simple(objs[i % 16]),
                    2 => AffinitySpec::task(objs[i % 16]),
                    3 => AffinitySpec::object(objs[i % 16]),
                    _ => AffinitySpec::processor(i),
                };
                let mut t = RtTask::new(move |_| {
                    flags[i].fetch_add(1, Ordering::SeqCst);
                })
                .with_affinity(aff);
                if i % 7 == 0 {
                    t = t.with_mutex(objs[i % 16]);
                }
                s.spawn(t);
            }
        })
        .unwrap();
        for (i, f) in flags.iter().enumerate() {
            assert_eq!(f.load(Ordering::SeqCst), 1, "task {i} ran wrong # times");
        }
        let st = rt.stats();
        assert_eq!(st.executed, n as u64);
    }

    #[test]
    fn injected_faults_are_transient_and_counted() {
        let plan = FaultPlan::new(9).fail_task(0).fail_task(5).fail_task(31);
        let rt = Runtime::with_faults(RtConfig::new(4), plan);
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        rt.scope(move |s| {
            for _ in 0..32 {
                let c = c.clone();
                s.spawn(RtTask::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                }));
            }
        })
        .unwrap();
        // Every task still ran exactly once despite the failed dispatches.
        assert_eq!(count.load(Ordering::SeqCst), 32);
        let st = rt.stats();
        assert_eq!(st.injected_faults, 3);
        assert_eq!(st.executed, 32);
    }
}
