//! The threaded runtime: worker threads, scopes, and the scheduling loop.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use cool_core::{
    AffinityKind, AffinitySpec, ObjRef, ProcId, SchedStats, ServerQueues, StealPolicy, Topology,
};

use crate::placement::Placement;

/// Configuration for the threaded runtime.
#[derive(Clone, Copy, Debug)]
pub struct RtConfig {
    /// Worker threads (servers).
    pub nthreads: usize,
    /// Processors per scheduling cluster (affects steal order and the
    /// cluster-only policy; purely logical on a UMA host).
    pub procs_per_cluster: usize,
    /// Steal policy.
    pub policy: StealPolicy,
    /// Affinity-queue array size per server.
    pub affinity_slots: usize,
}

impl RtConfig {
    /// Sensible defaults for `nthreads` workers.
    pub fn new(nthreads: usize) -> Self {
        RtConfig {
            nthreads,
            procs_per_cluster: 4,
            policy: StealPolicy::default(),
            affinity_slots: 64,
        }
    }

    /// Replace the steal policy.
    pub fn with_policy(mut self, policy: StealPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// The body type for threaded tasks.
pub type RtBody = Box<dyn FnOnce(&RtCtx<'_>) + Send>;

/// A task for the threaded runtime (mirrors `cool_sim::Task`).
pub struct RtTask {
    body: RtBody,
    affinity: AffinitySpec,
    mutex_on: Option<ObjRef>,
}

impl RtTask {
    /// A task with no hints.
    pub fn new(body: impl FnOnce(&RtCtx<'_>) + Send + 'static) -> Self {
        RtTask {
            body: Box::new(body),
            affinity: AffinitySpec::none(),
            mutex_on: None,
        }
    }

    /// Attach an affinity specification.
    pub fn with_affinity(mut self, spec: AffinitySpec) -> Self {
        self.affinity = spec;
        self
    }

    /// Declare the task a `mutex` function on `obj`.
    pub fn with_mutex(mut self, obj: ObjRef) -> Self {
        self.mutex_on = Some(obj);
        self
    }
}

/// A queued task bound to its scheduling decision and scope.
struct Queued {
    task: RtTask,
    target: ProcId,
    hinted: bool,
    scope: Arc<ScopeState>,
}

/// Scope bookkeeping for `waitfor`.
struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl ScopeState {
    fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            remaining: Mutex::new(0),
            done: Condvar::new(),
        })
    }

    fn enter(&self) {
        *self.remaining.lock() += 1;
    }

    fn exit(&self) {
        let mut r = self.remaining.lock();
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock();
        while *r > 0 {
            self.done.wait(&mut r);
        }
    }
}

/// One server: its queues, sleep signal and statistics.
struct Server {
    queues: Mutex<ServerQueues<Queued>>,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    stats: Mutex<SchedStats>,
}

struct Inner {
    servers: Vec<Server>,
    topology: Topology,
    policy: StealPolicy,
    placement: Placement,
    /// Objects whose mutex is currently held.
    held: Mutex<HashSet<ObjRef>>,
    shutdown: AtomicBool,
}

/// The threaded COOL runtime. Dropping it shuts the workers down.
pub struct Runtime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// The context a threaded task body runs against.
pub struct RtCtx<'a> {
    inner: &'a Inner,
    proc: ProcId,
    scope: Arc<ScopeState>,
}

impl Runtime {
    /// Start `cfg.nthreads` workers.
    pub fn new(cfg: RtConfig) -> Self {
        assert!(cfg.nthreads >= 1);
        let inner = Arc::new(Inner {
            servers: (0..cfg.nthreads)
                .map(|_| Server {
                    queues: Mutex::new(ServerQueues::new(cfg.affinity_slots)),
                    sleep_lock: Mutex::new(()),
                    wake: Condvar::new(),
                    stats: Mutex::new(SchedStats::default()),
                })
                .collect(),
            topology: Topology::clustered(cfg.nthreads, cfg.procs_per_cluster),
            policy: cfg.policy,
            placement: Placement::new(),
            held: Mutex::new(HashSet::new()),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..cfg.nthreads)
            .map(|p| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("cool-server-{p}"))
                    .spawn(move || worker_loop(&inner, ProcId(p)))
                    .expect("spawn worker")
            })
            .collect();
        Runtime { inner, workers }
    }

    /// The placement registry (`alloc_on` / `migrate` / `home`).
    pub fn placement(&self) -> &Placement {
        &self.inner.placement
    }

    /// Number of servers.
    pub fn nservers(&self) -> usize {
        self.inner.servers.len()
    }

    /// Run a `waitfor` scope: execute `seed` (on the calling thread, as
    /// creator server 0), then block until every task transitively spawned
    /// inside the scope has completed.
    pub fn scope(&self, seed: impl FnOnce(&RtCtx<'_>)) {
        let scope = ScopeState::new();
        {
            let ctx = RtCtx {
                inner: &self.inner,
                proc: ProcId(0),
                scope: scope.clone(),
            };
            seed(&ctx);
        }
        scope.wait();
    }

    /// Aggregated scheduling statistics since startup.
    pub fn stats(&self) -> SchedStats {
        let mut total = SchedStats::default();
        for s in &self.inner.servers {
            total += *s.stats.lock();
        }
        total
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for s in &self.inner.servers {
            let _guard = s.sleep_lock.lock();
            s.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl RtCtx<'_> {
    /// The server executing this task (or the creator, inside `scope`).
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// Number of servers.
    pub fn nservers(&self) -> usize {
        self.inner.servers.len()
    }

    /// Register a logical object homed on processor `p % nservers`.
    pub fn alloc_on(&self, p: usize) -> ObjRef {
        self.inner
            .placement
            .alloc_on(ProcId(p % self.inner.servers.len()))
    }

    /// `migrate()`: re-home a logical object.
    pub fn migrate(&self, obj: ObjRef, p: usize) {
        self.inner
            .placement
            .migrate(obj, ProcId(p % self.inner.servers.len()));
    }

    /// `home()`.
    pub fn home(&self, obj: ObjRef) -> ProcId {
        self.inner.placement.home(obj)
    }

    /// Spawn a task into the enclosing scope.
    pub fn spawn(&self, task: RtTask) {
        self.scope.enter();
        enqueue(self.inner, self.proc, task, self.scope.clone());
    }
}

/// Resolve affinity and enqueue, waking the target server.
fn enqueue(inner: &Inner, creator: ProcId, task: RtTask, scope: Arc<ScopeState>) {
    let spec = task.affinity;
    let target = spec.resolve_server(inner.servers.len(), creator, |o| inner.placement.home(o));
    let hinted = spec.is_hinted();
    let kind = spec.kind();
    let queued = Queued {
        task,
        target,
        hinted,
        scope,
    };
    let server = &inner.servers[target.index()];
    {
        let mut q = server.queues.lock();
        match spec.queue_token() {
            Some(tok) => q.push_affinity(tok, kind, queued),
            None => q.push_default(kind, queued),
        }
        server.stats.lock().spawned += 1;
    }
    let _guard = server.sleep_lock.lock();
    server.wake.notify_one();
}

fn worker_loop(inner: &Inner, me: ProcId) {
    let mi = me.index();
    let mut failed_scans = 0usize;
    loop {
        // 1. Local work.
        let popped = inner.servers[mi].queues.lock().pop_local();
        if let Some((kind, queued)) = popped {
            failed_scans = 0;
            run_or_rotate(inner, me, kind, queued);
            continue;
        }
        // 2. Steal.
        if inner.policy.enabled {
            let desperate = failed_scans >= inner.policy.last_resort_after;
            let mut stolen = None;
            for v in inner.topology.steal_order(me) {
                let cross = !inner.topology.same_cluster(me, v);
                // Strict cluster boundary (see cool-sim): desperation lifts
                // only the object-affinity avoidance.
                if inner.policy.cluster_only && cross {
                    continue;
                }
                let avoid = inner.policy.avoid_object_affinity && !desperate;
                let batch = inner.servers[v.index()]
                    .queues
                    .lock()
                    .steal_with(avoid, inner.policy.steal_whole_sets);
                if let Some(batch) = batch {
                    let mut st = inner.servers[mi].stats.lock();
                    st.tasks_stolen += batch.tasks.len() as u64;
                    if batch.token.is_some() {
                        st.sets_stolen += 1;
                    }
                    if cross {
                        st.remote_steals += 1;
                    }
                    if desperate {
                        st.desperate_steals += 1;
                    }
                    drop(st);
                    stolen = Some(batch);
                    break;
                }
            }
            match stolen {
                Some(batch) => {
                    let kind = if batch.token.is_some() {
                        AffinityKind::Task
                    } else {
                        AffinityKind::None
                    };
                    inner.servers[mi].queues.lock().push_stolen(batch, kind);
                    failed_scans = 0;
                    continue;
                }
                None => {
                    failed_scans += 1;
                    inner.servers[mi].stats.lock().failed_steals += 1;
                }
            }
        }
        // 3. Sleep until woken or shutdown.
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        {
            let server = &inner.servers[mi];
            let mut guard = server.sleep_lock.lock();
            // Re-check under the lock to avoid missed wakeups.
            if server.queues.lock().is_empty() && !inner.shutdown.load(Ordering::SeqCst) {
                server
                    .wake
                    .wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }
}

/// Execute a task, or set it aside if its mutex object is busy.
fn run_or_rotate(inner: &Inner, me: ProcId, kind: AffinityKind, queued: Queued) {
    let mi = me.index();
    if let Some(lock_obj) = queued.task.mutex_on {
        let acquired = inner.held.lock().insert(lock_obj);
        if !acquired {
            // Blocked: back of the queue; the server moves on (COOL blocks
            // the task, never the server).
            inner.servers[mi].stats.lock().mutex_blocks += 1;
            let mut q = inner.servers[mi].queues.lock();
            match queued.task.affinity.queue_token() {
                Some(tok) => q.push_affinity(tok, kind, queued),
                None => q.push_default(kind, queued),
            }
            drop(q);
            std::thread::yield_now();
            return;
        }
        execute(inner, me, queued);
        inner.held.lock().remove(&lock_obj);
    } else {
        execute(inner, me, queued);
    }
}

fn execute(inner: &Inner, me: ProcId, queued: Queued) {
    {
        let mut st = inner.servers[me.index()].stats.lock();
        st.executed += 1;
        if queued.hinted {
            st.hinted += 1;
            if queued.target == me {
                st.affinity_hits += 1;
            }
        }
    }
    let scope = queued.scope.clone();
    let ctx = RtCtx {
        inner,
        proc: me,
        scope: queued.scope.clone(),
    };
    (queued.task.body)(&ctx);
    scope.exit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_waits_for_all_tasks() {
        let rt = Runtime::new(RtConfig::new(4));
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        rt.scope(move |s| {
            for _ in 0..100 {
                let c = c.clone();
                s.spawn(RtTask::new(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                }));
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_spawns_are_in_scope() {
        let rt = Runtime::new(RtConfig::new(4));
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        rt.scope(move |s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(RtTask::new(move |ctx| {
                    for _ in 0..8 {
                        let c = c.clone();
                        ctx.spawn(RtTask::new(move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        }));
                    }
                }));
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn sequential_scopes_are_barriers() {
        let rt = Runtime::new(RtConfig::new(4));
        let log = Arc::new(Mutex::new(Vec::new()));
        for phase in 0..3u32 {
            let log = log.clone();
            rt.scope(move |s| {
                for _ in 0..16 {
                    let log = log.clone();
                    s.spawn(RtTask::new(move |_| {
                        log.lock().push(phase);
                    }));
                }
            });
        }
        let v = log.lock();
        assert_eq!(v.len(), 48);
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "phases interleaved: {v:?}");
    }

    #[test]
    fn processor_affinity_pins_without_stealing() {
        let rt = Runtime::new(RtConfig::new(4).with_policy(StealPolicy::disabled()));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        rt.scope(move |s| {
            for i in 0..32 {
                let seen = s2.clone();
                s.spawn(
                    RtTask::new(move |ctx| {
                        seen.lock().push((i, ctx.proc().index()));
                    })
                    .with_affinity(AffinitySpec::processor(i % 4)),
                );
            }
        });
        for &(i, p) in seen.lock().iter() {
            assert_eq!(p, i % 4, "task {i} ran on wrong server");
        }
        assert_eq!(rt.stats().adherence(), 1.0);
    }

    #[test]
    fn object_affinity_follows_placement_and_migration() {
        let rt = Runtime::new(RtConfig::new(4).with_policy(StealPolicy::disabled()));
        let obj = rt.placement().alloc_on(ProcId(2));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        rt.scope(move |s| {
            let seen = s2.clone();
            s.spawn(
                RtTask::new(move |ctx| {
                    seen.lock().push(ctx.proc().index());
                    // Migrate, then respawn: the next task must follow.
                    ctx.migrate(obj, 1);
                    let seen = seen.clone();
                    ctx.spawn(
                        RtTask::new(move |ctx| {
                            seen.lock().push(ctx.proc().index());
                        })
                        .with_affinity(AffinitySpec::object(obj)),
                    );
                })
                .with_affinity(AffinitySpec::object(obj)),
            );
        });
        assert_eq!(*seen.lock(), vec![2, 1]);
    }

    #[test]
    fn mutex_tasks_are_mutually_exclusive() {
        let rt = Runtime::new(RtConfig::new(8));
        let obj = rt.placement().alloc_on(ProcId(0));
        let in_section = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let (i2, m2) = (in_section.clone(), max_seen.clone());
        rt.scope(move |s| {
            for _ in 0..64 {
                let (i3, m3) = (i2.clone(), m2.clone());
                s.spawn(
                    RtTask::new(move |_| {
                        let now = i3.fetch_add(1, Ordering::SeqCst) + 1;
                        m3.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(50));
                        i3.fetch_sub(1, Ordering::SeqCst);
                    })
                    .with_mutex(obj),
                );
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "mutex violated");
    }

    #[test]
    fn stealing_spreads_work_across_servers() {
        let rt = Runtime::new(RtConfig::new(4));
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let s2 = seen.clone();
        rt.scope(move |s| {
            for _ in 0..200 {
                let seen = s2.clone();
                // Everything lands on server 0; thieves must spread it.
                s.spawn(
                    RtTask::new(move |ctx| {
                        // Enough work that stealing is worthwhile.
                        std::hint::black_box((0..5_000).sum::<u64>());
                        seen.lock().insert(ctx.proc().index());
                    })
                    .with_affinity(AffinitySpec::processor(0)),
                );
            }
        });
        assert!(
            seen.lock().len() > 1,
            "no stealing happened: {:?}",
            seen.lock()
        );
        assert!(rt.stats().tasks_stolen > 0);
    }

    #[test]
    fn exactly_once_under_stress() {
        let rt = Runtime::new(RtConfig::new(8));
        let n = 2_000usize;
        let flags: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let objs: Vec<ObjRef> = (0..16).map(|i| rt.placement().alloc_on(ProcId(i % 8))).collect();
        let f2 = flags.clone();
        rt.scope(move |s| {
            for i in 0..n {
                let flags = f2.clone();
                let aff = match i % 5 {
                    0 => AffinitySpec::none(),
                    1 => AffinitySpec::simple(objs[i % 16]),
                    2 => AffinitySpec::task(objs[i % 16]),
                    3 => AffinitySpec::object(objs[i % 16]),
                    _ => AffinitySpec::processor(i),
                };
                let mut t = RtTask::new(move |_| {
                    flags[i].fetch_add(1, Ordering::SeqCst);
                })
                .with_affinity(aff);
                if i % 7 == 0 {
                    t = t.with_mutex(objs[i % 16]);
                }
                s.spawn(t);
            }
        });
        for (i, f) in flags.iter().enumerate() {
            assert_eq!(f.load(Ordering::SeqCst), 1, "task {i} ran wrong # times");
        }
        let st = rt.stats();
        assert_eq!(st.executed, n as u64);
    }
}
