//! The observability layer on the threaded backend: the same `ObsEvent`
//! vocabulary as the simulator, stamped with wall-clock nanoseconds, with
//! the recording gated so a runtime built without tracing emits nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cool_core::obs::ObsEvent;
use cool_core::{AffinitySpec, ObjRef, ProcId};
use cool_rt::{RtConfig, RtTask, Runtime};

/// A workload that exercises spawning into affinity sets, stealing
/// pressure, mutex contention, and migration.
fn run(rt: &Runtime) -> usize {
    let lock = rt.placement().alloc_on(ProcId(0));
    let moved = rt.placement().alloc_on(ProcId(0));
    let count = Arc::new(AtomicUsize::new(0));
    let c = count.clone();
    rt.scope(move |s| {
        for i in 0..96u64 {
            let c = c.clone();
            s.spawn(
                RtTask::new(move |_| {
                    std::hint::black_box((0..2_000).sum::<u64>());
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .with_label("worker")
                .with_affinity(AffinitySpec::task(ObjRef(0x7000 + (i % 5) * 0x10))),
            );
        }
        for _ in 0..6 {
            let c = c.clone();
            s.spawn(
                RtTask::new(move |_| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .with_label("mutexed")
                .with_mutex(lock),
            );
        }
        s.spawn(RtTask::new(move |ctx| {
            ctx.migrate(moved, 1);
        }));
    })
    .unwrap();
    count.load(Ordering::Relaxed)
}

#[test]
fn disabled_tracing_records_nothing() {
    let rt = Runtime::new(RtConfig::new(4));
    assert_eq!(run(&rt), 102);
    let trace = rt.take_obs();
    assert!(trace.events.is_empty());
    assert_eq!(trace.dropped, 0);
}

#[test]
fn trace_agrees_with_scheduler_statistics() {
    let rt = Runtime::new(RtConfig::new(4).with_trace());
    assert_eq!(run(&rt), 102);
    let st = rt.stats();
    let trace = rt.take_obs();
    assert_eq!(trace.dropped, 0, "workload must fit the rings");
    assert!(!trace.events.is_empty());

    let begins = trace
        .events
        .iter()
        .filter(|e| matches!(e, ObsEvent::TaskBegin { .. }))
        .count() as u64;
    let ends = trace
        .events
        .iter()
        .filter(|e| matches!(e, ObsEvent::TaskEnd { .. }))
        .count() as u64;
    assert_eq!(begins, st.executed);
    assert_eq!(ends, st.executed);

    let stolen: u64 = trace
        .events
        .iter()
        .filter_map(|e| match e {
            ObsEvent::StealSuccess { ntasks, .. } => Some(*ntasks as u64),
            _ => None,
        })
        .sum();
    assert_eq!(stolen, st.tasks_stolen);
    let fails = trace
        .events
        .iter()
        .filter(|e| matches!(e, ObsEvent::StealFail { .. }))
        .count() as u64;
    assert_eq!(fails, st.failed_steals);
    let waits = trace
        .events
        .iter()
        .filter(|e| matches!(e, ObsEvent::MutexWait { .. }))
        .count() as u64;
    assert_eq!(waits, st.mutex_blocks, "one wait event per first block");
    assert!(
        trace
            .events
            .iter()
            .any(|e| matches!(e, ObsEvent::Migrate { to, .. } if *to == ProcId(1))),
        "migration must be traced"
    );

    // This backend has no simulated memory system to attribute.
    for ev in &trace.events {
        if let ObsEvent::TaskEnd { mem, .. } = ev {
            assert!(mem.is_none());
        }
    }
}

#[test]
fn begin_end_pairs_match_per_task() {
    let rt = Runtime::new(RtConfig::new(4).with_trace());
    run(&rt);
    let trace = rt.take_obs();
    let mut open = std::collections::HashSet::new();
    for ev in &trace.events {
        match ev {
            ObsEvent::TaskBegin { task, .. } => {
                assert!(open.insert(*task), "double begin for {task:?}");
            }
            ObsEvent::TaskEnd { task, .. } => {
                // Begin and end are emitted from the same worker thread, so
                // they land in one ring in order; the global merge preserves
                // per-ring order.
                assert!(open.remove(task), "end without begin for {task:?}");
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unterminated tasks: {open:?}");
}

#[test]
fn labeled_sets_survive_into_the_trace() {
    let rt = Runtime::new(RtConfig::new(2).with_trace());
    run(&rt);
    let trace = rt.take_obs();
    let mut labels = std::collections::HashSet::new();
    let mut sets = std::collections::HashSet::new();
    for ev in &trace.events {
        if let ObsEvent::TaskBegin { label, set, .. } = ev {
            if let Some(l) = label {
                labels.insert(*l);
            }
            if let Some(s) = set {
                sets.insert(*s);
            }
        }
    }
    assert!(labels.contains("worker"));
    assert!(labels.contains("mutexed"));
    assert_eq!(sets.len(), 5, "five distinct task-affinity sets");
}
