//! Chaos tests: the threaded runtime under panics, deadlocks and injected
//! stragglers. The contract being exercised is the failure model of
//! DESIGN.md — a panicking task never takes a worker, a scope, or a mutex
//! down with it; a stalled scope produces a diagnostic dump instead of a
//! silent hang; injected faults perturb only the schedule, never the
//! results.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cool_rt::{
    AffinitySpec, FaultPlan, ProcId, RtConfig, RtTask, Runtime, ScopeError, StealPolicy,
};

#[test]
fn panic_in_task_surfaces_as_scope_error_and_runtime_survives() {
    let rt = Runtime::new(RtConfig::new(4));
    let ran = Arc::new(AtomicUsize::new(0));
    let r2 = ran.clone();
    let res = rt.scope(move |s| {
        for i in 0..100 {
            let ran = r2.clone();
            s.spawn(RtTask::new(move |_| {
                if i == 37 {
                    panic!("task 37 exploded");
                }
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
    });
    let Err(ScopeError::Panicked(errs)) = res else {
        panic!("expected Panicked, got {res:?}");
    };
    assert_eq!(errs.len(), 1);
    assert!(errs[0].message.contains("exploded"), "{}", errs[0].message);
    assert_eq!(errs[0].mutex_on, None);
    // Every other task still ran: the panic cost one task, not the scope.
    assert_eq!(ran.load(Ordering::SeqCst), 99);
    assert_eq!(rt.stats().panics, 1);

    // The workers are all still alive and the runtime is reusable.
    let ran2 = Arc::new(AtomicUsize::new(0));
    let r3 = ran2.clone();
    rt.scope(move |s| {
        for _ in 0..200 {
            let ran = r3.clone();
            s.spawn(RtTask::new(move |_| {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
    })
    .unwrap();
    assert_eq!(ran2.load(Ordering::SeqCst), 200);
}

#[test]
fn panic_while_holding_mutex_releases_the_lock() {
    let rt = Runtime::new(RtConfig::new(2));
    let obj = rt.placement().alloc_on(ProcId(0));
    let after = Arc::new(AtomicUsize::new(0));
    let a2 = after.clone();
    let res = rt.scope(move |s| {
        // The first mutex task on `obj` panics while holding it.
        s.spawn(
            RtTask::new(move |_| panic!("died holding the mutex"))
                .with_affinity(AffinitySpec::simple(obj))
                .with_mutex(obj),
        );
        // Eight more mutex tasks on the same object: they can only run if
        // the panicking task's RAII guard released the lock.
        for _ in 0..8 {
            let after = a2.clone();
            s.spawn(
                RtTask::new(move |_| {
                    after.fetch_add(1, Ordering::SeqCst);
                })
                .with_affinity(AffinitySpec::simple(obj))
                .with_mutex(obj),
            );
        }
    });
    let Err(ScopeError::Panicked(errs)) = res else {
        panic!("expected Panicked, got {res:?}");
    };
    assert_eq!(errs.len(), 1);
    assert_eq!(
        errs[0].mutex_on,
        Some(obj),
        "the error must record which mutex the task held"
    );
    assert_eq!(after.load(Ordering::SeqCst), 8);
    assert!(
        rt.held_mutexes().is_empty(),
        "leaked mutexes: {:?}",
        rt.held_mutexes()
    );
}

#[test]
fn multiple_panics_are_all_collected() {
    let rt = Runtime::new(RtConfig::new(4));
    let res = rt.scope(|s| {
        for i in 0..50 {
            s.spawn(RtTask::new(move |_| {
                if i % 10 == 0 {
                    panic!("boom {i}");
                }
            }));
        }
    });
    let Err(ScopeError::Panicked(errs)) = res else {
        panic!("expected Panicked, got {res:?}");
    };
    assert_eq!(errs.len(), 5);
    let display = ScopeError::Panicked(errs).to_string();
    assert!(display.contains("5 task(s) panicked"), "{display}");
    assert_eq!(rt.stats().panics, 5);
}

#[test]
fn panic_in_scope_seed_propagates_after_spawned_tasks_drain() {
    let rt = Runtime::new(RtConfig::new(2));
    let ran = Arc::new(AtomicUsize::new(0));
    let r2 = ran.clone();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = rt.scope(move |s| {
            for _ in 0..20 {
                let ran = r2.clone();
                s.spawn(RtTask::new(move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                }));
            }
            panic!("seed panicked after spawning");
        });
    }));
    assert!(caught.is_err(), "the seed panic must reach the caller");
    // The scope drained before re-raising: no task was abandoned mid-air.
    assert_eq!(ran.load(Ordering::SeqCst), 20);
    // And the runtime is still fine.
    rt.scope(|s| s.spawn(RtTask::new(|_| {}))).unwrap();
}

#[test]
fn watchdog_dumps_on_constructed_deadlock() {
    // A genuine dependency cycle: task A holds `obj`'s runtime mutex while
    // spinning on a flag that only the test sets; task B needs `obj`'s
    // mutex, so it rotates forever. No task completes, the scope cannot
    // finish — the watchdog must notice and dump, and scope_with_timeout
    // must give up with the same diagnostics instead of hanging.
    let rt = Runtime::new(
        RtConfig::new(2)
            .with_policy(StealPolicy::disabled())
            .with_stall_timeout(Duration::from_millis(40)),
    );
    let obj = rt.placement().alloc_on(ProcId(0));
    let release = Arc::new(AtomicBool::new(false));
    let rel2 = release.clone();
    let b_ran = Arc::new(AtomicBool::new(false));
    let b2 = b_ran.clone();
    let res = rt.scope_with_timeout(Duration::from_millis(400), move |s| {
        let rel = rel2.clone();
        s.spawn(
            RtTask::new(move |_| {
                while !rel.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .with_affinity(AffinitySpec::processor(0))
            .with_mutex(obj),
        );
        s.spawn(
            RtTask::new(move |_| {
                b2.store(true, Ordering::SeqCst);
            })
            .with_affinity(AffinitySpec::processor(1))
            .with_mutex(obj),
        );
    });

    // The scope gave up and handed back a dump describing the stall.
    let Err(ScopeError::Stalled { dump, waited }) = res else {
        panic!("expected Stalled, got {res:?}");
    };
    assert_eq!(waited, Duration::from_millis(400));
    assert_eq!(
        dump.held_mutexes,
        vec![obj],
        "the dump must name the held mutex"
    );
    assert!(
        dump.open_scopes >= 1,
        "the stalled scope was open at dump time"
    );
    let text = dump.to_string();
    assert!(text.contains("held mutexes"), "{text}");
    assert!(text.contains("queue depths"), "{text}");

    // The background watchdog fired too (stall_timeout < scope timeout).
    let dumps = rt.stall_dumps();
    assert!(!dumps.is_empty(), "watchdog produced no dump");
    assert_eq!(dumps[0].held_mutexes, vec![obj]);

    // Break the cycle; the abandoned tasks drain in the background and the
    // runtime shuts down cleanly.
    release.store(true, Ordering::SeqCst);
    let t0 = std::time::Instant::now();
    while !b_ran.load(Ordering::SeqCst) || !rt.held_mutexes().is_empty() {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "blocked task never ran / mutex never released after the cycle \
             broke (held: {:?})",
            rt.held_mutexes()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn stall_timeout_during_scope_teardown_is_benign() {
    // One long task body outlives the stall interval. The watchdog's
    // liveness signal is "a task completed recently", so it cannot tell the
    // difference and fires while `scope()` is draining. The scope must
    // still complete Ok, the dumps must describe that instant truthfully
    // (scope open, nothing queued, nothing held), and once the scope has
    // closed the quiet runtime must never dump again.
    let rt = Runtime::new(RtConfig::new(2).with_stall_timeout(Duration::from_millis(25)));
    let ran = Arc::new(AtomicUsize::new(0));
    let r2 = ran.clone();
    rt.scope(move |s| {
        let ran = r2.clone();
        s.spawn(RtTask::new(move |_| {
            std::thread::sleep(Duration::from_millis(150));
            ran.fetch_add(1, Ordering::SeqCst);
        }));
    })
    .unwrap();
    assert_eq!(ran.load(Ordering::SeqCst), 1);
    let dumps = rt.stall_dumps();
    assert!(
        !dumps.is_empty(),
        "a task longer than the interval must trip the watchdog"
    );
    for d in &dumps {
        assert_eq!(d.open_scopes, 1, "the dump was taken inside the scope");
        assert_eq!(d.total_queued(), 0, "the long task was running, not queued");
        assert!(d.held_mutexes.is_empty());
        // A dump can race the very completion that ends the scope (that IS
        // the teardown case), so the counter may read 0 or 1 — never more.
        assert!(d.tasks_executed <= 1, "phantom completions in the dump");
    }
    // Scope closed, runtime idle: the watchdog must go silent even though
    // activity stays frozen (no open scope means no stall).
    std::thread::sleep(Duration::from_millis(40));
    let settled = rt.stall_dumps().len();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        rt.stall_dumps().len(),
        settled,
        "watchdog dumped with no scope open"
    );
}

#[test]
fn fault_plan_events_beyond_the_run_never_fire() {
    // A plan whose last events land after the final task: a failure index
    // past the spawn count and a stall on a dispatch number no server
    // reaches. They must simply never fire — the run completes, only the
    // in-range failure is counted, and a later scope (which advances the
    // same spawn counter) still doesn't reach them.
    let plan = FaultPlan::new(1)
        .fail_task(5) // in range: 12 tasks spawned below
        .fail_task(500) // beyond both scopes combined
        .stall_server(0, 10_000, 50_000); // dispatch #10000 never happens
    let rt = Runtime::with_faults(RtConfig::new(2), plan);
    let ran = Arc::new(AtomicUsize::new(0));
    let r2 = ran.clone();
    rt.scope(move |s| {
        for _ in 0..12 {
            let ran = r2.clone();
            s.spawn(RtTask::new(move |_| {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
    })
    .unwrap();
    assert_eq!(ran.load(Ordering::SeqCst), 12);
    let st = rt.stats();
    assert_eq!(st.executed, 12, "the transient failure re-ran its task");
    assert_eq!(st.injected_faults, 1, "only the in-range event fired");

    // Second scope: spawn indices continue from 12 and still stay below
    // 500; the leftover plan entries remain inert.
    let ran2 = Arc::new(AtomicUsize::new(0));
    let r3 = ran2.clone();
    rt.scope(move |s| {
        for _ in 0..8 {
            let ran = r3.clone();
            s.spawn(RtTask::new(move |_| {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
    })
    .unwrap();
    assert_eq!(ran2.load(Ordering::SeqCst), 8);
    assert_eq!(rt.stats().injected_faults, 1);
    assert_eq!(rt.stats().executed, 20);
}

#[test]
fn stall_dump_with_all_workers_parked_shows_empty_runtime() {
    // A scope that spawns nothing: every worker parks on its condvar while
    // the seed holds the scope open past the stall interval. The dump must
    // describe the parked machine exactly — zero queue depth on every
    // server, no held mutexes, zero executed — not invent phantom work.
    let nthreads = 4;
    let rt = Runtime::new(RtConfig::new(nthreads).with_stall_timeout(Duration::from_millis(20)));
    rt.scope(move |_| {
        std::thread::sleep(Duration::from_millis(120));
    })
    .unwrap();
    let dumps = rt.stall_dumps();
    assert!(
        !dumps.is_empty(),
        "an open, idle scope must trip the watchdog"
    );
    let d = &dumps[0];
    assert_eq!(d.queue_depths, vec![0; nthreads], "all workers were parked");
    assert_eq!(d.total_queued(), 0);
    assert!(d.held_mutexes.is_empty());
    assert_eq!(d.open_scopes, 1);
    assert_eq!(d.tasks_executed, 0);
    assert_eq!(d.stats.spawned, 0);
    let text = d.to_string();
    assert!(text.contains("held mutexes: none"), "{text}");
    assert!(text.contains("0 executed since startup"), "{text}");
}

#[test]
fn injected_straggler_is_absorbed_by_stealing() {
    // Server 0 is made 2 ms slower per dispatch. All work starts on its
    // queue (spawned from the scope seed, which runs as processor 0); the
    // other three servers must steal the bulk of it, keeping the imbalance
    // bounded and the results complete.
    let n = 120u64;
    let plan = FaultPlan::new(7).slow_server(0, 2_000);
    let rt = Runtime::with_faults(RtConfig::new(4), plan);
    let ran = Arc::new(AtomicUsize::new(0));
    let r2 = ran.clone();
    rt.scope(move |s| {
        for _ in 0..n {
            let ran = r2.clone();
            s.spawn(RtTask::new(move |_| {
                std::hint::black_box((0..500).sum::<u64>());
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
    })
    .unwrap();
    assert_eq!(ran.load(Ordering::SeqCst), n as usize);
    let per = rt.server_stats();
    let total: u64 = per.iter().map(|s| s.executed).sum();
    assert_eq!(total, n);
    assert!(
        per[0].executed < n / 2,
        "straggler executed {} of {} tasks — stealing failed to absorb it",
        per[0].executed,
        n
    );
    assert!(rt.stats().tasks_stolen > 0);
}

#[test]
fn panics_and_faults_together_still_account_for_every_task() {
    // Transient injected failures AND real panics in one scope: the panics
    // surface in the error, the injected failures stay invisible except in
    // stats, and every non-panicking task runs exactly once.
    let n = 64u64;
    let plan = FaultPlan::new(3).fail_task(5).fail_task(20).fail_task(21);
    let rt = Runtime::with_faults(RtConfig::new(4), plan);
    let counts: Arc<Vec<AtomicUsize>> =
        Arc::new((0..n as usize).map(|_| AtomicUsize::new(0)).collect());
    let c2 = counts.clone();
    let res = rt.scope(move |s| {
        for i in 0..n as usize {
            let counts = c2.clone();
            s.spawn(RtTask::new(move |_| {
                if i == 40 {
                    panic!("real failure");
                }
                counts[i].fetch_add(1, Ordering::SeqCst);
            }));
        }
    });
    let Err(ScopeError::Panicked(errs)) = res else {
        panic!("expected Panicked, got {res:?}");
    };
    assert_eq!(errs.len(), 1);
    for (i, c) in counts.iter().enumerate() {
        let want = usize::from(i != 40);
        assert_eq!(c.load(Ordering::SeqCst), want, "task {i}");
    }
    let st = rt.stats();
    assert_eq!(st.injected_faults, 3);
    assert_eq!(st.panics, 1);
    assert_eq!(st.executed, n);
}

#[test]
fn same_object_mutex_chain_survives_interleaved_panics() {
    // A long serialised chain on one mutex object where every fourth task
    // panics: exclusion must hold throughout (checked with an "inside"
    // flag) and the lock must never leak.
    let rt = Runtime::new(RtConfig::new(4));
    let obj = rt.placement().alloc_on(ProcId(0));
    let inside = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicUsize::new(0));
    let (i2, o2) = (inside.clone(), ok.clone());
    let res = rt.scope(move |s| {
        for i in 0..40 {
            let (inside, ok) = (i2.clone(), o2.clone());
            s.spawn(
                RtTask::new(move |_| {
                    assert!(
                        !inside.swap(true, Ordering::SeqCst),
                        "mutual exclusion violated"
                    );
                    if i % 4 == 0 {
                        inside.store(false, Ordering::SeqCst);
                        panic!("chain task {i} panicked");
                    }
                    ok.fetch_add(1, Ordering::SeqCst);
                    inside.store(false, Ordering::SeqCst);
                })
                .with_mutex(obj),
            );
        }
    });
    let Err(ScopeError::Panicked(errs)) = res else {
        panic!("expected Panicked, got {res:?}");
    };
    assert_eq!(errs.len(), 10);
    assert!(errs.iter().all(|e| e.mutex_on == Some(obj)));
    assert_eq!(ok.load(Ordering::SeqCst), 30);
    assert!(rt.held_mutexes().is_empty());
    assert_eq!(rt.stats().panics, 10);
}
