//! Stress and property tests for the threaded runtime under real
//! concurrency: exactly-once execution, scope correctness, mutex exclusion
//! and policy compliance across randomised task mixes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cool_rt::{AffinitySpec, ObjRef, ProcId, RtConfig, RtTask, Runtime, StealPolicy};

/// Deterministic cheap PRNG so the stress mix is reproducible without
/// pulling rand into this crate.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn randomized_mixes_execute_exactly_once() {
    for seed in 1..=5u64 {
        let mut rng = seed * 0x9E37_79B9;
        let threads = 2 + (xorshift(&mut rng) % 7) as usize;
        let rt = Runtime::new(RtConfig::new(threads));
        let objs: Vec<ObjRef> = (0..8)
            .map(|i| rt.placement().alloc_on(ProcId(i % threads)))
            .collect();
        let n = 500;
        let counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let c2 = counts.clone();
        rt.scope(|s| {
            for i in 0..n {
                let counts = c2.clone();
                let r = xorshift(&mut rng);
                let obj = objs[(r % 8) as usize];
                let aff = match r % 5 {
                    0 => AffinitySpec::none(),
                    1 => AffinitySpec::simple(obj),
                    2 => AffinitySpec::task(obj),
                    3 => AffinitySpec::object(obj),
                    _ => AffinitySpec::processor((r % 64) as usize),
                };
                let mut t = RtTask::new(move |_| {
                    counts[i].fetch_add(1, Ordering::SeqCst);
                })
                .with_affinity(aff);
                if r.is_multiple_of(7) {
                    t = t.with_mutex(obj);
                }
                s.spawn(t);
            }
        })
        .unwrap();
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "seed {seed}: task {i}");
        }
        assert_eq!(rt.stats().executed, n as u64);
    }
}

#[test]
fn deep_nesting_completes() {
    let rt = Runtime::new(RtConfig::new(4));
    let count = Arc::new(AtomicUsize::new(0));

    fn recurse(ctx: &cool_rt::RtCtx<'_>, depth: usize, count: Arc<AtomicUsize>) {
        count.fetch_add(1, Ordering::SeqCst);
        if depth == 0 {
            return;
        }
        for _ in 0..2 {
            let count = count.clone();
            ctx.spawn(RtTask::new(move |c| {
                recurse(c, depth - 1, count);
            }));
        }
    }

    let c2 = count.clone();
    rt.scope(move |s| {
        let c3 = c2.clone();
        s.spawn(RtTask::new(move |c| recurse(c, 8, c3)));
    })
    .unwrap();
    // A complete binary spawn tree of depth 8: 2^9 - 1 nodes.
    assert_eq!(count.load(Ordering::SeqCst), (1 << 9) - 1);
}

#[test]
fn mutexes_on_distinct_objects_do_not_serialize_everything() {
    let rt = Runtime::new(RtConfig::new(4));
    let objs: Vec<ObjRef> = (0..4).map(|i| rt.placement().alloc_on(ProcId(i))).collect();
    let done = Arc::new(AtomicUsize::new(0));
    let d2 = done.clone();
    let start = std::time::Instant::now();
    rt.scope(move |s| {
        for i in 0..64 {
            let done = d2.clone();
            s.spawn(
                RtTask::new(move |_| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .with_affinity(AffinitySpec::processor(i % 4))
                .with_mutex(objs[i % 4]),
            );
        }
    })
    .unwrap();
    let wall = start.elapsed();
    assert_eq!(done.load(Ordering::SeqCst), 64);
    // Fully serialised would be ≥ 64 × 200 µs = 12.8 ms; four independent
    // chains should be well under that (allow slack for CI noise).
    assert!(
        wall < std::time::Duration::from_millis(11),
        "chains appear serialised: {wall:?}"
    );
}

#[test]
fn cluster_only_policy_never_crosses_clusters() {
    let mut cfg = RtConfig::new(8);
    cfg.procs_per_cluster = 4;
    cfg.policy = StealPolicy::cluster_only();
    let rt = Runtime::new(cfg);
    let count = Arc::new(AtomicUsize::new(0));
    let c2 = count.clone();
    rt.scope(move |s| {
        for i in 0..256 {
            let count = c2.clone();
            s.spawn(
                RtTask::new(move |_| {
                    std::hint::black_box((0..2000).sum::<u64>());
                    count.fetch_add(1, Ordering::SeqCst);
                })
                .with_affinity(AffinitySpec::processor(i % 2)),
            );
        }
    })
    .unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 256);
    assert_eq!(
        rt.stats().remote_steals,
        0,
        "cluster boundary must be strict"
    );
}

#[test]
fn stats_spawn_and_execute_balance_across_many_scopes() {
    let rt = Runtime::new(RtConfig::new(4));
    for round in 0..20 {
        let n = 10 + round;
        rt.scope(|s| {
            for _ in 0..n {
                s.spawn(RtTask::new(|_| {}));
            }
        })
        .unwrap();
    }
    let st = rt.stats();
    assert_eq!(st.spawned, st.executed);
    assert_eq!(st.spawned, (0..20).map(|r| 10 + r).sum::<u64>());
}

#[test]
fn scopes_from_multiple_host_threads() {
    // The runtime is shared; two host threads run scopes concurrently.
    let rt = Arc::new(Runtime::new(RtConfig::new(4)));
    let total = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let rt = rt.clone();
        let total = total.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                let t2 = total.clone();
                rt.scope(|s| {
                    for _ in 0..25 {
                        let t3 = t2.clone();
                        s.spawn(RtTask::new(move |_| {
                            t3.fetch_add(1, Ordering::SeqCst);
                        }));
                    }
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(total.load(Ordering::SeqCst), 4 * 10 * 25);
}

#[test]
fn drop_idle_runtime_joins_promptly() {
    // Workers parked in their sleep loop must notice shutdown and join;
    // a lost wake notification would hang this test forever.
    let t0 = std::time::Instant::now();
    {
        let rt = Runtime::new(RtConfig::new(8));
        // Let every worker run dry and go to sleep.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rt);
    }
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );
}

#[test]
fn drop_with_tasks_still_queued_joins_and_discards() {
    // An abandoned (timed-out) scope leaves tasks queued behind a long
    // straggler on the single worker. Dropping the runtime must still join:
    // the worker checks the shutdown flag before dequeuing, and the
    // discarded tasks' scope tickets fire on queue drop rather than being
    // lost.
    let mut cfg = RtConfig::new(1);
    cfg.policy = StealPolicy::disabled();
    let rt = Runtime::new(cfg);
    let ran = Arc::new(AtomicUsize::new(0));
    let r2 = ran.clone();
    let res = rt.scope_with_timeout(std::time::Duration::from_millis(30), move |s| {
        for i in 0..64 {
            let ran = r2.clone();
            s.spawn(RtTask::new(move |_| {
                if i == 0 {
                    // Straggler: pins the lone worker past the timeout.
                    std::thread::sleep(std::time::Duration::from_millis(300));
                }
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
    });
    assert!(res.is_err(), "the straggler must outlive the scope timeout");
    let t0 = std::time::Instant::now();
    drop(rt);
    // Join waits for the in-flight straggler but must not drain the queue.
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );
    let executed = ran.load(Ordering::SeqCst);
    assert!(executed >= 1, "the straggler itself finished");
    assert!(
        executed < 64,
        "queued tasks should be discarded at shutdown, yet all {executed} ran"
    );
}

#[test]
fn runtime_survives_abandoned_scope_and_stays_usable() {
    // After scope_with_timeout gives up, the runtime (and its scope
    // bookkeeping) must stay consistent: the straggler finishes in the
    // background and a fresh scope on the same runtime works normally.
    let mut cfg = RtConfig::new(2);
    cfg.policy = StealPolicy::disabled();
    let rt = Runtime::new(cfg);
    let res = rt.scope_with_timeout(std::time::Duration::from_millis(20), |s| {
        s.spawn(RtTask::new(|_| {
            std::thread::sleep(std::time::Duration::from_millis(120));
        }));
    });
    assert!(matches!(res, Err(cool_rt::ScopeError::Stalled { .. })));
    // Let the abandoned straggler drain so the counts below are stable.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let count = Arc::new(AtomicUsize::new(0));
    let c2 = count.clone();
    rt.scope(move |s| {
        for _ in 0..100 {
            let c = c2.clone();
            s.spawn(RtTask::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
    })
    .unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 100);
    assert_eq!(rt.stats().spawned, rt.stats().executed);
}

#[test]
fn deep_topology_threads_complete_and_bucket_steals_by_level() {
    // 8 threads as SMT pairs inside 4-thread domains: hoard everything on
    // thread 0 so the workers must steal, then check the per-level steal
    // accounting is consistent with the tree.
    let topo = cool_rt::Topology::tree(8, &[2, 4], 1);
    let cfg = RtConfig::new(8).with_topology(topo);
    let rt = Runtime::new(cfg);
    let count = Arc::new(AtomicUsize::new(0));
    let c2 = count.clone();
    rt.scope(move |s| {
        for _ in 0..400 {
            let c = c2.clone();
            s.spawn(
                RtTask::new(move |_| {
                    std::hint::black_box(0u64);
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .with_affinity(AffinitySpec::processor(0)),
            );
        }
    })
    .unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 400);
    let stats = rt.stats();
    assert_eq!(stats.spawned, stats.executed);
    // mem_level is 1, so bucket 2 (the whole machine) holds exactly the
    // cross-cluster steals; buckets past the root stay empty.
    assert_eq!(stats.steals_by_level[2], stats.remote_steals);
    assert_eq!(stats.steals_by_level[3..], [0, 0]);
    let total: u64 = stats.steals_by_level.iter().sum();
    assert_eq!(total > 0, stats.tasks_stolen > 0 || stats.sets_stolen > 0);
}

#[test]
fn cluster_only_policy_respects_deep_tree_boundaries() {
    // cluster_only on the deep tree must never record a steal above the
    // memory level, no matter how starved the far domain is.
    let topo = cool_rt::Topology::tree(8, &[2, 4], 1);
    let mut cfg = RtConfig::new(8).with_topology(topo);
    cfg.policy = StealPolicy::cluster_only();
    let rt = Runtime::new(cfg);
    let count = Arc::new(AtomicUsize::new(0));
    let c2 = count.clone();
    rt.scope(move |s| {
        for _ in 0..300 {
            let c = c2.clone();
            s.spawn(
                RtTask::new(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .with_affinity(AffinitySpec::processor(0)),
            );
        }
    })
    .unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 300);
    let stats = rt.stats();
    assert_eq!(stats.remote_steals, 0, "cluster_only crossed the tree");
    assert_eq!(stats.steals_by_level[2..], [0, 0, 0]);
}
