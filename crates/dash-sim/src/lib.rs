//! # dash-sim — a DASH-like shared-memory multiprocessor simulator
//!
//! The paper evaluates COOL on the Stanford DASH prototype: 32 processors in
//! 8 clusters of 4, each processor with a 64 KB first-level and 256 KB
//! second-level cache, and a three-level memory hierarchy whose latencies are
//! roughly 1 cycle (L1 hit), 14 cycles (L2 hit), 30 cycles (local cluster
//! memory) and 100–150 cycles (remote cluster memory). That machine no longer
//! exists, so this crate simulates it:
//!
//! * [`config`] — machine parameters, defaulting to the DASH prototype.
//! * [`cache`] — set-associative LRU caches.
//! * [`space`] — the simulated shared address space: page-granular homes,
//!   placement-aware allocation (`new` with a processor argument), `migrate`,
//!   and `home` (Section 4.1's object-distribution primitives).
//! * [`directory`] — an invalidation-based cache-coherence directory, enough
//!   to classify each reference (cache hit / local / remote) and count
//!   invalidations like the DASH hardware performance monitor did.
//! * [`monitor`] — per-processor reference and cycle counters, the software
//!   stand-in for the DASH performance monitor of Section 6.
//! * [`machine`] — the façade tying it together: `read`/`write`/`compute`
//!   charge cycles to a processor and update caches, directory and monitor.
//! * [`engine`] — the discrete-event contention engine: per-cluster bus,
//!   interconnect-link, directory and memory resources with service times
//!   and FIFO queueing, dispatched from a monotonic event queue, so
//!   concurrent misses interfere instead of each paying a latency constant.
//!   Opt-in via [`MachineConfig::with_contention`]; without it the machine
//!   keeps the zero-contention fast path, cycle-identical to the frozen
//!   oracle.
//! * [`check`] — the coherence-invariant catalogue (SWMR, directory/cache
//!   agreement, lost invalidations, tracked-count conservation, lookaside
//!   soundness, plus the engine's txn-fifo and txn-conservation) validated
//!   per-transition in checked mode ([`Machine::enable_checked`]), plus an
//!   exhaustive 1-line × 2–4-cache protocol reachability pass
//!   ([`explore_protocol`]).
//!
//! The simulation is *execution-driven at task grain*: application code runs
//! natively and mirrors its memory accesses into the machine, which decides
//! where each access would have been serviced and at what cost. This is
//! exactly the information the paper's figures are built from.
//!
//! ## Example
//!
//! ```
//! use dash_sim::{Machine, MachineConfig};
//! use cool_core::ProcId;
//!
//! let mut m = Machine::new(MachineConfig::dash(8));
//! let obj = m.alloc_on_proc(0, 64);           // homed on cluster 0
//! let c_remote = m.read(ProcId(4), obj, 16);  // cluster 1: remote miss
//! let c_hit = m.read(ProcId(4), obj, 16);     // now cached
//! assert!(c_remote >= m.config().lat.remote_mem);
//! assert_eq!(c_hit, m.config().lat.l1_hit);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod check;
pub mod config;
pub mod directory;
pub mod engine;
pub mod machine;
pub mod monitor;
pub mod space;

// Frozen pre-optimisation reference model + property tests proving the fast
// path simulates identically. Test-only: never compiled into the library.
#[cfg(test)]
mod equiv_tests;
#[cfg(test)]
mod oracle;

pub use check::{explore_protocol, CoherenceViolation, ProtoStats};
pub use config::{CacheConfig, DeepTopology, Latencies, MachineConfig};
pub use engine::{ContentionConfig, ContentionStats, Engine, Resource, ResourceStats};
pub use machine::{Machine, PageTraffic};
pub use monitor::{MissBreakdown, PerfMonitor, ProcCounters};
pub use space::AddressSpace;
