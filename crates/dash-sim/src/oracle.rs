//! Test-only reference model of the pre-optimisation per-reference pipeline.
//!
//! The hot path in [`crate::machine`] was rewritten for throughput — a flat
//! directory table, fixed-width cache sets, and per-processor lookasides —
//! under the contract that **no simulated cycle changes**. This module keeps
//! the original, straightforward implementation (HashMap directory,
//! Vec-of-Vec LRU sets, no lookasides) frozen as an executable oracle, and
//! the property tests below drive random access streams through both models
//! and demand identical latencies, monitor counters, directory state and
//! cache contents.
//!
//! Nothing here is compiled into the library proper; it exists so that the
//! fast path can never silently diverge from the model the figures were
//! validated against.

use std::collections::HashMap;

use cool_core::{NodeId, ObjRef, ProcId};

use crate::cache::{Access, Level};
use crate::config::{CacheConfig, MachineConfig};
use crate::directory::CoherenceOutcome;
use crate::monitor::{PerfMonitor, Service};
use crate::space::AddressSpace;

/// The original growable-Vec LRU cache.
#[derive(Debug)]
struct OldCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    nsets: u64,
}

impl OldCache {
    fn new(cfg: CacheConfig) -> Self {
        let nsets = cfg.sets();
        assert!(nsets > 0);
        OldCache {
            sets: vec![Vec::with_capacity(cfg.assoc); nsets as usize],
            assoc: cfg.assoc,
            nsets,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.nsets) as usize
    }

    fn access(&mut self, line: u64) -> Access {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            return Access::Hit;
        }
        let evicted = if ways.len() == self.assoc {
            ways.pop()
        } else {
            None
        };
        ways.insert(0, line);
        Access::Miss { evicted }
    }

    fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].contains(&line)
    }

    fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// The original two-level hierarchy with inclusion.
#[derive(Debug)]
struct OldProcCache {
    l1: OldCache,
    l2: OldCache,
}

impl OldProcCache {
    fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        OldProcCache {
            l1: OldCache::new(l1),
            l2: OldCache::new(l2),
        }
    }

    fn access(&mut self, line: u64) -> Level {
        if let Access::Hit = self.l1.access(line) {
            debug_assert!(self.l2.contains(line), "inclusion violated");
            return Level::L1;
        }
        match self.l2.access(line) {
            Access::Hit => Level::L2,
            Access::Miss { evicted } => {
                if let Some(victim) = evicted {
                    self.l1.invalidate(victim);
                }
                Level::Memory { l2_victim: evicted }
            }
        }
    }

    fn invalidate(&mut self, line: u64) -> bool {
        let in_l1 = self.l1.invalidate(line);
        let in_l2 = self.l2.invalidate(line);
        in_l1 || in_l2
    }

    fn contains(&self, line: u64) -> bool {
        self.l2.contains(line)
    }
}

/// The original HashMap-backed directory.
#[derive(Clone, Copy, Debug, Default)]
struct LineState {
    sharers: u64,
    owner: Option<u8>,
}

#[derive(Debug, Default)]
struct OldDirectory {
    lines: HashMap<u64, LineState>,
}

impl OldDirectory {
    fn read_miss(&mut self, line: u64, p: usize) -> CoherenceOutcome {
        let st = self.lines.entry(line).or_default();
        let outcome = CoherenceOutcome {
            from_dirty_cache: st.owner.is_some_and(|o| o as usize != p),
            dirty_owner: st.owner.map(|o| o as usize),
            invalidations: 0,
            invalidate_procs: 0,
        };
        if st.owner.is_some_and(|o| o as usize != p) {
            st.owner = None;
        }
        st.sharers |= 1 << p;
        outcome
    }

    fn write(&mut self, line: u64, p: usize) -> CoherenceOutcome {
        let st = self.lines.entry(line).or_default();
        let others = st.sharers & !(1 << p);
        let from_dirty = st.owner.is_some_and(|o| o as usize != p);
        let dirty_owner = st.owner.map(|o| o as usize);
        let outcome = CoherenceOutcome {
            from_dirty_cache: from_dirty,
            dirty_owner,
            invalidations: others.count_ones(),
            invalidate_procs: others,
        };
        st.sharers = 1 << p;
        st.owner = Some(p as u8);
        outcome
    }

    fn is_exclusive(&self, line: u64, p: usize) -> bool {
        self.lines
            .get(&line)
            .is_some_and(|st| st.owner == Some(p as u8) && st.sharers == 1 << p)
    }

    fn evict(&mut self, line: u64, p: usize) {
        if let Some(st) = self.lines.get_mut(&line) {
            st.sharers &= !(1 << p);
            if st.owner == Some(p as u8) {
                st.owner = None;
            }
            if st.sharers == 0 && st.owner.is_none() {
                self.lines.remove(&line);
            }
        }
    }

    fn purge_line(&mut self, line: u64) {
        self.lines.remove(&line);
    }

    fn sharers(&self, line: u64) -> u64 {
        self.lines.get(&line).map_or(0, |st| st.sharers)
    }

    fn tracked_lines(&self) -> usize {
        self.lines.len()
    }
}

/// The pre-rewrite machine: same configuration, address space and monitor as
/// [`crate::Machine`], but the original per-reference pipeline.
#[derive(Debug)]
pub struct OracleMachine {
    cfg: MachineConfig,
    caches: Vec<OldProcCache>,
    space: AddressSpace,
    dir: OldDirectory,
    mon: PerfMonitor,
    node_busy: Vec<u64>,
}

impl OracleMachine {
    pub fn new(cfg: MachineConfig) -> Self {
        let caches = (0..cfg.nprocs)
            .map(|_| OldProcCache::new(cfg.l1, cfg.l2))
            .collect();
        OracleMachine {
            caches,
            space: AddressSpace::with_procs_per_node(
                cfg.page_bytes,
                cfg.nclusters(),
                cfg.procs_per_cluster,
            ),
            dir: OldDirectory::default(),
            mon: PerfMonitor::new(cfg.nprocs),
            node_busy: vec![0; cfg.nclusters()],
            cfg,
        }
    }

    pub fn monitor(&self) -> &PerfMonitor {
        &self.mon
    }

    pub fn sharers(&self, line: u64) -> u64 {
        self.dir.sharers(line)
    }

    pub fn tracked_lines(&self) -> usize {
        self.dir.tracked_lines()
    }

    pub fn is_exclusive(&self, line: u64, p: usize) -> bool {
        self.dir.is_exclusive(line, p)
    }

    pub fn cache_contains(&self, p: usize, line: u64) -> bool {
        self.caches[p].contains(line)
    }

    pub fn cache_resident(&self, p: usize) -> usize {
        self.caches[p].l1.resident() + self.caches[p].l2.resident()
    }

    pub fn home_node(&self, obj: ObjRef) -> NodeId {
        self.space.home(obj)
    }

    pub fn home_proc(&self, obj: ObjRef) -> ProcId {
        self.space.home_proc(obj)
    }

    pub fn alloc_on_node(&mut self, node: NodeId, bytes: u64) -> ObjRef {
        let node = NodeId(node.index() % self.cfg.nclusters());
        let p = self.cfg.proc_of_node(node);
        self.space.alloc_placed(bytes, node, p)
    }

    pub fn alloc_interleaved(&mut self, bytes: u64) -> ObjRef {
        self.space.alloc_interleaved(bytes)
    }

    pub fn alloc_first_touch(&mut self, bytes: u64) -> ObjRef {
        self.space.alloc_first_touch(bytes)
    }

    pub fn migrate_to_proc(&mut self, obj: ObjRef, bytes: u64, n: usize) -> u64 {
        let p = ProcId(n % self.cfg.nprocs);
        let node = self.cfg.node_of(p);
        self.migrate_placed(obj, bytes, node, p)
    }

    fn migrate_placed(&mut self, obj: ObjRef, bytes: u64, node: NodeId, p: ProcId) -> u64 {
        let moved = self.space.migrate_placed(obj, bytes, node, p);
        if moved == 0 {
            return 0;
        }
        let (lo, hi) = self.space.span_pages(obj, bytes);
        let line_bytes = self.cfg.l1.line_bytes;
        let mut line = lo / line_bytes;
        let end = hi / line_bytes;
        while line < end {
            for cache in &mut self.caches {
                cache.invalidate(line);
            }
            self.dir.purge_line(line);
            line += 1;
        }
        moved * self.cfg.page_migrate_cost
    }

    pub fn read_at(&mut self, p: ProcId, obj: ObjRef, len: u64, now: u64) -> u64 {
        self.reference(p, obj, len, false, now)
    }

    pub fn write_at(&mut self, p: ProcId, obj: ObjRef, len: u64, now: u64) -> u64 {
        self.reference(p, obj, len, true, now)
    }

    pub fn prefetch(&mut self, p: ProcId, obj: ObjRef, len: u64, now: u64) -> u64 {
        const ISSUE_COST: u64 = 2;
        if len == 0 {
            return 0;
        }
        let line_bytes = self.cfg.l1.line_bytes;
        let first = obj.0 / line_bytes;
        let last = (obj.0 + len - 1) / line_bytes;
        let pi = p.index();
        let mut cycles = 0;
        for line in first..=last {
            let addr = line * line_bytes;
            if self.space.is_untouched(addr) {
                let node = self.cfg.node_of(p);
                self.space.claim_first_touch(addr, node, p);
            }
            if self.caches[pi].contains(line) {
                self.mon.proc_mut(pi).prefetch_hits += 1;
                continue;
            }
            if let Level::Memory {
                l2_victim: Some(v),
            } = self.caches[pi].access(line)
            {
                self.dir.evict(v, pi);
            }
            self.dir.read_miss(line, pi);
            if self.cfg.mem_occupancy > 0 {
                let module = self.space.home(ObjRef(addr)).index();
                let busy = &mut self.node_busy[module];
                *busy = (*busy).max(now + cycles) + self.cfg.mem_occupancy;
            }
            self.mon.proc_mut(pi).prefetches += 1;
            cycles += ISSUE_COST;
        }
        self.mon.proc_mut(pi).busy_cycles += cycles;
        cycles
    }

    fn reference(&mut self, p: ProcId, obj: ObjRef, len: u64, is_write: bool, now: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let line_bytes = self.cfg.l1.line_bytes;
        let first = obj.0 / line_bytes;
        let last = (obj.0 + len - 1) / line_bytes;
        let mut cycles = 0;
        for line in first..=last {
            let addr = line * line_bytes;
            if self.space.is_untouched(addr) {
                let node = self.cfg.node_of(p);
                self.space.claim_first_touch(addr, node, p);
            }
            let t = now + cycles;
            cycles += if is_write {
                self.write_line(p, line, t)
            } else {
                self.read_line(p, line, t)
            };
        }
        self.mon.proc_mut(p.index()).busy_cycles += cycles;
        cycles
    }

    fn read_line(&mut self, p: ProcId, line: u64, now: u64) -> u64 {
        let pi = p.index();
        let level = self.caches[pi].access(line);
        match level {
            Level::L1 => {
                self.mon.proc_mut(pi).record(Service::L1);
                self.cfg.lat.l1_hit
            }
            Level::L2 => {
                self.mon.proc_mut(pi).record(Service::L2);
                self.cfg.lat.l2_hit
            }
            Level::Memory { l2_victim } => {
                if let Some(v) = l2_victim {
                    self.dir.evict(v, pi);
                }
                let outcome = self.dir.read_miss(line, pi);
                self.service_miss(p, line, outcome.from_dirty_cache, outcome.dirty_owner, now)
            }
        }
    }

    fn write_line(&mut self, p: ProcId, line: u64, now: u64) -> u64 {
        let pi = p.index();
        let was_exclusive = self.dir.is_exclusive(line, pi);
        let level = self.caches[pi].access(line);
        if let Level::Memory {
            l2_victim: Some(v),
        } = level
        {
            self.dir.evict(v, pi);
        }
        let outcome = self.dir.write(line, pi);
        let mut bits = outcome.invalidate_procs;
        while bits != 0 {
            let q = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.caches[q].invalidate(line);
            self.mon.proc_mut(q).invalidations_received += 1;
        }
        self.mon.proc_mut(pi).invalidations_sent += u64::from(outcome.invalidations);
        match level {
            Level::L1 if was_exclusive => {
                self.mon.proc_mut(pi).record(Service::L1);
                self.cfg.lat.l1_hit
            }
            Level::L2 if was_exclusive => {
                self.mon.proc_mut(pi).record(Service::L2);
                self.cfg.lat.l2_hit
            }
            _ => self.service_miss(p, line, outcome.from_dirty_cache, outcome.dirty_owner, now),
        }
    }

    fn service_miss(
        &mut self,
        p: ProcId,
        line: u64,
        from_dirty: bool,
        dirty_owner: Option<usize>,
        now: u64,
    ) -> u64 {
        let pi = p.index();
        let my_cluster = self.cfg.cluster_of(p);
        let supplier_cluster = if from_dirty {
            self.cfg
                .cluster_of(ProcId(dirty_owner.expect("dirty service implies owner")))
        } else {
            let addr = line * self.cfg.l1.line_bytes;
            cool_core::ClusterId(self.space.home(ObjRef(addr)).index())
        };
        let local = supplier_cluster == my_cluster;
        let mut cycles = if local {
            self.cfg.lat.local_mem
        } else {
            self.cfg.lat.remote_mem
        };
        if from_dirty {
            cycles += self.cfg.lat.dirty_penalty;
        }
        const QUEUE_DEPTH: u64 = 32;
        if self.cfg.mem_occupancy > 0 && !from_dirty {
            let module = supplier_cluster.index();
            let busy = &mut self.node_busy[module];
            let start = (*busy).max(now);
            *busy = start + self.cfg.mem_occupancy;
            let queue_delay = (start - now).min(QUEUE_DEPTH * self.cfg.mem_occupancy);
            cycles += queue_delay;
            self.mon.proc_mut(pi).contention_cycles += queue_delay;
        }
        self.mon.proc_mut(pi).record(if local {
            Service::LocalMem
        } else {
            Service::RemoteMem
        });
        cycles
    }
}
