//! Machine configuration, defaulting to the Stanford DASH prototype used in
//! Section 6 of the paper.

use cool_core::{ClusterId, NodeId, ProcId, Topology, MAX_TOPO_LEVELS};

use crate::engine::ContentionConfig;

/// An N-level machine tree layered on top of the classic cluster model.
///
/// The classic [`MachineConfig`] is 2-level: processors grouped into
/// clusters, one memory node per cluster, a single uniform remote latency.
/// A `DeepTopology` describes deeper machines — e.g. SMT pair → chiplet →
/// socket — with a per-level latency table. Level sizes are innermost-first
/// and nest (each divides the next); `mem_level` designates the level whose
/// domains own a memory node, and must agree with
/// [`MachineConfig::procs_per_cluster`] so the directory/page machinery is
/// untouched. Crossing `d` levels above the memory level costs
/// `remote_lat[d - 1]` cycles, replacing the single
/// [`Latencies::remote_mem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeepTopology {
    /// Domain sizes per explicit level, innermost first; unused entries 1.
    pub levels: [usize; MAX_TOPO_LEVELS],
    /// Explicit levels in use.
    pub nlevels: u8,
    /// The level whose domains each own a memory node (the cluster level).
    pub mem_level: u8,
    /// Base miss latency by distance: `remote_lat[d - 1]` for a miss
    /// serviced `d` levels above the memory level (entries past the root
    /// are unused).
    pub remote_lat: [u64; MAX_TOPO_LEVELS],
}

impl DeepTopology {
    /// Build and validate a machine tree. `remote_lat` must supply one
    /// latency per level above the memory level (up to and including the
    /// machine root).
    pub fn new(level_sizes: &[usize], mem_level: usize, remote_lat: &[u64]) -> Self {
        assert!(
            !level_sizes.is_empty() && level_sizes.len() <= MAX_TOPO_LEVELS,
            "1..={MAX_TOPO_LEVELS} levels"
        );
        assert!(mem_level < level_sizes.len(), "mem_level out of range");
        let distances = level_sizes.len() - mem_level;
        assert_eq!(
            remote_lat.len(),
            distances,
            "need one remote latency per level above the memory level \
             (incl. the root): {distances}"
        );
        let mut levels = [1usize; MAX_TOPO_LEVELS];
        for (l, &s) in level_sizes.iter().enumerate() {
            assert!(s > 0);
            if l > 0 {
                assert!(
                    s > level_sizes[l - 1] && s % level_sizes[l - 1] == 0,
                    "level sizes must strictly increase and nest"
                );
            }
            levels[l] = s;
        }
        let mut lat = [0u64; MAX_TOPO_LEVELS];
        lat[..remote_lat.len()].copy_from_slice(remote_lat);
        DeepTopology {
            levels,
            nlevels: level_sizes.len() as u8,
            mem_level: mem_level as u8,
            remote_lat: lat,
        }
    }

    /// The level sizes actually in use, innermost first.
    pub fn level_sizes(&self) -> &[usize] {
        &self.levels[..self.nlevels as usize]
    }
}

/// Parameters of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes (16 on DASH).
    pub line_bytes: u64,
    /// Associativity (1 = direct-mapped, as on the DASH prototype).
    pub assoc: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc as u64)
    }

    /// Total lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// The latency table of the three-level hierarchy (processor cycles).
///
/// Values from Section 6: "References that are satisfied in the first-level
/// cache take a single processor cycle, while hits in the second-level cache
/// take about 14 cycles. Memory references to data in the local cluster
/// memory take nearly 30 cycles, while references to the remote memory of
/// another cluster take about 100-150 cycles."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// First-level cache hit.
    pub l1_hit: u64,
    /// Second-level cache hit.
    pub l2_hit: u64,
    /// Miss serviced by the local cluster memory.
    pub local_mem: u64,
    /// Miss serviced by a remote cluster's memory (or a remote dirty cache).
    pub remote_mem: u64,
    /// Extra cycles when a miss must be serviced by another cache that holds
    /// the line dirty (three-hop transaction on DASH).
    pub dirty_penalty: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            l1_hit: 1,
            l2_hit: 14,
            local_mem: 30,
            remote_mem: 130,
            dirty_penalty: 20,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processors.
    pub nprocs: usize,
    /// Processors per cluster; each cluster holds one memory node.
    pub procs_per_cluster: usize,
    /// First-level cache (64 KB on DASH).
    pub l1: CacheConfig,
    /// Second-level cache (256 KB on DASH).
    pub l2: CacheConfig,
    /// Latency table.
    pub lat: Latencies,
    /// Operating-system page size: homes are tracked per page, and `migrate`
    /// moves whole pages, matching the DASH footnote in Section 4.1.
    pub page_bytes: u64,
    /// Scheduling overhead charged per task dispatch (enqueue + dequeue).
    pub dispatch_overhead: u64,
    /// Cycles to migrate one page (copy + remap).
    pub page_migrate_cost: u64,
    /// Cycles a memory module is occupied per request it services. Requests
    /// to a busy module queue, so concentrating data on one node costs
    /// bandwidth as well as latency — the effect behind the paper's
    /// "distributing the panels improves performance due to better
    /// utilization of the available memory bandwidth". 0 disables the
    /// contention model.
    pub mem_occupancy: u64,
    /// Discrete-event contention engine (see [`crate::engine`]). `None`
    /// selects the zero-contention fast path: the legacy busy-pointer
    /// model above, cycle-identical to the frozen oracle. `Some` routes
    /// every miss through per-cluster bus/net/directory/memory resources
    /// with service times and FIFO queueing, superseding `mem_occupancy`.
    pub contention: Option<ContentionConfig>,
    /// N-level machine tree (see [`DeepTopology`]). `None` is the classic
    /// 2-level cluster machine — every existing configuration — and keeps
    /// simulated cycles and fingerprints byte-identical. `Some` generalizes
    /// remote-miss latencies and interconnect routing to the tree.
    pub deep: Option<DeepTopology>,
}

impl MachineConfig {
    /// The DASH prototype: 32 processors, 8 clusters of 4, 64 KB / 256 KB
    /// direct-mapped caches with 16-byte lines.
    pub fn dash(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            procs_per_cluster: 4,
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 16,
                assoc: 1,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: 16,
                assoc: 1,
            },
            lat: Latencies::default(),
            page_bytes: 4096,
            dispatch_overhead: 50,
            page_migrate_cost: 2000,
            mem_occupancy: 3,
            contention: None,
            deep: None,
        }
    }

    /// Install the discrete-event contention engine (builder style).
    pub fn with_contention(mut self, c: ContentionConfig) -> Self {
        self.contention = Some(c);
        self
    }

    /// Install an N-level machine tree (builder style). Keeps
    /// `procs_per_cluster` consistent with the tree's memory level so the
    /// page/directory machinery and the tree agree on what a cluster is.
    pub fn with_deep(mut self, t: DeepTopology) -> Self {
        self.procs_per_cluster = t.levels[t.mem_level as usize];
        self.deep = Some(t);
        self
    }

    /// A modern-shaped deep machine at DASH cache geometry: SMT pairs →
    /// 8-processor chiplets (each owning a memory node) → 32-processor
    /// sockets. Crossing chiplets within a socket costs 100 cycles,
    /// crossing sockets 180 — bracketing the paper's 100–150-cycle remote
    /// band around the depth of the crossing.
    pub fn deep(nprocs: usize) -> Self {
        Self::dash(nprocs).with_deep(DeepTopology::new(&[2, 8, 32], 1, &[100, 180]))
    }

    /// The deep machine at `dash_small` cache geometry (fast tests/sweeps).
    pub fn deep_small(nprocs: usize) -> Self {
        Self::dash_small(nprocs).with_deep(DeepTopology::new(&[2, 8, 32], 1, &[100, 180]))
    }

    /// A scaled-down DASH for fast tests: small caches magnify locality
    /// effects at small problem sizes while preserving the latency ratios.
    pub fn dash_small(nprocs: usize) -> Self {
        MachineConfig {
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                line_bytes: 16,
                assoc: 1,
            },
            l2: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 16,
                assoc: 1,
            },
            page_bytes: 1024,
            ..Self::dash(nprocs)
        }
    }

    /// A compact, stable fingerprint of every parameter that influences
    /// simulated behaviour. Feeds the `cool-repro` memoization key: two
    /// configs with equal fingerprints produce identical simulations, and
    /// any parameter change changes the string.
    pub fn fingerprint(&self) -> String {
        let ctn = match &self.contention {
            None => "off".to_string(),
            Some(c) => c.fingerprint(),
        };
        let mut s = format!(
            "p{}x{} l1={}/{}/{} l2={}/{}/{} lat={}/{}/{}/{}/{} pg={} do={} mig={} occ={} ctn={}",
            self.nprocs,
            self.procs_per_cluster,
            self.l1.size_bytes,
            self.l1.line_bytes,
            self.l1.assoc,
            self.l2.size_bytes,
            self.l2.line_bytes,
            self.l2.assoc,
            self.lat.l1_hit,
            self.lat.l2_hit,
            self.lat.local_mem,
            self.lat.remote_mem,
            self.lat.dirty_penalty,
            self.page_bytes,
            self.dispatch_overhead,
            self.page_migrate_cost,
            self.mem_occupancy,
            ctn,
        );
        if let Some(t) = &self.deep {
            // Appended only for deep machines: classic 2-level fingerprints
            // stay byte-identical to the epoch-2 baselines, and a deep
            // machine can never collide with a classic one in the memo cache.
            let sizes: Vec<String> = t.level_sizes().iter().map(|s| s.to_string()).collect();
            let lats: Vec<String> = t.remote_lat[..t.nlevels as usize - t.mem_level as usize]
                .iter()
                .map(|l| l.to_string())
                .collect();
            s.push_str(&format!(
                " tree={}@{} rlat={}",
                sizes.join("x"),
                t.mem_level,
                lats.join("/")
            ));
        }
        s
    }

    /// Scheduler-facing topology.
    pub fn topology(&self) -> Topology {
        match &self.deep {
            None => Topology::clustered(self.nprocs, self.procs_per_cluster),
            Some(t) => Topology::tree(self.nprocs, t.level_sizes(), t.mem_level as usize),
        }
    }

    /// Number of clusters / memory nodes.
    pub fn nclusters(&self) -> usize {
        self.nprocs.div_ceil(self.procs_per_cluster)
    }

    /// The cluster (= memory node) of a processor.
    #[inline]
    pub fn cluster_of(&self, p: ProcId) -> ClusterId {
        ClusterId(p.index() / self.procs_per_cluster)
    }

    /// The memory node local to a processor.
    #[inline]
    pub fn node_of(&self, p: ProcId) -> NodeId {
        NodeId(self.cluster_of(p).index())
    }

    /// A representative processor for a memory node (the first in its
    /// cluster) — used to turn `home(obj)` into a server choice.
    #[inline]
    pub fn proc_of_node(&self, n: NodeId) -> ProcId {
        ProcId(n.index() * self.procs_per_cluster)
    }

    /// Topology distance between two clusters: 0 when equal, otherwise the
    /// number of levels above the memory level of their nearest common
    /// ancestor. On a classic machine every remote cluster is at distance 1.
    #[inline]
    pub fn cluster_distance(&self, a: ClusterId, b: ClusterId) -> usize {
        if a == b {
            return 0;
        }
        match &self.deep {
            None => 1,
            Some(t) => {
                let (nl, ml) = (t.nlevels as usize, t.mem_level as usize);
                let pa = a.index() * self.procs_per_cluster;
                let pb = b.index() * self.procs_per_cluster;
                for l in ml + 1..nl {
                    if pa / t.levels[l] == pb / t.levels[l] {
                        return l - ml;
                    }
                }
                nl - ml
            }
        }
    }

    /// Base miss latency for a supplier at `cluster_distance` `d`: the local
    /// memory at 0; on a classic machine the uniform `remote_mem` beyond,
    /// on a deep machine the per-level `remote_lat` table.
    #[inline]
    pub fn mem_latency(&self, d: usize) -> u64 {
        if d == 0 {
            return self.lat.local_mem;
        }
        match &self.deep {
            None => self.lat.remote_mem,
            Some(t) => t.remote_lat[d - 1],
        }
    }

    /// Number of interconnect-link resources the contention engine models:
    /// one per cluster, plus — on a deep machine — one per domain of every
    /// level strictly between the memory level and the root (the root itself
    /// has no link; a root crossing rides the lower-level links of the home
    /// side, which on a classic machine degenerates to exactly the home
    /// cluster's link).
    pub fn nnet(&self) -> usize {
        let mut n = self.nclusters();
        if let Some(t) = &self.deep {
            for l in t.mem_level as usize + 1..t.nlevels as usize {
                n += self.nprocs.div_ceil(t.levels[l]);
            }
        }
        n
    }

    /// First net-resource index of explicit level `l`'s domain links
    /// (deep machines only; level `mem_level` maps to the per-cluster links
    /// at index 0).
    fn net_base(&self, l: usize) -> usize {
        let t = self.deep.as_ref().expect("net_base on a classic machine");
        let mut base = self.nclusters();
        for j in t.mem_level as usize + 1..l {
            base += self.nprocs.div_ceil(t.levels[j]);
        }
        base
    }

    /// The net-resource indices a transaction traverses crossing from
    /// cluster `from` to cluster `to`, home-side outermost link first and
    /// the home cluster's own link last; empty when the clusters are equal.
    /// On a classic machine a crossing is exactly the home cluster's link,
    /// preserving the original hop chain byte-for-byte.
    pub fn net_path(&self, from: ClusterId, to: ClusterId, buf: &mut [usize; MAX_TOPO_LEVELS]) -> usize {
        let d = self.cluster_distance(from, to);
        if d == 0 {
            return 0;
        }
        let mut n = 0;
        if let Some(t) = &self.deep {
            let ml = t.mem_level as usize;
            let pb = to.index() * self.procs_per_cluster;
            for k in (1..d).rev() {
                let l = ml + k;
                buf[n] = self.net_base(l) + pb / t.levels[l];
                n += 1;
            }
        }
        buf[n] = to.index();
        n + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dash_defaults_match_the_paper() {
        let c = MachineConfig::dash(32);
        assert_eq!(c.nclusters(), 8);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.lat.l1_hit, 1);
        assert_eq!(c.lat.l2_hit, 14);
        assert_eq!(c.lat.local_mem, 30);
        assert!(c.lat.remote_mem >= 100 && c.lat.remote_mem <= 150);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 16,
            assoc: 1,
        };
        assert_eq!(c.lines(), 4096);
        assert_eq!(c.sets(), 4096);
        let c2 = CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 16,
            assoc: 4,
        };
        assert_eq!(c2.sets(), 1024);
    }

    #[test]
    fn fingerprint_distinguishes_contention_modes() {
        let base = MachineConfig::dash(8);
        let contended = base.with_contention(ContentionConfig::dash());
        assert!(base.fingerprint().ends_with("ctn=off"));
        assert_ne!(base.fingerprint(), contended.fingerprint());
        let mut tweaked = contended;
        tweaked.contention = Some(ContentionConfig {
            mem_service: 99,
            ..ContentionConfig::dash()
        });
        assert_ne!(contended.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn node_and_proc_mapping_roundtrip() {
        let c = MachineConfig::dash(32);
        assert_eq!(c.node_of(ProcId(0)), NodeId(0));
        assert_eq!(c.node_of(ProcId(5)), NodeId(1));
        assert_eq!(c.proc_of_node(NodeId(1)), ProcId(4));
        assert_eq!(c.node_of(c.proc_of_node(NodeId(7))), NodeId(7));
    }
}
