//! Machine configuration, defaulting to the Stanford DASH prototype used in
//! Section 6 of the paper.

use cool_core::{ClusterId, NodeId, ProcId, Topology};

use crate::engine::ContentionConfig;

/// Parameters of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes (16 on DASH).
    pub line_bytes: u64,
    /// Associativity (1 = direct-mapped, as on the DASH prototype).
    pub assoc: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc as u64)
    }

    /// Total lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

/// The latency table of the three-level hierarchy (processor cycles).
///
/// Values from Section 6: "References that are satisfied in the first-level
/// cache take a single processor cycle, while hits in the second-level cache
/// take about 14 cycles. Memory references to data in the local cluster
/// memory take nearly 30 cycles, while references to the remote memory of
/// another cluster take about 100-150 cycles."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// First-level cache hit.
    pub l1_hit: u64,
    /// Second-level cache hit.
    pub l2_hit: u64,
    /// Miss serviced by the local cluster memory.
    pub local_mem: u64,
    /// Miss serviced by a remote cluster's memory (or a remote dirty cache).
    pub remote_mem: u64,
    /// Extra cycles when a miss must be serviced by another cache that holds
    /// the line dirty (three-hop transaction on DASH).
    pub dirty_penalty: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            l1_hit: 1,
            l2_hit: 14,
            local_mem: 30,
            remote_mem: 130,
            dirty_penalty: 20,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processors.
    pub nprocs: usize,
    /// Processors per cluster; each cluster holds one memory node.
    pub procs_per_cluster: usize,
    /// First-level cache (64 KB on DASH).
    pub l1: CacheConfig,
    /// Second-level cache (256 KB on DASH).
    pub l2: CacheConfig,
    /// Latency table.
    pub lat: Latencies,
    /// Operating-system page size: homes are tracked per page, and `migrate`
    /// moves whole pages, matching the DASH footnote in Section 4.1.
    pub page_bytes: u64,
    /// Scheduling overhead charged per task dispatch (enqueue + dequeue).
    pub dispatch_overhead: u64,
    /// Cycles to migrate one page (copy + remap).
    pub page_migrate_cost: u64,
    /// Cycles a memory module is occupied per request it services. Requests
    /// to a busy module queue, so concentrating data on one node costs
    /// bandwidth as well as latency — the effect behind the paper's
    /// "distributing the panels improves performance due to better
    /// utilization of the available memory bandwidth". 0 disables the
    /// contention model.
    pub mem_occupancy: u64,
    /// Discrete-event contention engine (see [`crate::engine`]). `None`
    /// selects the zero-contention fast path: the legacy busy-pointer
    /// model above, cycle-identical to the frozen oracle. `Some` routes
    /// every miss through per-cluster bus/net/directory/memory resources
    /// with service times and FIFO queueing, superseding `mem_occupancy`.
    pub contention: Option<ContentionConfig>,
}

impl MachineConfig {
    /// The DASH prototype: 32 processors, 8 clusters of 4, 64 KB / 256 KB
    /// direct-mapped caches with 16-byte lines.
    pub fn dash(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            procs_per_cluster: 4,
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 16,
                assoc: 1,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: 16,
                assoc: 1,
            },
            lat: Latencies::default(),
            page_bytes: 4096,
            dispatch_overhead: 50,
            page_migrate_cost: 2000,
            mem_occupancy: 3,
            contention: None,
        }
    }

    /// Install the discrete-event contention engine (builder style).
    pub fn with_contention(mut self, c: ContentionConfig) -> Self {
        self.contention = Some(c);
        self
    }

    /// A scaled-down DASH for fast tests: small caches magnify locality
    /// effects at small problem sizes while preserving the latency ratios.
    pub fn dash_small(nprocs: usize) -> Self {
        MachineConfig {
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                line_bytes: 16,
                assoc: 1,
            },
            l2: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 16,
                assoc: 1,
            },
            page_bytes: 1024,
            ..Self::dash(nprocs)
        }
    }

    /// A compact, stable fingerprint of every parameter that influences
    /// simulated behaviour. Feeds the `cool-repro` memoization key: two
    /// configs with equal fingerprints produce identical simulations, and
    /// any parameter change changes the string.
    pub fn fingerprint(&self) -> String {
        let ctn = match &self.contention {
            None => "off".to_string(),
            Some(c) => c.fingerprint(),
        };
        format!(
            "p{}x{} l1={}/{}/{} l2={}/{}/{} lat={}/{}/{}/{}/{} pg={} do={} mig={} occ={} ctn={}",
            self.nprocs,
            self.procs_per_cluster,
            self.l1.size_bytes,
            self.l1.line_bytes,
            self.l1.assoc,
            self.l2.size_bytes,
            self.l2.line_bytes,
            self.l2.assoc,
            self.lat.l1_hit,
            self.lat.l2_hit,
            self.lat.local_mem,
            self.lat.remote_mem,
            self.lat.dirty_penalty,
            self.page_bytes,
            self.dispatch_overhead,
            self.page_migrate_cost,
            self.mem_occupancy,
            ctn,
        )
    }

    /// Scheduler-facing topology.
    pub fn topology(&self) -> Topology {
        Topology::clustered(self.nprocs, self.procs_per_cluster)
    }

    /// Number of clusters / memory nodes.
    pub fn nclusters(&self) -> usize {
        self.nprocs.div_ceil(self.procs_per_cluster)
    }

    /// The cluster (= memory node) of a processor.
    #[inline]
    pub fn cluster_of(&self, p: ProcId) -> ClusterId {
        ClusterId(p.index() / self.procs_per_cluster)
    }

    /// The memory node local to a processor.
    #[inline]
    pub fn node_of(&self, p: ProcId) -> NodeId {
        NodeId(self.cluster_of(p).index())
    }

    /// A representative processor for a memory node (the first in its
    /// cluster) — used to turn `home(obj)` into a server choice.
    #[inline]
    pub fn proc_of_node(&self, n: NodeId) -> ProcId {
        ProcId(n.index() * self.procs_per_cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dash_defaults_match_the_paper() {
        let c = MachineConfig::dash(32);
        assert_eq!(c.nclusters(), 8);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.lat.l1_hit, 1);
        assert_eq!(c.lat.l2_hit, 14);
        assert_eq!(c.lat.local_mem, 30);
        assert!(c.lat.remote_mem >= 100 && c.lat.remote_mem <= 150);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 16,
            assoc: 1,
        };
        assert_eq!(c.lines(), 4096);
        assert_eq!(c.sets(), 4096);
        let c2 = CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 16,
            assoc: 4,
        };
        assert_eq!(c2.sets(), 1024);
    }

    #[test]
    fn fingerprint_distinguishes_contention_modes() {
        let base = MachineConfig::dash(8);
        let contended = base.with_contention(ContentionConfig::dash());
        assert!(base.fingerprint().ends_with("ctn=off"));
        assert_ne!(base.fingerprint(), contended.fingerprint());
        let mut tweaked = contended;
        tweaked.contention = Some(ContentionConfig {
            mem_service: 99,
            ..ContentionConfig::dash()
        });
        assert_ne!(contended.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn node_and_proc_mapping_roundtrip() {
        let c = MachineConfig::dash(32);
        assert_eq!(c.node_of(ProcId(0)), NodeId(0));
        assert_eq!(c.node_of(ProcId(5)), NodeId(1));
        assert_eq!(c.proc_of_node(NodeId(1)), ProcId(4));
        assert_eq!(c.node_of(c.proc_of_node(NodeId(7))), NodeId(7));
    }
}
