//! Property tests pinning the rewritten hot path to the frozen oracle.
//!
//! Random mixed streams of reads, writes, prefetches and page migrations are
//! driven through [`crate::Machine`] (flat directory, fixed-width cache sets,
//! per-processor lookasides) and [`crate::oracle::OracleMachine`] (the
//! original implementation) in lockstep. Every access must return the same
//! latency, and after the stream the monitor counters, directory state and
//! cache contents must be identical. The streams are shaped to hit the
//! corners the lookaside makes dangerous: repeat hits, conflict evictions,
//! cross-processor invalidations, dirty-owner downgrades, first-touch
//! claiming and migration purges.
//!
//! Since the discrete-event contention engine landed, these suites are also
//! the gate on *zero-contention mode*: every config here has
//! `contention: None`, which must select a code path cycle- and
//! counter-identical to the frozen oracle ([`zero_contention_mode_matches_oracle`]
//! pins the mode explicitly). Contended configs have no oracle — for them
//! the contract is determinism: identical config and reference stream give
//! byte-identical latencies, counters, contention statistics and event
//! counts ([`contended_mode_is_deterministic`]). The simulator is
//! single-threaded, so host parallelism cannot perturb it; the repro
//! harness's `--race-serial` pass proves that end-to-end.

use cool_core::{NodeId, ObjRef, ProcId};
use proptest::prelude::*;

use crate::config::{CacheConfig, MachineConfig};
use crate::oracle::OracleMachine;
use crate::Machine;

/// Bytes per test region (three regions with distinct placement policies).
const REGION: u64 = 4096;

/// Shrunken caches so random streams exercise L1 *and* L2 evictions: 16
/// direct-mapped L1 lines, 64 two-way L2 lines against a 768-line footprint.
fn small_cache_config(nprocs: usize) -> MachineConfig {
    let mut cfg = MachineConfig::dash_small(nprocs);
    cfg.l1 = CacheConfig {
        size_bytes: 16 * 16,
        line_bytes: 16,
        assoc: 1,
    };
    cfg.l2 = CacheConfig {
        size_bytes: 64 * 16,
        line_bytes: 16,
        assoc: 2,
    };
    cfg
}

/// Allocate the three regions identically in both machines: fixed placement,
/// interleaved, and first-touch (so claiming is part of the contract).
fn alloc_regions(fast: &mut Machine, slow: &mut OracleMachine) -> [ObjRef; 3] {
    let fa = fast.alloc_on_node(NodeId(0), REGION);
    let fb = fast.alloc_interleaved(REGION);
    let fc = fast.alloc_first_touch(REGION);
    let sa = slow.alloc_on_node(NodeId(0), REGION);
    let sb = slow.alloc_interleaved(REGION);
    let sc = slow.alloc_first_touch(REGION);
    assert_eq!((fa, fb, fc), (sa, sb, sc), "allocators diverged");
    [fa, fb, fc]
}

/// Compare every piece of externally observable simulator state.
fn assert_same_state(
    fast: &Machine,
    slow: &OracleMachine,
    regions: &[ObjRef; 3],
    nprocs: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        fast.monitor().breakdown(),
        slow.monitor().breakdown(),
        "monitor breakdown diverged"
    );
    for p in 0..nprocs {
        prop_assert_eq!(
            fast.monitor().proc(p),
            slow.monitor().proc(p),
            "proc {} counters diverged",
            p
        );
    }
    prop_assert_eq!(
        fast.dir_tracked_lines(),
        slow.tracked_lines(),
        "tracked line count diverged"
    );
    for &base in regions {
        prop_assert_eq!(fast.home_node(base), slow.home_node(base));
        prop_assert_eq!(fast.home_proc(base), slow.home_proc(base));
        for line in base.0 / 16..(base.0 + REGION) / 16 {
            prop_assert_eq!(
                fast.dir_sharers(line),
                slow.sharers(line),
                "sharers of line {} diverged",
                line
            );
            for p in 0..nprocs {
                prop_assert_eq!(
                    fast.cache_contains(p, line),
                    slow.cache_contains(p, line),
                    "residency of line {} in proc {} diverged",
                    line,
                    p
                );
                prop_assert_eq!(
                    fast.dir_is_exclusive(line, p),
                    slow.is_exclusive(line, p),
                    "exclusivity of line {} for proc {} diverged",
                    line,
                    p
                );
            }
        }
    }
    for p in 0..nprocs {
        prop_assert_eq!(
            fast.cache_resident(p),
            slow.cache_resident(p),
            "resident count of proc {} diverged",
            p
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The central contract: arbitrary mixed streams cost identical cycles
    /// and leave identical state, across processor counts and all four
    /// operation kinds (including line/page-spanning lengths).
    #[test]
    fn mixed_streams_match_oracle(
        ops in prop::collection::vec(
            (0u8..16, 0usize..32, 0usize..3, 0u64..REGION, 1u64..96),
            1..300,
        ),
        np_sel in 0usize..3,
    ) {
        let nprocs = [2, 8, 32][np_sel];
        let cfg = small_cache_config(nprocs);
        let mut fast = Machine::new(cfg);
        let mut slow = OracleMachine::new(cfg);
        let regions = alloc_regions(&mut fast, &mut slow);
        let mut now = 0u64;
        for (kind, p, region, off, len) in ops {
            let pi = p % nprocs;
            let p = ProcId(pi);
            let off = off % REGION;
            let len = len.min(REGION - off);
            let at = regions[region].offset(off);
            let (cf, cs) = match kind {
                // Reads dominate, like real reference streams.
                0..=6 => (fast.read_at(p, at, len, now), slow.read_at(p, at, len, now)),
                7..=12 => (fast.write_at(p, at, len, now), slow.write_at(p, at, len, now)),
                13 | 14 => (fast.prefetch(p, at, len, now), slow.prefetch(p, at, len, now)),
                _ => (
                    fast.migrate_to_proc(at, len, pi),
                    slow.migrate_to_proc(at, len, pi),
                ),
            };
            prop_assert_eq!(cf, cs, "cycle divergence at op on line {}", at.0 / 16);
            now += cf;
        }
        assert_same_state(&fast, &slow, &regions, nprocs)?;
    }

    /// Ping-pong sharing: two processors alternating reads and writes over a
    /// handful of lines — maximal pressure on invalidation-driven lookaside
    /// clearing and dirty-owner downgrades.
    #[test]
    fn sharing_ping_pong_matches_oracle(
        ops in prop::collection::vec((0usize..2, 0u64..4, any::<bool>()), 1..250),
    ) {
        let nprocs = 8;
        let cfg = small_cache_config(nprocs);
        let mut fast = Machine::new(cfg);
        let mut slow = OracleMachine::new(cfg);
        let regions = alloc_regions(&mut fast, &mut slow);
        let mut now = 0u64;
        for (p, line_idx, is_write) in ops {
            // Processors 0 and 4 sit in different clusters: remote dirty
            // service and the dirty penalty are both exercised.
            let p = ProcId(p * 4);
            let at = regions[0].offset(line_idx * 16);
            let (cf, cs) = if is_write {
                (fast.write_at(p, at, 8, now), slow.write_at(p, at, 8, now))
            } else {
                (fast.read_at(p, at, 8, now), slow.read_at(p, at, 8, now))
            };
            prop_assert_eq!(cf, cs, "cycle divergence on line {}", line_idx);
            now += cf;
        }
        assert_same_state(&fast, &slow, &regions, nprocs)?;
    }

    /// Conflict-eviction torture: one processor walking addresses that all
    /// collide in the same L1 set, interleaved with repeat hits — the pattern
    /// that would expose a lookaside surviving its line's eviction.
    #[test]
    fn conflict_evictions_match_oracle(
        ops in prop::collection::vec((0u64..12, any::<bool>()), 1..250),
    ) {
        let nprocs = 2;
        let cfg = small_cache_config(nprocs);
        let mut fast = Machine::new(cfg);
        let mut slow = OracleMachine::new(cfg);
        let regions = alloc_regions(&mut fast, &mut slow);
        let mut now = 0u64;
        let l1_bytes = cfg.l1.size_bytes; // stride that collides in L1
        for (way, repeat_hit) in ops {
            let off = (way * l1_bytes) % REGION;
            let at = regions[1].offset(off);
            let reps = if repeat_hit { 2 } else { 1 };
            for _ in 0..reps {
                let (cf, cs) = (
                    fast.read_at(ProcId(0), at, 8, now),
                    slow.read_at(ProcId(0), at, 8, now),
                );
                prop_assert_eq!(cf, cs, "cycle divergence at offset {}", off);
                now += cf;
            }
        }
        assert_same_state(&fast, &slow, &regions, nprocs)?;
    }

    /// Migration in the middle of hot reuse: lookasides must drop entries
    /// for moved pages, first-touch claims must agree before and after.
    #[test]
    fn migration_interleaved_matches_oracle(
        ops in prop::collection::vec((0u8..8, 0usize..4, 0u64..REGION), 1..160),
    ) {
        let nprocs = 8;
        let cfg = small_cache_config(nprocs);
        let mut fast = Machine::new(cfg);
        let mut slow = OracleMachine::new(cfg);
        let regions = alloc_regions(&mut fast, &mut slow);
        let mut now = 0u64;
        for (kind, p, off) in ops {
            let p = ProcId(p * 2);
            let off = off % REGION;
            let len = 8u64.min(REGION - off); // stay inside the allocation
            // Work on the first-touch region: migration and claiming interact.
            let at = regions[2].offset(off);
            let (cf, cs) = match kind {
                0..=4 => (fast.read_at(p, at, len, now), slow.read_at(p, at, len, now)),
                5 | 6 => (fast.write_at(p, at, len, now), slow.write_at(p, at, len, now)),
                _ => {
                    let bytes = (REGION - off).max(1);
                    (
                        fast.migrate_to_proc(at, bytes, p.index()),
                        slow.migrate_to_proc(at, bytes, p.index()),
                    )
                }
            };
            prop_assert_eq!(cf, cs, "cycle divergence at offset {}", off);
            now += cf;
        }
        assert_same_state(&fast, &slow, &regions, nprocs)?;
    }

    /// Zero-contention mode, pinned explicitly: a config without the
    /// discrete-event engine must be the *same machine* as the frozen
    /// oracle — identical cycles, counters and state over mixed streams
    /// with migrations — and must report no contention activity at all.
    #[test]
    fn zero_contention_mode_matches_oracle(
        ops in prop::collection::vec(
            (0u8..16, 0usize..32, 0usize..3, 0u64..REGION, 1u64..96),
            1..250,
        ),
        np_sel in 0usize..3,
    ) {
        let nprocs = [2, 8, 32][np_sel];
        let cfg = small_cache_config(nprocs);
        prop_assert!(cfg.contention.is_none(), "zero-contention mode is the default");
        let mut fast = Machine::new(cfg);
        let mut slow = OracleMachine::new(cfg);
        let regions = alloc_regions(&mut fast, &mut slow);
        let mut now = 0u64;
        for (kind, p, region, off, len) in ops {
            let pi = p % nprocs;
            let p = ProcId(pi);
            let off = off % REGION;
            let len = len.min(REGION - off);
            let at = regions[region].offset(off);
            let (cf, cs) = match kind {
                0..=6 => (fast.read_at(p, at, len, now), slow.read_at(p, at, len, now)),
                7..=12 => (fast.write_at(p, at, len, now), slow.write_at(p, at, len, now)),
                13 | 14 => (fast.prefetch(p, at, len, now), slow.prefetch(p, at, len, now)),
                _ => (
                    fast.migrate_to_proc(at, len, pi),
                    slow.migrate_to_proc(at, len, pi),
                ),
            };
            prop_assert_eq!(cf, cs, "cycle divergence at op on line {}", at.0 / 16);
            now += cf;
        }
        assert_same_state(&fast, &slow, &regions, nprocs)?;
        prop_assert_eq!(fast.contention_stats(), crate::ContentionStats::default());
        prop_assert_eq!(fast.contention_events(), 0);
    }

    /// The determinism property for contended configs (no oracle exists for
    /// them): the same seed/config/stream run twice produces byte-identical
    /// per-access latencies, monitor counters, contention statistics and
    /// dispatched-event counts. The engine is part of the single-threaded
    /// simulator, so this cannot depend on host parallelism.
    #[test]
    fn contended_mode_is_deterministic(
        ops in prop::collection::vec(
            (0u8..16, 0usize..32, 0usize..3, 0u64..REGION, 1u64..96),
            1..250,
        ),
        np_sel in 0usize..3,
    ) {
        let nprocs = [2, 8, 32][np_sel];
        let cfg = small_cache_config(nprocs)
            .with_contention(crate::ContentionConfig::dash());
        let run = |ops: &[(u8, usize, usize, u64, u64)]| {
            let mut m = Machine::new(cfg);
            let a = m.alloc_on_node(NodeId(0), REGION);
            let b = m.alloc_interleaved(REGION);
            let c = m.alloc_first_touch(REGION);
            let regions = [a, b, c];
            let mut now = 0u64;
            let mut costs = Vec::with_capacity(ops.len());
            for &(kind, p, region, off, len) in ops {
                let pi = p % nprocs;
                let p = ProcId(pi);
                let off = off % REGION;
                let len = len.min(REGION - off);
                let at = regions[region].offset(off);
                let cost = match kind {
                    0..=6 => m.read_at(p, at, len, now),
                    7..=12 => m.write_at(p, at, len, now),
                    13 | 14 => m.prefetch(p, at, len, now),
                    _ => m.migrate_to_proc(at, len, pi),
                };
                costs.push(cost);
                now += cost;
            }
            m.flush_contention();
            let counters: Vec<_> = (0..nprocs).map(|p| *m.monitor().proc(p)).collect();
            (costs, counters, m.contention_stats(), m.contention_events())
        };
        let first = run(&ops);
        let second = run(&ops);
        prop_assert_eq!(&first.0, &second.0, "per-access latencies diverged");
        prop_assert_eq!(&first.1, &second.1, "monitor counters diverged");
        prop_assert_eq!(first.2, second.2, "contention stats diverged");
        prop_assert_eq!(first.3, second.3, "event counts diverged");
        // Any reference op on a cold machine misses, so the engine must
        // have dispatched events (a stream of only migrations dispatches
        // none).
        if ops.iter().any(|&(kind, ..)| kind < 15) {
            prop_assert!(first.3 > 0, "no events dispatched");
        }
    }
}
