//! Set-associative LRU caches.
//!
//! Addresses are tracked at line granularity; the cache stores line numbers
//! (address / line size). Associativity 1 gives the direct-mapped caches of
//! the DASH prototype; higher associativities are supported for experiments.
//!
//! The cache probe is the hottest operation in the simulator (every mirrored
//! reference probes two levels), so the sets are a single flat `nsets × assoc`
//! array with the LRU order encoded in place: each set's ways are stored
//! most-recently-used first, vacant slots hold a sentinel and always sit at
//! the tail. Promotion and fill are `copy_within` shifts of at most `assoc`
//! words — with DASH-like associativity (1) every operation touches exactly
//! one slot and there is no per-set allocation at all.

use crate::config::CacheConfig;

/// Vacant-slot sentinel. Real line numbers are `addr / line_bytes` of a
/// bump-allocated address space and can never reach it.
const EMPTY: u64 = u64::MAX;

/// Result of a cache probe-and-fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled; the victim line (if any) was
    /// evicted.
    Miss {
        /// Tag of the line evicted to make room, if the set was full.
        evicted: Option<u64>,
    },
}

/// A set-associative cache with true-LRU replacement per set.
#[derive(Debug)]
pub struct Cache {
    /// `nsets * assoc` way slots; set `s` occupies
    /// `ways[s*assoc .. (s+1)*assoc]`, MRU first, `EMPTY`-padded at the tail.
    ways: Box<[u64]>,
    assoc: usize,
    nsets: u64,
    /// `nsets - 1` when `nsets` is a power of two: the set index becomes a
    /// mask instead of a hardware division (set selection runs on every
    /// mirrored reference). Zero-sentinel when `nsets` is not a power of two.
    set_mask: u64,
}

impl Cache {
    /// Build an empty cache from its geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let nsets = cfg.sets();
        assert!(nsets > 0, "cache must have at least one set");
        Cache {
            ways: vec![EMPTY; (nsets as usize) * cfg.assoc].into_boxed_slice(),
            assoc: cfg.assoc,
            nsets,
            set_mask: if nsets.is_power_of_two() { nsets - 1 } else { 0 },
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        let s = if self.set_mask != 0 || self.nsets == 1 {
            line & self.set_mask
        } else {
            line % self.nsets
        };
        s as usize
    }

    #[inline]
    fn set(&mut self, line: u64) -> &mut [u64] {
        let base = self.set_index(line) * self.assoc;
        &mut self.ways[base..base + self.assoc]
    }

    /// Probe for `line`; on hit, promote to MRU; on miss, fill it (evicting
    /// the LRU way if the set is full).
    pub fn access(&mut self, line: u64) -> Access {
        debug_assert_ne!(line, EMPTY);
        let assoc = self.assoc;
        if assoc == 1 {
            // Direct-mapped (every DASH configuration): one slot, no LRU.
            let slot = &mut self.ways[self.set_index(line)];
            let old = *slot;
            if old == line {
                return Access::Hit;
            }
            *slot = line;
            return Access::Miss {
                evicted: (old != EMPTY).then_some(old),
            };
        }
        let ways = self.set(line);
        if ways[0] == line {
            return Access::Hit;
        }
        if let Some(pos) = ways[1..].iter().position(|&l| l == line) {
            // Promote to MRU: shift the more-recent ways down one slot.
            ways.copy_within(0..pos + 1, 1);
            ways[0] = line;
            return Access::Hit;
        }
        // Fill: the LRU way (or an empty tail slot) falls off the end.
        let victim = ways[assoc - 1];
        ways.copy_within(0..assoc - 1, 1);
        ways[0] = line;
        Access::Miss {
            evicted: (victim != EMPTY).then_some(victim),
        }
    }

    /// Is the line present? (No LRU update.)
    pub fn contains(&self, line: u64) -> bool {
        let base = self.set_index(line) * self.assoc;
        self.ways[base..base + self.assoc].contains(&line)
    }

    /// Remove a line (coherence invalidation or inclusion victim). Returns
    /// whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let assoc = self.assoc;
        if assoc == 1 {
            let slot = &mut self.ways[self.set_index(line)];
            if *slot == line {
                *slot = EMPTY;
                return true;
            }
            return false;
        }
        let ways = self.set(line);
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            // Close the gap so vacant slots stay at the tail.
            ways.copy_within(pos + 1.., pos);
            ways[assoc - 1] = EMPTY;
            true
        } else {
            false
        }
    }

    /// Number of resident lines (for tests/statistics).
    pub fn resident(&self) -> usize {
        self.ways.iter().filter(|&&l| l != EMPTY).count()
    }

    /// Is `line` the most-recently-used way of its set? Used by the checked
    /// mode to validate the lookaside invariant (its fast path assumes the
    /// remembered line would be found first, with no LRU update needed).
    #[doc(hidden)]
    pub fn is_mru(&self, line: u64) -> bool {
        self.ways[self.set_index(line) * self.assoc] == line
    }

    /// Every resident line, in storage order (checked-mode full sweeps).
    #[doc(hidden)]
    pub fn resident_lines(&self) -> Vec<u64> {
        self.ways.iter().copied().filter(|&l| l != EMPTY).collect()
    }

    /// Drop every resident line (used when a page migrates).
    pub fn flush(&mut self) {
        self.ways.fill(EMPTY);
    }
}

/// A processor's private two-level hierarchy with inclusion: every line in L1
/// is also in L2; an L2 eviction invalidates the line from L1.
#[derive(Debug)]
pub struct ProcCache {
    /// First-level cache (small, fast).
    pub l1: Cache,
    /// Second-level cache (larger; inclusive of L1).
    pub l2: Cache,
}

/// Where a probe of the two-level hierarchy was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Satisfied by the first-level cache.
    L1,
    /// Missed L1, satisfied by the second-level cache.
    L2,
    /// Missed both levels; the line has been filled in both. Carries the
    /// lines evicted from L2 (which were also removed from L1 for inclusion).
    Memory {
        /// Tag evicted from L2 (and, by inclusion, from L1), if any.
        l2_victim: Option<u64>,
    },
}

impl ProcCache {
    /// Build the private hierarchy for one processor.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert!(
            l2.size_bytes >= l1.size_bytes,
            "L2 must not be smaller than L1"
        );
        assert_eq!(l1.line_bytes, l2.line_bytes, "line sizes must match");
        ProcCache {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
        }
    }

    /// Probe both levels for `line`, filling on miss and maintaining
    /// inclusion.
    pub fn access(&mut self, line: u64) -> Level {
        if let Access::Hit = self.l1.access(line) {
            debug_assert!(self.l2.contains(line), "inclusion violated");
            // Refresh L2 LRU as well (L2 sees the reference on DASH only on
            // L1 miss, but keeping recency here only affects replacement
            // precision, not correctness).
            return Level::L1;
        }
        // `self.l1.access` already filled L1; handle L2.
        match self.l2.access(line) {
            Access::Hit => Level::L2,
            Access::Miss { evicted } => {
                if let Some(victim) = evicted {
                    // Inclusion: a line leaving L2 must leave L1 too.
                    self.l1.invalidate(victim);
                }
                Level::Memory { l2_victim: evicted }
            }
        }
    }

    /// Coherence invalidation of a line from both levels. Returns whether the
    /// line was present in either level.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let in_l1 = self.l1.invalidate(line);
        let in_l2 = self.l2.invalidate(line);
        in_l1 || in_l2
    }

    /// Does either level hold the line?
    pub fn contains(&self, line: u64) -> bool {
        self.l2.contains(line)
    }

    /// Every line resident at either level (inclusion makes this the L2
    /// contents). Checked-mode full sweeps only.
    #[doc(hidden)]
    pub fn resident_lines(&self) -> Vec<u64> {
        self.l2.resident_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: usize, lines: u64) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: lines * 16,
            line_bytes: 16,
            assoc,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(1, 4);
        assert!(matches!(c.access(7), Access::Miss { .. }));
        assert_eq!(c.access(7), Access::Hit);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = tiny(1, 4);
        c.access(0);
        // Line 4 maps to the same set (4 % 4 == 0).
        let r = c.access(4);
        assert_eq!(r, Access::Miss { evicted: Some(0) });
        assert!(!c.contains(0));
        assert!(c.contains(4));
    }

    #[test]
    fn lru_replacement_in_set() {
        // 2-way, 2 sets: lines 0,2,4 all map to set 0.
        let mut c = tiny(2, 4);
        c.access(0);
        c.access(2);
        c.access(0); // 0 becomes MRU; 2 is LRU
        let r = c.access(4);
        assert_eq!(r, Access::Miss { evicted: Some(2) });
        assert!(c.contains(0));
    }

    #[test]
    fn partial_set_fills_before_evicting() {
        // 4-way single set: no eviction until all ways are occupied, then
        // strict LRU order.
        let mut c = tiny(4, 4);
        assert_eq!(c.access(1), Access::Miss { evicted: None });
        assert_eq!(c.access(2), Access::Miss { evicted: None });
        assert_eq!(c.access(3), Access::Miss { evicted: None });
        assert_eq!(c.resident(), 3);
        assert_eq!(c.access(5), Access::Miss { evicted: None });
        assert_eq!(c.access(9), Access::Miss { evicted: Some(1) });
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(2, 8);
        c.access(3);
        assert!(c.invalidate(3));
        assert!(!c.contains(3));
        assert!(!c.invalidate(3));
    }

    #[test]
    fn invalidate_middle_way_keeps_lru_order() {
        // 3-way set; invalidating the middle way must preserve the relative
        // order of the rest (the gap closes toward MRU).
        let mut c = tiny(3, 3);
        c.access(0);
        c.access(3);
        c.access(6); // order: 6, 3, 0
        assert!(c.invalidate(3)); // order: 6, 0
        assert_eq!(c.access(9), Access::Miss { evicted: None }); // 9, 6, 0
        assert_eq!(c.access(12), Access::Miss { evicted: Some(0) });
        assert!(c.contains(6) && c.contains(9));
    }

    #[test]
    fn two_level_inclusion_maintained() {
        let l1 = CacheConfig {
            size_bytes: 2 * 16,
            line_bytes: 16,
            assoc: 1,
        };
        let l2 = CacheConfig {
            size_bytes: 4 * 16,
            line_bytes: 16,
            assoc: 1,
        };
        let mut pc = ProcCache::new(l1, l2);
        // Fill lines that collide in L2 (4 sets): 0 and 4 share L2 set 0.
        assert!(matches!(pc.access(0), Level::Memory { .. }));
        let r = pc.access(4);
        match r {
            Level::Memory { l2_victim } => assert_eq!(l2_victim, Some(0)),
            other => panic!("expected memory fill, got {other:?}"),
        }
        // Line 0 was evicted from L2, so inclusion demands it left L1 too.
        assert!(!pc.l1.contains(0));
        assert!(!pc.l2.contains(0));
    }

    #[test]
    fn l1_hit_then_l2_hit_after_l1_conflict() {
        // L1: 1 set (1 line); L2: 4 lines. Two lines alternate in L1 but both
        // stay in L2.
        let l1 = CacheConfig {
            size_bytes: 16,
            line_bytes: 16,
            assoc: 1,
        };
        let l2 = CacheConfig {
            size_bytes: 4 * 16,
            line_bytes: 16,
            assoc: 4,
        };
        let mut pc = ProcCache::new(l1, l2);
        assert!(matches!(pc.access(1), Level::Memory { .. }));
        assert!(matches!(pc.access(2), Level::Memory { .. }));
        // 1 was pushed out of L1 by 2, but is still in L2.
        assert_eq!(pc.access(1), Level::L2);
        assert_eq!(pc.access(1), Level::L1);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny(2, 8);
        c.access(1);
        c.access(2);
        assert_eq!(c.resident(), 2);
        c.flush();
        assert_eq!(c.resident(), 0);
    }
}
