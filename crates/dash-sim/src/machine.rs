//! The machine façade: processors + caches + memories + directory + monitor.
//!
//! Application tasks mirror their memory accesses through [`Machine::read`] /
//! [`Machine::write`]; the machine walks the cache hierarchy and coherence
//! directory for every line touched, classifies where each reference was
//! serviced (L1 / L2 / local memory / remote memory) and returns the cycles
//! the access cost, which the scheduler adds to the issuing processor's
//! virtual clock.

use cool_core::{NodeId, ObjRef, ProcId, MAX_TOPO_LEVELS};

use crate::cache::{Level, ProcCache};
use crate::check::{CheckState, CoherenceViolation};
use crate::config::MachineConfig;
use crate::directory::Directory;
use crate::engine::{ContentionStats, Engine, Hop, ResourceKind};
use crate::monitor::{PerfMonitor, Service};
use crate::space::AddressSpace;

/// Sentinel line/page number for an empty lookaside slot.
const NO_LINE: u64 = u64::MAX;

/// Per-processor lookaside: short-circuits the common case of a reference
/// hitting the line the processor touched last, without walking the cache
/// sets or the directory.
///
/// Invariants (each makes the short-circuit *exactly* equivalent to the full
/// walk, not an approximation — the line is MRU in its L1 set, so the walk
/// would change no LRU, cache or directory state and charge `l1_hit`):
///
/// * `line != NO_LINE` implies the line is resident in this processor's L1
///   and is the MRU way of its set. Any access to a *different* line
///   replaces the entry, so self-evictions can never leave it stale; a
///   coherence invalidation from another processor's write clears it; a page
///   migration clears every processor's entry.
/// * `write_ok` implies this processor is the exclusive dirty owner, so a
///   repeat write is a pure hit with no ownership transaction. It is cleared
///   (downgraded) when another processor's read is serviced by this owner's
///   dirty cache. Under-claiming is always safe: the slow path recomputes.
/// * `page != NO_LINE` names a page known to be claimed (not first-touch
///   untouched). Pages only transition untouched→touched, so this is
///   one-way-safe and skips the per-line first-touch probe.
#[derive(Clone, Copy, Debug)]
struct Lookaside {
    line: u64,
    page: u64,
    write_ok: bool,
}

impl Lookaside {
    const EMPTY: Lookaside = Lookaside {
        line: NO_LINE,
        page: NO_LINE,
        write_ok: false,
    };
}

/// Gated per-page traffic monitor: memory-serviced misses counted by
/// (page, requesting cluster). Off by default — the rebalancing runtime
/// enables it — and observer-pure: counting never changes a reference's
/// cost, so enabling it cannot perturb simulated cycles.
#[derive(Clone, Debug, Default)]
pub struct PageTraffic {
    nclusters: usize,
    /// Flat `page × cluster` counters, grown lazily to the highest page
    /// observed (stride `nclusters`).
    counts: Vec<u32>,
}

impl PageTraffic {
    fn new(nclusters: usize) -> Self {
        PageTraffic {
            nclusters,
            counts: Vec::new(),
        }
    }

    /// Count one memory-serviced miss on `page` from `cluster`.
    #[inline]
    fn note(&mut self, page: usize, cluster: usize) {
        let end = (page + 1) * self.nclusters;
        if end > self.counts.len() {
            self.counts.resize(end, 0);
        }
        let c = &mut self.counts[page * self.nclusters + cluster];
        *c = c.saturating_add(1);
    }

    /// Highest observed page index plus one (pages beyond this have zero
    /// traffic).
    pub fn pages(&self) -> usize {
        self.counts.len().checked_div(self.nclusters).unwrap_or(0)
    }

    /// Misses `cluster` took on `page` since the last reset.
    pub fn count(&self, page: usize, cluster: usize) -> u32 {
        self.counts
            .get(page * self.nclusters + cluster)
            .copied()
            .unwrap_or(0)
    }

    /// Clear all counters (the rebalancer resets at each phase boundary so
    /// every decision sees one phase's traffic).
    pub fn reset(&mut self) {
        self.counts.clear();
    }
}

/// A simulated DASH-like multiprocessor.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    caches: Vec<ProcCache>,
    space: AddressSpace,
    dir: Directory,
    mon: PerfMonitor,
    /// Virtual time until which each memory module (cluster memory) is
    /// occupied servicing earlier requests (legacy contention model; used
    /// only in zero-contention mode, i.e. when `engine` is `None`).
    node_busy: Vec<u64>,
    /// Discrete-event contention engine (`Some` iff `cfg.contention` is).
    /// When installed, misses become multi-hop transactions queueing at
    /// per-cluster bus/net/directory/memory resources instead of taking
    /// the busy-pointer shortcut above.
    engine: Option<Engine>,
    /// Per-processor last-line/last-page lookaside (see [`Lookaside`]).
    lookaside: Vec<Lookaside>,
    /// `log2(line_bytes)` when the line size is a power of two (it is for
    /// every DASH configuration), so the two address→line divisions on the
    /// per-reference path compile to shifts. Zero-sentinel otherwise.
    line_shift: u32,
    /// `log2(page_bytes)` (page size is always a power of two).
    page_shift: u32,
    /// Checked-mode state (`None` when disabled — the per-reference cost
    /// is then a single branch). See [`crate::check`] for the catalogue.
    checked: Option<CheckState>,
    /// Per-page miss traffic (`Some` iff enabled by the rebalancing
    /// runtime; observer-pure, see [`PageTraffic`]).
    traffic: Option<PageTraffic>,
}

impl Machine {
    /// Build a cold machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.nprocs >= 1 && cfg.nprocs <= 64, "1..=64 processors");
        if let Some(t) = &cfg.deep {
            assert_eq!(
                cfg.procs_per_cluster, t.levels[t.mem_level as usize],
                "procs_per_cluster must match the deep tree's memory level"
            );
        }
        let caches = (0..cfg.nprocs).map(|_| ProcCache::new(cfg.l1, cfg.l2)).collect();
        Machine {
            caches,
            space: AddressSpace::with_procs_per_node(
                cfg.page_bytes,
                cfg.nclusters(),
                cfg.procs_per_cluster,
            ),
            dir: Directory::new(),
            mon: PerfMonitor::new(cfg.nprocs),
            node_busy: vec![0; cfg.nclusters()],
            engine: cfg
                .contention
                .map(|c| Engine::with_nets(c, cfg.nclusters(), cfg.nnet())),
            lookaside: vec![Lookaside::EMPTY; cfg.nprocs],
            line_shift: if cfg.l1.line_bytes.is_power_of_two() {
                cfg.l1.line_bytes.trailing_zeros()
            } else {
                0
            },
            page_shift: cfg.page_bytes.trailing_zeros(),
            checked: None,
            traffic: None,
            cfg,
        }
    }

    /// Line number of `addr` (shift when the line size is 2^k).
    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        if self.line_shift != 0 {
            addr >> self.line_shift
        } else {
            addr / self.cfg.l1.line_bytes
        }
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The performance monitor (read-only).
    pub fn monitor(&self) -> &PerfMonitor {
        &self.mon
    }

    /// Mutable monitor access (scheduler charges idle/overhead cycles).
    pub fn monitor_mut(&mut self) -> &mut PerfMonitor {
        &mut self.mon
    }

    /// The address space (read-only).
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    // ----- allocation & distribution (Section 4.1 primitives) -----

    /// Default allocation: from the local memory of the requesting processor.
    pub fn alloc_local(&mut self, p: ProcId, bytes: u64) -> ObjRef {
        let node = self.cfg.node_of(p);
        self.space.alloc_placed(bytes, node, p)
    }

    /// `new (n) T`: allocate in the local memory of processor `n % nprocs`.
    pub fn alloc_on_proc(&mut self, n: usize, bytes: u64) -> ObjRef {
        let p = ProcId(n % self.cfg.nprocs);
        let node = self.cfg.node_of(p);
        self.space.alloc_placed(bytes, node, p)
    }

    /// Allocate directly on a memory node (owned by its first processor).
    pub fn alloc_on_node(&mut self, node: NodeId, bytes: u64) -> ObjRef {
        let node = NodeId(node.index() % self.cfg.nclusters());
        let p = self.cfg.proc_of_node(node);
        self.space.alloc_placed(bytes, node, p)
    }

    /// Allocate with round-robin page interleaving across memory nodes.
    pub fn alloc_interleaved(&mut self, bytes: u64) -> ObjRef {
        self.space.alloc_interleaved(bytes)
    }

    /// Allocate under the first-touch policy: each page is homed on the
    /// cluster of the first processor that references it (the automatic
    /// OS placement the paper's related work contrasts with).
    pub fn alloc_first_touch(&mut self, bytes: u64) -> ObjRef {
        self.space.alloc_first_touch(bytes)
    }

    /// `home()`: the memory node holding the object.
    pub fn home_node(&self, obj: ObjRef) -> NodeId {
        self.space.home(obj)
    }

    /// The server/processor used to collocate tasks with `obj`: the
    /// processor whose local memory was requested when the page was placed.
    /// Object-affinity scheduling resolves through this — COOL's `home()`.
    pub fn home_proc(&self, obj: ObjRef) -> ProcId {
        self.space.home_proc(obj)
    }

    /// `migrate()`: move `bytes` at `obj` to processor `n % nprocs`'s local
    /// memory. Whole pages move; cached copies of the moved pages are
    /// discarded machine-wide (the physical address changed). Returns the
    /// cycle cost to charge the calling processor.
    pub fn migrate_to_proc(&mut self, obj: ObjRef, bytes: u64, n: usize) -> u64 {
        let p = ProcId(n % self.cfg.nprocs);
        let node = self.cfg.node_of(p);
        self.migrate_placed(obj, bytes, node, p)
    }

    /// `migrate()` targeting a memory node directly (owned by its first
    /// processor).
    pub fn migrate_to_node(&mut self, obj: ObjRef, bytes: u64, node: NodeId) -> u64 {
        let node = NodeId(node.index() % self.cfg.nclusters());
        let p = self.cfg.proc_of_node(node);
        self.migrate_placed(obj, bytes, node, p)
    }

    fn migrate_placed(&mut self, obj: ObjRef, bytes: u64, node: NodeId, p: ProcId) -> u64 {
        let moved = self.space.migrate_placed(obj, bytes, node, p);
        if moved == 0 {
            return 0;
        }
        let (lo, hi) = self.space.span_pages(obj, bytes);
        let line_bytes = self.cfg.l1.line_bytes;
        let mut line = lo / line_bytes;
        let end = hi / line_bytes;
        while line < end {
            for cache in &mut self.caches {
                cache.invalidate(line);
            }
            self.dir.purge_line(line);
            line += 1;
        }
        // Cached copies are gone machine-wide, so no lookaside may keep
        // promising an L1 hit on a moved line. Migration is rare; clearing
        // every entry (rather than range-testing each) keeps this simple.
        // The `page` halves stay valid: migration never un-touches a page.
        for la in &mut self.lookaside {
            la.line = NO_LINE;
            la.write_ok = false;
        }
        if self.checked.is_some() {
            let mut l = lo / line_bytes;
            while l < end {
                self.check_line(l);
                l += 1;
            }
        }
        moved * self.cfg.page_migrate_cost
    }

    // ----- memory references -----

    /// Simulate a read of `len` bytes at `obj` by processor `p`, issued at
    /// virtual time 0 (no contention context). Returns the cycles the access
    /// cost (summed over the cache lines touched).
    pub fn read(&mut self, p: ProcId, obj: ObjRef, len: u64) -> u64 {
        self.reference(p, obj, len, false, 0)
    }

    /// Simulate a write of `len` bytes at `obj` by processor `p`, issued at
    /// virtual time 0.
    pub fn write(&mut self, p: ProcId, obj: ObjRef, len: u64) -> u64 {
        self.reference(p, obj, len, true, 0)
    }

    /// As [`Machine::read`], issued at virtual time `now` — misses queue
    /// behind other requests occupying the servicing memory module.
    pub fn read_at(&mut self, p: ProcId, obj: ObjRef, len: u64, now: u64) -> u64 {
        self.reference(p, obj, len, false, now)
    }

    /// As [`Machine::write`], issued at virtual time `now`.
    pub fn write_at(&mut self, p: ProcId, obj: ObjRef, len: u64, now: u64) -> u64 {
        self.reference(p, obj, len, true, now)
    }

    /// Prefetch `len` bytes at `obj` into `p`'s caches, issued at virtual
    /// time `now` (Section 8 lists prefetching support as ongoing work; this
    /// models a non-binding prefetch whose latency overlaps computation).
    /// Each line costs only an issue overhead; lines already cached are
    /// skipped. Prefetched fills consume memory-module bandwidth like
    /// ordinary misses but their latency is hidden.
    pub fn prefetch(&mut self, p: ProcId, obj: ObjRef, len: u64, now: u64) -> u64 {
        const ISSUE_COST: u64 = 2;
        if len == 0 {
            return 0;
        }
        let line_bytes = self.cfg.l1.line_bytes;
        let first = self.line_of(obj.0);
        let last = self.line_of(obj.0 + len - 1);
        let pi = p.index();
        let mut cycles = 0;
        for line in first..=last {
            let addr = line * line_bytes;
            if self.space.is_untouched(addr) {
                let node = self.cfg.node_of(p);
                self.space.claim_first_touch(addr, node, p);
            }
            if self.caches[pi].contains(line) {
                self.mon.proc_mut(pi).prefetch_hits += 1;
                continue;
            }
            // Fill both levels; handle inclusion victims and coherence like
            // a read miss, but charge only the issue cost.
            if let crate::cache::Level::Memory {
                l2_victim: Some(v),
            } = self.caches[pi].access(line)
            {
                self.dir.evict(v, pi);
                if let Some(chk) = self.checked.as_mut() {
                    chk.pending.push(v);
                }
            }
            let outcome = self.dir.read_miss(line, pi);
            // A prefetch serviced by a dirty owner downgrades the owner to
            // shared: its lookaside may no longer promise exclusive writes.
            if let Some(o) = outcome.dirty_owner {
                if o != pi && self.lookaside[o].line == line {
                    self.lookaside[o].write_ok = false;
                }
            }
            // The fill may have displaced this processor's lookaside line
            // from L1; the freshly filled line is now the MRU way instead.
            self.lookaside[pi] = Lookaside {
                line,
                page: addr >> self.page_shift,
                write_ok: false,
            };
            if self.checked.is_some() {
                self.drain_checks(line);
            }
            // Bandwidth: the fill consumes memory-system capacity even
            // though its latency is hidden.
            if self.engine.is_some() {
                // Post the fill as a clean-miss transaction. It stays on
                // the event queue and is drained alongside (and ahead of,
                // when its timestamp is earlier) later demand misses, which
                // genuinely queue behind it at the shared resources.
                let home = self.space.home(ObjRef(addr)).index();
                let rc = self.cfg.cluster_of(p);
                let mut hops = [Hop {
                    kind: ResourceKind::Bus,
                    cluster: rc.index(),
                }; 3 + MAX_TOPO_LEVELS];
                let mut n = 1;
                // Interconnect links toward home: on a classic machine a
                // remote home is exactly one hop at the home cluster's link;
                // on a deep machine the crossing descends the home-side
                // domain links.
                let mut path = [0usize; MAX_TOPO_LEVELS];
                let np = self.cfg.net_path(rc, cool_core::ClusterId(home), &mut path);
                for &link in &path[..np] {
                    hops[n] = Hop {
                        kind: ResourceKind::Net,
                        cluster: link,
                    };
                    n += 1;
                }
                hops[n] = Hop {
                    kind: ResourceKind::Dir,
                    cluster: home,
                };
                hops[n + 1] = Hop {
                    kind: ResourceKind::Mem,
                    cluster: home,
                };
                n += 2;
                if let Some(eng) = self.engine.as_mut() {
                    eng.post(now + cycles, &hops[..n]);
                }
            } else if self.cfg.mem_occupancy > 0 {
                let module = self.space.home(ObjRef(addr)).index();
                let busy = &mut self.node_busy[module];
                *busy = (*busy).max(now + cycles) + self.cfg.mem_occupancy;
            }
            self.mon.proc_mut(pi).prefetches += 1;
            cycles += ISSUE_COST;
        }
        self.mon.proc_mut(pi).busy_cycles += cycles;
        cycles
    }

    /// Pure computation: `cycles` of busy work on `p` with no memory traffic.
    pub fn compute(&mut self, p: ProcId, cycles: u64) -> u64 {
        self.mon.proc_mut(p.index()).busy_cycles += cycles;
        cycles
    }

    fn reference(&mut self, p: ProcId, obj: ObjRef, len: u64, is_write: bool, now: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let line_bytes = self.cfg.l1.line_bytes;
        let first = self.line_of(obj.0);
        let last = self.line_of(obj.0 + len - 1);
        let pi = p.index();
        let l1_hit = self.cfg.lat.l1_hit;
        let mut cycles = 0;
        // One walk over every line the reference spans; contiguous lines of
        // the same object share the lookaside's page entry, so the per-line
        // first-touch probe runs only on page crossings. Manual loop: a
        // `..=` range keeps an exhaustion flag the optimiser can't always
        // drop, and most references touch exactly one line.
        let mut line = first;
        loop {
            let la = self.lookaside[pi];
            if la.line == line && (!is_write || la.write_ok) {
                // Repeat access to the processor's MRU line (for writes:
                // already exclusive). The full walk would change no state
                // and charge an L1 hit; skip it.
                self.mon.proc_mut(pi).record(Service::L1);
                cycles += l1_hit;
                if line == last {
                    break;
                }
                line += 1;
                continue;
            }
            // First-touch claiming: the first reference to an untouched page
            // homes it on the referencing processor's cluster.
            let addr = line * line_bytes;
            let page = addr >> self.page_shift;
            if page != la.page && self.space.is_untouched(addr) {
                let node = self.cfg.node_of(p);
                self.space.claim_first_touch(addr, node, p);
            }
            // Time advances within the access: line i issues after the
            // previous lines completed.
            let t = now + cycles;
            let write_ok;
            cycles += if is_write {
                // A write always leaves `p` as the exclusive dirty owner.
                write_ok = true;
                self.write_line(p, line, t)
            } else {
                let c = self.read_line(p, line, t);
                // A read leaves the line in L1; it is only write-fast if `p`
                // was (and stayed) the sole sharer and dirty owner.
                write_ok = self.dir.is_exclusive(line, pi);
                c
            };
            self.lookaside[pi] = Lookaside {
                line,
                page,
                write_ok,
            };
            if self.checked.is_some() {
                self.drain_checks(line);
            }
            if line == last {
                break;
            }
            line += 1;
        }
        self.mon.proc_mut(pi).busy_cycles += cycles;
        cycles
    }

    fn read_line(&mut self, p: ProcId, line: u64, now: u64) -> u64 {
        let pi = p.index();
        let level = self.caches[pi].access(line);
        match level {
            Level::L1 => {
                self.mon.proc_mut(pi).record(Service::L1);
                self.cfg.lat.l1_hit
            }
            Level::L2 => {
                self.mon.proc_mut(pi).record(Service::L2);
                self.cfg.lat.l2_hit
            }
            Level::Memory { l2_victim } => {
                if let Some(v) = l2_victim {
                    self.dir.evict(v, pi);
                    if let Some(chk) = self.checked.as_mut() {
                        chk.pending.push(v);
                    }
                }
                let outcome = self.dir.read_miss(line, pi);
                // Serviced by a dirty owner: the owner downgrades to shared,
                // so its lookaside may no longer promise exclusive writes.
                if let Some(o) = outcome.dirty_owner {
                    if o != pi && self.lookaside[o].line == line {
                        self.lookaside[o].write_ok = false;
                    }
                }
                self.service_miss(p, line, outcome.from_dirty_cache, outcome.dirty_owner, now)
            }
        }
    }

    fn write_line(&mut self, p: ProcId, line: u64, now: u64) -> u64 {
        let pi = p.index();
        let was_exclusive = self.dir.is_exclusive(line, pi);
        let level = self.caches[pi].access(line);
        if let Level::Memory {
            l2_victim: Some(v),
        } = level
        {
            self.dir.evict(v, pi);
            if let Some(chk) = self.checked.as_mut() {
                chk.pending.push(v);
            }
        }
        let outcome = self.dir.write(line, pi);
        // Invalidate the line out of every other sharer's caches (and out of
        // their lookasides — the line is gone from their L1s).
        let mut bits = outcome.invalidate_procs;
        while bits != 0 {
            let q = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.caches[q].invalidate(line);
            if self.lookaside[q].line == line {
                self.lookaside[q].line = NO_LINE;
                self.lookaside[q].write_ok = false;
            }
            self.mon.proc_mut(q).invalidations_received += 1;
        }
        self.mon.proc_mut(pi).invalidations_sent += u64::from(outcome.invalidations);
        match level {
            Level::L1 if was_exclusive => {
                self.mon.proc_mut(pi).record(Service::L1);
                self.cfg.lat.l1_hit
            }
            Level::L2 if was_exclusive => {
                self.mon.proc_mut(pi).record(Service::L2);
                self.cfg.lat.l2_hit
            }
            // A write hit on a shared line still needs an ownership
            // transaction through the home directory; a write miss needs the
            // data too. Both are charged (and counted) as a miss.
            _ => self.service_miss(p, line, outcome.from_dirty_cache, outcome.dirty_owner, now),
        }
    }

    /// Classify and cost a reference serviced beyond the private caches.
    fn service_miss(
        &mut self,
        p: ProcId,
        line: u64,
        from_dirty: bool,
        dirty_owner: Option<usize>,
        now: u64,
    ) -> u64 {
        let pi = p.index();
        let my_cluster = self.cfg.cluster_of(p);
        // Data comes from the dirty owner's cache when one exists, otherwise
        // from the home memory of the line's page.
        let supplier_cluster = if from_dirty {
            self.cfg
                .cluster_of(ProcId(dirty_owner.expect("dirty service implies owner")))
        } else {
            let addr = line * self.cfg.l1.line_bytes;
            cool_core::ClusterId(self.space.home(ObjRef(addr)).index())
        };
        // Distance 0 is the local cluster; beyond it the per-level latency
        // table applies (a classic machine has the single uniform distance 1,
        // charging exactly `remote_mem` as before).
        let dist = self.cfg.cluster_distance(my_cluster, supplier_cluster);
        let local = dist == 0;
        let mut cycles = self.cfg.mem_latency(dist);
        if from_dirty {
            cycles += self.cfg.lat.dirty_penalty;
        }
        if self.engine.is_some() {
            // Discrete-event mode: the miss is a multi-hop transaction
            // through per-cluster resources. The requester's bus carries it
            // out, a remote home adds an interconnect-link hop, the home
            // directory arbitrates, and either the home memory module
            // supplies the line or (dirty three-hop) the owner's cluster is
            // visited instead. Hop service times occupy the resources —
            // bandwidth is consumed — but only the *queue wait* is charged
            // on top of the base latency above, so at zero load this mode
            // costs exactly what the constants cost.
            let addr = line * self.cfg.l1.line_bytes;
            let home = self.space.home(ObjRef(addr)).index();
            let home_cluster = cool_core::ClusterId(home);
            let mut hops = [Hop {
                kind: ResourceKind::Bus,
                cluster: my_cluster.index(),
            }; 3 + 2 * MAX_TOPO_LEVELS];
            let mut n = 1;
            let mut path = [0usize; MAX_TOPO_LEVELS];
            let np = self.cfg.net_path(my_cluster, home_cluster, &mut path);
            for &link in &path[..np] {
                hops[n] = Hop {
                    kind: ResourceKind::Net,
                    cluster: link,
                };
                n += 1;
            }
            hops[n] = Hop {
                kind: ResourceKind::Dir,
                cluster: home,
            };
            n += 1;
            if from_dirty {
                let oc = supplier_cluster.index();
                let np = self.cfg.net_path(home_cluster, supplier_cluster, &mut path);
                for &link in &path[..np] {
                    hops[n] = Hop {
                        kind: ResourceKind::Net,
                        cluster: link,
                    };
                    n += 1;
                }
                hops[n] = Hop {
                    kind: ResourceKind::Bus,
                    cluster: oc,
                };
                n += 1;
            } else {
                hops[n] = Hop {
                    kind: ResourceKind::Mem,
                    cluster: home,
                };
                n += 1;
            }
            let eng = self.engine.as_mut().expect("engine mode");
            let wait = eng.transact(now, &hops[..n]);
            cycles += wait;
            self.mon.proc_mut(pi).contention_cycles += wait;
            self.absorb_engine_violations();
        } else if self.cfg.mem_occupancy > 0 && !from_dirty {
            // Legacy (zero-contention-mode) model: the servicing module is
            // occupied for `mem_occupancy` cycles per request; requests
            // finding it busy queue behind it. The busy pointer ratchets
            // unbounded (true FIFO bandwidth: a module can only service
            // 1/occupancy requests per cycle), but the delay *charged* to
            // any one request is capped at QUEUE_DEPTH×occupancy. The cap
            // matters because tasks execute atomically at task grain:
            // processor clocks skew within a task, and charging the raw
            // FIFO delay would let one late-clock request inflate every
            // earlier-clock request's cost without bound. With the cap, a
            // saturated module costs each request up to one full queue —
            // throughput pressure is felt — while the skew error stays
            // bounded.
            const QUEUE_DEPTH: u64 = 32;
            let module = supplier_cluster.index();
            let busy = &mut self.node_busy[module];
            let start = (*busy).max(now);
            *busy = start + self.cfg.mem_occupancy;
            let queue_delay =
                (start - now).min(QUEUE_DEPTH * self.cfg.mem_occupancy);
            cycles += queue_delay;
            self.mon.proc_mut(pi).contention_cycles += queue_delay;
        }
        if !from_dirty {
            // Memory-serviced miss: attribute it to (page, requester
            // cluster) for the phase-boundary rebalancer. Dirty-cache
            // supplies are excluded — re-homing the page would not change
            // where that data comes from.
            if let Some(tr) = self.traffic.as_mut() {
                let page = (line * self.cfg.l1.line_bytes) >> self.page_shift;
                tr.note(page as usize, my_cluster.index());
            }
        }
        self.mon.proc_mut(pi).record(if local {
            Service::LocalMem
        } else {
            Service::RemoteMem
        });
        cycles
    }

    // ----- page-traffic monitoring (rebalancer input) -----

    /// Start counting per-page miss traffic (idempotent). The counters are
    /// observer-pure: enabling them never changes any reference's cost.
    pub fn enable_traffic(&mut self) {
        if self.traffic.is_none() {
            self.traffic = Some(PageTraffic::new(self.cfg.nclusters()));
        }
    }

    /// The per-page traffic counters (`None` unless
    /// [`Machine::enable_traffic`] was called).
    pub fn traffic(&self) -> Option<&PageTraffic> {
        self.traffic.as_ref()
    }

    /// Clear the per-page traffic counters (no-op when disabled).
    pub fn reset_traffic(&mut self) {
        if let Some(tr) = self.traffic.as_mut() {
            tr.reset();
        }
    }

    // ----- checked mode (coherence-invariant validation) -----

    /// Enable checked mode: every subsequent coherence transition (miss
    /// fill, ownership write, eviction, purge) is validated against the
    /// invariant catalogue in [`crate::check`], and [`Machine::check_full`]
    /// becomes a full-state sweep. Violations are collected, not panicked,
    /// so seeded-defect tests can observe them.
    pub fn enable_checked(&mut self) {
        if self.checked.is_none() {
            self.checked = Some(CheckState::default());
        }
        if let Some(eng) = self.engine.as_mut() {
            eng.set_checked(true);
        }
    }

    /// Move any transaction-invariant violations the contention engine
    /// found (txn-fifo, txn-conservation) into the checked-mode state, so
    /// they surface through [`Machine::violations`] like the coherence
    /// catalogue. No-op when unchecked or in zero-contention mode.
    fn absorb_engine_violations(&mut self) {
        if self.checked.is_none() {
            return;
        }
        let vs = match self.engine.as_mut() {
            Some(eng) => eng.take_violations(),
            None => return,
        };
        let chk = self.checked.as_mut().expect("checked");
        for v in vs {
            chk.record(v);
        }
    }

    /// Is checked mode enabled?
    pub fn is_checked(&self) -> bool {
        self.checked.is_some()
    }

    /// Coherence transitions validated so far (0 when unchecked).
    pub fn transitions_checked(&self) -> u64 {
        self.checked.as_ref().map_or(0, |c| c.transitions)
    }

    /// Total invariant violations detected so far (0 when unchecked).
    pub fn violation_count(&self) -> u64 {
        self.checked.as_ref().map_or(0, |c| c.violation_count)
    }

    /// The first violations detected, verbatim (empty when unchecked).
    pub fn violations(&self) -> &[CoherenceViolation] {
        self.checked.as_ref().map_or(&[], |c| &c.violations)
    }

    /// Validate `line` plus any victim lines evicted by the transition
    /// (recorded in `pending` by the fill paths). Called once the
    /// reference's state updates — lookaside included — have settled.
    fn drain_checks(&mut self, line: u64) {
        self.check_line(line);
        while let Some(v) = self.checked.as_mut().and_then(|c| c.pending.pop()) {
            self.check_line(v);
        }
    }

    /// Validate one line's invariants after a coherence transition.
    fn check_line(&mut self, line: u64) {
        if self.checked.is_none() {
            return;
        }
        let mut found = Vec::new();
        self.validate_line(line, &mut found);
        let chk = self.checked.as_mut().expect("checked");
        chk.transitions += 1;
        for v in found {
            chk.record(v);
        }
    }

    /// Line-scope invariant catalogue: SWMR, directory/cache agreement in
    /// both directions, no lost invalidations, lookaside soundness.
    fn validate_line(&self, line: u64, out: &mut Vec<CoherenceViolation>) {
        let sharers = self.dir.sharers(line);
        let owner = self.dir.owner_of(line);
        if let Some(o) = owner {
            if sharers != 1 << o {
                out.push(CoherenceViolation {
                    invariant: "swmr",
                    line,
                    detail: format!("dirty owner {o} with sharer bitmap {sharers:#b}"),
                });
            }
            for q in 0..self.cfg.nprocs {
                if q != o && self.caches[q].contains(line) {
                    out.push(CoherenceViolation {
                        invariant: "lost-invalidation",
                        line,
                        detail: format!("cache {q} still holds a line dirty-owned by {o}"),
                    });
                }
            }
        }
        for (q, cache) in self.caches.iter().enumerate() {
            let bit = sharers & (1 << q) != 0;
            let resident = cache.contains(line);
            if bit != resident {
                out.push(CoherenceViolation {
                    invariant: "agreement",
                    line,
                    detail: format!(
                        "directory says sharer({q})={bit}, cache tag says resident={resident}"
                    ),
                });
            }
        }
        for (q, la) in self.lookaside.iter().enumerate() {
            if la.line != line {
                continue;
            }
            if !self.caches[q].l1.is_mru(line) {
                out.push(CoherenceViolation {
                    invariant: "lookaside",
                    line,
                    detail: format!("lookaside {q} promises an L1 hit but the line is not MRU"),
                });
            }
            if la.write_ok && !self.dir.is_exclusive(line, q) {
                out.push(CoherenceViolation {
                    invariant: "lookaside",
                    line,
                    detail: format!(
                        "lookaside {q} promises exclusive writes without exclusive ownership"
                    ),
                });
            }
        }
    }

    /// Full-state sweep: every tracked line's catalogue, the reverse
    /// (cache-tag → sharer-bit) direction over all resident lines, and
    /// tracked-count conservation. Run at task/phase boundaries by the
    /// scheduler; O(table + cache contents), so not per-reference. Returns
    /// the number of violations found by this sweep (0 when unchecked).
    pub fn check_full(&mut self) -> u64 {
        if self.checked.is_none() {
            return 0;
        }
        // Sweep the contention engine too: run its calendar dry (the
        // conservation check fires at end of drain) and absorb anything it
        // found into the violation store.
        let before = self.violation_count();
        if let Some(eng) = self.engine.as_mut() {
            eng.drain();
        }
        self.absorb_engine_violations();
        let engine_found = self.violation_count() - before;
        let mut found = Vec::new();
        let mut with_state = 0usize;
        for line in 0..self.dir.table_len() as u64 {
            if self.dir.sharers(line) != 0 || self.dir.owner_of(line).is_some() {
                with_state += 1;
                self.validate_line(line, &mut found);
            }
        }
        if with_state != self.dir.tracked_lines() {
            found.push(CoherenceViolation {
                invariant: "tracked-conservation",
                line: 0,
                detail: format!(
                    "directory tracks {} lines but {} have state",
                    self.dir.tracked_lines(),
                    with_state
                ),
            });
        }
        for (q, cache) in self.caches.iter().enumerate() {
            for line in cache.resident_lines() {
                if self.dir.sharers(line) & (1 << q) == 0 {
                    found.push(CoherenceViolation {
                        invariant: "agreement",
                        line,
                        detail: format!("cache {q} holds a line with no sharer bit"),
                    });
                }
            }
        }
        let n = found.len() as u64 + engine_found;
        let chk = self.checked.as_mut().expect("checked");
        chk.full_sweeps += 1;
        for v in found {
            chk.record(v);
        }
        n
    }

    // ----- contention engine surface -----

    /// Aggregate contention statistics (queue waits, busy cycles, peak
    /// occupancy per resource class). All zeros in zero-contention mode.
    pub fn contention_stats(&self) -> ContentionStats {
        self.engine.as_ref().map(Engine::stats).unwrap_or_default()
    }

    /// Hop events the contention engine has dispatched (0 in
    /// zero-contention mode). Part of the determinism contract: equal
    /// configs and reference streams give byte-equal event counts.
    pub fn contention_events(&self) -> u64 {
        self.engine.as_ref().map_or(0, Engine::events_processed)
    }

    /// Run the contention engine's event calendar dry, servicing any
    /// posted (prefetch) transactions still queued. Demand misses drain
    /// the queue themselves; call this before reading final statistics so
    /// a trailing prefetch burst is accounted. No-op in zero-contention
    /// mode.
    pub fn flush_contention(&mut self) {
        if let Some(eng) = self.engine.as_mut() {
            eng.drain();
        }
        self.absorb_engine_violations();
    }

    // ----- seeded defects (tests of the checker itself) -----

    /// Seeded defect: set a phantom sharer bit with no cached copy.
    /// Fires `agreement` (and `swmr` if the line has a dirty owner).
    #[doc(hidden)]
    pub fn defect_phantom_sharer(&mut self, line: u64, p: usize) {
        self.dir.defect_set_sharer(line, p);
    }

    /// Seeded defect: fill a cache behind the directory's back — the
    /// shape of a missed (lost) invalidation. Fires `agreement`, and
    /// `lost-invalidation` when the line has another dirty owner.
    #[doc(hidden)]
    pub fn defect_fill_cache(&mut self, p: usize, line: u64) {
        self.caches[p].access(line);
    }

    /// Seeded defect: over-count one tracked line. Fires
    /// `tracked-conservation` on the next full sweep.
    #[doc(hidden)]
    pub fn defect_bump_tracked(&mut self) {
        self.dir.defect_bump_tracked();
    }

    /// Seeded defect: poison the contention engine's per-resource FIFO
    /// bookkeeping so its next drain's first grant appears reordered.
    /// Fires `txn-fifo`. No-op in zero-contention mode.
    #[doc(hidden)]
    pub fn defect_reorder_fifo(&mut self) {
        if let Some(eng) = self.engine.as_mut() {
            eng.defect_reorder_fifo();
        }
    }

    /// Seeded defect: account a transaction that never existed in the
    /// contention engine. Fires `txn-conservation` at its next drain.
    /// No-op in zero-contention mode.
    #[doc(hidden)]
    pub fn defect_leak_txn(&mut self) {
        if let Some(eng) = self.engine.as_mut() {
            eng.defect_leak_txn();
        }
    }

    /// Seeded defect: force a lookaside entry to keep promising exclusive
    /// writes. Fires `lookaside` (and models a stale downgrade).
    #[doc(hidden)]
    pub fn defect_force_lookaside(&mut self, p: usize, line: u64, write_ok: bool) {
        self.lookaside[p.min(self.cfg.nprocs - 1)] = Lookaside {
            line,
            page: (line * self.cfg.l1.line_bytes) >> self.page_shift,
            write_ok,
        };
    }

    // ----- test-only introspection (equivalence tests against the oracle) -----

    #[cfg(test)]
    pub(crate) fn dir_sharers(&self, line: u64) -> u64 {
        self.dir.sharers(line)
    }

    #[cfg(test)]
    pub(crate) fn dir_tracked_lines(&self) -> usize {
        self.dir.tracked_lines()
    }

    #[cfg(test)]
    pub(crate) fn dir_is_exclusive(&self, line: u64, p: usize) -> bool {
        self.dir.is_exclusive(line, p)
    }

    #[cfg(test)]
    pub(crate) fn cache_contains(&self, p: usize, line: u64) -> bool {
        self.caches[p].contains(line)
    }

    #[cfg(test)]
    pub(crate) fn cache_resident(&self, p: usize) -> usize {
        self.caches[p].l1.resident() + self.caches[p].l2.resident()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(nprocs: usize) -> Machine {
        // Exact-cost assertions below assume no queueing; the contention
        // model has its own tests.
        let mut cfg = MachineConfig::dash_small(nprocs);
        cfg.mem_occupancy = 0;
        Machine::new(cfg)
    }

    #[test]
    fn first_touch_misses_then_hits_in_l1() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 64);
        let c1 = m.read(ProcId(0), obj, 8);
        assert_eq!(c1, m.config().lat.local_mem, "cold miss to local memory");
        let c2 = m.read(ProcId(0), obj, 8);
        assert_eq!(c2, m.config().lat.l1_hit);
        let b = m.monitor().breakdown();
        assert_eq!(b.local_misses, 1);
        assert_eq!(b.l1_hits, 1);
    }

    #[test]
    fn remote_miss_costs_remote_latency() {
        let mut m = machine(8); // clusters {0..3}, {4..7}
        let obj = m.alloc_on_node(NodeId(1), 64);
        let c = m.read(ProcId(0), obj, 4);
        assert_eq!(c, m.config().lat.remote_mem);
        assert_eq!(m.monitor().proc(0).remote_misses, 1);
    }

    #[test]
    fn same_cluster_neighbor_misses_locally() {
        let mut m = machine(8);
        let obj = m.alloc_on_node(NodeId(0), 64);
        // Processor 3 shares cluster 0's memory.
        let c = m.read(ProcId(3), obj, 4);
        assert_eq!(c, m.config().lat.local_mem);
    }

    #[test]
    fn write_invalidates_readers() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read(ProcId(0), obj, 4);
        m.read(ProcId(1), obj, 4);
        m.write(ProcId(0), obj, 4);
        assert_eq!(m.monitor().proc(0).invalidations_sent, 1);
        assert_eq!(m.monitor().proc(1).invalidations_received, 1);
        // Reader 1 must now miss again, serviced by owner 0's dirty cache
        // (same cluster → local + dirty penalty).
        let c = m.read(ProcId(1), obj, 4);
        assert_eq!(c, m.config().lat.local_mem + m.config().lat.dirty_penalty);
    }

    #[test]
    fn exclusive_rewrite_is_a_pure_hit() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.write(ProcId(2), obj, 4);
        let c = m.write(ProcId(2), obj, 4);
        assert_eq!(c, m.config().lat.l1_hit);
        assert_eq!(m.monitor().proc(2).invalidations_sent, 0);
    }

    #[test]
    fn migration_changes_home_and_cost_classification() {
        let mut m = machine(8);
        let page = m.config().page_bytes;
        let obj = m.alloc_on_node(NodeId(0), page);
        assert_eq!(m.home_node(obj), NodeId(0));
        let cost = m.migrate_to_node(obj, page, NodeId(1));
        assert!(cost > 0);
        assert_eq!(m.home_node(obj), NodeId(1));
        // Processor 4 (cluster 1) now misses locally.
        let c = m.read(ProcId(4), obj, 4);
        assert_eq!(c, m.config().lat.local_mem);
    }

    #[test]
    fn migration_discards_cached_copies() {
        let mut m = machine(8);
        let page = m.config().page_bytes;
        let obj = m.alloc_on_node(NodeId(0), page);
        m.read(ProcId(0), obj, 4);
        m.migrate_to_node(obj, page, NodeId(1));
        // The old cached copy is gone: this is a miss, now remote.
        let c = m.read(ProcId(0), obj, 4);
        assert_eq!(c, m.config().lat.remote_mem);
    }

    #[test]
    fn multi_line_reference_charges_per_line() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 256);
        let line = m.config().l1.line_bytes;
        let c = m.read(ProcId(0), obj, 4 * line);
        assert_eq!(c, 4 * m.config().lat.local_mem);
        assert_eq!(m.monitor().proc(0).refs, 4);
    }

    #[test]
    fn unaligned_reference_spanning_two_lines() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 64);
        let line = m.config().l1.line_bytes;
        // Start 4 bytes before a line boundary, read 8 bytes.
        let c = m.read(ProcId(0), obj.offset(line - 4), 8);
        assert_eq!(c, 2 * m.config().lat.local_mem);
    }

    #[test]
    fn zero_length_reference_is_free() {
        let mut m = machine(2);
        let obj = m.alloc_on_node(NodeId(0), 16);
        assert_eq!(m.read(ProcId(0), obj, 0), 0);
        assert_eq!(m.monitor().proc(0).refs, 0);
    }

    #[test]
    fn compute_charges_busy_cycles_only() {
        let mut m = machine(2);
        assert_eq!(m.compute(ProcId(1), 500), 500);
        assert_eq!(m.monitor().proc(1).busy_cycles, 500);
        assert_eq!(m.monitor().proc(1).refs, 0);
    }

    #[test]
    fn contended_module_queues_requests() {
        let mut cfg = MachineConfig::dash_small(8);
        cfg.mem_occupancy = 15;
        let mut m = Machine::new(cfg);
        let obj = m.alloc_on_node(NodeId(0), 4096);
        // Two misses to the same module at the same instant: the second
        // queues behind the first.
        let c1 = m.read_at(ProcId(0), obj, 4, 1000);
        let c2 = m.read_at(ProcId(1), obj.offset(64), 4, 1000);
        assert_eq!(c1, m.config().lat.local_mem);
        assert_eq!(c2, m.config().lat.local_mem + 15);
        assert_eq!(m.monitor().proc(1).contention_cycles, 15);
        // Much later, the module is free again.
        let c3 = m.read_at(ProcId(2), obj.offset(128), 4, 100_000);
        assert_eq!(c3, m.config().lat.local_mem);
    }

    #[test]
    fn distinct_modules_do_not_contend() {
        let mut cfg = MachineConfig::dash_small(8);
        cfg.mem_occupancy = 15;
        let mut m = Machine::new(cfg);
        let a = m.alloc_on_node(NodeId(0), 64);
        let b = m.alloc_on_node(NodeId(1), 64);
        let c1 = m.read_at(ProcId(0), a, 4, 0);
        let c2 = m.read_at(ProcId(4), b, 4, 0);
        assert_eq!(c1, m.config().lat.local_mem);
        assert_eq!(c2, m.config().lat.local_mem, "different module, no queue");
    }

    #[test]
    fn prefetched_lines_hit_on_use() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 256);
        let issue = m.prefetch(ProcId(0), obj, 64, 0);
        assert!(issue > 0 && issue < m.config().lat.local_mem);
        assert_eq!(m.monitor().proc(0).prefetches, 4); // 64 B / 16 B lines
        // The subsequent read hits in L1 at full price avoided.
        let c = m.read(ProcId(0), obj, 64);
        assert_eq!(c, 4 * m.config().lat.l1_hit);
    }

    #[test]
    fn prefetch_of_cached_line_is_counted_as_hit() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read(ProcId(0), obj, 4);
        m.prefetch(ProcId(0), obj, 4, 0);
        assert_eq!(m.monitor().proc(0).prefetch_hits, 1);
        assert_eq!(m.monitor().proc(0).prefetches, 0);
    }

    #[test]
    fn first_touch_claims_page_for_first_referencer() {
        let mut m = machine(8);
        let page = m.config().page_bytes;
        let obj = m.alloc_first_touch(2 * page);
        // Processor 5 (cluster 1) touches page 0 first; processor 0 touches
        // page 1 first.
        m.read(ProcId(5), obj, 4);
        m.read(ProcId(0), obj.offset(page), 4);
        assert_eq!(m.home_node(obj), NodeId(1));
        assert_eq!(m.home_proc(obj), ProcId(5));
        assert_eq!(m.home_node(obj.offset(page)), NodeId(0));
        // Claims are permanent: a later remote reader does not re-home.
        m.read(ProcId(0), obj, 4);
        assert_eq!(m.home_node(obj), NodeId(1));
    }

    #[test]
    fn migrate_overrides_first_touch() {
        let mut m = machine(8);
        let page = m.config().page_bytes;
        let obj = m.alloc_first_touch(page);
        m.migrate_to_proc(obj, page, 6);
        assert_eq!(m.home_proc(obj), ProcId(6));
        // Already claimed by the migration; first reference no longer moves it.
        m.read(ProcId(0), obj, 4);
        assert_eq!(m.home_proc(obj), ProcId(6));
    }

    #[test]
    fn busy_cycles_accumulate_memory_stalls() {
        let mut m = machine(2);
        let obj = m.alloc_on_node(NodeId(0), 16);
        let c = m.read(ProcId(0), obj, 4);
        assert_eq!(m.monitor().proc(0).busy_cycles, c);
    }

    #[test]
    fn migration_invalidates_read_lookaside() {
        // A processor repeatedly reading one line primes its lookaside; a
        // migration of that page must clear it so the next read is charged
        // the post-migration (remote) miss latency, not a phantom L1 hit.
        let mut m = machine(8);
        let page = m.config().page_bytes;
        let obj = m.alloc_on_node(NodeId(0), page);
        m.read(ProcId(0), obj, 4);
        m.read(ProcId(0), obj, 4); // lookaside now active for this line
        m.migrate_to_node(obj, page, NodeId(1));
        let c = m.read(ProcId(0), obj, 4);
        assert_eq!(c, m.config().lat.remote_mem, "must re-miss remotely");
        assert_eq!(m.monitor().proc(0).remote_misses, 1);
    }

    #[test]
    fn migration_invalidates_write_lookaside() {
        // Same for the exclusive-write fast flag: after migration the write
        // must pay a full ownership miss again.
        let mut m = machine(8);
        let page = m.config().page_bytes;
        let obj = m.alloc_on_node(NodeId(0), page);
        m.write(ProcId(1), obj, 4);
        assert_eq!(m.write(ProcId(1), obj, 4), m.config().lat.l1_hit);
        m.migrate_to_proc(obj, page, 4); // cluster 1
        let c = m.write(ProcId(1), obj, 4);
        assert_eq!(c, m.config().lat.remote_mem, "ownership must be re-fetched");
    }

    #[test]
    fn dirty_owner_downgrade_clears_write_fastpath() {
        // Owner writes (exclusive), another processor reads the dirty line
        // (owner downgrades to shared), then the owner writes again: that
        // write still hits in cache but needs an ownership transaction — it
        // must not be short-circuited as an exclusive hit.
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.write(ProcId(0), obj, 4);
        let c_read = m.read(ProcId(1), obj, 4);
        assert_eq!(
            c_read,
            m.config().lat.local_mem + m.config().lat.dirty_penalty
        );
        let c = m.write(ProcId(0), obj, 4);
        assert_eq!(c, m.config().lat.local_mem, "shared hit needs ownership");
        assert_eq!(m.monitor().proc(0).invalidations_sent, 1);
        // Reader 1 lost its copy and must miss again.
        assert_eq!(
            m.read(ProcId(1), obj, 4),
            m.config().lat.local_mem + m.config().lat.dirty_penalty
        );
    }

    fn checked_machine(nprocs: usize) -> Machine {
        let mut m = machine(nprocs);
        m.enable_checked();
        m
    }

    fn fired(m: &Machine, invariant: &str) -> bool {
        m.violations().iter().any(|v| v.invariant == invariant)
    }

    #[test]
    fn checked_mode_stays_clean_under_a_coherence_workout() {
        let mut m = checked_machine(8);
        let page = m.config().page_bytes;
        let obj = m.alloc_on_node(NodeId(0), 2 * page);
        for p in 0..4 {
            m.read(ProcId(p), obj, 128);
        }
        m.write(ProcId(1), obj, 64);
        m.read(ProcId(5), obj, 64);
        m.prefetch(ProcId(2), obj.offset(page), 128, 0);
        m.migrate_to_node(obj, page, NodeId(1));
        m.write(ProcId(6), obj, 32);
        assert!(m.transitions_checked() > 0);
        assert_eq!(m.check_full(), 0);
        assert_eq!(m.violation_count(), 0, "{:?}", m.violations());
    }

    #[test]
    fn seeded_phantom_sharer_fires_agreement() {
        let mut m = checked_machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read(ProcId(0), obj, 4);
        let line = obj.0 / m.config().l1.line_bytes;
        m.defect_phantom_sharer(line, 2);
        assert!(m.check_full() > 0);
        assert!(fired(&m, "agreement"), "{:?}", m.violations());
    }

    #[test]
    fn seeded_extra_sharer_on_dirty_line_fires_swmr() {
        let mut m = checked_machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.write(ProcId(0), obj, 4);
        let line = obj.0 / m.config().l1.line_bytes;
        // Give processor 1 both the sharer bit and a cached copy, so
        // forward agreement holds and the single-writer property is what
        // breaks (the cached copy also surfaces as a lost invalidation).
        m.defect_phantom_sharer(line, 1);
        m.defect_fill_cache(1, line);
        assert!(m.check_full() > 0);
        assert!(fired(&m, "swmr"), "{:?}", m.violations());
    }

    #[test]
    fn seeded_stale_copy_fires_lost_invalidation() {
        let mut m = checked_machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.write(ProcId(0), obj, 4);
        let line = obj.0 / m.config().l1.line_bytes;
        // A cached copy with no sharer bit behind a dirty owner: exactly
        // the state a missed invalidation leaves behind.
        m.defect_fill_cache(2, line);
        assert!(m.check_full() > 0);
        assert!(fired(&m, "lost-invalidation"), "{:?}", m.violations());
        assert!(fired(&m, "agreement"));
    }

    #[test]
    fn seeded_tracked_bump_fires_conservation() {
        let mut m = checked_machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read(ProcId(0), obj, 4);
        m.defect_bump_tracked();
        assert!(m.check_full() > 0);
        assert!(fired(&m, "tracked-conservation"), "{:?}", m.violations());
    }

    #[test]
    fn seeded_stale_lookaside_fires_lookaside_soundness() {
        let mut m = checked_machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read(ProcId(0), obj, 4);
        let line = obj.0 / m.config().l1.line_bytes;
        // Promise exclusive writes that the directory never granted.
        m.defect_force_lookaside(0, line, true);
        // The next write takes the (bogus) fast path's invariant check on
        // its own transition... but the defect is visible to a sweep even
        // before any reference.
        assert!(m.check_full() > 0);
        assert!(fired(&m, "lookaside"), "{:?}", m.violations());
    }

    #[test]
    fn per_transition_checks_catch_defects_without_a_sweep() {
        let mut m = checked_machine(4);
        let obj = m.alloc_on_node(NodeId(0), 64);
        m.read(ProcId(0), obj, 4);
        let line = obj.0 / m.config().l1.line_bytes;
        m.defect_phantom_sharer(line, 3);
        // Another processor's read miss on the same line transitions it
        // and the per-transition validation fires — no full sweep needed.
        m.read(ProcId(1), obj, 4);
        assert!(m.violation_count() > 0);
        assert!(fired(&m, "agreement"), "{:?}", m.violations());
    }

    #[test]
    fn unchecked_machine_reports_nothing() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read(ProcId(0), obj, 4);
        assert!(!m.is_checked());
        assert_eq!(m.transitions_checked(), 0);
        assert_eq!(m.check_full(), 0);
        assert!(m.violations().is_empty());
    }

    fn contended_machine(nprocs: usize) -> Machine {
        let mut cfg = MachineConfig::dash_small(nprocs);
        cfg.mem_occupancy = 0; // isolate the event engine from the legacy model
        Machine::new(cfg.with_contention(crate::engine::ContentionConfig::dash()))
    }

    #[test]
    fn engine_zero_load_costs_match_the_constants() {
        // At zero load the event engine charges exactly the base latency
        // table: service times occupy resources but are not added on top.
        let mut m = contended_machine(8);
        let local = m.alloc_on_node(NodeId(0), 64);
        let remote = m.alloc_on_node(NodeId(1), 64);
        assert_eq!(m.read_at(ProcId(0), local, 4, 0), m.config().lat.local_mem);
        assert_eq!(
            m.read_at(ProcId(0), remote, 4, 10_000),
            m.config().lat.remote_mem
        );
        m.write_at(ProcId(0), local, 4, 20_000);
        let c = m.read_at(ProcId(1), local, 4, 30_000);
        assert_eq!(c, m.config().lat.local_mem + m.config().lat.dirty_penalty);
        assert_eq!(m.monitor().total().contention_cycles, 0);
    }

    #[test]
    fn engine_simultaneous_misses_queue() {
        let mut m = contended_machine(8);
        let obj = m.alloc_on_node(NodeId(0), 4096);
        let c1 = m.read_at(ProcId(0), obj, 4, 1000);
        let c2 = m.read_at(ProcId(1), obj.offset(64), 4, 1000);
        assert_eq!(c1, m.config().lat.local_mem);
        assert!(c2 > c1, "second miss must queue: {c2} vs {c1}");
        assert!(m.monitor().proc(1).contention_cycles > 0);
        let s = m.contention_stats();
        assert!(s.total_wait() > 0);
        assert!(s.peak_occupancy() >= 2);
        assert!(m.contention_events() > 0);
        // Much later, the resources are free again.
        let c3 = m.read_at(ProcId(2), obj.offset(128), 4, 100_000);
        assert_eq!(c3, m.config().lat.local_mem);
    }

    #[test]
    fn engine_distinct_clusters_do_not_contend() {
        let mut m = contended_machine(8);
        let a = m.alloc_on_node(NodeId(0), 64);
        let b = m.alloc_on_node(NodeId(1), 64);
        let c1 = m.read_at(ProcId(0), a, 4, 0);
        let c2 = m.read_at(ProcId(4), b, 4, 0);
        assert_eq!(c1, m.config().lat.local_mem);
        assert_eq!(c2, m.config().lat.local_mem, "different cluster, no queue");
    }

    #[test]
    fn engine_prefetch_consumes_bandwidth() {
        let mut m = contended_machine(8);
        let obj = m.alloc_on_node(NodeId(0), 4096);
        // A prefetch burst posted at cycle 0 occupies cluster 0's memory
        // system; the demand miss at the same instant queues behind it.
        m.prefetch(ProcId(3), obj, 256, 0);
        let c = m.read_at(ProcId(0), obj.offset(1024), 4, 0);
        assert!(
            c > m.config().lat.local_mem,
            "demand must queue behind prefetch fills: {c}"
        );
        m.flush_contention();
        let s = m.contention_stats();
        assert!(s.mem.requests >= 16, "prefetch fills serviced: {s:?}");
    }

    #[test]
    fn engine_is_deterministic_across_runs() {
        let run = || {
            let mut m = contended_machine(8);
            let obj = m.alloc_on_node(NodeId(0), 8192);
            let far = m.alloc_on_node(NodeId(1), 8192);
            let mut total = 0u64;
            for i in 0..300u64 {
                let p = ProcId((i % 8) as usize);
                let o = if i % 3 == 0 { far } else { obj };
                total += if i % 5 == 0 {
                    m.write_at(p, o.offset((i * 16) % 4096), 4, i * 7)
                } else {
                    m.read_at(p, o.offset((i * 32) % 4096), 4, i * 7)
                };
                if i % 11 == 0 {
                    m.prefetch(p, o.offset((i * 64) % 4096), 64, i * 7);
                }
            }
            m.flush_contention();
            (total, m.monitor().total(), m.contention_stats(), m.contention_events())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn engine_checked_workout_is_clean() {
        let mut m = contended_machine(8);
        m.enable_checked();
        let page = m.config().page_bytes;
        let obj = m.alloc_on_node(NodeId(0), 2 * page);
        for p in 0..8 {
            m.read_at(ProcId(p), obj, 128, 0);
        }
        m.write_at(ProcId(1), obj, 64, 500);
        m.read_at(ProcId(5), obj, 64, 600);
        m.prefetch(ProcId(2), obj.offset(page), 128, 700);
        m.write_at(ProcId(6), obj, 32, 800);
        assert_eq!(m.check_full(), 0);
        assert_eq!(m.violation_count(), 0, "{:?}", m.violations());
    }

    #[test]
    fn engine_seeded_reorder_fires_txn_fifo() {
        let mut m = contended_machine(4);
        m.enable_checked();
        m.defect_reorder_fifo();
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read_at(ProcId(0), obj, 4, 0);
        assert!(m.violation_count() > 0);
        assert!(fired(&m, "txn-fifo"), "{:?}", m.violations());
    }

    #[test]
    fn engine_seeded_leak_fires_txn_conservation() {
        let mut m = contended_machine(4);
        m.enable_checked();
        m.defect_leak_txn();
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read_at(ProcId(0), obj, 4, 0);
        assert!(m.violation_count() > 0);
        assert!(fired(&m, "txn-conservation"), "{:?}", m.violations());
    }

    #[test]
    fn zero_contention_machine_reports_empty_stats() {
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 64);
        m.read(ProcId(0), obj, 4);
        assert_eq!(m.contention_stats(), ContentionStats::default());
        assert_eq!(m.contention_events(), 0);
        m.flush_contention(); // no-op
        m.defect_reorder_fifo(); // no-op
        m.defect_leak_txn(); // no-op
        assert_eq!(m.violation_count(), 0);
    }

    #[test]
    fn invalidation_clears_victims_lookaside() {
        // Processor 1 primes its lookaside on a line; processor 0 writes the
        // line (invalidating 1's copy); processor 1's next read must miss.
        let mut m = machine(4);
        let obj = m.alloc_on_node(NodeId(0), 16);
        m.read(ProcId(1), obj, 4);
        assert_eq!(m.read(ProcId(1), obj, 4), m.config().lat.l1_hit);
        m.write(ProcId(0), obj, 4);
        let c = m.read(ProcId(1), obj, 4);
        assert_eq!(
            c,
            m.config().lat.local_mem + m.config().lat.dirty_penalty,
            "invalidated line must be re-fetched from the dirty owner"
        );
    }
}
