//! Coherence-invariant checking: the checked-mode vocabulary and the
//! exhaustive small-configuration protocol exploration.
//!
//! The simulator's MSI protocol (directory + private two-level caches +
//! per-processor lookasides) maintains a set of invariants that the PR-3
//! lockstep oracle only implies. Checked mode (see
//! [`Machine::enable_checked`](crate::Machine::enable_checked)) validates
//! them explicitly after every coherence transition:
//!
//! * **SWMR** — a line with a dirty owner has exactly that owner as its
//!   only sharer (single-writer, multiple-reader);
//! * **agreement** — the directory's sharer bitmap matches the cache tags
//!   in both directions: every sharer bit corresponds to a resident copy,
//!   and every resident copy to a sharer bit;
//! * **lost-invalidation** — no cache still holds a line whose dirty
//!   owner is another processor (the victim of a missed invalidation);
//! * **tracked-conservation** — the directory's tracked-line count equals
//!   the number of lines with any sharer or owner state (full sweeps);
//! * **lookaside-soundness** — a lookaside entry promising an L1 fast
//!   path names the MRU way of its L1 set, and one promising exclusive
//!   writes names a line the directory agrees is exclusively owned.
//!
//! When the discrete-event contention engine is installed
//! ([`crate::engine`]), checked mode also validates its transaction-level
//! invariants on every event-queue drain:
//!
//! * **txn-fifo** — each modeled resource (cluster bus, interconnect link,
//!   directory controller, memory module) grants transactions in arrival
//!   order within a drain: successive grants carry non-decreasing
//!   `(cycle, sequence)` arrival keys — no transaction is reordered past
//!   its resource's FIFO;
//! * **txn-conservation** — in-flight transactions are conserved: every
//!   transaction issued is either completed or still holds exactly one
//!   hop event in the queue, so none are lost or duplicated.
//!
//! [`explore_protocol`] complements the per-transition checks with an
//! exhaustive reachability pass over a 1-line × 2–4-cache configuration:
//! every protocol state reachable through read-miss / write / evict
//! transitions is enumerated (breadth-first, deterministic order) and
//! checked, so the whole bounded state graph — not just the states a
//! workload happens to visit — satisfies the catalogue.

use crate::directory::Directory;

/// One detected invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoherenceViolation {
    /// Name of the violated invariant (`swmr`, `agreement`,
    /// `lost-invalidation`, `tracked-conservation`, `lookaside`,
    /// `txn-fifo`, `txn-conservation`).
    pub invariant: &'static str,
    /// The cache line the violation was detected on (0 for global
    /// invariants such as tracked-conservation).
    pub line: u64,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] line {}: {}", self.invariant, self.line, self.detail)
    }
}

/// Book-keeping for a machine running in checked mode: transition counter
/// plus the violations found (first [`MAX_STORED`](CheckState::MAX_STORED)
/// kept verbatim, the rest counted).
#[derive(Debug, Default)]
pub struct CheckState {
    /// Coherence transitions validated so far.
    pub transitions: u64,
    /// Full-state sweeps performed (task/phase boundaries).
    pub full_sweeps: u64,
    /// Total violations detected (including ones not stored).
    pub violation_count: u64,
    /// The first violations, verbatim.
    pub violations: Vec<CoherenceViolation>,
    /// Victim lines evicted mid-reference, awaiting validation once the
    /// reference's state updates (lookaside included) have settled.
    pub pending: Vec<u64>,
}

impl CheckState {
    /// Cap on stored violations (the count keeps incrementing past it).
    pub const MAX_STORED: usize = 16;

    /// Record one violation.
    pub fn record(&mut self, v: CoherenceViolation) {
        self.violation_count += 1;
        if self.violations.len() < Self::MAX_STORED {
            self.violations.push(v);
        }
    }
}

/// Result of one [`explore_protocol`] reachability pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtoStats {
    /// Number of caches in the explored configuration.
    pub nprocs: usize,
    /// Distinct protocol states reached.
    pub states: u64,
    /// Transitions taken (edges of the state graph).
    pub transitions: u64,
    /// Invariant evaluations performed.
    pub checks: u64,
    /// Violations detected (zero for the shipped protocol).
    pub violations: u64,
}

/// One explored protocol state: the real [`Directory`] plus a residency
/// bitmap standing in for `nprocs` single-line caches (for a 1-line
/// configuration a direct-mapped cache *is* a residency bit).
#[derive(Clone)]
struct ProtoState {
    dir: Directory,
    cached: u64,
}

const LINE: u64 = 0;

impl ProtoState {
    fn key(&self) -> (u64, Option<usize>, u64, usize) {
        (
            self.dir.sharers(LINE),
            self.dir.owner_of(LINE),
            self.cached,
            self.dir.tracked_lines(),
        )
    }

    /// Check the invariant catalogue in this state; returns violations
    /// found and the number of checks evaluated.
    fn check(&self, nprocs: usize) -> (u64, u64) {
        let mut violations = 0;
        let mut checks = 0;
        let sharers = self.dir.sharers(LINE);
        let owner = self.dir.owner_of(LINE);
        // SWMR.
        checks += 1;
        if let Some(o) = owner {
            if sharers != 1 << o {
                violations += 1;
            }
        }
        // Directory/cache agreement, both directions.
        checks += 1;
        if sharers != self.cached {
            violations += 1;
        }
        // Lost invalidation: a dirty line resident in a non-owner cache.
        checks += 1;
        if let Some(o) = owner {
            if self.cached & !(1u64 << o) != 0 {
                violations += 1;
            }
        }
        // Tracked-count conservation (one line: tracked is 0 or 1).
        checks += 1;
        let expect = usize::from(sharers != 0 || owner.is_some());
        if self.dir.tracked_lines() != expect {
            violations += 1;
        }
        let _ = nprocs;
        (violations, checks)
    }
}

/// Exhaustively enumerate the protocol state graph for one line shared by
/// `nprocs` single-line caches (2–4 supported), checking the invariant
/// catalogue in every reached state. Deterministic: breadth-first with a
/// fixed operation order, so the returned counts are byte-stable.
pub fn explore_protocol(nprocs: usize) -> ProtoStats {
    assert!((2..=4).contains(&nprocs), "bounded exploration: 2-4 caches");
    let mut stats = ProtoStats {
        nprocs,
        states: 0,
        transitions: 0,
        checks: 0,
        violations: 0,
    };
    let initial = ProtoState {
        dir: Directory::new(),
        cached: 0,
    };
    let mut seen = std::collections::BTreeSet::new();
    let mut queue = std::collections::VecDeque::new();
    seen.insert(initial.key());
    let (v, c) = initial.check(nprocs);
    stats.violations += v;
    stats.checks += c;
    stats.states += 1;
    queue.push_back(initial);
    while let Some(state) = queue.pop_front() {
        // Enabled transitions, in deterministic order: for each processor
        // a read miss (if not resident), an ownership write (if not
        // already exclusive), an eviction (if resident).
        for p in 0..nprocs {
            let resident = state.cached & (1 << p) != 0;
            let mut successors: Vec<ProtoState> = Vec::new();
            if !resident {
                let mut next = state.clone();
                next.dir.read_miss(LINE, p);
                next.cached |= 1 << p;
                successors.push(next);
            }
            if !state.dir.is_exclusive(LINE, p) {
                let mut next = state.clone();
                let outcome = next.dir.write(LINE, p);
                next.cached &= !outcome.invalidate_procs;
                next.cached |= 1 << p;
                successors.push(next);
            }
            if resident {
                let mut next = state.clone();
                next.dir.evict(LINE, p);
                next.cached &= !(1u64 << p);
                successors.push(next);
            }
            for next in successors {
                stats.transitions += 1;
                let (v, c) = next.check(nprocs);
                stats.violations += v;
                stats.checks += c;
                if seen.insert(next.key()) {
                    stats.states += 1;
                    queue.push_back(next);
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_graph_is_clean_for_all_bounded_configs() {
        for n in 2..=4 {
            let s = explore_protocol(n);
            assert_eq!(s.violations, 0, "{n} caches: {s:?}");
            assert!(s.states > 1 && s.transitions > s.states);
        }
    }

    #[test]
    fn state_counts_match_the_msi_closed_form() {
        // Reachable states: any sharer subset with no owner (2^n, cached
        // mirrors sharers) plus each single exclusive owner (n).
        for n in 2..=4 {
            let s = explore_protocol(n);
            assert_eq!(s.states, (1u64 << n) + n as u64, "{n} caches");
        }
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore_protocol(3);
        let b = explore_protocol(3);
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_phantom_sharer_breaks_agreement_and_swmr() {
        let mut st = super::ProtoState {
            dir: Directory::new(),
            cached: 0,
        };
        st.dir.write(LINE, 0);
        st.cached = 0b01;
        let (v, _) = st.check(2);
        assert_eq!(v, 0, "clean exclusive state");
        st.dir.defect_set_sharer(LINE, 1);
        let (v, _) = st.check(2);
        // SWMR (owner 0 with sharers {0,1}) and agreement (phantom bit).
        assert_eq!(v, 2);
    }

    #[test]
    fn seeded_tracked_bump_breaks_conservation() {
        let mut st = super::ProtoState {
            dir: Directory::new(),
            cached: 0,
        };
        st.dir.defect_bump_tracked();
        let (v, _) = st.check(2);
        assert_eq!(v, 1);
    }
}
