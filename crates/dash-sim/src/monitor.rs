//! The performance monitor — the software counterpart of the DASH hardware
//! performance monitor used in Section 6 ("enables us to monitor the bus and
//! network activity in a non-intrusive manner").
//!
//! Figures 11 and 15 of the paper plot cache misses split into *local* and
//! *remote*; we track the same classification per processor, plus hit levels,
//! invalidations and cycle attribution.

use std::ops::AddAssign;

/// Where a memory reference was serviced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Service {
    /// First-level cache hit.
    L1,
    /// Second-level cache hit.
    L2,
    /// Miss serviced in the local cluster memory.
    LocalMem,
    /// Miss serviced in a remote cluster (memory or dirty cache).
    RemoteMem,
}

/// Counters for one processor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcCounters {
    /// Total references issued.
    pub refs: u64,
    /// References satisfied by the first-level cache.
    pub l1_hits: u64,
    /// References satisfied by the second-level cache.
    pub l2_hits: u64,
    /// References serviced from the local cluster's memory.
    pub local_misses: u64,
    /// References serviced from a remote cluster (memory or dirty cache).
    pub remote_misses: u64,
    /// Invalidation messages this processor's writes caused.
    pub invalidations_sent: u64,
    /// Lines invalidated out of this processor's caches by others' writes.
    pub invalidations_received: u64,
    /// Cycles spent executing task work (compute + memory stalls).
    pub busy_cycles: u64,
    /// Cycles spent idle (no runnable task found).
    pub idle_cycles: u64,
    /// Cycles of scheduling overhead (dispatch, stealing scans).
    pub overhead_cycles: u64,
    /// Cycles spent queued behind busy memory modules (contention model).
    pub contention_cycles: u64,
    /// Prefetches issued (lines brought in ahead of use).
    pub prefetches: u64,
    /// Prefetches that were unnecessary (line already cached).
    pub prefetch_hits: u64,
}

impl ProcCounters {
    /// Total cache misses (local + remote).
    pub fn misses(&self) -> u64 {
        self.local_misses + self.remote_misses
    }

    /// The five reference-servicing counters as one snapshot, in the order
    /// the observability layer's per-task deltas use: refs, l1_hits,
    /// l2_hits, local_misses, remote_misses. [`ProcCounters::record`] is the
    /// only mover of these counters and it only runs inside
    /// `Machine::reference`, so snapshotting at task boundaries and
    /// differencing yields exact per-task attribution: the deltas over any
    /// partition of the tasks sum to the end-of-run aggregates.
    pub fn ref_mix(&self) -> [u64; 5] {
        [
            self.refs,
            self.l1_hits,
            self.l2_hits,
            self.local_misses,
            self.remote_misses,
        ]
    }

    /// Record a serviced reference.
    pub fn record(&mut self, s: Service) {
        self.refs += 1;
        match s {
            Service::L1 => self.l1_hits += 1,
            Service::L2 => self.l2_hits += 1,
            Service::LocalMem => self.local_misses += 1,
            Service::RemoteMem => self.remote_misses += 1,
        }
    }
}

impl AddAssign for ProcCounters {
    fn add_assign(&mut self, o: Self) {
        self.refs += o.refs;
        self.l1_hits += o.l1_hits;
        self.l2_hits += o.l2_hits;
        self.local_misses += o.local_misses;
        self.remote_misses += o.remote_misses;
        self.invalidations_sent += o.invalidations_sent;
        self.invalidations_received += o.invalidations_received;
        self.busy_cycles += o.busy_cycles;
        self.idle_cycles += o.idle_cycles;
        self.overhead_cycles += o.overhead_cycles;
        self.contention_cycles += o.contention_cycles;
        self.prefetches += o.prefetches;
        self.prefetch_hits += o.prefetch_hits;
    }
}

/// Machine-wide monitor: one counter block per processor.
#[derive(Debug)]
pub struct PerfMonitor {
    procs: Vec<ProcCounters>,
}

/// The aggregate miss breakdown the paper's miss figures plot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MissBreakdown {
    /// Total references issued.
    pub refs: u64,
    /// References satisfied by first-level caches.
    pub l1_hits: u64,
    /// References satisfied by second-level caches.
    pub l2_hits: u64,
    /// References serviced from local cluster memory.
    pub local_misses: u64,
    /// References serviced from remote clusters.
    pub remote_misses: u64,
    /// Invalidation messages sent machine-wide.
    pub invalidations: u64,
}

impl MissBreakdown {
    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.local_misses + self.remote_misses
    }

    /// Fraction of misses serviced locally.
    pub fn local_fraction(&self) -> f64 {
        let m = self.misses();
        if m == 0 {
            0.0
        } else {
            self.local_misses as f64 / m as f64
        }
    }

    /// Miss rate over all references.
    pub fn miss_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.misses() as f64 / self.refs as f64
        }
    }
}

impl PerfMonitor {
    /// Monitor for `nprocs` processors.
    pub fn new(nprocs: usize) -> Self {
        PerfMonitor {
            procs: vec![ProcCounters::default(); nprocs],
        }
    }

    /// Mutable access to one processor's counters.
    #[inline]
    pub fn proc_mut(&mut self, p: usize) -> &mut ProcCounters {
        &mut self.procs[p]
    }

    /// Read one processor's counters.
    pub fn proc(&self, p: usize) -> &ProcCounters {
        &self.procs[p]
    }

    /// Number of processors monitored.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Aggregate counters across processors.
    pub fn total(&self) -> ProcCounters {
        let mut t = ProcCounters::default();
        for p in &self.procs {
            t += *p;
        }
        t
    }

    /// The miss breakdown for the whole run.
    pub fn breakdown(&self) -> MissBreakdown {
        let t = self.total();
        MissBreakdown {
            refs: t.refs,
            l1_hits: t.l1_hits,
            l2_hits: t.l2_hits,
            local_misses: t.local_misses,
            remote_misses: t.remote_misses,
            invalidations: t.invalidations_sent,
        }
    }

    /// Reset all counters (e.g. after a warm-up phase, to measure only the
    /// parallel section as the paper does).
    pub fn reset(&mut self) {
        for p in &mut self.procs {
            *p = ProcCounters::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_services() {
        let mut c = ProcCounters::default();
        c.record(Service::L1);
        c.record(Service::L2);
        c.record(Service::LocalMem);
        c.record(Service::RemoteMem);
        assert_eq!(c.refs, 4);
        assert_eq!(c.l1_hits, 1);
        assert_eq!(c.l2_hits, 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn counters_conserve_references() {
        let mut m = PerfMonitor::new(2);
        m.proc_mut(0).record(Service::L1);
        m.proc_mut(1).record(Service::RemoteMem);
        m.proc_mut(1).record(Service::LocalMem);
        let b = m.breakdown();
        assert_eq!(b.refs, 3);
        assert_eq!(
            b.refs,
            b.l1_hits + b.l2_hits + b.local_misses + b.remote_misses
        );
        assert!((b.local_fraction() - 0.5).abs() < 1e-12);
        assert!((b.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut m = PerfMonitor::new(1);
        m.proc_mut(0).record(Service::L1);
        m.proc_mut(0).busy_cycles += 100;
        m.reset();
        assert_eq!(m.total(), ProcCounters::default());
    }

    #[test]
    fn empty_breakdown_ratios_are_zero() {
        let b = MissBreakdown::default();
        assert_eq!(b.local_fraction(), 0.0);
        assert_eq!(b.miss_rate(), 0.0);
    }
}
