//! The discrete-event contention engine.
//!
//! The base cost model charges every miss a fixed DASH latency, so two
//! processors hammering one cluster's memory pay the same as two processors
//! spread across the machine — contention is approximated by the single
//! `mem_occupancy` busy-pointer in [`crate::machine`]. This module replaces
//! that approximation (when [`ContentionConfig`] is installed) with a real
//! discrete-event core:
//!
//! * every miss becomes a *transaction*: an ordered list of *hops* through
//!   the memory system (requester's cluster bus → interconnect link →
//!   home directory → home memory module, with the dirty three-hop variant
//!   detouring through the owner's cluster);
//! * each per-cluster bus, interconnect link, directory controller and
//!   memory module is a first-class [`Resource`] with a deterministic
//!   service time and bounded occupancy accounting — concurrent
//!   transactions queue FIFO and *interfere* instead of passing through
//!   each other;
//! * hop arrivals are dispatched from a monotonic event queue (a binary
//!   heap keyed on `(cycle, sequence)`; a radix heap would require
//!   monotonically non-decreasing keys, which task-grain processor-clock
//!   skew violates, so the general heap is used) — prefetch transactions
//!   posted earlier genuinely overlap demand misses arriving later.
//!
//! ## Charging model
//!
//! A transaction's *queue wait* is the sum over its hops of the cycles it
//! spent waiting for the hop's resource to free up. The wait charged to the
//! issuing processor is capped at `queue_depth ×` the transaction's total
//! service demand, for the same reason the legacy model caps its queue
//! delay: tasks execute atomically at task grain, so processor clocks skew
//! within a task and an uncapped FIFO wait would let one late-clock request
//! inflate every earlier-clock request without bound. Service times occupy
//! resources (bandwidth is consumed) but are *not* added on top of the base
//! latency constants — at zero load a contended machine therefore charges
//! exactly what the base model charges, and every extra cycle is pure,
//! emergent queueing. [`ResourceStats`] keeps the *uncapped* waits so the
//! queueing-law tests can check the M/D/1 closed form against them.
//!
//! ## Checked-mode invariants
//!
//! With checking enabled the engine validates two transaction-level
//! invariants on every drain (see [`crate::check`] for the catalogue):
//!
//! * **txn-fifo** — a resource grants transactions in arrival order within
//!   a drain: successive grants carry non-decreasing `(cycle, sequence)`
//!   arrival keys.
//! * **txn-conservation** — transactions are conserved: every transaction
//!   issued is either completed or still has exactly one hop event in the
//!   queue; none are lost or duplicated.
//!
//! Both come with seeded defects ([`Engine::defect_reorder_fifo`],
//! [`Engine::defect_leak_txn`]) proving the checks fire.

use std::collections::BinaryHeap;

use crate::check::CoherenceViolation;

/// Service times and queue bounds of the modeled memory-system resources.
///
/// All times are in processor cycles per transaction serviced. A service
/// time of 0 makes the resource infinitely fast (it never queues).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContentionConfig {
    /// Cycles a cluster bus is occupied per transaction it carries.
    pub bus_service: u64,
    /// Cycles an interconnect link (one per cluster, modeling the cluster's
    /// network interface) is occupied per remote transaction.
    pub net_service: u64,
    /// Cycles a home directory controller is occupied per transaction.
    pub dir_service: u64,
    /// Cycles a memory module is occupied per line it supplies.
    pub mem_service: u64,
    /// Cap multiplier for the wait charged to any one transaction: at most
    /// `queue_depth ×` the transaction's total service demand (bounds the
    /// task-grain clock-skew error exactly like the legacy model's
    /// `QUEUE_DEPTH` cap).
    pub queue_depth: u64,
}

impl ContentionConfig {
    /// Service times for the DASH prototype: the 4-processor cluster bus is
    /// fast and wide, the directory and network interface add pipeline
    /// occupancy, and DRAM occupancy per 16-byte line dominates — matching
    /// the paper's observation that distributing panels "improves
    /// performance due to better utilization of the available memory
    /// bandwidth".
    pub fn dash() -> Self {
        ContentionConfig {
            bus_service: 2,
            net_service: 4,
            dir_service: 3,
            mem_service: 12,
            queue_depth: 32,
        }
    }

    /// Stable fingerprint segment (feeds `MachineConfig::fingerprint`).
    pub fn fingerprint(&self) -> String {
        format!(
            "bus{}/net{}/dir{}/mem{}/q{}",
            self.bus_service, self.net_service, self.dir_service, self.mem_service, self.queue_depth
        )
    }
}

/// Which modeled resource a hop passes through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceKind {
    /// A cluster's shared bus.
    Bus,
    /// A cluster's interconnect (network-interface) link.
    Net,
    /// A cluster's directory controller.
    Dir,
    /// A cluster's memory module.
    Mem,
}

impl ResourceKind {
    /// Human-readable name (used by violation details and metrics rows).
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Bus => "bus",
            ResourceKind::Net => "net",
            ResourceKind::Dir => "dir",
            ResourceKind::Mem => "mem",
        }
    }
}

/// One hop of a transaction: a resource kind at a cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The resource class the hop occupies.
    pub kind: ResourceKind,
    /// The cluster whose instance of the resource it occupies.
    pub cluster: usize,
}

/// Occupancy statistics of one resource (or an aggregate over resources).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Transactions serviced.
    pub requests: u64,
    /// Total cycles transactions spent queued (uncapped raw waits).
    pub wait_cycles: u64,
    /// Total cycles the resource spent servicing transactions.
    pub busy_cycles: u64,
    /// Largest number of transactions simultaneously queued or in service.
    pub peak_occupancy: u64,
}

impl ResourceStats {
    /// Fold another stats block into this one (peaks combine by max).
    pub fn merge(&mut self, o: ResourceStats) {
        self.requests += o.requests;
        self.wait_cycles += o.wait_cycles;
        self.busy_cycles += o.busy_cycles;
        self.peak_occupancy = self.peak_occupancy.max(o.peak_occupancy);
    }

    /// Mean wait per request (0 when idle).
    pub fn mean_wait(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.wait_cycles as f64 / self.requests as f64
        }
    }
}

/// Machine-wide contention statistics, aggregated per resource class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentionStats {
    /// Cluster buses.
    pub bus: ResourceStats,
    /// Interconnect links.
    pub net: ResourceStats,
    /// Directory controllers.
    pub dir: ResourceStats,
    /// Memory modules.
    pub mem: ResourceStats,
}

impl ContentionStats {
    /// Total queue-wait cycles across all resource classes (uncapped).
    pub fn total_wait(&self) -> u64 {
        self.bus.wait_cycles + self.net.wait_cycles + self.dir.wait_cycles + self.mem.wait_cycles
    }

    /// Total transactions serviced across all resource classes.
    pub fn total_requests(&self) -> u64 {
        self.bus.requests + self.net.requests + self.dir.requests + self.mem.requests
    }

    /// The largest occupancy any single resource reached.
    pub fn peak_occupancy(&self) -> u64 {
        self.bus
            .peak_occupancy
            .max(self.net.peak_occupancy)
            .max(self.dir.peak_occupancy)
            .max(self.mem.peak_occupancy)
    }

    /// The four aggregates as `(name, stats)` rows, in schema order.
    pub fn rows(&self) -> [(&'static str, ResourceStats); 4] {
        [
            ("bus", self.bus),
            ("net", self.net),
            ("dir", self.dir),
            ("mem", self.mem),
        ]
    }
}

/// A single-server FIFO queue with deterministic service time: the unit the
/// queueing-law tests validate against the M/D/1 closed form.
///
/// The resource does not store queued transactions; it is a *calendar*: the
/// cycle until which it is committed to earlier arrivals. An arrival at
/// `now` waits `max(next_free − now, 0)` cycles, then occupies the server
/// for its service time.
#[derive(Clone, Copy, Debug)]
pub struct Resource {
    /// Deterministic service time per transaction.
    service: u64,
    /// Virtual cycle until which the server is committed.
    next_free: u64,
    /// Arrival key of the most recent grant (FIFO check; reset per drain).
    last_grant: Option<(u64, u64)>,
    stats: ResourceStats,
}

impl Resource {
    /// A fresh, idle resource with the given deterministic service time.
    pub fn new(service: u64) -> Self {
        Resource {
            service,
            next_free: 0,
            last_grant: None,
            stats: ResourceStats::default(),
        }
    }

    /// The deterministic service time.
    pub fn service_time(&self) -> u64 {
        self.service
    }

    /// Admit a transaction arriving at `now`: returns the cycles it waits
    /// before service begins, and commits the server through its service.
    pub fn acquire(&mut self, now: u64) -> u64 {
        let start = self.next_free.max(now);
        let wait = start - now;
        // Occupancy at arrival: transactions ahead (whole service slots
        // still pending) plus this one.
        let queued = if self.service == 0 {
            0
        } else {
            wait.div_ceil(self.service)
        };
        self.next_free = start + self.service;
        self.stats.requests += 1;
        self.stats.wait_cycles += wait;
        self.stats.busy_cycles += self.service;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(queued + 1);
        wait
    }

    /// Occupancy statistics so far.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }
}

/// One pending hop arrival. Orders a `BinaryHeap` as a *min*-heap on
/// `(cycle, sequence)` — sequence numbers break ties deterministically, so
/// the dispatch order is a pure function of the issue history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    txn: usize,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap pops the smallest (time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Maximum hops per transaction: a dirty three-hop on the deepest machine
/// tree (requester bus + up to `MAX_TOPO_LEVELS` links toward home + home
/// directory + up to `MAX_TOPO_LEVELS` links toward the owner + owner bus).
const MAX_HOPS: usize = 11;

/// An in-flight memory-system transaction.
#[derive(Clone, Copy, Debug)]
struct Txn {
    hops: [Hop; MAX_HOPS],
    nhops: u8,
    next: u8,
    /// Uncapped queue wait accumulated across completed hops.
    wait: u64,
    /// Demand transactions report their wait back to the issuing reference;
    /// posted (prefetch) transactions only consume bandwidth.
    demand: bool,
    live: bool,
}

/// Engine-internal cap on stored violations (mirrors `CheckState`).
const MAX_VIOLATIONS: usize = 16;

/// The discrete-event engine: per-cluster resources, the event queue, and
/// transaction bookkeeping.
#[derive(Debug)]
pub struct Engine {
    cfg: ContentionConfig,
    bus: Vec<Resource>,
    net: Vec<Resource>,
    dir: Vec<Resource>,
    mem: Vec<Resource>,
    queue: BinaryHeap<Event>,
    txns: Vec<Txn>,
    free: Vec<usize>,
    seq: u64,
    issued: u64,
    completed: u64,
    events: u64,
    /// Wait of the most recently completed demand transaction.
    demand_wait: u64,
    checked: bool,
    violations: Vec<CoherenceViolation>,
    violation_count: u64,
    defect_fifo: bool,
}

impl Engine {
    /// An engine for `nclusters` clusters, all resources idle.
    pub fn new(cfg: ContentionConfig, nclusters: usize) -> Self {
        Self::with_nets(cfg, nclusters, nclusters)
    }

    /// As [`Engine::new`], with `nnet` interconnect-link resources instead
    /// of one per cluster — deep machine trees add one link per domain of
    /// every level between the memory level and the root (see
    /// `MachineConfig::nnet`). `Hop::cluster` indexes this extended space
    /// for [`ResourceKind::Net`] hops.
    pub fn with_nets(cfg: ContentionConfig, nclusters: usize, nnet: usize) -> Self {
        assert!(nnet >= nclusters);
        Engine {
            bus: vec![Resource::new(cfg.bus_service); nclusters],
            net: vec![Resource::new(cfg.net_service); nnet],
            dir: vec![Resource::new(cfg.dir_service); nclusters],
            mem: vec![Resource::new(cfg.mem_service); nclusters],
            queue: BinaryHeap::new(),
            txns: Vec::new(),
            free: Vec::new(),
            seq: 0,
            issued: 0,
            completed: 0,
            events: 0,
            demand_wait: 0,
            checked: false,
            violations: Vec::new(),
            violation_count: 0,
            defect_fifo: false,
            cfg,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ContentionConfig {
        &self.cfg
    }

    /// Enable or disable the transaction-invariant checks.
    pub fn set_checked(&mut self, on: bool) {
        self.checked = on;
    }

    /// Hop events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Transactions issued so far (demand + posted).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Transactions fully serviced so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Hop events still queued (posted transactions not yet drained).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total invariant violations detected (counted even past the storage
    /// cap).
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// Take the stored violations (drains the buffer; the count persists).
    pub fn take_violations(&mut self) -> Vec<CoherenceViolation> {
        std::mem::take(&mut self.violations)
    }

    /// Aggregate statistics per resource class.
    pub fn stats(&self) -> ContentionStats {
        let fold = |rs: &[Resource]| {
            let mut agg = ResourceStats::default();
            for r in rs {
                agg.merge(r.stats());
            }
            agg
        };
        ContentionStats {
            bus: fold(&self.bus),
            net: fold(&self.net),
            dir: fold(&self.dir),
            mem: fold(&self.mem),
        }
    }

    fn alloc_txn(&mut self, hops: &[Hop], demand: bool) -> usize {
        debug_assert!(!hops.is_empty() && hops.len() <= MAX_HOPS);
        let mut t = Txn {
            hops: [Hop {
                kind: ResourceKind::Bus,
                cluster: 0,
            }; MAX_HOPS],
            nhops: hops.len() as u8,
            next: 0,
            wait: 0,
            demand,
            live: true,
        };
        t.hops[..hops.len()].copy_from_slice(hops);
        self.issued += 1;
        if let Some(i) = self.free.pop() {
            self.txns[i] = t;
            i
        } else {
            self.txns.push(t);
            self.txns.len() - 1
        }
    }

    fn push_event(&mut self, time: u64, txn: usize) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, txn });
    }

    /// Issue a demand transaction at `now` and run the event queue dry.
    /// Returns the wait to charge the issuing processor: the transaction's
    /// queue wait, capped at `queue_depth ×` its total service demand.
    pub fn transact(&mut self, now: u64, hops: &[Hop]) -> u64 {
        let txn = self.alloc_txn(hops, true);
        self.push_event(now, txn);
        self.drain();
        let total_service: u64 = hops.iter().map(|h| self.service_of(h.kind)).sum();
        self.demand_wait.min(self.cfg.queue_depth * total_service)
    }

    /// Post a transaction at `now` without waiting for it (prefetch: the
    /// latency is hidden, the bandwidth is not). Its hop events stay queued
    /// and interleave with later transactions at the next drain.
    pub fn post(&mut self, now: u64, hops: &[Hop]) {
        let txn = self.alloc_txn(hops, false);
        self.push_event(now, txn);
    }

    fn service_of(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::Bus => self.cfg.bus_service,
            ResourceKind::Net => self.cfg.net_service,
            ResourceKind::Dir => self.cfg.dir_service,
            ResourceKind::Mem => self.cfg.mem_service,
        }
    }

    fn record_violation(&mut self, invariant: &'static str, line: u64, detail: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(CoherenceViolation {
                invariant,
                line,
                detail,
            });
        }
    }

    /// Dispatch every queued hop event in `(cycle, sequence)` order.
    ///
    /// One drain is one coherent episode of the event calendar: the FIFO
    /// invariant is scoped to it because transactions issued *after* a
    /// drain may carry earlier timestamps (task-grain clock skew), which is
    /// expected — within a drain, though, every resource must grant in
    /// arrival order.
    pub fn drain(&mut self) {
        for r in self
            .bus
            .iter_mut()
            .chain(self.net.iter_mut())
            .chain(self.dir.iter_mut())
            .chain(self.mem.iter_mut())
        {
            r.last_grant = if self.defect_fifo {
                // Seeded defect: pretend a later arrival was already
                // granted, so the first real grant appears reordered.
                Some((u64::MAX, u64::MAX))
            } else {
                None
            };
        }
        self.defect_fifo = false;
        while let Some(ev) = self.queue.pop() {
            self.events += 1;
            let t = self.txns[ev.txn];
            debug_assert!(t.live && t.next < t.nhops);
            let hop = t.hops[t.next as usize];
            let checked = self.checked;
            let r = match hop.kind {
                ResourceKind::Bus => &mut self.bus[hop.cluster],
                ResourceKind::Net => &mut self.net[hop.cluster],
                ResourceKind::Dir => &mut self.dir[hop.cluster],
                ResourceKind::Mem => &mut self.mem[hop.cluster],
            };
            let key = (ev.time, ev.seq);
            let fifo_broken = checked && r.last_grant.is_some_and(|lg| lg > key);
            r.last_grant = Some(key);
            let wait = r.acquire(ev.time);
            let service = r.service;
            if fifo_broken {
                self.record_violation(
                    "txn-fifo",
                    ev.seq,
                    format!(
                        "{}[{}] granted arrival at cycle {} behind a later arrival",
                        hop.kind.name(),
                        hop.cluster,
                        ev.time
                    ),
                );
            }
            let txn = &mut self.txns[ev.txn];
            txn.wait += wait;
            txn.next += 1;
            if txn.next == txn.nhops {
                txn.live = false;
                self.completed += 1;
                if txn.demand {
                    self.demand_wait = txn.wait;
                }
                self.free.push(ev.txn);
            } else {
                // The transaction departs this hop once serviced and
                // arrives at the next resource.
                self.push_event(ev.time + wait + service, ev.txn);
            }
        }
        if self.checked && self.issued != self.completed + self.queue.len() as u64 {
            self.record_violation(
                "txn-conservation",
                0,
                format!(
                    "{} transactions issued but {} completed with {} in flight",
                    self.issued,
                    self.completed,
                    self.queue.len()
                ),
            );
        }
    }

    // ----- seeded defects (tests of the checker itself) -----

    /// Seeded defect: poison every resource's FIFO bookkeeping so the next
    /// drain's first grant looks reordered. Fires `txn-fifo`.
    #[doc(hidden)]
    pub fn defect_reorder_fifo(&mut self) {
        self.defect_fifo = true;
    }

    /// Seeded defect: account one transaction that never existed — the
    /// shape of a lost or duplicated in-flight transaction. Fires
    /// `txn-conservation` at the next drain.
    #[doc(hidden)]
    pub fn defect_leak_txn(&mut self) {
        self.issued += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hops_remote(rc: usize, hc: usize) -> Vec<Hop> {
        vec![
            Hop {
                kind: ResourceKind::Bus,
                cluster: rc,
            },
            Hop {
                kind: ResourceKind::Net,
                cluster: hc,
            },
            Hop {
                kind: ResourceKind::Dir,
                cluster: hc,
            },
            Hop {
                kind: ResourceKind::Mem,
                cluster: hc,
            },
        ]
    }

    #[test]
    fn idle_resources_add_no_wait() {
        let mut e = Engine::new(ContentionConfig::dash(), 4);
        assert_eq!(e.transact(100, &hops_remote(0, 1)), 0);
        assert_eq!(e.stats().total_wait(), 0);
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn simultaneous_transactions_queue_at_shared_resources() {
        let mut e = Engine::new(ContentionConfig::dash(), 4);
        let w1 = e.transact(0, &hops_remote(0, 1));
        let w2 = e.transact(0, &hops_remote(2, 1));
        assert_eq!(w1, 0);
        // The second transaction shares no bus with the first but queues
        // behind it at the home cluster's net, dir and mem.
        assert!(w2 > 0, "second transaction must queue: {w2}");
        assert!(e.stats().mem.wait_cycles > 0);
        assert_eq!(e.stats().peak_occupancy(), 2);
    }

    #[test]
    fn distinct_clusters_do_not_interfere() {
        let mut e = Engine::new(ContentionConfig::dash(), 4);
        let w1 = e.transact(0, &hops_remote(0, 1));
        let w2 = e.transact(0, &hops_remote(2, 3));
        assert_eq!((w1, w2), (0, 0));
    }

    #[test]
    fn charged_wait_is_capped_but_stats_keep_raw_waits() {
        let cfg = ContentionConfig {
            queue_depth: 2,
            ..ContentionConfig::dash()
        };
        let total_service = cfg.bus_service + cfg.net_service + cfg.dir_service + cfg.mem_service;
        let mut e = Engine::new(cfg, 2);
        let mut last = 0;
        for _ in 0..100 {
            last = e.transact(0, &hops_remote(0, 1));
        }
        assert_eq!(last, cfg.queue_depth * total_service, "cap reached");
        // Raw waits grow far past the cap (true FIFO backlog).
        assert!(e.stats().total_wait() > 100 * last);
    }

    #[test]
    fn posted_transactions_consume_bandwidth_later() {
        let mut e = Engine::new(ContentionConfig::dash(), 4);
        e.post(0, &hops_remote(0, 1));
        assert_eq!(e.pending(), 1);
        // The demand miss at the same instant queues behind the posted
        // (earlier-sequenced) transaction at every shared hop.
        let w = e.transact(0, &hops_remote(0, 1));
        assert!(w > 0, "demand must queue behind the posted txn: {w}");
        assert_eq!(e.pending(), 0);
        assert_eq!(e.completed(), 2);
    }

    #[test]
    fn earlier_timestamps_dispatch_first_regardless_of_issue_order() {
        let mut e = Engine::new(ContentionConfig::dash(), 2);
        // Posted late in issue order but earliest in simulated time.
        e.post(500, &hops_remote(0, 1));
        e.post(10, &hops_remote(0, 1));
        let w = e.transact(10_000, &hops_remote(0, 1));
        // By cycle 10000 both posted transactions have long drained.
        assert_eq!(w, 0);
        // The cycle-10 transaction was granted first: the bus backlog the
        // cycle-500 one saw proves dispatch order followed timestamps.
        let s = e.stats();
        assert_eq!(s.bus.requests, 3);
        assert_eq!(s.total_wait(), 0, "spaced arrivals never queue");
    }

    #[test]
    fn same_seed_same_history_is_byte_identical() {
        let run = || {
            let mut e = Engine::new(ContentionConfig::dash(), 4);
            let mut acc = Vec::new();
            for i in 0..200u64 {
                let rc = (i % 4) as usize;
                let hc = ((i * 7) % 4) as usize;
                if i % 3 == 0 {
                    e.post(i * 5, &hops_remote(rc, hc));
                } else {
                    acc.push(e.transact(i * 5, &hops_remote(rc, hc)));
                }
            }
            e.drain();
            (acc, e.stats(), e.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fifo_invariant_is_clean_on_real_schedules() {
        let mut e = Engine::new(ContentionConfig::dash(), 4);
        e.set_checked(true);
        for i in 0..50u64 {
            e.post(i % 7, &hops_remote((i % 4) as usize, ((i + 1) % 4) as usize));
        }
        e.transact(3, &hops_remote(0, 1));
        assert_eq!(e.violation_count(), 0, "{:?}", e.take_violations());
    }

    #[test]
    fn seeded_reorder_fires_txn_fifo() {
        let mut e = Engine::new(ContentionConfig::dash(), 2);
        e.set_checked(true);
        e.defect_reorder_fifo();
        e.transact(0, &hops_remote(0, 1));
        assert!(e.violation_count() > 0);
        let vs = e.take_violations();
        assert!(vs.iter().any(|v| v.invariant == "txn-fifo"), "{vs:?}");
    }

    #[test]
    fn seeded_leak_fires_txn_conservation() {
        let mut e = Engine::new(ContentionConfig::dash(), 2);
        e.set_checked(true);
        e.defect_leak_txn();
        e.transact(0, &hops_remote(0, 1));
        assert!(e.violation_count() > 0);
        let vs = e.take_violations();
        assert!(
            vs.iter().any(|v| v.invariant == "txn-conservation"),
            "{vs:?}"
        );
    }

    #[test]
    fn resource_is_a_deterministic_fifo_server() {
        let mut r = Resource::new(10);
        assert_eq!(r.acquire(0), 0); // busy until 10
        assert_eq!(r.acquire(0), 10); // busy until 20
        assert_eq!(r.acquire(5), 15); // busy until 30
        assert_eq!(r.acquire(100), 0); // idle again
        let s = r.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.wait_cycles, 25);
        assert_eq!(s.busy_cycles, 40);
        assert_eq!(s.peak_occupancy, 3);
    }

    #[test]
    fn zero_service_resource_never_queues() {
        let mut r = Resource::new(0);
        for _ in 0..10 {
            assert_eq!(r.acquire(0), 0);
        }
        assert_eq!(r.stats().peak_occupancy, 1);
        assert_eq!(r.stats().busy_cycles, 0);
    }

    #[test]
    fn stats_rows_cover_all_four_classes() {
        let mut e = Engine::new(ContentionConfig::dash(), 2);
        e.transact(0, &hops_remote(0, 1));
        let rows = e.stats().rows();
        let names: Vec<_> = rows.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["bus", "net", "dir", "mem"]);
        assert!(rows.iter().all(|(_, s)| s.requests == 1));
    }
}
