//! Invalidation-based cache-coherence directory.
//!
//! DASH keeps a directory per memory that tracks which clusters cache each
//! line and invalidates them on writes. We model a simplified MSI protocol at
//! processor-cache granularity — enough to classify where a reference is
//! serviced and to count invalidations (the quantities in Figures 11 and 15):
//!
//! * A line has a set of *sharers* (processors caching it) and optionally a
//!   *dirty owner*.
//! * A read miss is serviced by the home memory, or by the dirty owner's
//!   cache if one exists (a "three-hop" transaction on DASH).
//! * A write needs exclusive access: all other sharers are invalidated.
//!
//! Sharer sets are bitmaps; the simulator supports up to 64 processors,
//! double the DASH prototype.

use std::collections::HashMap;

/// Per-line directory state.
#[derive(Clone, Copy, Debug, Default)]
struct LineState {
    /// Bitmap of processors holding the line.
    sharers: u64,
    /// Dirty owner, if the line is modified in some cache.
    owner: Option<u8>,
}

/// The directory for the whole machine.
#[derive(Debug, Default)]
pub struct Directory {
    lines: HashMap<u64, LineState>,
}

/// What the directory did to satisfy a request; the machine turns this into
/// latency and monitor updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoherenceOutcome {
    /// The request had to be serviced by the dirty owner's cache rather than
    /// memory (extra hop on DASH).
    pub from_dirty_cache: bool,
    /// Processor that supplied dirty data, if any.
    pub dirty_owner: Option<usize>,
    /// Number of sharer caches invalidated (writes only).
    pub invalidations: u32,
    /// The processors that must drop the line from their caches.
    pub invalidate_procs: u64,
}

impl Directory {
    /// New empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `line` by processor `p` that missed in `p`'s cache.
    pub fn read_miss(&mut self, line: u64, p: usize) -> CoherenceOutcome {
        debug_assert!(p < 64);
        let st = self.lines.entry(line).or_default();
        let outcome = CoherenceOutcome {
            from_dirty_cache: st.owner.is_some_and(|o| o as usize != p),
            dirty_owner: st.owner.map(|o| o as usize),
            invalidations: 0,
            invalidate_procs: 0,
        };
        // After a read by another processor the line is shared: the dirty
        // owner writes back and downgrades.
        if st.owner.is_some_and(|o| o as usize != p) {
            st.owner = None;
        }
        st.sharers |= 1 << p;
        outcome
    }

    /// Record a write of `line` by processor `p` (regardless of whether it
    /// hit in `p`'s cache — a hit on a Shared line still needs ownership).
    /// Returns the sharers to invalidate.
    pub fn write(&mut self, line: u64, p: usize) -> CoherenceOutcome {
        debug_assert!(p < 64);
        let st = self.lines.entry(line).or_default();
        let others = st.sharers & !(1 << p);
        let from_dirty = st.owner.is_some_and(|o| o as usize != p);
        let dirty_owner = st.owner.map(|o| o as usize);
        let outcome = CoherenceOutcome {
            from_dirty_cache: from_dirty,
            dirty_owner,
            invalidations: others.count_ones(),
            invalidate_procs: others,
        };
        st.sharers = 1 << p;
        st.owner = Some(p as u8);
        outcome
    }

    /// Was `p` already an exclusive (dirty) owner of `line`? Such a write is
    /// a pure cache hit with no coherence traffic.
    pub fn is_exclusive(&self, line: u64, p: usize) -> bool {
        self.lines
            .get(&line)
            .is_some_and(|st| st.owner == Some(p as u8) && st.sharers == 1 << p)
    }

    /// A cache evicted `line` from processor `p` (capacity/conflict victim):
    /// clear its sharer bit so future writes don't send it a useless
    /// invalidation.
    pub fn evict(&mut self, line: u64, p: usize) {
        if let Some(st) = self.lines.get_mut(&line) {
            st.sharers &= !(1 << p);
            if st.owner == Some(p as u8) {
                // Dirty victim: written back to memory.
                st.owner = None;
            }
            if st.sharers == 0 && st.owner.is_none() {
                self.lines.remove(&line);
            }
        }
    }

    /// Remove all state for a line (used when a page migrates and every
    /// cached copy is discarded machine-wide).
    pub fn purge_line(&mut self, line: u64) {
        self.lines.remove(&line);
    }

    /// Current sharer bitmap (tests / statistics).
    pub fn sharers(&self, line: u64) -> u64 {
        self.lines.get(&line).map_or(0, |st| st.sharers)
    }

    /// Number of lines with any directory state.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_invalidates_other_readers() {
        let mut d = Directory::new();
        d.read_miss(10, 0);
        d.read_miss(10, 1);
        d.read_miss(10, 2);
        assert_eq!(d.sharers(10).count_ones(), 3);
        let o = d.write(10, 0);
        assert_eq!(o.invalidations, 2);
        assert_eq!(o.invalidate_procs, 0b110);
        assert_eq!(d.sharers(10), 0b001);
    }

    #[test]
    fn read_of_dirty_line_is_serviced_by_owner() {
        let mut d = Directory::new();
        d.write(5, 3);
        let o = d.read_miss(5, 1);
        assert!(o.from_dirty_cache);
        assert_eq!(o.dirty_owner, Some(3));
        // Line downgraded to shared by both.
        assert_eq!(d.sharers(5), 0b1010);
        assert!(!d.is_exclusive(5, 3));
    }

    #[test]
    fn exclusive_rewrite_has_no_traffic() {
        let mut d = Directory::new();
        d.write(7, 2);
        assert!(d.is_exclusive(7, 2));
        let o = d.write(7, 2);
        assert_eq!(o.invalidations, 0);
        assert!(!o.from_dirty_cache);
    }

    #[test]
    fn write_to_own_shared_line_still_invalidates_others() {
        let mut d = Directory::new();
        d.read_miss(9, 0);
        d.read_miss(9, 1);
        let o = d.write(9, 0);
        assert_eq!(o.invalidations, 1);
        assert_eq!(o.invalidate_procs, 0b10);
    }

    #[test]
    fn evict_clears_sharer_and_ownership() {
        let mut d = Directory::new();
        d.write(4, 1);
        d.evict(4, 1);
        assert_eq!(d.sharers(4), 0);
        assert_eq!(d.tracked_lines(), 0);
        // Re-read sees clean memory.
        let o = d.read_miss(4, 0);
        assert!(!o.from_dirty_cache);
    }

    #[test]
    fn own_read_of_own_dirty_line_not_flagged_dirty_service() {
        let mut d = Directory::new();
        d.write(6, 5);
        let o = d.read_miss(6, 5);
        assert!(!o.from_dirty_cache, "own cache, not a remote service");
    }
}
