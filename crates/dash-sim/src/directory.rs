//! Invalidation-based cache-coherence directory.
//!
//! DASH keeps a directory per memory that tracks which clusters cache each
//! line and invalidates them on writes. We model a simplified MSI protocol at
//! processor-cache granularity — enough to classify where a reference is
//! serviced and to count invalidations (the quantities in Figures 11 and 15):
//!
//! * A line has a set of *sharers* (processors caching it) and optionally a
//!   *dirty owner*.
//! * A read miss is serviced by the home memory, or by the dirty owner's
//!   cache if one exists (a "three-hop" transaction on DASH).
//! * A write needs exclusive access: all other sharers are invalidated.
//!
//! Sharer sets are bitmaps; the simulator supports up to 64 processors,
//! double the DASH prototype.
//!
//! The directory sits on the per-reference hot path (every write probes it
//! for exclusivity, every miss updates it), so the line table is a dense
//! flat array indexed by line number rather than a hash map. The address
//! space is bump-allocated and contiguous, so line numbers are dense and the
//! table is bounded by the bytes the application actually allocates — a
//! lookup is one bounds check and one indexed load, with no hashing.

/// Sentinel for "no dirty owner" (processors are 0..64).
const NO_OWNER: u8 = u8::MAX;

/// The directory for the whole machine: one slot per line, indexed by line
/// number. A line is *tracked* while it has any sharers or a dirty owner.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    /// Bitmap of processors holding each line.
    sharers: Vec<u64>,
    /// Dirty owner of each line, or `NO_OWNER`.
    owner: Vec<u8>,
    /// Number of lines with any directory state.
    tracked: usize,
}

/// What the directory did to satisfy a request; the machine turns this into
/// latency and monitor updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoherenceOutcome {
    /// The request had to be serviced by the dirty owner's cache rather than
    /// memory (extra hop on DASH).
    pub from_dirty_cache: bool,
    /// Processor that supplied dirty data, if any.
    pub dirty_owner: Option<usize>,
    /// Number of sharer caches invalidated (writes only).
    pub invalidations: u32,
    /// The processors that must drop the line from their caches.
    pub invalidate_procs: u64,
}

impl Directory {
    /// New empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the table to cover `line`, amortised by doubling.
    #[inline]
    fn ensure(&mut self, line: u64) -> usize {
        let idx = line as usize;
        if idx >= self.sharers.len() {
            let new_len = (idx + 1).next_power_of_two().max(64);
            self.sharers.resize(new_len, 0);
            self.owner.resize(new_len, NO_OWNER);
        }
        idx
    }

    /// Record a read of `line` by processor `p` that missed in `p`'s cache.
    pub fn read_miss(&mut self, line: u64, p: usize) -> CoherenceOutcome {
        debug_assert!(p < 64);
        let i = self.ensure(line);
        let sharers = self.sharers[i];
        let owner = self.owner[i];
        if sharers == 0 && owner == NO_OWNER {
            self.tracked += 1;
        }
        let other_owner = owner != NO_OWNER && owner as usize != p;
        let outcome = CoherenceOutcome {
            from_dirty_cache: other_owner,
            dirty_owner: (owner != NO_OWNER).then_some(owner as usize),
            invalidations: 0,
            invalidate_procs: 0,
        };
        // After a read by another processor the line is shared: the dirty
        // owner writes back and downgrades.
        if other_owner {
            self.owner[i] = NO_OWNER;
        }
        self.sharers[i] = sharers | (1 << p);
        outcome
    }

    /// Record a write of `line` by processor `p` (regardless of whether it
    /// hit in `p`'s cache — a hit on a Shared line still needs ownership).
    /// Returns the sharers to invalidate.
    pub fn write(&mut self, line: u64, p: usize) -> CoherenceOutcome {
        debug_assert!(p < 64);
        let i = self.ensure(line);
        let sharers = self.sharers[i];
        let owner = self.owner[i];
        if sharers == 0 && owner == NO_OWNER {
            self.tracked += 1;
        }
        let others = sharers & !(1 << p);
        let outcome = CoherenceOutcome {
            from_dirty_cache: owner != NO_OWNER && owner as usize != p,
            dirty_owner: (owner != NO_OWNER).then_some(owner as usize),
            invalidations: others.count_ones(),
            invalidate_procs: others,
        };
        self.sharers[i] = 1 << p;
        self.owner[i] = p as u8;
        outcome
    }

    /// Was `p` already an exclusive (dirty) owner of `line`? Such a write is
    /// a pure cache hit with no coherence traffic.
    #[inline]
    pub fn is_exclusive(&self, line: u64, p: usize) -> bool {
        let i = line as usize;
        i < self.sharers.len() && self.owner[i] == p as u8 && self.sharers[i] == 1 << p
    }

    /// A cache evicted `line` from processor `p` (capacity/conflict victim):
    /// clear its sharer bit so future writes don't send it a useless
    /// invalidation.
    pub fn evict(&mut self, line: u64, p: usize) {
        let i = line as usize;
        if i >= self.sharers.len() {
            return;
        }
        let sharers = self.sharers[i];
        let owner = self.owner[i];
        if sharers == 0 && owner == NO_OWNER {
            return;
        }
        let new_sharers = sharers & !(1 << p);
        self.sharers[i] = new_sharers;
        let new_owner = if owner == p as u8 {
            // Dirty victim: written back to memory.
            NO_OWNER
        } else {
            owner
        };
        self.owner[i] = new_owner;
        if new_sharers == 0 && new_owner == NO_OWNER {
            self.tracked -= 1;
        }
    }

    /// Remove all state for a line (used when a page migrates and every
    /// cached copy is discarded machine-wide).
    pub fn purge_line(&mut self, line: u64) {
        let i = line as usize;
        if i >= self.sharers.len() {
            return;
        }
        if self.sharers[i] != 0 || self.owner[i] != NO_OWNER {
            self.tracked -= 1;
        }
        self.sharers[i] = 0;
        self.owner[i] = NO_OWNER;
    }

    /// Current sharer bitmap (tests / statistics).
    pub fn sharers(&self, line: u64) -> u64 {
        self.sharers.get(line as usize).copied().unwrap_or(0)
    }

    /// Number of lines with any directory state.
    pub fn tracked_lines(&self) -> usize {
        self.tracked
    }

    /// Dirty owner of `line`, if any (checked mode / protocol exploration).
    pub fn owner_of(&self, line: u64) -> Option<usize> {
        match self.owner.get(line as usize) {
            Some(&o) if o != NO_OWNER => Some(o as usize),
            _ => None,
        }
    }

    /// Number of line slots currently allocated in the table (checked-mode
    /// full sweeps iterate `0..table_len()`).
    #[doc(hidden)]
    pub fn table_len(&self) -> usize {
        self.sharers.len()
    }

    /// Seeded defect: set a sharer bit without any coherence transaction.
    /// Only for tests proving the checked-mode invariants fire; breaks
    /// directory/cache agreement (and SWMR, if the line has a dirty owner).
    #[doc(hidden)]
    pub fn defect_set_sharer(&mut self, line: u64, p: usize) {
        let i = self.ensure(line);
        if self.sharers[i] == 0 && self.owner[i] == NO_OWNER {
            self.tracked += 1;
        }
        self.sharers[i] |= 1 << p;
    }

    /// Seeded defect: over-count one tracked line. Only for tests proving
    /// the tracked-count conservation invariant fires.
    #[doc(hidden)]
    pub fn defect_bump_tracked(&mut self) {
        self.tracked += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_invalidates_other_readers() {
        let mut d = Directory::new();
        d.read_miss(10, 0);
        d.read_miss(10, 1);
        d.read_miss(10, 2);
        assert_eq!(d.sharers(10).count_ones(), 3);
        let o = d.write(10, 0);
        assert_eq!(o.invalidations, 2);
        assert_eq!(o.invalidate_procs, 0b110);
        assert_eq!(d.sharers(10), 0b001);
    }

    #[test]
    fn read_of_dirty_line_is_serviced_by_owner() {
        let mut d = Directory::new();
        d.write(5, 3);
        let o = d.read_miss(5, 1);
        assert!(o.from_dirty_cache);
        assert_eq!(o.dirty_owner, Some(3));
        // Line downgraded to shared by both.
        assert_eq!(d.sharers(5), 0b1010);
        assert!(!d.is_exclusive(5, 3));
    }

    #[test]
    fn exclusive_rewrite_has_no_traffic() {
        let mut d = Directory::new();
        d.write(7, 2);
        assert!(d.is_exclusive(7, 2));
        let o = d.write(7, 2);
        assert_eq!(o.invalidations, 0);
        assert!(!o.from_dirty_cache);
    }

    #[test]
    fn write_to_own_shared_line_still_invalidates_others() {
        let mut d = Directory::new();
        d.read_miss(9, 0);
        d.read_miss(9, 1);
        let o = d.write(9, 0);
        assert_eq!(o.invalidations, 1);
        assert_eq!(o.invalidate_procs, 0b10);
    }

    #[test]
    fn evict_clears_sharer_and_ownership() {
        let mut d = Directory::new();
        d.write(4, 1);
        d.evict(4, 1);
        assert_eq!(d.sharers(4), 0);
        assert_eq!(d.tracked_lines(), 0);
        // Re-read sees clean memory.
        let o = d.read_miss(4, 0);
        assert!(!o.from_dirty_cache);
    }

    #[test]
    fn own_read_of_own_dirty_line_not_flagged_dirty_service() {
        let mut d = Directory::new();
        d.write(6, 5);
        let o = d.read_miss(6, 5);
        assert!(!o.from_dirty_cache, "own cache, not a remote service");
    }

    #[test]
    fn tracked_lines_counts_transitions_not_slots() {
        let mut d = Directory::new();
        // Reads by several procs of the same line: one tracked line.
        d.read_miss(100, 0);
        d.read_miss(100, 1);
        assert_eq!(d.tracked_lines(), 1);
        d.read_miss(3, 2);
        assert_eq!(d.tracked_lines(), 2);
        // Evicting one sharer keeps the line tracked; evicting the last
        // drops it.
        d.evict(100, 0);
        assert_eq!(d.tracked_lines(), 2);
        d.evict(100, 1);
        assert_eq!(d.tracked_lines(), 1);
        // Double-evict of an already-empty line must not underflow.
        d.evict(100, 1);
        d.purge_line(100);
        assert_eq!(d.tracked_lines(), 1);
        d.purge_line(3);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn evict_and_purge_of_untracked_lines_are_noops() {
        let mut d = Directory::new();
        d.evict(1 << 40, 0);
        d.purge_line(1 << 40);
        assert_eq!(d.tracked_lines(), 0);
        assert_eq!(d.sharers(1 << 40), 0);
        assert!(!d.is_exclusive(1 << 40, 0));
    }
}
