//! The simulated shared address space and object distribution primitives.
//!
//! COOL exposes three mechanisms (Section 4.1, "Object Distribution"):
//!
//! * allocation from the local memory of a particular processor (an extra
//!   argument to `new`),
//! * `migrate(ptr, processor [, count])` — move object(s) to another
//!   processor's local memory, and
//! * `home(ptr)` — the processor whose local memory holds the object.
//!
//! On DASH the operating system supports placement at page granularity only,
//! so `migrate` moves the pages spanned by the object; we model exactly that:
//! the space is divided into pages and each page has a home memory node.

use cool_core::{NodeId, ObjRef, ProcId};

/// A bump-allocated shared address space with page-granular homes.
///
/// Each page records two things: the **memory node** that physically holds
/// it (cluster memory — determines local/remote latency) and the
/// **processor** whose local memory was requested at allocation/migration
/// time (determines where object-affinity tasks are collocated). On DASH the
/// memory node is shared by the four processors of a cluster, but COOL's
/// `migrate(obj, p)` and the default scheduling rule are expressed in terms
/// of processors, so both granularities are kept.
#[derive(Debug)]
pub struct AddressSpace {
    page_bytes: u64,
    /// `log2(page_bytes)` — page size is asserted a power of two, so the
    /// per-reference page lookup is a shift, not a division.
    page_shift: u32,
    /// Home node of each allocated page.
    page_home: Vec<NodeId>,
    /// Owning processor of each allocated page (scheduling granularity).
    page_proc: Vec<ProcId>,
    /// Pages allocated under the first-touch policy that have not been
    /// referenced yet: their home is provisional until the first access
    /// claims them.
    page_untouched: Vec<bool>,
    /// Next free address.
    brk: u64,
    nnodes: usize,
    /// Processors per memory node (to map a node to its first processor).
    procs_per_node: usize,
    /// Pages migrated (for statistics / costing).
    pages_migrated: u64,
}

impl AddressSpace {
    /// Create an empty space. `nnodes` is the number of memory nodes
    /// (clusters); pages are homed on nodes modulo this count.
    pub fn new(page_bytes: u64, nnodes: usize) -> Self {
        Self::with_procs_per_node(page_bytes, nnodes, 1)
    }

    /// As [`AddressSpace::new`], with the machine's processors-per-node so
    /// interleaved pages are owned by each node's first processor.
    pub fn with_procs_per_node(page_bytes: u64, nnodes: usize, procs_per_node: usize) -> Self {
        assert!(page_bytes.is_power_of_two(), "page size must be 2^k");
        assert!(nnodes > 0 && procs_per_node > 0);
        AddressSpace {
            page_bytes,
            page_shift: page_bytes.trailing_zeros(),
            page_home: Vec::new(),
            page_proc: Vec::new(),
            page_untouched: Vec::new(),
            // Keep null distinguishable.
            brk: page_bytes,
            nnodes,
            procs_per_node,
            pages_migrated: 0,
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Number of memory nodes.
    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    /// Total pages migrated so far.
    pub fn pages_migrated(&self) -> u64 {
        self.pages_migrated
    }

    #[inline]
    fn page_of(&self, addr: u64) -> usize {
        (addr >> self.page_shift) as usize
    }

    /// Allocate `bytes` homed on `node` with the owning processor defaulting
    /// to the node's index (useful for tests; the machine façade passes the
    /// real processor via [`AddressSpace::alloc_placed`]).
    pub fn alloc_on(&mut self, bytes: u64, node: NodeId) -> ObjRef {
        let proc = ProcId(node.index());
        self.alloc_placed(bytes, node, proc)
    }

    /// Allocate `bytes` homed on `node`, owned (for scheduling) by `proc`
    /// (COOL's `new (n) T`). The allocation is page-aligned when it does not
    /// fit in the remainder of the current page *and* the current page is
    /// placed elsewhere, so that one allocation's placement is well-defined;
    /// small same-placement allocations pack.
    pub fn alloc_placed(&mut self, bytes: u64, node: NodeId, proc: ProcId) -> ObjRef {
        assert!(bytes > 0, "zero-sized allocations are not placeable");
        let node = NodeId(node.index() % self.nnodes);
        let start_page = self.page_of(self.brk);
        let in_page_off = self.brk % self.page_bytes;
        let fits_in_page = in_page_off != 0 && in_page_off + bytes <= self.page_bytes;
        let same_placement = self.page_home.get(start_page) == Some(&node)
            && self.page_proc.get(start_page) == Some(&proc);
        let addr = if fits_in_page && same_placement {
            self.brk
        } else {
            // Start on a fresh page boundary.
            if in_page_off != 0 {
                self.brk += self.page_bytes - in_page_off;
            }
            self.brk
        };
        let end = addr + bytes;
        // Home every page spanned by [addr, end).
        let last_page = self.page_of(end - 1);
        while self.page_home.len() <= last_page {
            self.page_home.push(node);
            self.page_proc.push(proc);
            self.page_untouched.push(false);
        }
        for p in self.page_of(addr)..=last_page {
            self.page_home[p] = node;
            self.page_proc[p] = proc;
        }
        self.brk = end;
        ObjRef(addr)
    }

    /// Allocate `bytes` with round-robin page interleaving across all nodes —
    /// the common "distribute this large array" idiom. Each page of the
    /// allocation is homed on successive nodes.
    pub fn alloc_interleaved(&mut self, bytes: u64) -> ObjRef {
        assert!(bytes > 0);
        // Page-align.
        let off = self.brk % self.page_bytes;
        if off != 0 {
            self.brk += self.page_bytes - off;
        }
        let addr = self.brk;
        let end = addr + bytes;
        let last_page = self.page_of(end - 1);
        while self.page_home.len() <= last_page {
            let p = self.page_home.len();
            let node = p % self.nnodes;
            self.page_home.push(NodeId(node));
            // Owned by the node's first processor, so affinity hints on
            // interleaved data spread across clusters.
            self.page_proc.push(ProcId(node * self.procs_per_node));
            self.page_untouched.push(false);
        }
        self.brk = end;
        ObjRef(addr)
    }

    /// Allocate `bytes` under the **first-touch** policy (the operating-
    /// system technique of Section 7's related work): pages start with a
    /// provisional home on node 0 and are claimed by the node of the first
    /// processor to reference them.
    pub fn alloc_first_touch(&mut self, bytes: u64) -> ObjRef {
        assert!(bytes > 0);
        let off = self.brk % self.page_bytes;
        if off != 0 {
            self.brk += self.page_bytes - off;
        }
        let addr = self.brk;
        let end = addr + bytes;
        let last_page = self.page_of(end - 1);
        while self.page_home.len() <= last_page {
            self.page_home.push(NodeId(0));
            self.page_proc.push(ProcId(0));
            self.page_untouched.push(true);
        }
        self.brk = end;
        ObjRef(addr)
    }

    /// Is the page holding `addr` still unclaimed first-touch memory?
    pub fn is_untouched(&self, addr: u64) -> bool {
        let page = self.page_of(addr);
        self.page_untouched.get(page).copied().unwrap_or(false)
    }

    /// Claim an untouched page for `node`/`proc` (called by the machine on
    /// the first reference). No-op if already claimed.
    pub fn claim_first_touch(&mut self, addr: u64, node: NodeId, proc: ProcId) {
        let page = self.page_of(addr);
        if self.page_untouched.get(page).copied().unwrap_or(false) {
            self.page_untouched[page] = false;
            self.page_home[page] = node;
            self.page_proc[page] = proc;
        }
    }

    /// The home node of the page containing `obj` — COOL's `home()`.
    pub fn home(&self, obj: ObjRef) -> NodeId {
        let page = self.page_of(obj.0);
        *self
            .page_home
            .get(page)
            .unwrap_or_else(|| panic!("home() of unallocated address {obj}"))
    }

    /// The processor owning the page containing `obj` (scheduling
    /// granularity of `home()`).
    pub fn home_proc(&self, obj: ObjRef) -> ProcId {
        let page = self.page_of(obj.0);
        *self
            .page_proc
            .get(page)
            .unwrap_or_else(|| panic!("home_proc() of unallocated address {obj}"))
    }

    /// Migrate with the owning processor defaulting to the node index
    /// (tests); the machine passes the real processor via
    /// [`AddressSpace::migrate_placed`].
    pub fn migrate(&mut self, obj: ObjRef, bytes: u64, node: NodeId) -> u64 {
        self.migrate_placed(obj, bytes, node, ProcId(node.index()))
    }

    /// Migrate the `bytes`-long object at `obj` to `node`, owned by `proc` —
    /// COOL's `migrate()`. Whole pages move (the DASH footnote). Returns the
    /// pages actually moved (pages already placed identically are free).
    pub fn migrate_placed(&mut self, obj: ObjRef, bytes: u64, node: NodeId, proc: ProcId) -> u64 {
        assert!(bytes > 0);
        let node = NodeId(node.index() % self.nnodes);
        let first = self.page_of(obj.0);
        let last = self.page_of(obj.0 + bytes - 1);
        assert!(
            last < self.page_home.len(),
            "migrate of unallocated range at {obj}"
        );
        let mut moved = 0;
        for p in first..=last {
            if self.page_home[p] != node || self.page_proc[p] != proc {
                self.page_home[p] = node;
                self.page_proc[p] = proc;
                moved += 1;
            }
            self.page_untouched[p] = false;
        }
        self.pages_migrated += moved;
        moved
    }

    /// The address range `[start, end)` of pages spanned by an object —
    /// used by the machine to invalidate cached lines after migration.
    pub fn span_pages(&self, obj: ObjRef, bytes: u64) -> (u64, u64) {
        let first = (obj.0 / self.page_bytes) * self.page_bytes;
        let last = ((obj.0 + bytes - 1) / self.page_bytes + 1) * self.page_bytes;
        (first, last)
    }

    /// Bytes allocated so far (excluding the reserved null page).
    pub fn allocated(&self) -> u64 {
        self.brk - self.page_bytes
    }

    /// Number of pages with a recorded home (page indices `0..npages()` are
    /// safe to query; index 0 is the reserved null page).
    pub fn npages(&self) -> usize {
        self.page_home.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_homes_pages_on_requested_node() {
        let mut s = AddressSpace::new(1024, 4);
        let a = s.alloc_on(100, NodeId(2));
        assert_eq!(s.home(a), NodeId(2));
        // Node argument wraps modulo node count, like COOL's modulo-server
        // semantics.
        let b = s.alloc_on(100, NodeId(6));
        assert_eq!(s.home(b), NodeId(2));
    }

    #[test]
    fn distinct_nodes_get_distinct_pages() {
        let mut s = AddressSpace::new(1024, 4);
        let a = s.alloc_on(64, NodeId(0));
        let b = s.alloc_on(64, NodeId(1));
        assert_ne!(a.0 / 1024, b.0 / 1024, "different homes, different pages");
        assert_eq!(s.home(a), NodeId(0));
        assert_eq!(s.home(b), NodeId(1));
    }

    #[test]
    fn same_node_allocations_pack_into_one_page() {
        let mut s = AddressSpace::new(1024, 4);
        let a = s.alloc_on(64, NodeId(0));
        let b = s.alloc_on(64, NodeId(0));
        assert_eq!(a.0 / 1024, b.0 / 1024);
        assert_eq!(b.0, a.0 + 64);
    }

    #[test]
    fn multi_page_allocation_homed_throughout() {
        let mut s = AddressSpace::new(1024, 4);
        let a = s.alloc_on(3000, NodeId(3));
        assert_eq!(s.home(a), NodeId(3));
        assert_eq!(s.home(a.offset(2999)), NodeId(3));
    }

    #[test]
    fn interleaved_allocation_round_robins_pages() {
        let mut s = AddressSpace::new(1024, 4);
        let a = s.alloc_interleaved(4096);
        let homes: Vec<usize> = (0..4)
            .map(|i| s.home(a.offset(i * 1024)).index())
            .collect();
        // Consecutive pages land on consecutive nodes (starting wherever the
        // first page fell in the global page sequence).
        for w in homes.windows(2) {
            assert_eq!((w[0] + 1) % 4, w[1]);
        }
    }

    #[test]
    fn migrate_rehomes_spanned_pages_only() {
        let mut s = AddressSpace::new(1024, 4);
        let a = s.alloc_on(4096, NodeId(0));
        // Move the middle 2048 bytes: pages 1 and 2 of the object.
        let moved = s.migrate(a.offset(1024), 2048, NodeId(1));
        assert_eq!(moved, 2);
        assert_eq!(s.home(a), NodeId(0));
        assert_eq!(s.home(a.offset(1024)), NodeId(1));
        assert_eq!(s.home(a.offset(3072)), NodeId(0));
        assert_eq!(s.pages_migrated(), 2);
    }

    #[test]
    fn migrate_to_same_node_is_free() {
        let mut s = AddressSpace::new(1024, 2);
        let a = s.alloc_on(1024, NodeId(1));
        assert_eq!(s.migrate(a, 1024, NodeId(1)), 0);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn home_of_wild_pointer_panics() {
        let s = AddressSpace::new(1024, 2);
        s.home(ObjRef(1 << 40));
    }

    #[test]
    fn span_pages_covers_object() {
        let mut s = AddressSpace::new(1024, 2);
        let a = s.alloc_on(100, NodeId(0));
        let (lo, hi) = s.span_pages(a.offset(10), 50);
        assert!(lo <= a.0 + 10 && hi >= a.0 + 60);
        assert_eq!(lo % 1024, 0);
        assert_eq!(hi % 1024, 0);
    }
}
