//! Property-based tests for the contention model and prefetch extension.

use cool_core::{NodeId, ProcId};
use dash_sim::{Machine, MachineConfig};
use proptest::prelude::*;

fn configs(occupancy: u64) -> MachineConfig {
    let mut c = MachineConfig::dash_small(8);
    c.mem_occupancy = occupancy;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contention never makes an access cheaper, and with occupancy 0 the
    /// cost is identical to the base model, for any access pattern.
    #[test]
    fn contention_is_monotone(
        ops in prop::collection::vec((0usize..8, 0u64..512, any::<bool>(), 0u64..10_000), 1..200),
    ) {
        let mut base = Machine::new(configs(0));
        let mut cont = Machine::new(configs(8));
        let ob = base.alloc_on_node(NodeId(0), 8192);
        let oc = cont.alloc_on_node(NodeId(0), 8192);
        let mut total_base = 0u64;
        let mut total_cont = 0u64;
        for (p, off, w, now) in ops {
            let (cb, cc) = if w {
                (
                    base.write_at(ProcId(p), ob.offset(off), 4, now),
                    cont.write_at(ProcId(p), oc.offset(off), 4, now),
                )
            } else {
                (
                    base.read_at(ProcId(p), ob.offset(off), 4, now),
                    cont.read_at(ProcId(p), oc.offset(off), 4, now),
                )
            };
            prop_assert!(cc >= cb, "contention made an access cheaper: {cc} < {cb}");
            total_base += cb;
            total_cont += cc;
        }
        prop_assert!(total_cont >= total_base);
        // Charged contention is visible in the monitor and equals the delta.
        let extra = cont.monitor().total().contention_cycles;
        prop_assert_eq!(total_cont - total_base, extra);
    }

    /// The charged queue delay per line never exceeds the documented cap
    /// (QUEUE_DEPTH × occupancy = 32 × occ).
    #[test]
    fn charged_delay_is_capped(
        occupancy in 1u64..20,
        burst in 2usize..64,
    ) {
        let mut m = Machine::new(configs(occupancy));
        let obj = m.alloc_on_node(NodeId(0), 16 * 1024);
        // A burst of simultaneous misses to one module.
        let mut max_cost = 0;
        for i in 0..burst {
            let c = m.read_at(ProcId(i % 8), obj.offset((i * 16) as u64), 4, 0);
            max_cost = max_cost.max(c);
        }
        let worst_latency = m.config().lat.remote_mem + m.config().lat.dirty_penalty;
        prop_assert!(
            max_cost <= worst_latency + 32 * occupancy,
            "cost {max_cost} exceeds latency + cap"
        );
    }

    /// Prefetching an object never makes the subsequent read by the same
    /// processor slower, and total (prefetch + read) stays within the plain
    /// read cost plus the issue overhead.
    #[test]
    fn prefetch_never_hurts_the_read(
        node in 0usize..2,
        len in 16u64..2048,
        p in 0usize..8,
    ) {
        let mut plain = Machine::new(configs(0));
        let o1 = plain.alloc_on_node(NodeId(node), 4096);
        let read_cost = plain.read(ProcId(p), o1, len);

        let mut pre = Machine::new(configs(0));
        let o2 = pre.alloc_on_node(NodeId(node), 4096);
        let issue = pre.prefetch(ProcId(p), o2, len, 0);
        let after = pre.read(ProcId(p), o2, len);
        prop_assert!(after <= read_cost, "prefetched read slower: {after} > {read_cost}");
        let lines = len.div_ceil(16) + 1;
        prop_assert!(issue <= lines * 2, "issue cost too high: {issue}");
    }

    /// First-touch claims are stable: whichever processor touches a page
    /// first owns it forever (absent migration), for any touch order.
    #[test]
    fn first_touch_is_sticky(
        touches in prop::collection::vec((0usize..8, 0u64..4), 1..60),
    ) {
        let mut m = Machine::new(configs(0));
        let page = m.config().page_bytes;
        let obj = m.alloc_first_touch(4 * page);
        let mut first: [Option<usize>; 4] = [None; 4];
        for (p, pg) in touches {
            m.read(ProcId(p), obj.offset(pg * page), 4);
            if first[pg as usize].is_none() {
                first[pg as usize] = Some(p);
            }
            let expect = first[pg as usize].unwrap();
            prop_assert_eq!(
                m.home_proc(obj.offset(pg * page)),
                ProcId(expect),
                "page {} re-homed",
                pg
            );
        }
    }
}
