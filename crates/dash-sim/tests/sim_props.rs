//! Property-based tests for the machine simulator.

use cool_core::{NodeId, ProcId};
use dash_sim::cache::{Access, Cache};
use dash_sim::config::CacheConfig;
use dash_sim::{Machine, MachineConfig};
use proptest::prelude::*;

proptest! {
    /// A fully-associative cache of capacity C obeys the LRU stack property:
    /// a line is resident iff fewer than C distinct lines were referenced
    /// since its last reference.
    #[test]
    fn lru_stack_property(
        refs in prop::collection::vec(0u64..32, 1..300),
        cap in 1usize..8,
    ) {
        let mut c = Cache::new(CacheConfig {
            size_bytes: (cap as u64) * 16,
            line_bytes: 16,
            assoc: cap, // one set, fully associative
        });
        let mut history: Vec<u64> = Vec::new();
        for &line in &refs {
            let expected_hit = {
                let mut distinct = std::collections::HashSet::new();
                let mut hit = false;
                for &past in history.iter().rev() {
                    if past == line {
                        hit = true;
                        break;
                    }
                    distinct.insert(past);
                    if distinct.len() >= cap {
                        break;
                    }
                }
                hit
            };
            let got = matches!(c.access(line), Access::Hit);
            prop_assert_eq!(got, expected_hit, "line {} history {:?}", line, history);
            history.push(line);
        }
    }

    /// Reference conservation: every reference is classified exactly once
    /// (refs == l1 + l2 + local + remote), for any access pattern.
    #[test]
    fn references_are_conserved(
        ops in prop::collection::vec((0usize..8, 0u64..2048, any::<bool>()), 1..400),
    ) {
        let mut m = Machine::new(MachineConfig::dash_small(8));
        let obj = m.alloc_interleaved(4096);
        for (p, off, is_write) in ops {
            if is_write {
                m.write(ProcId(p), obj.offset(off), 4);
            } else {
                m.read(ProcId(p), obj.offset(off), 4);
            }
        }
        let b = m.monitor().breakdown();
        prop_assert_eq!(
            b.refs,
            b.l1_hits + b.l2_hits + b.local_misses + b.remote_misses
        );
    }

    /// Coherence safety: after any interleaving, a second read by the same
    /// processor with no intervening writes by others is always a cache hit.
    #[test]
    fn reread_without_interference_hits(
        ops in prop::collection::vec((0usize..4, 0u64..64), 1..100),
    ) {
        let mut m = Machine::new(MachineConfig::dash_small(4));
        let obj = m.alloc_on_node(NodeId(0), 64 * 16);
        for (p, line_idx) in ops {
            let addr = obj.offset(line_idx * 16);
            m.read(ProcId(p), addr, 4);
            let c = m.read(ProcId(p), addr, 4);
            prop_assert_eq!(c, m.config().lat.l1_hit, "immediate re-read must hit L1");
        }
    }

    /// Invalidation balance: invalidations sent == invalidations received,
    /// machine-wide, under any mix of reads and writes.
    #[test]
    fn invalidations_balance(
        ops in prop::collection::vec((0usize..8, 0u64..256, any::<bool>()), 1..300),
    ) {
        let mut m = Machine::new(MachineConfig::dash_small(8));
        let obj = m.alloc_on_node(NodeId(0), 4096);
        for (p, off, w) in ops {
            if w {
                m.write(ProcId(p), obj.offset(off), 4);
            } else {
                m.read(ProcId(p), obj.offset(off), 4);
            }
        }
        let t = m.monitor().total();
        prop_assert_eq!(t.invalidations_sent, t.invalidations_received);
    }

    /// home() always returns the node most recently assigned by alloc or
    /// migrate, page-aligned semantics.
    #[test]
    fn migrate_home_roundtrip(
        moves in prop::collection::vec((0u64..4, 0usize..8), 1..50),
    ) {
        let mut m = Machine::new(MachineConfig::dash_small(8));
        let page = m.config().page_bytes;
        let obj = m.alloc_on_node(NodeId(0), 4 * page);
        let nnodes = m.config().nclusters();
        let mut homes = [0usize; 4];
        for (pg, node) in moves {
            let node = node % nnodes;
            m.migrate_to_node(obj.offset(pg * page), page, NodeId(node));
            homes[pg as usize] = node;
        }
        for pg in 0..4u64 {
            prop_assert_eq!(m.home_node(obj.offset(pg * page)).index(), homes[pg as usize]);
        }
    }
}
