//! Request adapter: LocusRoute wire-routing as service requests for the
//! `cool-rt` work server (`cool-serve`).
//!
//! The batch LocusRoute (see [`locusroute`](crate::locusroute)) routes every
//! net of a circuit in converging phases; the service replay treats each net
//! as one *route-request*: evaluate the candidate routes for the net's pin
//! chain against the live occupancy array, pick the cheapest, and commit it.
//! The mapping onto the service model is exactly the paper's affinity
//! structure turned into sharding:
//!
//! * the request's **shard key is the net's geographic region**
//!   (`Region(CurrentWire)` of Figure 9), so all requests touching one
//!   vertical strip of the CostArray land on the same domain pool and reuse
//!   that strip in its workers' caches;
//! * the request's **cost estimate** is the cells a candidate evaluation
//!   will examine (the same quantity the simulator charges cycles for),
//!   which is what admission control budgets against;
//! * the shared CostArray becomes a `Vec<AtomicU32>` with relaxed ordering —
//!   the SPLASH "benign race" the batch version documents, now under real
//!   threads.
//!
//! Each request also records how many cells its committed route occupies,
//! which gives the load harness a *conservation invariant*: after a run, the
//! total occupancy in the cost array must equal the sum of committed cells
//! over completed requests. A lost request, a double-executed body, or a
//! failed request that leaked occupancy all break the equality.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use workloads::circuit::Circuit;

use crate::driver::{locus_params, AppScale};
use crate::locusroute::{candidate_routes, Route};

/// A circuit's nets viewed as a replayable set of route-requests over a
/// shared atomic occupancy array. Cloning is cheap and shares the array.
#[derive(Clone)]
pub struct RouteRequestSet {
    circuit: Arc<Circuit>,
    /// Live occupancy per routing cell (`x * height + y`), updated with
    /// relaxed atomics by concurrent route commits.
    cost: Arc<Vec<AtomicU32>>,
    /// Cells committed by each request's route (0 until it completes).
    committed: Arc<Vec<AtomicU32>>,
}

impl RouteRequestSet {
    /// The request set for the pinned LocusRoute circuit at `scale` (the
    /// same generator `apps::driver` uses for the batch harnesses).
    pub fn new(scale: AppScale) -> Self {
        Self::from_circuit(locus_params(scale).circuit)
    }

    /// A request set over an explicit circuit.
    pub fn from_circuit(circuit: Circuit) -> Self {
        let cells = circuit.width * circuit.height;
        let nets = circuit.nets.len();
        RouteRequestSet {
            circuit: Arc::new(circuit),
            cost: Arc::new((0..cells).map(|_| AtomicU32::new(0)).collect()),
            committed: Arc::new((0..nets).map(|_| AtomicU32::new(0)).collect()),
        }
    }

    /// Number of route-requests (one per net).
    pub fn nrequests(&self) -> usize {
        self.circuit.nets.len()
    }

    /// The circuit being routed.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Shard key for request `i`: the net's geographic region, the paper's
    /// `Region(CurrentWire)` affinity anchor.
    pub fn shard_of(&self, i: usize) -> u64 {
        self.circuit.region_of_net(&self.circuit.nets[i]) as u64
    }

    /// Estimated service units for request `i`: routing-cell evaluations a
    /// candidate sweep will perform (≈ candidates × route length).
    pub fn cost_units(&self, i: usize) -> u64 {
        let net = &self.circuit.nets[i];
        net.segments()
            .map(|w| (w.hpwl() as u64 + 2) * 5)
            .sum::<u64>()
            .max(1)
    }

    /// The request body for net `i`: evaluate candidates against the live
    /// occupancy, commit the cheapest route, and record the committed cell
    /// count. Idempotent per *successful* execution — the conservation
    /// check catches any double commit.
    pub fn request_body(
        &self,
        i: usize,
    ) -> impl Fn(u32) -> Result<(), String> + Send + Sync + 'static {
        let net = self.circuit.nets[i].clone();
        let (w, h) = (self.circuit.width, self.circuit.height);
        let cost = self.cost.clone();
        let committed = self.committed.clone();
        move |_attempt| {
            let mut cells: Vec<(usize, usize)> = Vec::new();
            for wire in net.segments() {
                let mut best: Option<(u64, Route)> = None;
                for cand in candidate_routes(wire, w, h) {
                    let mut total = 0u64;
                    for &(x, y) in &cand.cells {
                        total += cost[x * h + y].load(Ordering::Relaxed) as u64;
                    }
                    // Same tie-break as the batch router: penalise length.
                    total = total * 4 + cand.cells.len() as u64;
                    if best.as_ref().is_none_or(|(b, _)| total < *b) {
                        best = Some((total, cand));
                    }
                }
                let (_, chosen) = best.ok_or_else(|| "no candidate route".to_string())?;
                cells.extend_from_slice(&chosen.cells);
            }
            cells.sort_unstable();
            cells.dedup();
            for &(x, y) in &cells {
                cost[x * h + y].fetch_add(1, Ordering::Relaxed);
            }
            committed[i].store(cells.len() as u32, Ordering::Relaxed);
            Ok(())
        }
    }

    /// Cells the committed route of request `i` occupies (0 if it never
    /// completed).
    pub fn committed_cells(&self, i: usize) -> u64 {
        self.committed[i].load(Ordering::Relaxed) as u64
    }

    /// Total occupancy across the cost array.
    pub fn occupancy_total(&self) -> u64 {
        self.cost.iter().map(|c| c.load(Ordering::Relaxed) as u64).sum()
    }

    /// Conservation check over a finished run: the array's total occupancy
    /// must equal the committed cells summed over exactly the requests in
    /// `completed` (request indices). Returns `Err` describing the imbalance
    /// if a route was lost, double-committed, or leaked by a failed request.
    pub fn verify_conservation(&self, completed: &[usize]) -> Result<(), String> {
        let expect: u64 = completed.iter().map(|&i| self.committed_cells(i)).sum();
        let got = self.occupancy_total();
        if completed.iter().any(|&i| self.committed_cells(i) == 0) {
            return Err("a completed request committed no cells".into());
        }
        if got != expect {
            return Err(format!(
                "occupancy {got} != committed {expect} over {} completed requests",
                completed.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_replay_conserves_occupancy() {
        let set = RouteRequestSet::new(AppScale::Small);
        let n = set.nrequests();
        assert!(n > 0);
        for i in 0..n {
            let body = set.request_body(i);
            body(0).unwrap();
        }
        let all: Vec<usize> = (0..n).collect();
        set.verify_conservation(&all).unwrap();
        assert!(set.occupancy_total() > 0);
    }

    #[test]
    fn shards_follow_regions_and_costs_are_positive() {
        let set = RouteRequestSet::new(AppScale::Small);
        let regions = set.circuit().regions as u64;
        for i in 0..set.nrequests() {
            assert!(set.shard_of(i) < regions);
            assert!(set.cost_units(i) >= 1);
        }
    }

    #[test]
    fn double_commit_breaks_conservation() {
        let set = RouteRequestSet::new(AppScale::Small);
        let body = set.request_body(0);
        body(0).unwrap();
        body(1).unwrap(); // a double execution the server must prevent
        assert!(set.verify_conservation(&[0]).is_err());
    }
}
