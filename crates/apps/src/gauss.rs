//! The Gaussian elimination example of Section 4.1 / Figure 3 — the
//! motivating case for combining TASK and OBJECT affinity.
//!
//! Column-oriented (unpivoted) elimination: a task is `update(dest, src)`,
//! subtracting a multiple of completed source column `src` from `dest`. Once
//! a column has received updates from all columns to its left it is
//! *completed* (normalised) and used to update the columns to its right.
//!
//! The paper's desired schedule: **memory locality on the destination
//! column** (columns distributed round-robin; the task runs where its
//! destination column lives — too many columns per processor for the cache)
//! and **cache locality on the source column** (each processor executes
//! updates with the same source back to back). Exactly:
//!
//! ```text
//! parallel void update (col* dest, col* src)
//!     [ affinity (src, TASK); affinity (dest, OBJECT) ]
//! ```
//!
//! Versions:
//! * `Base` — columns on one memory node, tasks round-robin.
//! * `Distr` — columns distributed round-robin, tasks round-robin.
//! * `AffinityDistr` — distribution + the Figure 3 hints.

use std::cell::RefCell;
use std::rc::Rc;

use cool_core::{AffinitySpec, ObjRef};
use cool_sim::{FaultPlan, SimConfig, SimRuntime, Task, TaskCtx};
use sparse::dense::{ge_column_complete, ge_factor};
use sparse::DenseMatrix;

use crate::common::{AppReport, RoundRobin, Version};

/// Cycles per multiply-subtract in the update inner loop.
const FLOP_CYCLES: u64 = 4;

/// Gaussian elimination parameters.
#[derive(Clone, Copy, Debug)]
pub struct GaussParams {
    /// Matrix dimension.
    pub n: usize,
    /// Generator seed (diagonally dominant dense matrix).
    pub seed: u64,
}

impl Default for GaussParams {
    fn default() -> Self {
        GaussParams { n: 96, seed: 1 }
    }
}

struct State {
    m: DenseMatrix,
    /// Next source column each destination column must be updated by.
    /// GE updates do *not* commute (the multiplier `dest[k]` is itself
    /// produced by earlier updates to the destination), so each column's
    /// updates are applied as a chain in increasing source order — which is
    /// also what gives the paper's back-to-back source reuse its shape.
    next_src: Vec<usize>,
    /// Columns whose normalisation is done (usable as sources).
    completed: Vec<bool>,
    /// Whether an update task for this destination is currently queued.
    in_flight: Vec<bool>,
}

/// One full run.
pub fn run(cfg: SimConfig, params: &GaussParams, version: Version) -> AppReport {
    run_with_faults(cfg, params, version, None)
}

/// One full run, optionally perturbed by a deterministic [`FaultPlan`]
/// (stragglers, stalls, transient task failures). Injection moves only the
/// schedule and timing; the factorization result is unaffected.
pub fn run_with_faults(
    cfg: SimConfig,
    params: &GaussParams,
    version: Version,
    faults: Option<FaultPlan>,
) -> AppReport {
    let mut rt = SimRuntime::new(cfg);
    if let Some(plan) = faults {
        rt.set_fault_plan(plan);
    }
    let nprocs = rt.nservers();
    let n = params.n;
    let col_bytes = (n * 8) as u64;

    // One simulated object per column. Base: all columns from one memory;
    // Distr: round-robin across processors ("distributing the columns across
    // processors in a round-robin fashion results in good load
    // distribution").
    let col_objs: Vec<ObjRef> = (0..n)
        .map(|j| {
            if version.distributes() {
                rt.machine_mut().alloc_on_proc(j % nprocs, col_bytes)
            } else {
                rt.machine_mut().alloc_on_proc(0, col_bytes)
            }
        })
        .collect();

    let state = Rc::new(RefCell::new(State {
        m: workloads::matrices::dense_dd(n, params.seed),
        next_src: vec![0; n],
        completed: vec![false; n],
        in_flight: vec![false; n],
    }));

    rt.reset_monitor();
    let rr = Rc::new(RoundRobin::default());

    // Dataflow: complete column 0, then fan out updates.
    {
        let state = state.clone();
        let col_objs = col_objs.clone();
        let rr = rr.clone();
        rt.run_phase(move |ctx| {
            complete_column(ctx, 0, &state, &col_objs, version, &rr, n);
        });
    }

    let run = rt.report();
    let events = rt.take_events();
    // Verify against the sequential factorization.
    let mut reference = workloads::matrices::dense_dd(n, params.seed);
    ge_factor(&mut reference);
    let max_error = state.borrow().m.max_diff(&reference);
    AppReport {
        version,
        run,
        max_error,
        events,
        obs: rt.take_obs(),
    }
}

/// Complete column `k` (normalise), mark it usable as a source, and release
/// any destination column whose update chain was waiting on `k`.
fn complete_column(
    ctx: &mut TaskCtx<'_>,
    k: usize,
    state: &Rc<RefCell<State>>,
    col_objs: &[ObjRef],
    version: Version,
    rr: &Rc<RoundRobin>,
    n: usize,
) {
    let col_bytes = (n * 8) as u64;
    // Normalise column k below the pivot.
    ctx.read(col_objs[k], col_bytes);
    ctx.write(col_objs[k].offset((k * 8) as u64), ((n - k) * 8) as u64);
    ctx.compute((n - k) as u64 * 2);
    {
        let mut st = state.borrow_mut();
        ge_column_complete(st.m.col_mut(k), k);
        st.completed[k] = true;
    }
    // Release: publish column k (and everything ordered before us) on its
    // sync token. Consumers of `completed[k]` re-acquire it before reading.
    ctx.sync(col_objs[k]);
    for j in k + 1..n {
        try_spawn_update(ctx, j, state, col_objs, version, rr, n);
    }
}

/// Spawn the next update task for destination column `j` if its next source
/// is completed and nothing for `j` is already queued.
fn try_spawn_update(
    ctx: &mut TaskCtx<'_>,
    j: usize,
    state: &Rc<RefCell<State>>,
    col_objs: &[ObjRef],
    version: Version,
    rr: &Rc<RoundRobin>,
    n: usize,
) {
    let k = {
        let mut st = state.borrow_mut();
        let k = st.next_src[j];
        if k >= j || st.in_flight[j] || !st.completed[k] {
            return;
        }
        st.in_flight[j] = true;
        k
    };
    let state = state.clone();
    let col_objs_v = col_objs.to_vec();
    let rr2 = rr.clone();
    let src_obj = col_objs[k];
    let dst_obj = col_objs[j];
    let body = move |c: &mut TaskCtx<'_>| {
        // Mirror: read the source column below the pivot, read-modify-write
        // the destination below the pivot.
        let tail = ((n - k) * 8) as u64;
        c.read(src_obj.offset((k * 8) as u64), tail);
        c.read(dst_obj.offset((k * 8) as u64), tail);
        c.write(dst_obj.offset((k * 8) as u64), tail);
        c.compute((n - k) as u64 * FLOP_CYCLES);
        let ready = {
            let mut st = state.borrow_mut();
            let st = &mut *st;
            let (dest, src) = st.m.col_pair_mut(j, k);
            let mult = dest[k];
            for i in k + 1..n {
                dest[i] -= mult * src[i];
            }
            st.next_src[j] = k + 1;
            st.in_flight[j] = false;
            k + 1 == j
        };
        if ready {
            complete_column(c, j, &state, &col_objs_v, version, &rr2, n);
        } else {
            try_spawn_update(c, j, &state, &col_objs_v, version, &rr2, n);
        }
    };
    let task = if version.hints() {
        // The Figure 3 affinity block.
        Task::new(body)
            .with_affinity(AffinitySpec::task(src_obj).and_object(dst_obj))
            .with_mutex(dst_obj)
    } else {
        Task::new(body)
            .with_affinity(AffinitySpec::processor(rr.next()))
            .with_mutex(dst_obj)
    };
    // Acquire: `st.completed[k]` told us column k is finished; pick up the
    // completer's sync release so the spawned reader is ordered after the
    // column's writers (the dst chain alone is serialised by its mutex).
    ctx.sync(src_obj);
    ctx.spawn(task);
}

/// Serial baseline cycles (1-processor Base run).
pub fn serial_cycles(cfg_for_one: SimConfig, params: &GaussParams) -> u64 {
    assert_eq!(cfg_for_one.machine.nprocs, 1);
    run(cfg_for_one, params, Version::Base).run.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sim_config_small;

    fn p() -> GaussParams {
        GaussParams { n: 32, seed: 7 }
    }

    #[test]
    fn all_versions_factor_correctly() {
        for v in [Version::Base, Version::Distr, Version::AffinityDistr] {
            let rep = run(sim_config_small(4, v), &p(), v);
            assert!(rep.max_error < 1e-9, "{v:?}: error {}", rep.max_error);
        }
    }

    #[test]
    fn task_count_matches_update_dag() {
        let rep = run(sim_config_small(4, Version::Base), &p(), Version::Base);
        // 1 seed + n(n-1)/2 updates.
        let n = p().n as u64;
        assert_eq!(rep.run.stats.executed, 1 + n * (n - 1) / 2);
    }

    #[test]
    fn affinity_improves_locality_over_base() {
        let base = run(sim_config_small(8, Version::Base), &p(), Version::Base);
        let aff = run(
            sim_config_small(8, Version::AffinityDistr),
            &p(),
            Version::AffinityDistr,
        );
        assert!(
            aff.run.mem.local_fraction() > base.run.mem.local_fraction(),
            "aff {} vs base {}",
            aff.run.mem.local_fraction(),
            base.run.mem.local_fraction()
        );
    }

    #[test]
    fn parallel_beats_serial() {
        // Flat topology (one memory node per processor) so the tiny test
        // problem isn't dominated by memory-module queueing on two nodes.
        use crate::common::sim_config_small_flat;
        let params = GaussParams { n: 48, seed: 7 };
        let serial = serial_cycles(sim_config_small_flat(1, Version::Base), &params);
        let par = run(
            sim_config_small_flat(8, Version::AffinityDistr),
            &params,
            Version::AffinityDistr,
        );
        assert!(
            par.speedup(serial) > 1.5,
            "speedup only {}",
            par.speedup(serial)
        );
    }
}
