//! Case studies on the **real threaded runtime** (`cool-rt`): the same task
//! structure as the simulated versions, executing on actual worker threads.
//!
//! The flagship here is Panel Cholesky — a genuinely parallel sparse
//! factorization whose panels live behind per-panel reader-writer locks
//! (write the destination, read the completed source), scheduled with the
//! paper's hints: panels placed round-robin, `UpdatePanel` collocated with
//! its destination panel via OBJECT affinity and serialised by a runtime
//! mutex, exactly as in Figure 13.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cool_rt::{
    AffinitySpec, FaultPlan, ObjRef, ProcId, RtConfig, RtCtx, RtTask, Runtime, SchedStats,
    ScopeError,
};
use parking_lot::RwLock;
use sparse::{CscMatrix, EliminationTree, Factor, PanelDeps, PanelPartition, SymbolicFactor};

/// A Cholesky factor split into per-panel value slices, each behind its own
/// lock, so independent panel updates proceed in parallel while Rust's
/// aliasing rules stay intact.
pub struct ThreadedFactor {
    sym: Arc<SymbolicFactor>,
    panels: PanelPartition,
    /// Panel values: the slice of L's value array covering the panel's
    /// columns.
    values: Vec<RwLock<Vec<f64>>>,
    /// Value-array offset of each panel's first entry.
    base: Vec<usize>,
}

impl ThreadedFactor {
    /// Scatter `A` onto the pattern, split by panel.
    pub fn init(a: &CscMatrix, sym: Arc<SymbolicFactor>, panels: PanelPartition) -> Self {
        let full = Factor::init(a, sym.clone());
        let mut values = Vec::with_capacity(panels.len());
        let mut base = Vec::with_capacity(panels.len());
        for p in 0..panels.len() {
            let r = panels.range(p);
            let lo = sym.col_ptr()[r.start];
            let hi = sym.col_ptr()[r.end];
            base.push(lo);
            // Extract this panel's slice from the dense-initialised factor.
            let mut v = Vec::with_capacity(hi - lo);
            for j in r.clone() {
                let cr = sym.col_range(j);
                for (off, &i) in sym.col_rows(j).iter().enumerate() {
                    let _ = off;
                    v.push(full.get(i, j));
                    let _ = cr;
                }
            }
            values.push(RwLock::new(v));
        }
        ThreadedFactor {
            sym,
            panels,
            values,
            base,
        }
    }

    /// Position of (row `i`, col `j`) within panel `p`'s slice.
    fn pos(&self, p: usize, i: usize, j: usize) -> Option<usize> {
        let rows = self.sym.col_rows(j);
        rows.binary_search(&i)
            .ok()
            .map(|off| self.sym.col_ptr()[j] - self.base[p] + off)
    }

    /// `cdiv` + internal updates for panel `p` (CompletePanel's internal
    /// factorization).
    pub fn panel_internal_factor(&self, p: usize) {
        let range = self.panels.range(p);
        let mut vals = self.values[p].write();
        for k in range.clone() {
            // cdiv(k)
            let kpos = self.sym.col_ptr()[k] - self.base[p];
            let klen = self.sym.col_rows(k).len();
            let d = vals[kpos];
            assert!(d > 0.0, "not positive definite at column {k}");
            let d = d.sqrt();
            vals[kpos] = d;
            for v in vals[kpos + 1..kpos + klen].iter_mut() {
                *v /= d;
            }
            // cmod(j, k) for later columns of the panel.
            for j in k + 1..range.end {
                let Some(mult_pos) = self.pos(p, j, k) else {
                    continue;
                };
                let mult = vals[mult_pos];
                if mult == 0.0 {
                    continue;
                }
                let krows = self.sym.col_rows(k);
                let start = krows.binary_search(&j).expect("checked by pos()");
                let jrows = self.sym.col_rows(j);
                let jbase = self.sym.col_ptr()[j] - self.base[p];
                let mut dpos = 0;
                for (off, &row) in krows[start..].iter().enumerate() {
                    while jrows[dpos] < row {
                        dpos += 1;
                    }
                    let src = vals[kpos + start + off];
                    vals[jbase + dpos] -= mult * src;
                }
            }
        }
    }

    /// Apply completed source panel `src`'s updates to destination panel
    /// `dst` (UpdatePanel's body). Takes a read lock on `src` and a write
    /// lock on `dst`.
    pub fn panel_update(&self, dst: usize, src: usize) {
        debug_assert!(src < dst);
        let svals = self.values[src].read();
        let mut dvals = self.values[dst].write();
        let drange = self.panels.range(dst);
        for k in self.panels.range(src) {
            let krows = self.sym.col_rows(k);
            let kbase = self.sym.col_ptr()[k] - self.base[src];
            for j in drange.clone() {
                let Ok(start) = krows.binary_search(&j) else {
                    continue;
                };
                let mult = svals[kbase + start];
                if mult == 0.0 {
                    continue;
                }
                let jrows = self.sym.col_rows(j);
                let jbase = self.sym.col_ptr()[j] - self.base[dst];
                let mut dpos = 0;
                for (off, &row) in krows[start..].iter().enumerate() {
                    while jrows[dpos] < row {
                        dpos += 1;
                    }
                    dvals[jbase + dpos] -= mult * svals[kbase + start + off];
                }
            }
        }
    }

    /// Assemble into a plain [`Factor`]-compatible value vector (for
    /// verification).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let p = self.panels.panel_of(j);
        let vals = self.values[p].read();
        match self.sym.col_rows(j).binary_search(&i) {
            Ok(off) => vals[self.sym.col_ptr()[j] - self.base[p] + off],
            Err(_) => 0.0,
        }
    }
}

/// Result of a threaded Panel Cholesky run.
pub struct ThreadedPanelResult {
    /// Max |L - L_ref| against the sequential left-looking reference.
    pub max_error: f64,
    /// Scheduler statistics.
    pub stats: SchedStats,
    /// Wall-clock duration of the parallel factorization.
    pub wall: std::time::Duration,
}

/// Factor `matrix` on `threads` real worker threads using the Figure 13
/// task structure, and verify against the sequential reference.
pub fn panel_cholesky_rt(
    matrix: &CscMatrix,
    max_panel_width: usize,
    threads: usize,
) -> ThreadedPanelResult {
    panel_cholesky_rt_with_faults(matrix, max_panel_width, threads, None)
        .expect("fault-free panel cholesky cannot fail")
}

/// [`panel_cholesky_rt`] under an optional deterministic [`FaultPlan`]
/// (stragglers, stalls, transient task failures; one plan unit = 1 µs).
/// Injection perturbs only the schedule — the factor must still verify.
/// Returns `Err` only if a task panicked or the scope stalled.
pub fn panel_cholesky_rt_with_faults(
    matrix: &CscMatrix,
    max_panel_width: usize,
    threads: usize,
    faults: Option<FaultPlan>,
) -> Result<ThreadedPanelResult, ScopeError> {
    let e = EliminationTree::new(matrix);
    let sym = Arc::new(SymbolicFactor::new(matrix, &e));
    let panels = PanelPartition::fundamental(&sym, max_panel_width);
    let deps = Arc::new(PanelDeps::new(&sym, &panels));
    let np = panels.len();

    let cfg = RtConfig::new(threads);
    let rt = match faults {
        Some(plan) => Runtime::with_faults(cfg, plan),
        None => Runtime::new(cfg),
    };
    // migrate(panel + p, p): place the panels round-robin.
    let panel_objs: Arc<Vec<ObjRef>> = Arc::new(
        (0..np)
            .map(|p| rt.placement().alloc_on(ProcId(p % threads)))
            .collect(),
    );
    let factor = Arc::new(ThreadedFactor::init(matrix, sym.clone(), panels.clone()));
    let pending: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..np)
            .map(|q| AtomicUsize::new(deps.pending(q)))
            .collect(),
    );

    let t0 = std::time::Instant::now();
    {
        let factor = factor.clone();
        let deps = deps.clone();
        let pending = pending.clone();
        let panel_objs = panel_objs.clone();
        rt.scope(move |s| {
            for p in deps.initially_ready() {
                spawn_complete(s, p, &factor, &deps, &pending, &panel_objs);
            }
        })?;
    }
    let wall = t0.elapsed();

    // Verify.
    let mut fref = Factor::init(matrix, sym.clone());
    fref.factorize_left_looking();
    let mut max_error = 0.0f64;
    for j in 0..matrix.n() {
        for &i in sym.col_rows(j) {
            max_error = max_error.max((factor.get(i, j) - fref.get(i, j)).abs());
        }
    }
    Ok(ThreadedPanelResult {
        max_error,
        stats: rt.stats(),
        wall,
    })
}

type Deps = Arc<PanelDeps>;

fn spawn_complete(
    ctx: &RtCtx<'_>,
    p: usize,
    factor: &Arc<ThreadedFactor>,
    deps: &Deps,
    pending: &Arc<Vec<AtomicUsize>>,
    objs: &Arc<Vec<ObjRef>>,
) {
    let (factor, deps, pending, objs) =
        (factor.clone(), deps.clone(), pending.clone(), objs.clone());
    let obj = objs[p];
    ctx.spawn(
        RtTask::new(move |c| {
            factor.panel_internal_factor(p);
            let targets: Vec<usize> = deps.updates_to(p).to_vec();
            for q in targets {
                spawn_update(c, q, p, &factor, &deps, &pending, &objs);
            }
        })
        .with_affinity(AffinitySpec::simple(obj)),
    );
}

#[allow(clippy::too_many_arguments)]
fn spawn_update(
    ctx: &RtCtx<'_>,
    q: usize,
    p: usize,
    factor: &Arc<ThreadedFactor>,
    deps: &Deps,
    pending: &Arc<Vec<AtomicUsize>>,
    objs: &Arc<Vec<ObjRef>>,
) {
    let (factor, deps, pending, objs) =
        (factor.clone(), deps.clone(), pending.clone(), objs.clone());
    let dst_obj = objs[q];
    ctx.spawn(
        RtTask::new(move |c| {
            factor.panel_update(q, p);
            if pending[q].fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last update: the panel is ready (Figure 13).
                spawn_complete(c, q, &factor, &deps, &pending, &objs);
            }
        })
        .with_affinity(AffinitySpec::simple(dst_obj))
        .with_mutex(dst_obj),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::matrices::{grid_laplacian, random_spd};

    #[test]
    fn threaded_factorization_matches_reference() {
        let a = grid_laplacian(10);
        let res = panel_cholesky_rt(&a, 4, 4);
        assert!(res.max_error < 1e-10, "error {}", res.max_error);
        assert!(res.stats.executed > 0);
    }

    #[test]
    fn threaded_factorization_on_irregular_matrix() {
        let a = random_spd(120, 3, 9);
        let res = panel_cholesky_rt(&a, 6, 8);
        assert!(res.max_error < 1e-9, "error {}", res.max_error);
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let a = grid_laplacian(8);
        let res = panel_cholesky_rt(&a, 4, 1);
        assert!(res.max_error < 1e-10);
        assert_eq!(res.stats.tasks_stolen, 0, "one server cannot steal");
    }

    #[test]
    fn repeated_runs_are_numerically_identical() {
        // The update order varies across threads, but panel updates commute
        // exactly only in exact arithmetic — with fp they may differ in
        // rounding. The factorization must still verify tightly every run.
        let a = grid_laplacian(9);
        for _ in 0..5 {
            let res = panel_cholesky_rt(&a, 3, 8);
            assert!(res.max_error < 1e-9, "error {}", res.max_error);
        }
    }
}
