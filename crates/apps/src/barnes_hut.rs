//! Barnes-Hut (Section 6.4): hierarchical N-body force calculation.
//!
//! Each timestep: build the octree (sequential, it is a small fraction of
//! the work), compute forces on all bodies with the θ-criterion (the
//! dominant phase, parallelised over body groups), and advance positions.
//!
//! Groups are **costzones**, as in the SPLASH code: bodies are kept in
//! Morton (space-filling-curve) order and partitioned into contiguous
//! chunks of equal *interaction cost*, using each body's node-visit count
//! from the previous timestep. Spatial contiguity is what makes affinity
//! pay: a group's traversal revisits the same subtree each step, so running
//! the group on the same processor reuses both the bodies and that subtree
//! in its cache, and distribution keeps the body pages in local memory.
//!
//! Versions: `Base` (bodies and tree on one memory, tasks round-robin),
//! `Distr` (zones distributed + tree interleaved, tasks round-robin),
//! `AffinityDistr` (distribution + simple affinity on the zone).

use std::cell::RefCell;
use std::rc::Rc;

use cool_core::AffinitySpec;
use cool_sim::{FaultPlan, SimConfig, SimRuntime, Task, TaskCtx};
use workloads::nbody::{plummer, Body};

use crate::common::{AppReport, RoundRobin, Version};

/// Cycles per body-cell interaction evaluated.
const INTERACTION_CYCLES: u64 = 12;
/// Bytes mirrored per tree node visited.
const NODE_BYTES: u64 = 64;
/// Bytes per body (pos + vel + mass + acc).
const BODY_BYTES: u64 = 80;

/// Barnes-Hut parameters.
#[derive(Clone, Copy, Debug)]
pub struct BhParams {
    pub nbodies: usize,
    pub groups: usize,
    pub timesteps: usize,
    /// Opening angle; 0 degenerates to exact pairwise summation.
    pub theta: f64,
    pub dt: f64,
    pub seed: u64,
}

impl Default for BhParams {
    fn default() -> Self {
        BhParams {
            nbodies: 512,
            groups: 32,
            timesteps: 2,
            theta: 0.6,
            dt: 0.01,
            seed: 1,
        }
    }
}

// ----- octree -----

/// One octree node: an internal cell with centre of mass, or a leaf body.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        body: usize,
    },
    Cell {
        /// Geometric centre and half-width of the cube.
        center: [f64; 3],
        half: f64,
        /// Total mass and centre of mass.
        mass: f64,
        com: [f64; 3],
        children: [Option<usize>; 8],
    },
}

/// A flat-arena octree over body positions.
pub struct Octree {
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl Octree {
    /// Build the tree over the given bodies.
    pub fn build(bodies: &[Body]) -> Self {
        let mut t = Octree {
            nodes: Vec::with_capacity(bodies.len() * 2),
            root: None,
        };
        if bodies.is_empty() {
            return t;
        }
        // Bounding cube.
        let mut maxc: f64 = 1e-9;
        for b in bodies {
            for d in 0..3 {
                maxc = maxc.max(b.pos[d].abs());
            }
        }
        let root = t.new_cell([0.0; 3], maxc * 1.0001);
        t.root = Some(root);
        for (i, b) in bodies.iter().enumerate() {
            t.insert(root, i, b.pos, bodies);
        }
        t.summarize(root, bodies);
        t
    }

    fn new_cell(&mut self, center: [f64; 3], half: f64) -> usize {
        self.nodes.push(Node::Cell {
            center,
            half,
            mass: 0.0,
            com: [0.0; 3],
            children: [None; 8],
        });
        self.nodes.len() - 1
    }

    fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= center[0]))
            | (usize::from(p[1] >= center[1]) << 1)
            | (usize::from(p[2] >= center[2]) << 2)
    }

    fn child_center(center: &[f64; 3], half: f64, oct: usize) -> [f64; 3] {
        let q = half / 2.0;
        [
            center[0] + if oct & 1 != 0 { q } else { -q },
            center[1] + if oct & 2 != 0 { q } else { -q },
            center[2] + if oct & 4 != 0 { q } else { -q },
        ]
    }

    fn insert(&mut self, cell: usize, body: usize, pos: [f64; 3], bodies: &[Body]) {
        let (center, half, oct) = match &self.nodes[cell] {
            Node::Cell { center, half, .. } => (*center, *half, Self::octant(center, &pos)),
            Node::Leaf { .. } => unreachable!("insert target must be a cell"),
        };
        let child = match &self.nodes[cell] {
            Node::Cell { children, .. } => children[oct],
            _ => unreachable!(),
        };
        match child {
            None => {
                self.nodes.push(Node::Leaf { body });
                let leaf = self.nodes.len() - 1;
                if let Node::Cell { children, .. } = &mut self.nodes[cell] {
                    children[oct] = Some(leaf);
                }
            }
            Some(c) => match self.nodes[c] {
                Node::Cell { .. } => self.insert(c, body, pos, bodies),
                Node::Leaf { body: other } => {
                    // Split: replace the leaf with a cell and push both
                    // bodies down. (Coincident bodies would recurse forever;
                    // the Plummer generator never produces them, and we guard
                    // with a depth floor on the cell size.)
                    let cc = Self::child_center(&center, half, oct);
                    let half2 = half / 2.0;
                    if half2 < 1e-12 {
                        // Degenerate: keep the existing leaf, drop the new
                        // body into the same leaf slot (approximation).
                        return;
                    }
                    let ncell = self.new_cell(cc, half2);
                    if let Node::Cell { children, .. } = &mut self.nodes[cell] {
                        children[oct] = Some(ncell);
                    }
                    self.insert(ncell, other, bodies[other].pos, bodies);
                    self.insert(ncell, body, pos, bodies);
                }
            },
        }
    }

    /// Bottom-up mass/centre-of-mass summary.
    fn summarize(&mut self, node: usize, bodies: &[Body]) -> (f64, [f64; 3]) {
        match self.nodes[node].clone() {
            Node::Leaf { body } => (bodies[body].mass, bodies[body].pos),
            Node::Cell { children, .. } => {
                let mut m = 0.0;
                let mut com = [0.0; 3];
                for c in children.into_iter().flatten() {
                    let (cm, ccom) = self.summarize(c, bodies);
                    m += cm;
                    for d in 0..3 {
                        com[d] += cm * ccom[d];
                    }
                }
                if m > 0.0 {
                    for d in com.iter_mut() {
                        *d /= m;
                    }
                }
                if let Node::Cell { mass, com: c, .. } = &mut self.nodes[node] {
                    *mass = m;
                    *c = com;
                }
                (m, com)
            }
        }
    }

    /// Force on the body at `pos` (excluding `skip`) with opening angle
    /// `theta`. Returns (acceleration, nodes_visited).
    pub fn force(
        &self,
        pos: [f64; 3],
        skip: usize,
        theta: f64,
        bodies: &[Body],
    ) -> ([f64; 3], u64) {
        let mut acc = [0.0; 3];
        let mut visited = 0;
        if let Some(root) = self.root {
            self.force_rec(root, pos, skip, theta, bodies, &mut acc, &mut visited);
        }
        (acc, visited)
    }

    #[allow(clippy::too_many_arguments)]
    fn force_rec(
        &self,
        node: usize,
        pos: [f64; 3],
        skip: usize,
        theta: f64,
        bodies: &[Body],
        acc: &mut [f64; 3],
        visited: &mut u64,
    ) {
        *visited += 1;
        const EPS2: f64 = 1e-6;
        match &self.nodes[node] {
            Node::Leaf { body } => {
                if *body == skip {
                    return;
                }
                add_grav(acc, pos, bodies[*body].pos, bodies[*body].mass, EPS2);
            }
            Node::Cell {
                half,
                mass,
                com,
                children,
                ..
            } => {
                if *mass == 0.0 {
                    return;
                }
                let mut d2 = EPS2;
                for d in 0..3 {
                    let dx = com[d] - pos[d];
                    d2 += dx * dx;
                }
                let size = 2.0 * half;
                if size * size < theta * theta * d2 {
                    // Far enough: treat as a point mass.
                    add_grav(acc, pos, *com, *mass, EPS2);
                } else {
                    for c in children.iter().flatten() {
                        self.force_rec(*c, pos, skip, theta, bodies, acc, visited);
                    }
                }
            }
        }
    }

    /// Node count (for mirroring tree reads).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

fn add_grav(acc: &mut [f64; 3], pos: [f64; 3], other: [f64; 3], mass: f64, eps2: f64) {
    let mut d2 = eps2;
    let mut dx = [0.0; 3];
    for d in 0..3 {
        dx[d] = other[d] - pos[d];
        d2 += dx[d] * dx[d];
    }
    let inv = mass / (d2 * d2.sqrt());
    for d in 0..3 {
        acc[d] += dx[d] * inv;
    }
}

/// Exact pairwise forces (verification reference).
pub fn direct_forces(bodies: &[Body]) -> Vec<[f64; 3]> {
    let n = bodies.len();
    let mut acc = vec![[0.0; 3]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                add_grav(&mut acc[i], bodies[i].pos, bodies[j].pos, bodies[j].mass, 1e-6);
            }
        }
    }
    acc
}

// ----- the COOL program -----

struct State {
    bodies: Vec<Body>,
    acc: Vec<[f64; 3]>,
    /// Interaction cost (tree nodes visited) per body, from the previous
    /// force phase; drives the costzone partition.
    cost: Vec<u64>,
    tree: Option<Rc<Octree>>,
}

/// Partition `0..n` into `groups` contiguous chunks of roughly equal total
/// cost (the costzones of SPLASH Barnes-Hut).
fn costzones(cost: &[u64], groups: usize) -> Vec<(usize, usize)> {
    let n = cost.len();
    let total: u64 = cost.iter().sum::<u64>().max(1);
    let per = total.div_ceil(groups as u64).max(1);
    let mut zones = Vec::with_capacity(groups);
    let mut lo = 0;
    let mut acc = 0u64;
    for (i, &c) in cost.iter().enumerate() {
        acc += c;
        // Close the zone once it holds its share, keeping enough bodies for
        // the remaining zones to be non-empty.
        let remaining_zones = groups - zones.len();
        if (acc >= per && n - i > remaining_zones - 1) || n - i == remaining_zones {
            zones.push((lo, i + 1));
            lo = i + 1;
            acc = 0;
            if zones.len() == groups - 1 {
                break;
            }
        }
    }
    if lo < n {
        zones.push((lo, n));
    }
    while zones.len() < groups {
        zones.push((n, n));
    }
    zones
}

/// One full run.
pub fn run(cfg: SimConfig, params: &BhParams, version: Version) -> AppReport {
    run_with_faults(cfg, params, version, None)
}

/// One full run, optionally perturbed by a deterministic [`FaultPlan`]
/// (stragglers, stalls, transient task failures). Injection moves only the
/// schedule and timing; the force results are unaffected.
pub fn run_with_faults(
    cfg: SimConfig,
    params: &BhParams,
    version: Version,
    faults: Option<FaultPlan>,
) -> AppReport {
    let mut rt = SimRuntime::new(cfg);
    if let Some(plan) = faults {
        rt.set_fault_plan(plan);
    }
    let nprocs = rt.nservers();
    let n = params.nbodies;
    let groups = params.groups.min(n);

    // Bodies live in one array, kept in Morton order for spatial contiguity
    // of the costzones. The tree is a second shared object, rebuilt per step.
    let mut bodies = plummer(n, params.seed);
    bodies.sort_by_key(|b| morton_key(b.pos));
    let bodies_bytes = (n as u64) * BODY_BYTES;
    let bodies_obj = rt.machine_mut().alloc_on_proc(0, bodies_bytes);
    // Generous arena bound: leaves (n) + internal cells (worst case ~2n for
    // clustered distributions); mirrored reads/writes are capped at this.
    let tree_bytes = (4 * n) as u64 * NODE_BYTES;
    // The tree is shared by every force task. Distributing versions
    // interleave it across memories (the SPLASH code distributes cells);
    // Base leaves it in one memory.
    let tree_obj = if version.distributes() {
        rt.machine_mut().alloc_interleaved(tree_bytes)
    } else {
        rt.machine_mut().alloc_on_proc(0, tree_bytes)
    };

    let state = Rc::new(RefCell::new(State {
        bodies,
        acc: vec![[0.0; 3]; n],
        cost: vec![1; n],
        tree: None,
    }));

    rt.reset_monitor();
    let rr = Rc::new(RoundRobin::default());

    for _step in 0..params.timesteps {
        // Costzone partition from last step's per-body costs.
        let zones = costzones(&state.borrow().cost, groups);
        // Distribute: migrate each zone's body range to its processor —
        // zones drift slowly between steps, so most pages stay put.
        // The zone→processor map is stable across steps (contiguous zones on
        // contiguous processors), so each processor revisits the same bodies
        // and subtree every timestep — the cache-reuse effect the paper's
        // hints target. Zone ranges are not page-aligned, so placement works
        // through this map rather than `home()` (the pages migrate to the
        // same processor, making most body misses local too).
        let zone_proc = |g: usize| g * nprocs / groups;
        if version.distributes() {
            for (g, &(lo, hi)) in zones.iter().enumerate() {
                if lo < hi {
                    let off = (lo as u64) * BODY_BYTES;
                    let len = ((hi - lo) as u64) * BODY_BYTES;
                    rt.machine_mut()
                        .migrate_to_proc(bodies_obj.offset(off), len, zone_proc(g));
                }
            }
        }
        // Tree build: sequential phase (the paper parallelises force
        // computation; tree build is a small fraction).
        {
            let state = state.clone();
            rt.run_phase(move |ctx| {
                let mut st = state.borrow_mut();
                let tree = Octree::build(&st.bodies);
                ctx.write(tree_obj, (tree.len() as u64 * NODE_BYTES).min(tree_bytes));
                ctx.compute(tree.len() as u64 * 20);
                st.tree = Some(Rc::new(tree));
            });
        }
        // Force phase: one task per costzone.
        {
            let state = state.clone();
            let rr = rr.clone();
            let params = *params;
            let zones = zones.clone();
            let zone_proc = move |g: usize| g * nprocs / groups;
            rt.run_phase(move |ctx| {
                for (g, &(lo, hi)) in zones.iter().enumerate() {
                    if lo >= hi {
                        continue;
                    }
                    let state = state.clone();
                    let zone_obj = bodies_obj.offset((lo as u64) * BODY_BYTES);
                    let body = move |c: &mut TaskCtx<'_>| {
                        let (visited, count) = {
                            let mut st = state.borrow_mut();
                            let st = &mut *st;
                            let tree = st.tree.as_ref().expect("tree built").clone();
                            let mut visited = 0;
                            for i in lo..hi {
                                let (a, v) =
                                    tree.force(st.bodies[i].pos, i, params.theta, &st.bodies);
                                st.acc[i] = a;
                                st.cost[i] = v;
                                visited += v;
                            }
                            (visited, (hi - lo) as u64)
                        };
                        c.read(zone_obj, count * BODY_BYTES);
                        // Tree traversal locality: every task touches the top
                        // of the tree (shared, read-only), then the subtree
                        // around its own spatial region — zones are Morton-
                        // contiguous, so a zone's traversal revisits the same
                        // subtree each timestep. Mirror that as a shared
                        // prefix plus a per-zone region scaled by the nodes
                        // actually visited.
                        c.read(tree_obj, 1024);
                        let region_off =
                            ((lo as u64) * tree_bytes / n as u64) & !63;
                        let region_len =
                            (visited * 8).min(tree_bytes - region_off).max(64);
                        c.read(tree_obj.offset(region_off), region_len);
                        c.write(zone_obj, count * 24); // accelerations
                        c.compute(visited * INTERACTION_CYCLES);
                    };
                    let task = if version.hints() {
                        Task::new(body).with_affinity(AffinitySpec::processor(zone_proc(g)))
                    } else {
                        Task::new(body).with_affinity(AffinitySpec::processor(rr.next()))
                    };
                    ctx.spawn(task);
                }
            });
        }
        // Advance phase: integrate positions (parallel over the same zones).
        {
            let state = state.clone();
            let rr = rr.clone();
            let params = *params;
            let zones = zones.clone();
            let zone_proc = move |g: usize| g * nprocs / groups;
            rt.run_phase(move |ctx| {
                for (g, &(lo, hi)) in zones.iter().enumerate() {
                    if lo >= hi {
                        continue;
                    }
                    let state = state.clone();
                    let zone_obj = bodies_obj.offset((lo as u64) * BODY_BYTES);
                    let body = move |c: &mut TaskCtx<'_>| {
                        {
                            let mut st = state.borrow_mut();
                            let st = &mut *st;
                            for i in lo..hi {
                                for d in 0..3 {
                                    st.bodies[i].vel[d] += params.dt * st.acc[i][d];
                                    st.bodies[i].pos[d] += params.dt * st.bodies[i].vel[d];
                                }
                            }
                        }
                        let count = (hi - lo) as u64;
                        c.read(zone_obj, count * BODY_BYTES);
                        c.write(zone_obj, count * BODY_BYTES);
                        c.compute(count * 12);
                    };
                    let task = if version.hints() {
                        Task::new(body).with_affinity(AffinitySpec::processor(zone_proc(g)))
                    } else {
                        Task::new(body).with_affinity(AffinitySpec::processor(rr.next()))
                    };
                    ctx.spawn(task);
                }
            });
        }
    }

    let run = rt.report();
    let events = rt.take_events();
    let max_error = verify(params, &state.borrow().bodies);
    AppReport {
        version,
        run,
        max_error,
        events,
        obs: rt.take_obs(),
    }
}

fn morton_key(pos: [f64; 3]) -> u64 {
    // Quantise to 10 bits per axis over [-25, 25] and interleave.
    let mut key = 0u64;
    for bit in 0..10 {
        for (d, p) in pos.iter().enumerate() {
            let q = (((p + 25.0) / 50.0).clamp(0.0, 0.999) * 1024.0) as u64;
            key |= ((q >> bit) & 1) << (bit * 3 + d);
        }
    }
    key
}

/// Sequential reference: same computation single-threaded; returns the max
/// position deviation. (Schedule independence: forces are double-buffered
/// into `acc`, so any schedule gives identical trajectories.)
fn verify(params: &BhParams, result: &[Body]) -> f64 {
    let mut bodies = plummer(params.nbodies, params.seed);
    bodies.sort_by_key(|b| morton_key(b.pos));
    let n = bodies.len();
    let mut acc = vec![[0.0; 3]; n];
    for _ in 0..params.timesteps {
        let tree = Octree::build(&bodies);
        for (i, a) in acc.iter_mut().enumerate() {
            *a = tree.force(bodies[i].pos, i, params.theta, &bodies).0;
        }
        for (b, a) in bodies.iter_mut().zip(&acc) {
            for (d, &ad) in a.iter().enumerate() {
                b.vel[d] += params.dt * ad;
                b.pos[d] += params.dt * b.vel[d];
            }
        }
    }
    let mut err = 0.0f64;
    for (a, b) in bodies.iter().zip(result) {
        for d in 0..3 {
            err = err.max((a.pos[d] - b.pos[d]).abs());
        }
    }
    err
}

/// Serial baseline cycles (1-processor Base run).
pub fn serial_cycles(cfg_for_one: SimConfig, params: &BhParams) -> u64 {
    assert_eq!(cfg_for_one.machine.nprocs, 1);
    run(cfg_for_one, params, Version::Base).run.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sim_config_small;

    fn p() -> BhParams {
        BhParams {
            nbodies: 128,
            groups: 16,
            timesteps: 2,
            theta: 0.6,
            dt: 0.01,
            seed: 4,
        }
    }

    #[test]
    fn theta_zero_matches_direct_summation() {
        let bodies = plummer(64, 9);
        let tree = Octree::build(&bodies);
        let direct = direct_forces(&bodies);
        for (i, d) in direct.iter().enumerate() {
            let (a, _) = tree.force(bodies[i].pos, i, 0.0, &bodies);
            for k in 0..3 {
                assert!(
                    (a[k] - d[k]).abs() < 1e-9,
                    "body {i} axis {k}: {} vs {}",
                    a[k],
                    d[k]
                );
            }
        }
    }

    #[test]
    fn theta_point_six_approximates_direct() {
        let bodies = plummer(128, 2);
        let tree = Octree::build(&bodies);
        let direct = direct_forces(&bodies);
        let mut rel_err = 0.0f64;
        for (i, d) in direct.iter().enumerate() {
            let (a, _) = tree.force(bodies[i].pos, i, 0.6, &bodies);
            let mag: f64 = d.iter().map(|x| x * x).sum::<f64>().sqrt();
            let diff: f64 = a
                .iter()
                .zip(d)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            if mag > 1e-9 {
                rel_err = rel_err.max(diff / mag);
            }
        }
        assert!(rel_err < 0.1, "θ=0.6 rel error {rel_err}");
    }

    #[test]
    fn tree_mass_equals_total_mass() {
        let bodies = plummer(200, 3);
        let tree = Octree::build(&bodies);
        if let Some(root) = tree.root {
            if let Node::Cell { mass, .. } = &tree.nodes[root] {
                assert!((mass - 1.0).abs() < 1e-9);
            } else {
                panic!("root must be a cell");
            }
        }
    }

    #[test]
    fn all_versions_compute_identical_trajectories() {
        for v in [Version::Base, Version::Distr, Version::AffinityDistr] {
            let rep = run(sim_config_small(4, v), &p(), v);
            assert!(rep.max_error < 1e-12, "{v:?}: {}", rep.max_error);
        }
    }

    #[test]
    fn affinity_version_reuses_caches_better() {
        // Barnes-Hut's benefit is cache reuse across timesteps (the same
        // processor revisits the same zone and subtree), so the figure of
        // merit is misses and elapsed time, not local-memory fraction (the
        // tree is interleaved in the distributing version).
        use crate::common::sim_config_small_flat;
        let mut params = p();
        params.timesteps = 4; // reuse needs repeated steps
        let base = run(sim_config_small_flat(8, Version::Base), &params, Version::Base);
        let aff = run(
            sim_config_small_flat(8, Version::AffinityDistr),
            &params,
            Version::AffinityDistr,
        );
        assert!(
            aff.run.mem.misses() < base.run.mem.misses(),
            "affinity should reduce misses: {} vs {}",
            aff.run.mem.misses(),
            base.run.mem.misses()
        );
        assert!(
            aff.run.elapsed < base.run.elapsed,
            "affinity should be faster: {} vs {}",
            aff.run.elapsed,
            base.run.elapsed
        );
    }
}
