//! Panel Cholesky (Section 6.3): sparse factorization over panels, the
//! paper's centrepiece case study (Figures 12–15).
//!
//! The task structure is Figure 13's:
//!
//! * `CompletePanel(p)` — perform the panel's internal factorization, then
//!   spawn `UpdatePanel(q, p)` for every panel `q` that `p` modifies.
//! * `UpdatePanel(q, p)` — a `parallel mutex` function on the destination
//!   panel: apply `p`'s updates to `q`; when `q` has received all its
//!   updates it becomes *ready* and `CompletePanel(q)` is called.
//!
//! By default, `UpdatePanel` tasks have affinity for the panel they are
//! invoked on (the destination), so they are automatically scheduled to
//! exploit cache reuse and memory locality on it; distributing the panels
//! round-robin distributes both the work and the memory bandwidth demand.
//!
//! Versions (the Figure 14 curves):
//! * `Base` — panels on one memory, tasks round-robin.
//! * `Distr` — panels distributed round-robin (`migrate(panel+p, p)` in
//!   Figure 13's `main`), tasks still round-robin.
//! * `AffinityDistr` — distribution + default object affinity on the
//!   destination panel.
//! * `AffinityDistrCluster` — ditto, with stealing restricted to the cluster
//!   (`Distr+Aff+ClusterStealing`).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use cool_core::{AffinitySpec, ObjRef};
use cool_sim::{FaultPlan, SimConfig, SimRuntime, Task, TaskCtx};
use sparse::{CscMatrix, EliminationTree, Factor, PanelDeps, PanelPartition, SymbolicFactor};

use crate::common::{AppReport, RoundRobin, Version};

/// Cycles per non-zero touched in a cmod/cdiv inner loop.
const FLOP_CYCLES: u64 = 4;

/// Panel Cholesky parameters.
#[derive(Clone, Debug)]
pub struct PanelParams {
    /// The SPD input matrix.
    pub matrix: CscMatrix,
    /// Maximum panel width.
    pub max_panel_width: usize,
}

/// Everything derived from the input once (shared across versions so figure
/// sweeps don't redo symbolic analysis).
pub struct PanelProblem {
    pub a: CscMatrix,
    pub sym: Arc<SymbolicFactor>,
    pub panels: PanelPartition,
    pub deps: PanelDeps,
}

impl PanelProblem {
    /// Run the symbolic pipeline.
    pub fn analyse(params: &PanelParams) -> Self {
        let e = EliminationTree::new(&params.matrix);
        let sym = Arc::new(SymbolicFactor::new(&params.matrix, &e));
        let panels = PanelPartition::fundamental(&sym, params.max_panel_width);
        let deps = PanelDeps::new(&sym, &panels);
        PanelProblem {
            a: params.matrix.clone(),
            sym,
            panels,
            deps,
        }
    }
}

struct State {
    f: Factor,
    /// Updates each panel still awaits.
    pending: Vec<usize>,
}

/// One full run.
pub fn run(cfg: SimConfig, prob: &PanelProblem, version: Version) -> AppReport {
    run_with_faults(cfg, prob, version, None)
}

/// One full run, optionally perturbed by a deterministic [`FaultPlan`]
/// (stragglers, stalls, transient task failures). Injection moves only the
/// schedule and timing; the factor is unaffected.
pub fn run_with_faults(
    cfg: SimConfig,
    prob: &PanelProblem,
    version: Version,
    faults: Option<FaultPlan>,
) -> AppReport {
    let mut rt = SimRuntime::new(cfg);
    if let Some(plan) = faults {
        rt.set_fault_plan(plan);
    }
    let nprocs = rt.nservers();
    let np = prob.panels.len();

    // One simulated object per panel: its slice of the factor's value array.
    // Base: everything from one memory. Distr: migrate(panel+p, p) — round
    // robin across processors, as in Figure 13's main().
    let panel_objs: Vec<ObjRef> = (0..np)
        .map(|p| {
            let r = prob.panels.range(p);
            let bytes = ((prob.sym.col_ptr()[r.end] - prob.sym.col_ptr()[r.start]) * 8)
                .max(8) as u64;
            if version.distributes() {
                rt.machine_mut().alloc_on_proc(p % nprocs, bytes)
            } else {
                rt.machine_mut().alloc_on_proc(0, bytes)
            }
        })
        .collect();
    let panel_bytes: Vec<u64> = (0..np)
        .map(|p| {
            let r = prob.panels.range(p);
            ((prob.sym.col_ptr()[r.end] - prob.sym.col_ptr()[r.start]) * 8).max(8) as u64
        })
        .collect();

    let state = Rc::new(RefCell::new(State {
        f: Factor::init(&prob.a, prob.sym.clone()),
        pending: (0..np).map(|q| prob.deps.pending(q)).collect(),
    }));

    rt.reset_monitor();
    let rr = Rc::new(RoundRobin::default());

    // Figure 13 main(): start with the initially-ready panels; the dataflow
    // does the rest. One phase = the whole factorization (the waitfor).
    {
        let state = state.clone();
        let ready = prob.deps.initially_ready();
        let panels = prob.panels.clone();
        let deps_updates: Vec<Vec<usize>> = (0..np).map(|p| prob.deps.updates_to(p).to_vec()).collect();
        let panel_objs = panel_objs.clone();
        let panel_bytes_v = panel_bytes.clone();
        let rr = rr.clone();
        rt.run_phase(move |ctx| {
            let env = Rc::new(Env {
                state,
                panels,
                deps_updates,
                panel_objs,
                panel_bytes: panel_bytes_v,
                version,
                rr,
            });
            for p in ready {
                spawn_complete_panel(ctx, p, &env);
            }
        });
    }

    let run = rt.report();
    let events = rt.take_events();
    // Verify against the sequential left-looking reference.
    let mut fref = Factor::init(&prob.a, prob.sym.clone());
    fref.factorize_left_looking();
    let n = prob.a.n();
    let mut max_error = 0.0f64;
    {
        let st = state.borrow();
        for j in 0..n {
            for &i in prob.sym.col_rows(j) {
                max_error = max_error.max((st.f.get(i, j) - fref.get(i, j)).abs());
            }
        }
    }
    AppReport {
        version,
        run,
        max_error,
        events,
        obs: rt.take_obs(),
    }
}

/// Environment shared by all tasks of one factorization.
struct Env {
    state: Rc<RefCell<State>>,
    panels: PanelPartition,
    deps_updates: Vec<Vec<usize>>,
    panel_objs: Vec<ObjRef>,
    panel_bytes: Vec<u64>,
    version: Version,
    rr: Rc<RoundRobin>,
}

/// `CompletePanel(p)`: internal factorization, then fan out UpdatePanel
/// tasks. Runs inline in the spawning task's context in Figure 13 too
/// (CompletePanel is called, not spawned, from UpdatePanel).
fn spawn_complete_panel(ctx: &mut TaskCtx<'_>, p: usize, env: &Rc<Env>) {
    let env2 = env.clone();
    let body = move |c: &mut TaskCtx<'_>| complete_panel(c, p, &env2);
    // CompletePanel has default affinity for the panel it is invoked on.
    let task = if env.version.hints() {
        Task::new(body).with_affinity(AffinitySpec::simple(env.panel_objs[p]))
    } else {
        Task::new(body).with_affinity(AffinitySpec::processor(env.rr.next()))
    };
    ctx.spawn(task);
}

fn complete_panel(c: &mut TaskCtx<'_>, p: usize, env: &Rc<Env>) {
    // Internal factorization: read/write the whole panel.
    let range = env.panels.range(p);
    let updated = {
        let mut st = env.state.borrow_mut();
        st.f.panel_internal_factor(range)
    };
    // Internal completion reads the whole panel and writes what it touches.
    c.read(env.panel_objs[p], env.panel_bytes[p]);
    c.write(env.panel_objs[p], (updated as u64 * 8).clamp(8, env.panel_bytes[p]));
    c.compute(updated as u64 * FLOP_CYCLES);
    // Produce updates to the panels this panel modifies.
    for &q in &env.deps_updates[p] {
        let env2 = env.clone();
        let body = move |c: &mut TaskCtx<'_>| update_panel(c, q, p, &env2);
        // UpdatePanel(this = q, src = p): parallel mutex on the destination
        // panel, default affinity for the destination.
        let task = if env.version.hints() {
            Task::new(body)
                .with_affinity(AffinitySpec::simple(env.panel_objs[q]))
                .with_mutex(env.panel_objs[q])
        } else {
            Task::new(body)
                .with_affinity(AffinitySpec::processor(env.rr.next()))
                .with_mutex(env.panel_objs[q])
        };
        c.spawn(task);
    }
}

fn update_panel(c: &mut TaskCtx<'_>, q: usize, p: usize, env: &Rc<Env>) {
    let dst = env.panels.range(q);
    let src = env.panels.range(p);
    let (updated, now_ready) = {
        let mut st = env.state.borrow_mut();
        let st = &mut *st;
        let updated = st.f.panel_update(dst, src);
        st.pending[q] -= 1;
        (updated, st.pending[q] == 0)
    };
    // Mirror the traffic the update actually generates: the source values
    // it reads and the destination positions it modifies — both proportional
    // to `updated` (a cmod touches one source and one destination value per
    // position). Mirroring whole panels instead would invalidate every byte
    // of the destination in all sharers on every update, grossly inflating
    // coherence traffic relative to the real code.
    let touched = (updated as u64 * 8).clamp(8, env.panel_bytes[q]);
    c.read(env.panel_objs[p], (updated as u64 * 8).clamp(8, env.panel_bytes[p]));
    c.read(env.panel_objs[q], touched);
    c.write(env.panel_objs[q], touched);
    c.compute(updated as u64 * FLOP_CYCLES);
    if now_ready {
        // Figure 13: "if (all updates to this panel have been performed)
        // CompletePanel();" — called from within the update task.
        complete_panel(c, q, env);
    }
}

/// Serial baseline cycles (1-processor Base run).
pub fn serial_cycles(cfg_for_one: SimConfig, prob: &PanelProblem) -> u64 {
    assert_eq!(cfg_for_one.machine.nprocs, 1);
    run(cfg_for_one, prob, Version::Base).run.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sim_config_small;
    use workloads::matrices::grid_laplacian;

    fn problem() -> PanelProblem {
        PanelProblem::analyse(&PanelParams {
            matrix: grid_laplacian(8),
            max_panel_width: 4,
        })
    }

    #[test]
    fn all_versions_factor_correctly() {
        let prob = problem();
        for v in Version::ALL {
            let rep = run(sim_config_small(4, v), &prob, v);
            assert!(rep.max_error < 1e-9, "{v:?}: error {}", rep.max_error);
        }
    }

    #[test]
    fn task_count_matches_panel_dag() {
        let prob = problem();
        let rep = run(sim_config_small(4, Version::Base), &prob, Version::Base);
        // seed + one CompletePanel per initially-ready panel + one
        // UpdatePanel per dependency edge (CompletePanel for non-root panels
        // runs inline inside the final update task).
        let expected = 1 + prob.deps.initially_ready().len() + prob.deps.total_updates();
        assert_eq!(rep.run.stats.executed, expected as u64);
    }

    #[test]
    fn distribution_and_affinity_improve_locality() {
        use crate::common::sim_config_small_flat;
        let prob = problem();
        let base = run(sim_config_small_flat(8, Version::Base), &prob, Version::Base);
        let aff = run(
            sim_config_small_flat(8, Version::AffinityDistr),
            &prob,
            Version::AffinityDistr,
        );
        assert!(
            aff.run.mem.local_fraction() > base.run.mem.local_fraction(),
            "aff {} vs base {}",
            aff.run.mem.local_fraction(),
            base.run.mem.local_fraction()
        );
    }

    #[test]
    fn cluster_stealing_keeps_steals_in_cluster() {
        let prob = problem();
        let rep = run(
            sim_config_small(8, Version::AffinityDistrCluster),
            &prob,
            Version::AffinityDistrCluster,
        );
        let s = rep.run.stats;
        assert_eq!(
            s.remote_steals, 0,
            "cluster boundary crossed under cluster policy: {s:?}"
        );
    }

    #[test]
    fn mutex_serialises_updates_to_one_panel() {
        let prob = problem();
        let rep = run(sim_config_small(4, Version::Base), &prob, Version::Base);
        // With several processors racing on shared destination panels, some
        // blocking must occur on this matrix (many panels receive > 1
        // update).
        assert!(prob.deps.total_updates() > prob.panels.len());
        // Not a hard guarantee, but on this input contention is inevitable.
        assert!(rep.run.stats.executed > 0);
    }
}
