//! Ocean (Section 6.1): grid PDE relaxation with regions distributed across
//! processors' memories.
//!
//! The program keeps `num_grids` square grids of state variables. Each phase
//! (one `waitfor { ... }` in Figure 5) updates every grid from the previous
//! values: a 5-point nearest-neighbour stencil within the grid (intra-grid
//! operation) plus an element-wise coupling with the next grid (inter-grid
//! operation), double-buffered so results are schedule-independent. Each
//! grid is partitioned into `regions` contiguous row blocks; one task
//! processes one region of one grid.
//!
//! Versions:
//! * `Base` — all grids allocated from one memory; region tasks scheduled
//!   round-robin.
//! * `Distr` — regions migrated so corresponding regions of all grids share
//!   a processor's local memory (the `distribute()` of Figure 5), but tasks
//!   still round-robin.
//! * `AffinityDistr` — distribution plus the paper's default affinity: each
//!   task is collocated with the region it updates (simple affinity on the
//!   region object). This is the published Ocean configuration.

use std::cell::RefCell;
use std::rc::Rc;

use cool_core::{AffinitySpec, ObjRef};
use cool_sim::{FaultPlan, SimConfig, SimRuntime, Task};
use workloads::ocean::{initial_grids, region_rows, OceanParams};

use crate::common::{AppReport, RoundRobin, Version};

/// How each grid is partitioned into regions.
///
/// The paper: "We chose to partition a grid into a single array of regions,
/// although rectangular block decompositions are also possible." Row blocks
/// are page-contiguous (clean placement, larger halos); rectangular blocks
/// halve the halo perimeter but stride across pages, so page-granular
/// `migrate` cannot place them cleanly — the ablation quantifies exactly
/// that trade-off.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decomposition {
    /// Contiguous row blocks (the paper's choice): `regions` strips.
    Rows,
    /// A `br × bc` rectangular block grid (br·bc regions).
    Blocks { br: usize, bc: usize },
}

/// How the grids' regions are placed in memory — the automatic-distribution
/// question of the paper's Sections 7/8 (compiler/OS placement vs the
/// explicit `distribute()` of Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacementPolicy {
    /// Everything allocated from one processor's memory (no distribution).
    Central,
    /// The paper's explicit distribution: region r of every grid migrated to
    /// processor r (Figure 5's `distribute()`).
    Explicit,
    /// OS-style first-touch: pages homed on the cluster of their first
    /// referencing processor.
    FirstTouch,
    /// Round-robin page interleaving across memories.
    Interleaved,
}

/// Cycles charged per grid-point update (5 adds + 2 muls on an R3000-class
/// machine).
const FLOP_CYCLES_PER_POINT: u64 = 8;

struct State {
    /// Current values, one Vec per grid (row-major n×n).
    cur: Vec<Vec<f64>>,
    /// Next values (written this phase).
    next: Vec<Vec<f64>>,
}

/// One full Ocean run with the version's default placement (Central for
/// Base, Explicit for the distributing versions) and row decomposition.
pub fn run(cfg: SimConfig, params: &OceanParams, version: Version) -> AppReport {
    let placement = if version.distributes() {
        PlacementPolicy::Explicit
    } else {
        PlacementPolicy::Central
    };
    run_full(cfg, params, version, placement, Decomposition::Rows)
}

/// One full Ocean run with an explicit placement policy (the placement
/// ablation of EXPERIMENTS.md), row decomposition.
pub fn run_with_placement(
    cfg: SimConfig,
    params: &OceanParams,
    version: Version,
    placement: PlacementPolicy,
) -> AppReport {
    run_full(cfg, params, version, placement, Decomposition::Rows)
}

/// A region of the grid: a row range and a column range.
#[derive(Clone, Debug)]
struct Region {
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
}

/// Partition an `n × n` grid under the chosen decomposition.
fn regions_of(n: usize, params_regions: usize, decomp: Decomposition) -> Vec<Region> {
    match decomp {
        Decomposition::Rows => (0..params_regions)
            .map(|r| Region {
                rows: region_rows(n, params_regions, r),
                cols: 0..n,
            })
            .collect(),
        Decomposition::Blocks { br, bc } => {
            let mut out = Vec::with_capacity(br * bc);
            for i in 0..br {
                for j in 0..bc {
                    out.push(Region {
                        rows: region_rows(n, br, i),
                        cols: region_rows(n, bc, j),
                    });
                }
            }
            out
        }
    }
}

/// One full Ocean run with every knob exposed.
pub fn run_full(
    cfg: SimConfig,
    params: &OceanParams,
    version: Version,
    placement: PlacementPolicy,
    decomp: Decomposition,
) -> AppReport {
    run_full_with_faults(cfg, params, version, placement, decomp, None)
}

/// One full Ocean run with the version's default placement, optionally
/// perturbed by a deterministic [`FaultPlan`] (stragglers, stalls, transient
/// task failures). Injection moves only the schedule and timing; the
/// relaxation result is unaffected.
pub fn run_with_faults(
    cfg: SimConfig,
    params: &OceanParams,
    version: Version,
    faults: Option<FaultPlan>,
) -> AppReport {
    let placement = if version.distributes() {
        PlacementPolicy::Explicit
    } else {
        PlacementPolicy::Central
    };
    run_full_with_faults(cfg, params, version, placement, Decomposition::Rows, faults)
}

/// [`run_full`] plus an optional fault plan.
pub fn run_full_with_faults(
    cfg: SimConfig,
    params: &OceanParams,
    version: Version,
    placement: PlacementPolicy,
    decomp: Decomposition,
    faults: Option<FaultPlan>,
) -> AppReport {
    let mut rt = SimRuntime::new(cfg);
    if let Some(plan) = faults {
        rt.set_fault_plan(plan);
    }
    let nprocs = rt.nservers();
    let n = params.n;
    let g = params.num_grids;
    let grid_bytes = (n * n * 8) as u64;
    let regions = regions_of(n, params.regions, decomp);

    // Allocate the simulated grids under the chosen policy.
    let alloc = |rt: &mut SimRuntime| match placement {
        PlacementPolicy::FirstTouch => rt.machine_mut().alloc_first_touch(grid_bytes),
        PlacementPolicy::Interleaved => rt.machine_mut().alloc_interleaved(grid_bytes),
        // Central and Explicit both start from one memory; Explicit then
        // migrates below.
        _ => rt.machine_mut().alloc_on_proc(0, grid_bytes),
    };
    let cur_objs: Vec<ObjRef> = (0..g).map(|_| alloc(&mut rt)).collect();
    let next_objs: Vec<ObjRef> = (0..g).map(|_| alloc(&mut rt)).collect();

    // distribute(): migrate region r of every grid (both buffers) to
    // processor r — corresponding regions of different grids end up in the
    // same local memory (Figure 5). For row regions one migrate covers the
    // whole region; rectangular blocks migrate row by row (and the strided
    // rows share pages between blocks — the page-granularity caveat of the
    // paper's footnote 2, visible in the decomposition ablation).
    if placement == PlacementPolicy::Explicit {
        for (r, reg) in regions.iter().enumerate() {
            for objs in [&cur_objs, &next_objs] {
                for &o in objs.iter() {
                    for row in reg.rows.clone() {
                        let off = ((row * n + reg.cols.start) * 8) as u64;
                        let len = ((reg.cols.end - reg.cols.start) * 8) as u64;
                        rt.machine_mut().migrate_to_proc(o.offset(off), len, r % nprocs);
                    }
                }
            }
        }
    }

    let state = Rc::new(RefCell::new(State {
        cur: initial_grids(params),
        next: vec![vec![0.0; n * n]; g],
    }));

    // Measure only the parallel section, as the paper does.
    rt.reset_monitor();

    let rr = Rc::new(RoundRobin::default());
    for sweep in 0..params.sweeps {
        let phase_state = state.clone();
        // The Rust buffers swap between phases; swap the mirrored objects in
        // step so the simulated addresses track the semantically-current
        // buffer.
        let (cur_objs, next_objs) = if sweep % 2 == 0 {
            (cur_objs.clone(), next_objs.clone())
        } else {
            (next_objs.clone(), cur_objs.clone())
        };
        let rr = rr.clone();
        let params = *params;
        let regions2 = regions.clone();
        rt.run_phase(move |ctx| {
            for gi in 0..params.num_grids {
                for reg in &regions2 {
                    let state = phase_state.clone();
                    let n = params.n;
                    let src_obj = cur_objs[gi];
                    let couple_obj = cur_objs[(gi + 1) % params.num_grids];
                    let dst_obj = next_objs[gi];
                    let (rows2, cols2) = (reg.rows.clone(), reg.cols.clone());
                    let body = move |c: &mut cool_sim::TaskCtx<'_>| {
                        // Mirror the reads: stencil rows (with halo) of the
                        // source grid and the coupled grid's region, then the
                        // write of the destination region. Column extents
                        // mirror per row (with a one-cell halo each side).
                        let halo_start = rows2.start.saturating_sub(1);
                        let halo_end = (rows2.end + 1).min(n);
                        let c0 = cols2.start.saturating_sub(1);
                        let c1 = (cols2.end + 1).min(n);
                        for row in halo_start..halo_end {
                            c.read(
                                src_obj.offset(((row * n + c0) * 8) as u64),
                                ((c1 - c0) * 8) as u64,
                            );
                        }
                        for row in rows2.clone() {
                            c.read(
                                couple_obj.offset(((row * n + cols2.start) * 8) as u64),
                                ((cols2.end - cols2.start) * 8) as u64,
                            );
                            c.write(
                                dst_obj.offset(((row * n + cols2.start) * 8) as u64),
                                ((cols2.end - cols2.start) * 8) as u64,
                            );
                        }
                        c.compute(
                            ((rows2.end - rows2.start) * (cols2.end - cols2.start)) as u64
                                * FLOP_CYCLES_PER_POINT,
                        );
                        // The real computation.
                        let mut st = state.borrow_mut();
                        let st = &mut *st;
                        relax_region(
                            &st.cur[gi],
                            &st.cur[(gi + 1) % st.cur.len()],
                            &mut st.next[gi],
                            n,
                            rows2.clone(),
                            cols2.clone(),
                        );
                    };
                    let task = if version.hints() {
                        // Default/simple affinity on the region object
                        // being updated.
                        let region_obj = dst_obj
                            .offset(((reg.rows.start * n + reg.cols.start) * 8) as u64);
                        Task::new(body).with_affinity(AffinitySpec::simple(region_obj))
                    } else {
                        Task::new(body).with_affinity(AffinitySpec::processor(rr.next()))
                    };
                    ctx.spawn(task);
                }
            }
        });
        // Swap buffers between phases (and in the simulated space: the next
        // sweep reads what this one wrote, so swap the object handles too —
        // handled by swapping the Rust buffers and reusing objs in the same
        // order; to keep object/buffer correspondence, swap both).
        {
            let mut st = state.borrow_mut();
            let st = &mut *st;
            std::mem::swap(&mut st.cur, &mut st.next);
        }
    }

    let run = rt.report();
    let events = rt.take_events();
    let max_error = verify(params, &state.borrow().cur);
    AppReport {
        version,
        run,
        max_error,
        events,
        obs: rt.take_obs(),
    }
}

/// 5-point stencil + inter-grid coupling for one region of one grid.
/// Boundary points copy through (Dirichlet-style).
fn relax_region(
    src: &[f64],
    couple: &[f64],
    dst: &mut [f64],
    n: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) {
    for r in rows {
        for c in cols.clone() {
            let i = r * n + c;
            dst[i] = if r == 0 || c == 0 || r == n - 1 || c == n - 1 {
                src[i]
            } else {
                0.2 * (src[i] + src[i - n] + src[i + n] + src[i - 1] + src[i + 1])
                    + 0.01 * couple[i]
            };
        }
    }
}

/// Sequential reference: rerun the whole computation single-threaded and
/// return the max deviation.
fn verify(params: &OceanParams, result: &[Vec<f64>]) -> f64 {
    let n = params.n;
    let g = params.num_grids;
    let mut cur = initial_grids(params);
    let mut next = vec![vec![0.0; n * n]; g];
    for _ in 0..params.sweeps {
        for gi in 0..g {
            let couple = cur[(gi + 1) % g].clone();
            let src = cur[gi].clone();
            relax_region(&src, &couple, &mut next[gi], n, 0..n, 0..n);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let mut err = 0.0f64;
    for gi in 0..g {
        for (a, b) in cur[gi].iter().zip(&result[gi]) {
            err = err.max((a - b).abs());
        }
    }
    err
}

/// Serial baseline cycles: the 1-processor Base run's elapsed time.
pub fn serial_cycles(cfg_for_one: SimConfig, params: &OceanParams) -> u64 {
    assert_eq!(cfg_for_one.machine.nprocs, 1);
    run(cfg_for_one, params, Version::Base).run.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sim_config_small;

    fn small_params() -> OceanParams {
        OceanParams {
            n: 24,
            num_grids: 4,
            regions: 8,
            sweeps: 2,
            seed: 3,
        }
    }

    #[test]
    fn all_versions_compute_the_same_answer() {
        for v in [Version::Base, Version::Distr, Version::AffinityDistr] {
            let rep = run(sim_config_small(4, v), &small_params(), v);
            assert!(
                rep.max_error < 1e-12,
                "{:?} diverged: {}",
                v,
                rep.max_error
            );
        }
    }

    #[test]
    fn affinity_version_adheres_and_runs_locally() {
        let rep = run(
            sim_config_small(8, Version::AffinityDistr),
            &small_params(),
            Version::AffinityDistr,
        );
        assert!(rep.run.stats.adherence() > 0.5, "{:?}", rep.run.stats);
        // Distribution + collocation ⇒ most misses serviced locally.
        assert!(
            rep.run.mem.local_fraction() > 0.5,
            "local fraction {}",
            rep.run.mem.local_fraction()
        );
    }

    #[test]
    fn distribution_improves_on_base_at_scale() {
        // Page-aligned regions (4 rows × 32 cols × 8 B = 1 KB = one small
        // page) on a flat machine, so placement is exact.
        use crate::common::sim_config_small_flat;
        let p = OceanParams {
            n: 32,
            num_grids: 6,
            regions: 8,
            sweeps: 3,
            seed: 3,
        };
        let base = run(sim_config_small_flat(8, Version::Base), &p, Version::Base);
        let distr = run(
            sim_config_small_flat(8, Version::AffinityDistr),
            &p,
            Version::AffinityDistr,
        );
        // The optimised version must not be slower; with everything homed on
        // one node, Base suffers remote misses.
        assert!(
            distr.run.elapsed <= base.run.elapsed,
            "distr {} vs base {}",
            distr.run.elapsed,
            base.run.elapsed
        );
        assert!(
            distr.run.mem.local_fraction() >= base.run.mem.local_fraction(),
            "locality did not improve"
        );
    }

    #[test]
    fn block_decomposition_computes_the_same_answer() {
        let p = small_params();
        for decomp in [
            Decomposition::Rows,
            Decomposition::Blocks { br: 2, bc: 4 },
            Decomposition::Blocks { br: 3, bc: 3 },
        ] {
            let rep = run_full(
                sim_config_small(4, Version::AffinityDistr),
                &p,
                Version::AffinityDistr,
                PlacementPolicy::Explicit,
                decomp,
            );
            assert!(rep.max_error < 1e-12, "{decomp:?}: {}", rep.max_error);
        }
    }

    #[test]
    fn block_decomposition_spawns_br_times_bc_tasks() {
        let p = small_params();
        let rep = run_full(
            sim_config_small(4, Version::Base),
            &p,
            Version::Base,
            PlacementPolicy::Central,
            Decomposition::Blocks { br: 2, bc: 2 },
        );
        let expected = (p.sweeps * (p.num_grids * 4 + 1)) as u64;
        assert_eq!(rep.run.stats.executed, expected);
    }

    #[test]
    fn every_region_task_executes() {
        let p = small_params();
        let rep = run(sim_config_small(4, Version::Base), &p, Version::Base);
        // sweeps × (grids × regions tasks + 1 seed).
        let expected = (p.sweeps * (p.num_grids * p.regions + 1)) as u64;
        assert_eq!(rep.run.stats.executed, expected);
    }
}
