//! # apps — the paper's case studies (Section 6)
//!
//! Each module reimplements one SPLASH-style application as a COOL program
//! running on the simulated DASH machine, parameterised by the scheduling
//! version the paper compares:
//!
//! * [`ocean`] — Ocean (Section 6.1): grid PDE relaxation; object
//!   distribution of regions + default affinity.
//! * [`locusroute`] — LocusRoute (Section 6.2): wire routing over a shared
//!   CostArray; processor affinity by geographic region, optional
//!   distribution of the CostArray.
//! * [`panel_cholesky`] — Panel Cholesky (Section 6.3): sparse factorization
//!   with panels; round-robin panel distribution, default (object) affinity
//!   on the destination panel, and cluster stealing.
//! * [`block_cholesky`] — Block Cholesky (Section 6.4): blocked dense
//!   factorization with per-block task dataflow.
//! * [`barnes_hut`] — Barnes-Hut (Section 6.4): octree N-body with
//!   spatially-grouped force tasks.
//! * [`gauss`] — the Gaussian-elimination example of Figure 3: TASK affinity
//!   on the source column + OBJECT affinity on the destination column.
//! * [`threaded`] — the same task structures on the real threaded runtime
//!   (`cool-rt`), headlined by a genuinely parallel Panel Cholesky.
//! * [`serve_adapter`] — LocusRoute nets as route-requests for the
//!   `cool-serve` work server (region → shard key, cell evaluations →
//!   admission cost), backing the service load generator in `bench`.
//!
//! All apps share the conventions in [`common`]: every task does the real
//! computation on real data *and* mirrors its accesses into the machine, and
//! every app verifies its numeric output against a sequential reference, so
//! a scheduling bug cannot silently pass as a performance artefact.
//!
//! [`driver`] runs any app by name at a pinned fast scale and exports its
//! observability artifacts (Chrome trace + `cool-metrics-v1` summary).

pub mod barnes_hut;
pub mod block_cholesky;
pub mod common;
pub mod driver;
pub mod gauss;
pub mod locusroute;
pub mod ocean;
pub mod panel_cholesky;
pub mod serve_adapter;
pub mod threaded;

pub use common::{apply_version, AppReport, Version};
